"""Fault injection for chaos-testing the execution engine.

Faults are declared in the ``REPRO_FAULTS`` environment variable — a
comma-separated list of ``mode:match[:times[:delay]]`` specs — so they
cross the process boundary to pool workers for free.  ``match`` is a
substring of the unit's ``"kind|label"``; ``times`` bounds how many
matching *executions* (across all processes and retries) trigger the
fault, which is what makes ``flaky`` units eventually succeed.

Modes
-----
``crash``
    Raise :class:`InjectedFault` inside the executor (a retryable error).
``flaky``
    Alias of ``crash`` — named for the intent: fail the first ``times``
    attempts, then succeed.
``kill``
    ``os._exit(86)`` the worker process — from a pool this surfaces as
    ``BrokenProcessPool``; never use with ``jobs=1`` (it kills the run).
``hang``
    Sleep ``delay`` seconds (default 3600) before executing normally —
    exercises per-unit timeouts.
``interrupt``
    Raise ``KeyboardInterrupt`` — simulates Ctrl-C deterministically for
    checkpoint/resume tests.

Cross-process "times" accounting uses claim files (``O_CREAT|O_EXCL`` is
atomic) under the directory named by ``REPRO_FAULTS_STATE``; the
:func:`inject_faults` context manager manages both variables and the
state directory, restoring everything on exit.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Tuple, Union

__all__ = [
    "FAULTS_ENV",
    "FAULTS_STATE_ENV",
    "FaultSpec",
    "InjectedFault",
    "active_faults",
    "maybe_inject",
    "inject_faults",
    "corrupt_cache_entry",
]

FAULTS_ENV = "REPRO_FAULTS"
FAULTS_STATE_ENV = "REPRO_FAULTS_STATE"

_MODES = ("crash", "flaky", "kill", "hang", "interrupt")


class InjectedFault(RuntimeError):
    """The error raised by ``crash``/``flaky`` faults (retryable)."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what to do, which units, how many times."""

    mode: str
    match: str
    times: int = 1
    delay_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; known: {', '.join(_MODES)}")
        if ":" in self.match or "," in self.match:
            raise ValueError(f"fault match may not contain ':' or ',': {self.match!r}")

    def encode(self) -> str:
        """The ``mode:match:times:delay`` form accepted by :meth:`parse`."""
        return f"{self.mode}:{self.match}:{self.times}:{self.delay_s}"

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        parts = text.split(":")
        if not 2 <= len(parts) <= 4:
            raise ValueError(f"bad fault spec {text!r}; want mode:match[:times[:delay]]")
        mode, match = parts[0], parts[1]
        times = int(parts[2]) if len(parts) > 2 else 1
        delay = float(parts[3]) if len(parts) > 3 else 3600.0
        return cls(mode=mode, match=match, times=times, delay_s=delay)


def active_faults() -> List[FaultSpec]:
    """The faults currently declared in the environment (possibly none)."""
    text = os.environ.get(FAULTS_ENV, "").strip()
    if not text:
        return []
    return [FaultSpec.parse(part) for part in text.split(",") if part.strip()]


#: In-process fallback counters when no state directory is configured,
#: keyed by (spec text, fault index) so a changed env resets the counts.
_LOCAL_CLAIMS: Dict[Tuple[str, int], int] = {}


def _claim(fault_id: int, times: int) -> bool:
    """Claim one of the first ``times`` triggers of fault ``fault_id``.

    Returns True iff this execution is among the first ``times`` matching
    ones *across every process sharing the state directory*; ``times <= 0``
    means unlimited.
    """
    if times <= 0:
        return True
    state_dir = os.environ.get(FAULTS_STATE_ENV)
    if state_dir:
        for slot in range(times):
            path = Path(state_dir) / f"fault{fault_id}.slot{slot}"
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False  # state dir vanished: fail open (no fault)
            os.close(fd)
            return True
        return False
    local_key = (os.environ.get(FAULTS_ENV, ""), fault_id)
    count = _LOCAL_CLAIMS.get(local_key, 0)
    if count >= times:
        return False
    _LOCAL_CLAIMS[local_key] = count + 1
    return True


def maybe_inject(unit) -> None:
    """Apply the first matching active fault to ``unit`` (worker-side hook).

    Called by :func:`repro.exec.units.execute_unit` at the top of every
    execution; a single env lookup when no faults are configured.
    """
    if not os.environ.get(FAULTS_ENV):
        return
    target = f"{unit.kind}|{unit.label}"
    for fault_id, spec in enumerate(active_faults()):
        if spec.match not in target:
            continue
        if not _claim(fault_id, spec.times):
            continue
        if spec.mode == "kill":
            os._exit(86)
        if spec.mode == "hang":
            time.sleep(spec.delay_s)
            return
        if spec.mode == "interrupt":
            raise KeyboardInterrupt(f"injected interrupt for {target}")
        raise InjectedFault(f"injected {spec.mode} fault for {target}")


@contextmanager
def inject_faults(*specs: Union[str, FaultSpec]) -> Iterator[None]:
    """Scope a set of faults: sets the env vars, manages the state dir.

    Usable around in-process engine calls and around CLI ``main(...)``
    invocations alike; pool workers inherit the environment at pool
    start-up, so faults reach them too.
    """
    parsed = [s if isinstance(s, FaultSpec) else FaultSpec.parse(s) for s in specs]
    state_dir = tempfile.mkdtemp(prefix="repro-faults-")
    old_faults = os.environ.get(FAULTS_ENV)
    old_state = os.environ.get(FAULTS_STATE_ENV)
    os.environ[FAULTS_ENV] = ",".join(spec.encode() for spec in parsed)
    os.environ[FAULTS_STATE_ENV] = state_dir
    _LOCAL_CLAIMS.clear()
    try:
        yield
    finally:
        for env_name, old in ((FAULTS_ENV, old_faults), (FAULTS_STATE_ENV, old_state)):
            if old is None:
                os.environ.pop(env_name, None)
            else:
                os.environ[env_name] = old
        _LOCAL_CLAIMS.clear()
        shutil.rmtree(state_dir, ignore_errors=True)


def corrupt_cache_entry(cache, key: str, garbage: bytes = b"\x80corrupt\x00") -> Path:
    """Overwrite a cached entry with garbage bytes (for quarantine tests).

    Returns the path it clobbered; raises ``FileNotFoundError`` if the
    entry was never stored.
    """
    path = cache._path(key)
    if not path.exists():
        raise FileNotFoundError(f"no cache entry for key {key!r} at {path}")
    path.write_bytes(garbage)
    return path
