"""The parallel execution engine: cache-aware, deterministic, fallback-safe.

:class:`ExecutionEngine` runs batches of :class:`~repro.exec.units.WorkUnit`
and returns their values **in input order**, whatever the completion
order, so ``--jobs N`` produces row-for-row identical tables to serial
execution.  Each unit is first looked up in the (optional)
content-addressed :class:`~repro.exec.cache.ResultCache`; misses are
computed — in-process for ``jobs == 1``, on a ``ProcessPoolExecutor``
otherwise — then stored back and recorded in telemetry.

Experiments do not thread an engine through every call: the harness asks
:func:`current_engine` for the ambient one, and the CLI (or a test)
scopes a configured engine with the :func:`execution` context manager::

    with execution(jobs=4, cache=True):
        repro.run_experiment(workload, specs)   # cells fan out over 4 procs
"""

from __future__ import annotations

import os
import time
import warnings
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Sequence

from .cache import ResultCache
from .telemetry import TELEMETRY, CellRecord, Telemetry
from .units import CellOutcome, WorkUnit, execute_unit

__all__ = ["ExecutionEngine", "execution", "current_engine", "default_jobs"]


def default_jobs() -> int:
    """A sensible ``--jobs`` default for "use the machine": the CPU count."""
    return os.cpu_count() or 1


class ExecutionEngine:
    """Runs work units serially or on a process pool, through the cache.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (the default) executes in-process.  Pool
        start-up failures degrade to serial execution with a warning —
        results are identical either way.
    cache:
        A :class:`ResultCache`, or None to always recompute.
    telemetry:
        Collector for per-cell records; defaults to the process-wide
        :data:`~repro.exec.telemetry.TELEMETRY`.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.cache = cache
        self.telemetry = telemetry if telemetry is not None else TELEMETRY

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _compute_missing(self, pending: List[int], units: Sequence[WorkUnit]) -> List[CellOutcome]:
        """Execute the units at the given indices; preserves ``pending`` order."""
        if not pending:
            return []
        if self.jobs > 1 and len(pending) > 1:
            try:
                from concurrent.futures import ProcessPoolExecutor

                with ProcessPoolExecutor(max_workers=min(self.jobs, len(pending))) as pool:
                    futures = [pool.submit(execute_unit, units[i]) for i in pending]
                    return [f.result() for f in futures]
            except (OSError, ImportError, RuntimeError) as exc:  # pragma: no cover
                warnings.warn(
                    f"process pool unavailable ({exc!r}); falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=3,
                )
        return [execute_unit(units[i]) for i in pending]

    def run(self, units: Sequence[WorkUnit]) -> List[Any]:
        """Run a batch of units; returns their values in input order."""
        units = list(units)
        outcomes: List[Optional[CellOutcome]] = [None] * len(units)
        keys: List[Optional[str]] = [None] * len(units)
        pending: List[int] = []
        for i, unit in enumerate(units):
            if self.cache is not None:
                t0 = time.perf_counter()
                key = unit.key()
                keys[i] = key
                hit, outcome = self.cache.load(key)
                if hit:
                    outcomes[i] = outcome
                    self.telemetry.record(
                        CellRecord(
                            kind=unit.kind,
                            label=unit.label,
                            key=key,
                            cached=True,
                            duration_s=time.perf_counter() - t0,
                            sim_steps=outcome.sim_steps,
                        )
                    )
                    continue
            pending.append(i)
        computed = self._compute_missing(pending, units)
        for i, outcome in zip(pending, computed):
            outcomes[i] = outcome
            if self.cache is not None and keys[i] is not None:
                self.cache.store(keys[i], outcome)
            self.telemetry.record(
                CellRecord(
                    kind=units[i].kind,
                    label=units[i].label,
                    key=keys[i] or "",
                    cached=False,
                    duration_s=outcome.duration_s,
                    sim_steps=outcome.sim_steps,
                )
            )
        return [outcome.value for outcome in outcomes]  # type: ignore[union-attr]


#: Ambient engine stack; the base entry is the serial, cache-less default.
_ENGINE_STACK: List[ExecutionEngine] = [ExecutionEngine()]


def current_engine() -> ExecutionEngine:
    """The innermost engine configured via :func:`execution` (or the default)."""
    return _ENGINE_STACK[-1]


@contextmanager
def execution(
    jobs: int = 1,
    cache: bool = False,
    cache_dir: Optional[os.PathLike] = None,
    telemetry: Optional[Telemetry] = None,
) -> Iterator[ExecutionEngine]:
    """Scope an ambient :class:`ExecutionEngine` for everything inside.

    ``cache=True`` opens the content-addressed result cache (at
    ``cache_dir``, ``$REPRO_CACHE_DIR``, or ``./.repro_cache``).  The
    library default outside any ``execution`` block is serial and
    cache-less, so tests and ad-hoc calls stay hermetic.
    """
    engine = ExecutionEngine(
        jobs=jobs,
        cache=ResultCache(cache_dir) if cache else None,
        telemetry=telemetry,
    )
    _ENGINE_STACK.append(engine)
    try:
        yield engine
    finally:
        _ENGINE_STACK.pop()
