"""The parallel execution engine: cache-aware, deterministic, fault-tolerant.

:class:`ExecutionEngine` runs batches of :class:`~repro.exec.units.WorkUnit`
and returns their values **in input order**, whatever the completion
order, so ``--jobs N`` produces row-for-row identical tables to serial
execution.  Each unit is first looked up in the (optional)
content-addressed :class:`~repro.exec.cache.ResultCache`; misses are
computed — in-process for ``jobs == 1``, on a ``ProcessPoolExecutor``
otherwise — then stored back, journaled to the run checkpoint, and
recorded in telemetry.

Failure handling is governed by an
:class:`~repro.exec.policy.ExecutionPolicy`: every unit gets a per-attempt
timeout and bounded retries with backoff; a worker crash
(``BrokenProcessPool``) rebuilds the pool and resubmits only the lost
units; a hung worker is timed out, its pool torn down, and the innocent
in-flight units resubmitted without burning an attempt.  Under
``keep_going`` a unit that exhausts its retries yields a typed
:class:`~repro.exec.policy.FailedCell` instead of aborting the batch.

Experiments do not thread an engine through every call: the harness asks
:func:`current_engine` for the ambient one, and the CLI (or a test)
scopes a configured engine with the :func:`execution` context manager::

    with execution(jobs=4, cache=True):
        repro.run_experiment(workload, specs)   # cells fan out over 4 procs
"""

from __future__ import annotations

import heapq
import os
import time
import warnings
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..obs.runtime import absorb_outcome
from .cache import ResultCache
from .checkpoint import RunCheckpoint
from .handoff import HandoffManager, PreparedTask, execute_prepared
from .policy import ExecutionPolicy, FailedCell, UnitExecutionError, UnitTimeoutError, run_unit_with_policy
from .telemetry import TELEMETRY, CellRecord, Telemetry
from .units import CellOutcome, WorkUnit, execute_unit

__all__ = ["ExecutionEngine", "execution", "current_engine", "default_jobs", "use_engine"]


def default_jobs() -> int:
    """A sensible ``--jobs`` default for "use the machine": the CPU count."""
    return os.cpu_count() or 1


def _terminate_pool(pool) -> None:
    """Best-effort hard stop of a pool whose workers may be hung or dead.

    ``_processes`` is a private attribute, but terminating the workers is
    the only way to reclaim slots from a genuinely hung computation; the
    whole body is defensive so a CPython layout change degrades to a
    plain (possibly slow) shutdown rather than an error.
    """
    procs = getattr(pool, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


class ExecutionEngine:
    """Runs work units serially or on a process pool, through the cache.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (the default) executes in-process.  Pool
        start-up failures degrade to serial execution with a warning —
        results are identical either way.
    cache:
        A :class:`ResultCache`, or None to always recompute.
    telemetry:
        Collector for per-cell records; defaults to the process-wide
        :data:`~repro.exec.telemetry.TELEMETRY`.
    policy:
        Per-unit :class:`~repro.exec.policy.ExecutionPolicy` (timeout,
        retries, keep-going); defaults to fail-fast with no timeout and
        no retries — the historical behavior.
    checkpoint:
        Optional :class:`~repro.exec.checkpoint.RunCheckpoint`; every
        computed (non-failed) unit key is journaled so an interrupted
        run can prove what finished.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        telemetry: Optional[Telemetry] = None,
        policy: Optional[ExecutionPolicy] = None,
        checkpoint: Optional[RunCheckpoint] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.cache = cache
        self.telemetry = telemetry if telemetry is not None else TELEMETRY
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.checkpoint = checkpoint

    # ------------------------------------------------------------------ #
    # pool plumbing (separated so tests can force construction failures)
    # ------------------------------------------------------------------ #
    def _make_pool(self, max_workers: int):
        import concurrent.futures

        return concurrent.futures.ProcessPoolExecutor(max_workers=max_workers)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _compute_missing(
        self,
        pending: List[int],
        units: Sequence[WorkUnit],
        keys: Sequence[Optional[str]],
        on_complete: Callable[[int, Union[CellOutcome, FailedCell], int], None],
    ) -> None:
        """Execute the units at the given indices.

        ``on_complete(index, outcome, attempts)`` fires for every unit *as
        it finishes* — not at batch end — so cache stores and checkpoint
        journal entries survive an interrupt mid-batch.  ``outcome`` is a
        :class:`CellOutcome` or — only under ``policy.keep_going`` — a
        :class:`FailedCell`.
        """
        if not pending:
            return
        if self.jobs > 1 and len(pending) > 1:
            try:
                pool = self._make_pool(min(self.jobs, len(pending)))
            except (OSError, ImportError, RuntimeError) as exc:
                warnings.warn(
                    f"process pool unavailable ({exc!r}); falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=3,
                )
            else:
                # zero-copy handoff: heavy payloads leave the pickle path
                # (spilled stores, shared-memory arrays) before submission.
                # Keys were already computed from the original units, and
                # the manager releases its segments only after the pool
                # has fully drained — including crash-recovery resubmits.
                with HandoffManager() as manager:
                    tasks = manager.prepare_batch(units, pending)
                    for i in pending:
                        if tasks[i] is None:
                            tasks[i] = units[i]
                    self._run_pooled(pool, pending, tasks, keys, on_complete)
                return
        for i in pending:
            outcome, attempts = run_unit_with_policy(units[i], self.policy, key=keys[i] or "")
            on_complete(i, outcome, attempts)

    def _run_pooled(
        self,
        pool,
        pending: List[int],
        units: Sequence[WorkUnit],
        keys: Sequence[Optional[str]],
        on_complete: Callable[[int, Union[CellOutcome, FailedCell], int], None],
    ) -> None:
        """Pool scheduler with retries, per-unit timeouts, and crash recovery.

        Invariants: at most ``workers`` units are in flight (so a
        submitted unit starts immediately and its timeout clock is
        honest); a unit that fails an attempt re-enters the queue after
        its backoff; a pool crash or a timed-out (hung) worker rebuilds
        the pool and resubmits the innocent in-flight units with their
        attempt counts untouched.
        """
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        policy = self.policy
        workers = min(self.jobs, len(pending))
        done_count = 0
        first_start: Dict[int, float] = {}
        ready: Deque[Tuple[int, int]] = deque((i, 1) for i in pending)  # (index, attempt#)
        delayed: List[Tuple[float, int, int]] = []  # heap of (due, index, attempt#)
        inflight: Dict[Any, Tuple[int, int, Optional[float]]] = {}  # future -> (index, attempt#, deadline)

        def fail_attempt(idx: int, attempt: int, exc: BaseException) -> None:
            """One attempt died; schedule the retry or finalize the cell."""
            nonlocal done_count
            if attempt <= policy.retries:
                token = keys[idx] or units[idx].label or units[idx].kind
                heapq.heappush(delayed, (time.monotonic() + policy.backoff_delay(token, attempt), idx, attempt + 1))
                return
            if not policy.keep_going:
                raise UnitExecutionError(units[idx], attempt, exc) from exc
            cell = FailedCell(
                kind=units[idx].kind,
                label=units[idx].label,
                key=keys[idx] or "",
                error=repr(exc),
                error_type=type(exc).__name__,
                attempts=attempt,
                elapsed_s=time.monotonic() - first_start[idx],
            )
            done_count += 1
            on_complete(idx, cell, attempt)

        try:
            while done_count < len(pending):
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, idx, attempt = heapq.heappop(delayed)
                    ready.append((idx, attempt))
                while ready and len(inflight) < workers:
                    idx, attempt = ready.popleft()
                    first_start.setdefault(idx, time.monotonic())
                    unit = units[idx]
                    if isinstance(unit, PreparedTask):
                        future = pool.submit(execute_prepared, unit)
                    else:
                        future = pool.submit(execute_unit, unit)
                    deadline = (time.monotonic() + policy.timeout_s) if policy.timeout_s else None
                    inflight[future] = (idx, attempt, deadline)
                if not inflight:
                    # everything outstanding is waiting out a backoff
                    time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                    continue
                wakeups = [dl for (_, _, dl) in inflight.values() if dl is not None]
                if delayed:
                    wakeups.append(delayed[0][0])
                timeout = max(0.01, min(wakeups) - time.monotonic()) if wakeups else None
                done, _ = wait(set(inflight), timeout=timeout, return_when=FIRST_COMPLETED)

                broken = False
                for future in done:
                    idx, attempt, _deadline = inflight.pop(future)
                    try:
                        value = future.result()
                        done_count += 1
                        on_complete(idx, value, attempt)
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except BrokenProcessPool as exc:
                        broken = True
                        fail_attempt(idx, attempt, exc)
                    except Exception as exc:
                        fail_attempt(idx, attempt, exc)
                if broken:
                    # the pool is unusable; any future it had not yet failed
                    # is resubmitted with its attempt count untouched
                    ready.extend((idx, attempt) for (idx, attempt, _dl) in inflight.values())
                    inflight.clear()
                    _terminate_pool(pool)
                    pool = self._make_pool(workers)
                    continue

                now = time.monotonic()
                expired = [f for f, (_, _, dl) in inflight.items() if dl is not None and now >= dl and not f.done()]
                if expired:
                    for future in expired:
                        idx, attempt, _deadline = inflight.pop(future)
                        fail_attempt(
                            idx,
                            attempt,
                            UnitTimeoutError(
                                f"unit {units[idx].label or units[idx].kind!r} exceeded {policy.timeout_s}s"
                            ),
                        )
                    # the hung workers still occupy pool slots: rebuild, and
                    # resubmit the units that were merely sharing the pool
                    ready.extend((idx, attempt) for (idx, attempt, _dl) in inflight.values())
                    inflight.clear()
                    _terminate_pool(pool)
                    pool = self._make_pool(workers)
        except BaseException:
            _terminate_pool(pool)
            raise
        pool.shutdown(wait=True)

    def run(self, units: Sequence[WorkUnit]) -> List[Any]:
        """Run a batch of units; returns their values in input order.

        Cache hits short-circuit compute; computed outcomes are stored
        back, journaled to the checkpoint, and recorded in telemetry.
        Under ``policy.keep_going`` a failed unit's slot holds its
        :class:`FailedCell` (callers test with ``isinstance``).
        """
        units = list(units)
        outcomes: List[Optional[Union[CellOutcome, FailedCell]]] = [None] * len(units)
        keys: List[Optional[str]] = [None] * len(units)
        pending: List[int] = []
        want_keys = self.cache is not None or self.checkpoint is not None
        for i, unit in enumerate(units):
            if want_keys:
                t0 = time.perf_counter()
                key = unit.key()
                keys[i] = key
                if self.cache is not None:
                    hit, outcome = self.cache.load(key)
                    if hit:
                        outcomes[i] = outcome
                        self.telemetry.record(
                            CellRecord(
                                kind=unit.kind,
                                label=unit.label,
                                key=key,
                                cached=True,
                                duration_s=time.perf_counter() - t0,
                                sim_steps=outcome.sim_steps,
                            )
                        )
                        obs_metrics.counter("exec.cells").inc()
                        obs_metrics.counter("exec.cache.hits").inc()
                        obs_tracing.instant("exec.cache_hit", kind=unit.kind, label=unit.label)
                        # a hit replays the metrics/spans recorded when the
                        # cell was computed, so warm runs report the same
                        # sim.* counters as the run that filled the cache
                        absorb_outcome(outcome)
                        continue
            pending.append(i)
        # submit markers live here (and completion events in ``absorb``)
        # because these paths are shared by serial and pooled execution,
        # so the canonical trace is identical under any --jobs value
        if obs_tracing.enabled():
            for i in pending:
                obs_tracing.instant("exec.submit", kind=units[i].kind, label=units[i].label)

        def absorb(i: int, outcome: Union[CellOutcome, FailedCell], attempts: int) -> None:
            # Fires per unit as it completes, so an interrupt mid-batch
            # loses at most the in-flight units: everything already
            # computed is cached and journaled.
            outcomes[i] = outcome
            if isinstance(outcome, FailedCell):
                self.telemetry.record(
                    CellRecord(
                        kind=units[i].kind,
                        label=units[i].label,
                        key=keys[i] or "",
                        cached=False,
                        duration_s=outcome.elapsed_s,
                        sim_steps=0,
                        failed=True,
                        attempts=outcome.attempts,
                        error=outcome.error,
                    )
                )
                obs_metrics.counter("exec.cells").inc()
                obs_metrics.counter("exec.failed_cells").inc()
                obs_tracing.instant(
                    "exec.unit_failed",
                    kind=outcome.kind,
                    label=outcome.label,
                    attempts=outcome.attempts,
                    error_type=outcome.error_type,
                )
                return
            if self.cache is not None and keys[i] is not None:
                self.cache.store(keys[i], outcome)
            if self.checkpoint is not None and keys[i] is not None:
                self.checkpoint.record_unit(keys[i], kind=units[i].kind, label=units[i].label)
            self.telemetry.record(
                CellRecord(
                    kind=units[i].kind,
                    label=units[i].label,
                    key=keys[i] or "",
                    cached=False,
                    duration_s=outcome.duration_s,
                    sim_steps=outcome.sim_steps,
                    attempts=attempts,
                )
            )
            obs_metrics.counter("exec.cells").inc()
            obs_metrics.counter("exec.computed").inc()
            if attempts > 1:
                obs_metrics.counter("exec.retries").inc(attempts - 1)
            obs_metrics.counter("wall.exec.compute_s").inc(outcome.duration_s)
            tracer = obs_tracing.active()
            if tracer.enabled:
                tracer.complete(
                    "exec.unit",
                    outcome.duration_s,
                    kind=units[i].kind,
                    label=units[i].label,
                    attempts=attempts,
                )
            absorb_outcome(outcome)

        with obs_tracing.span("exec.batch", units=len(units), pending=len(pending)):
            self._compute_missing(pending, units, keys, absorb)
        return [o.value if isinstance(o, CellOutcome) else o for o in outcomes]


#: Ambient engine stack; the base entry is the serial, cache-less default.
_ENGINE_STACK: List[ExecutionEngine] = [ExecutionEngine()]


def current_engine() -> ExecutionEngine:
    """The innermost engine configured via :func:`execution` (or the default)."""
    return _ENGINE_STACK[-1]


@contextmanager
def use_engine(engine: ExecutionEngine) -> Iterator[ExecutionEngine]:
    """Scope an *existing* engine as the ambient one.

    :func:`execution` constructs a fresh engine per scope; long-lived
    callers (a :class:`repro.client.Session`, the service backend) keep
    one configured engine — with its cache, policy, and checkpoint —
    alive across many requests and re-enter it per call.
    """
    _ENGINE_STACK.append(engine)
    try:
        yield engine
    finally:
        _ENGINE_STACK.pop()


@contextmanager
def execution(
    jobs: int = 1,
    cache: bool = False,
    cache_dir: Optional[os.PathLike] = None,
    telemetry: Optional[Telemetry] = None,
    policy: Optional[ExecutionPolicy] = None,
    checkpoint: Optional[RunCheckpoint] = None,
    telemetry_jsonl: Optional[os.PathLike] = None,
) -> Iterator[ExecutionEngine]:
    """Scope an ambient :class:`ExecutionEngine` for everything inside.

    ``cache=True`` opens the content-addressed result cache (at
    ``cache_dir``, ``$REPRO_CACHE_DIR``, or ``./.repro_cache``).  The
    library default outside any ``execution`` block is serial and
    cache-less, so tests and ad-hoc calls stay hermetic.

    The exit path is exception-safe: the ambient engine stack is restored
    and — if ``telemetry_jsonl`` is given — every record collected inside
    the scope is flushed to that file *even when the body raises*, so an
    interrupted run keeps its partial telemetry.
    """
    engine = ExecutionEngine(
        jobs=jobs,
        cache=ResultCache(cache_dir) if cache else None,
        telemetry=telemetry,
        policy=policy,
        checkpoint=checkpoint,
    )
    mark = len(engine.telemetry)
    _ENGINE_STACK.append(engine)
    try:
        yield engine
    finally:
        _ENGINE_STACK.pop()
        if telemetry_jsonl is not None:
            try:
                engine.telemetry.write_jsonl(telemetry_jsonl, since=mark)
            except OSError as exc:  # pragma: no cover — disk-full etc.
                warnings.warn(f"could not flush telemetry to {telemetry_jsonl}: {exc}", RuntimeWarning)
