"""Content-addressed on-disk cache for experiment work units.

Every work unit (one algorithm/workload/seed cell, one lower-bound
computation, one green-paging replicate) is identified by a SHA-256 key
over a *canonical encoding* of its kind and parameters — request
sequences are hashed by content, so the key changes iff the inputs
change.  Results are pickled under ``.repro_cache/<k[:2]>/<key>.pkl``
(override the root with ``$REPRO_CACHE_DIR`` or ``repro --cache-dir``).

Keys are versioned: :data:`CACHE_VERSION` is folded into every key, so
bumping it after a semantics-affecting change to any executor invalidates
the whole cache without touching the disk layout.  ``repro cache stats``
and ``repro cache clear`` manage the store from the command line.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from ..workloads.trace import ParallelWorkload

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "stable_key",
    "workload_fingerprint",
]

#: Bump whenever an executor's semantics change so old entries can't leak
#: stale results into new tables.  v2: CellOutcome gained metrics /
#: trace_events observability fields.
CACHE_VERSION = 2


def workload_fingerprint(workload: ParallelWorkload) -> str:
    """SHA-256 over the workload's request *content* (sequences only).

    The name and free-form ``meta`` are deliberately excluded: two
    workloads with identical sequences produce identical runs, whatever
    they are called.

    Store-backed workloads (:class:`repro.traces.StoredWorkload`) carry a
    precomputed ``content_digest`` computed with this exact framing at
    import time; it is trusted here so fingerprinting a memory-mapped
    terabyte trace costs nothing — and so store-backed and in-memory
    copies of the same trace share cache keys by construction.
    """
    digest = getattr(workload, "content_digest", None)
    if digest:
        return str(digest)
    h = hashlib.sha256(b"repro-workload-v1")
    h.update(str(workload.p).encode())
    for seq in workload.sequences:
        arr = np.ascontiguousarray(seq, dtype=np.int64)
        h.update(str(len(arr)).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def _update(h: "hashlib._Hash", obj: Any) -> None:
    """Feed one canonically-encoded value into the hash (recursive)."""
    if obj is None:
        h.update(b"\x00N")
    elif isinstance(obj, bool):
        h.update(b"\x00B" + (b"1" if obj else b"0"))
    elif isinstance(obj, int):
        h.update(b"\x00I" + str(obj).encode())
    elif isinstance(obj, float):
        h.update(b"\x00F" + repr(obj).encode())
    elif isinstance(obj, str):
        h.update(b"\x00S" + obj.encode())
    elif isinstance(obj, bytes):
        h.update(b"\x00Y" + obj)
    elif isinstance(obj, np.integer):
        h.update(b"\x00I" + str(int(obj)).encode())
    elif isinstance(obj, np.floating):
        h.update(b"\x00F" + repr(float(obj)).encode())
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"\x00A" + arr.dtype.str.encode() + str(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(obj, ParallelWorkload):
        h.update(b"\x00W" + workload_fingerprint(obj).encode())
    elif isinstance(obj, (tuple, list)):
        h.update(b"\x00L" + str(len(obj)).encode())
        for item in obj:
            _update(h, item)
    elif isinstance(obj, Mapping):
        items = sorted(obj.items())
        h.update(b"\x00D" + str(len(items)).encode())
        for key, value in items:
            _update(h, key)
            _update(h, value)
    else:
        raise TypeError(
            f"cannot canonically hash {type(obj).__name__}; "
            "work-unit params must be scalars, strings, arrays, workloads, or nests thereof"
        )


def stable_key(kind: str, params: Mapping[str, Any]) -> str:
    """Content-addressed cache key for a work unit (hex SHA-256)."""
    h = hashlib.sha256(b"repro-unit")
    _update(h, CACHE_VERSION)
    _update(h, kind)
    _update(h, params)
    return h.hexdigest()


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` if set, else ``./.repro_cache``."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


@dataclass(frozen=True)
class CacheStats:
    """On-disk shape of a cache: entry count, payload bytes, quarantines."""

    entries: int
    size_bytes: int
    root: str
    quarantined: int = 0

    def render(self) -> str:
        """One-line human-readable form for the CLI."""
        mib = self.size_bytes / (1 << 20)
        line = f"cache at {self.root}: {self.entries} entries, {mib:.2f} MiB"
        if self.quarantined:
            line += f", {self.quarantined} quarantined"
        return line


class ResultCache:
    """Pickle-backed content-addressed store for work-unit outcomes.

    Writes are atomic (temp file + ``os.replace``), so a crashed or
    parallel run never leaves a truncated entry behind.  A corrupt,
    truncated, or unpicklable entry is **never** an error: ``load``
    quarantines the bad file (renamed to ``*.pkl.bad`` for post-mortems)
    and reports a miss, so the cell is simply recomputed.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        #: Corrupt entries this instance has quarantined (see also
        #: :meth:`stats`, which counts ``*.bad`` files on disk).
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside as ``*.pkl.bad`` (best-effort)."""
        try:
            os.replace(path, path.with_name(path.name + ".bad"))
            self.quarantined += 1
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def load(self, key: str) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                return True, pickle.load(fh)
        except FileNotFoundError:
            return False, None
        except Exception:
            # corrupt/truncated/unpicklable entry: quarantine and recompute
            self._quarantine(path)
            return False, None

    def store(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self.root.glob("*/*.pkl.bad"):
            try:
                path.unlink()
            except OSError:
                pass
        for sub in self.root.glob("*"):
            if sub.is_dir():
                try:
                    sub.rmdir()
                except OSError:
                    pass
        return removed

    def stats(self) -> CacheStats:
        """Walk the store: entry count, payload size, quarantined files."""
        entries = 0
        size = 0
        quarantined = 0
        if self.root.exists():
            for path in self.root.glob("*/*.pkl"):
                entries += 1
                try:
                    size += path.stat().st_size
                except OSError:
                    pass
            quarantined = sum(1 for _ in self.root.glob("*/*.pkl.bad"))
        return CacheStats(entries=entries, size_bytes=size, root=str(self.root), quarantined=quarantined)
