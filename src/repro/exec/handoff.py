"""Zero-copy handoff of work-unit payloads to pool workers.

Pickling a :class:`~repro.exec.units.WorkUnit` ships its full parameter
mapping through the pool pipe — including multi-million-row request
arrays — so per-worker startup cost and resident memory scale with trace
length.  This module removes the arrays from the pickle path:

* **Workloads spill to the trace store.**  An in-memory
  :class:`~repro.workloads.ParallelWorkload` above a row threshold is
  written (once, digest-named) to a spooled ``.trc`` via
  :func:`repro.traces.store.spill_workload`; the resulting
  :class:`~repro.traces.store.StoredWorkload` pickles as its *path* and
  workers re-open the ``np.memmap`` — the OS shares one page cache
  across every worker.
* **Request arrays ride shared memory.**  A large ``seq`` parameter is
  copied once into a :mod:`multiprocessing.shared_memory` segment and
  replaced by a tiny :class:`ShmArray` handle; workers rebuild a plain
  ndarray view over the same physical pages.
* **Kernel precomputes ship, not recompute.**  When the parent already
  holds the :class:`~repro.paging.kernel.SequenceKernel` for a shared
  sequence — or the same sequence feeds several pending units — its
  ``prev_occ``/``reuse_dist`` arrays travel as two more shared-memory
  segments and are seeded into the worker's kernel cache
  (:func:`repro.paging.kernel.seed_kernel`), so no worker repeats the
  O(n log n) sweep.

Cache keys are untouched by all of this: the engine computes them from
the *original* units before handoff, and a spilled workload fingerprints
to the same content digest as its in-memory twin by construction.

The parent-side :class:`HandoffManager` owns every segment and spill
file and releases them in :meth:`HandoffManager.close` after the pool
has drained.  Workers attach segments through a per-process cache that
is deliberately never closed (segments die with the worker) and with the
:mod:`multiprocessing.resource_tracker` registration suppressed — the
parent is the single owner, and a second registration under the fork
start method would make the tracker complain about a double unlink at
exit.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import metrics as obs_metrics
from ..workloads.trace import ParallelWorkload
from .units import CellOutcome, WorkUnit, execute_unit

__all__ = [
    "ShmArray",
    "PreparedTask",
    "HandoffManager",
    "execute_prepared",
    "SPILL_ROWS_ENV",
    "SHM_ROWS_ENV",
    "DEFAULT_SPILL_ROWS",
    "DEFAULT_SHM_ROWS",
]

#: Environment overrides for the handoff thresholds (rows, i.e. int64
#: elements).  ``0`` disables the respective transform.
SPILL_ROWS_ENV = "REPRO_HANDOFF_SPILL_ROWS"
SHM_ROWS_ENV = "REPRO_HANDOFF_SHM_ROWS"
#: Spill workloads >= 64 Ki rows (512 KiB of requests) to a ``.trc``.
DEFAULT_SPILL_ROWS = 1 << 16
#: Share sequences >= 16 Ki rows (128 KiB) over shared memory.
DEFAULT_SHM_ROWS = 1 << 14


@dataclass(frozen=True)
class ShmArray:
    """Pickle-sized handle to an int64 array living in shared memory."""

    name: str
    length: int


@dataclass(frozen=True)
class PreparedTask:
    """A work unit whose heavy payloads were replaced by handles.

    Drop-in for :class:`WorkUnit` on the pool-submission path (same
    ``kind``/``label`` surface for telemetry); executed by
    :func:`execute_prepared`, which rebuilds the parameter mapping on the
    worker side.  ``seed`` optionally carries the sequence's
    ``(prev_occ, reuse_dist)`` kernel precomputes.
    """

    kind: str
    params: Mapping[str, Any]
    label: str = ""
    seed: Optional[Tuple[ShmArray, ShmArray]] = None


def _threshold(env: str, default: int) -> int:
    raw = os.environ.get(env)
    if raw is None or not raw.strip():
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        return default


class HandoffManager:
    """Parent-side owner of spill files and shared-memory segments.

    Lifecycle: ``prepare_batch`` before submitting to the pool,
    ``close`` after the pool has shut down.  Every transform is
    best-effort — anything that cannot be spilled or shared simply rides
    the ordinary pickle path, byte-identical results either way.
    """

    def __init__(
        self,
        spill_rows: Optional[int] = None,
        shm_rows: Optional[int] = None,
        spill_dir: Optional[os.PathLike] = None,
    ) -> None:
        self.spill_rows = (
            _threshold(SPILL_ROWS_ENV, DEFAULT_SPILL_ROWS) if spill_rows is None else int(spill_rows)
        )
        self.shm_rows = (
            _threshold(SHM_ROWS_ENV, DEFAULT_SHM_ROWS) if shm_rows is None else int(shm_rows)
        )
        self._spill_dir: Optional[str] = os.fspath(spill_dir) if spill_dir is not None else None
        self._own_spill_dir = spill_dir is None
        self._segments: List[Any] = []
        # id-keyed dedup so one array shared by many units costs one
        # segment; the kept reference pins the id against reuse
        self._by_id: Dict[int, Tuple[ShmArray, np.ndarray]] = {}
        self._spilled: Dict[int, Any] = {}
        self._shm_broken = False

    # ------------------------------------------------------------------ #
    # parent-side transforms
    # ------------------------------------------------------------------ #
    def _dir(self) -> str:
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-handoff-")
        return self._spill_dir

    def _spill(self, workload: ParallelWorkload) -> Optional[Any]:
        cached = self._spilled.get(id(workload))
        if cached is not None:
            return cached
        from ..traces.store import spill_workload

        try:
            stored = spill_workload(workload, self._dir())
        except (ValueError, OSError):
            return None
        self._spilled[id(workload)] = stored
        obs_metrics.counter("exec.handoff.spilled").inc()
        return stored

    def _share(self, arr: np.ndarray) -> Optional[ShmArray]:
        entry = self._by_id.get(id(arr))
        if entry is not None:
            return entry[0]
        if self._shm_broken:
            return None
        try:
            from multiprocessing import shared_memory

            src = np.ascontiguousarray(arr, dtype=np.int64)
            shm = shared_memory.SharedMemory(create=True, size=max(1, src.nbytes))
        except (ImportError, OSError):
            self._shm_broken = True
            return None
        view = np.frombuffer(shm.buf, dtype=np.int64, count=len(src))
        view[:] = src
        self._segments.append(shm)
        handle = ShmArray(name=shm.name, length=len(src))
        self._by_id[id(arr)] = (handle, arr)
        obs_metrics.counter("exec.handoff.shm_segments").inc()
        return handle

    def prepare(self, unit: WorkUnit, *, seed_kernel: bool = False) -> Union[WorkUnit, PreparedTask]:
        """Replace heavy payloads of one unit with zero-copy handles.

        Returns the unit unchanged when nothing crossed a threshold.
        With ``seed_kernel=True`` the sequence's kernel precomputes are
        shipped too (the caller decides when that pays — see
        :meth:`prepare_batch`).
        """
        params = dict(unit.params)
        changed = False
        seed: Optional[Tuple[ShmArray, ShmArray]] = None

        wl = params.get("workload")
        if (
            self.spill_rows
            and type(wl) is ParallelWorkload
            and wl.total_requests >= self.spill_rows
        ):
            stored = self._spill(wl)
            if stored is not None:
                params["workload"] = stored
                changed = True

        seq = params.get("seq")
        if (
            self.shm_rows
            and isinstance(seq, np.ndarray)
            and seq.ndim == 1
            and len(seq) >= self.shm_rows
        ):
            handle = self._share(seq)
            if handle is not None:
                params["seq"] = handle
                changed = True
                if seed_kernel:
                    seed = self._seed_for(seq)
        if not changed:
            return unit
        return PreparedTask(kind=unit.kind, params=params, label=unit.label, seed=seed)

    def _seed_for(self, seq: np.ndarray) -> Optional[Tuple[ShmArray, ShmArray]]:
        from ..paging.kernel import get_kernel, kernel_backend

        if kernel_backend() == "reference":
            return None
        kern = get_kernel(seq)
        prev = self._share(kern.prev_occ)
        reuse = self._share(kern.reuse_dist)
        if prev is None or reuse is None:
            return None
        obs_metrics.counter("exec.handoff.seeded").inc()
        return (prev, reuse)

    def prepare_batch(
        self, units: Sequence[WorkUnit], indices: Sequence[int]
    ) -> List[Union[WorkUnit, PreparedTask, None]]:
        """Prepare the pending units of a batch (aligned with ``units``).

        Kernel precomputes are shipped only when they are already paid
        for or clearly amortize: the parent holds a cached kernel for the
        sequence, or the same array object feeds at least two pending
        units (one parent-side sweep replaces N worker-side ones).
        """
        from ..paging.kernel import peek_kernel

        counts: Dict[int, int] = {}
        for i in indices:
            seq = units[i].params.get("seq")
            if isinstance(seq, np.ndarray):
                counts[id(seq)] = counts.get(id(seq), 0) + 1
        out: List[Union[WorkUnit, PreparedTask, None]] = [None] * len(units)
        for i in indices:
            seq = units[i].params.get("seq")
            seed = isinstance(seq, np.ndarray) and (
                counts.get(id(seq), 0) >= 2 or peek_kernel(seq) is not None
            )
            out[i] = self.prepare(units[i], seed_kernel=seed)
        return out

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release every owned segment and spill file (idempotent).

        Call only after the pool has drained: workers hold views into the
        segments while executing.
        """
        for shm in self._segments:
            try:
                shm.close()
            except (OSError, BufferError):
                pass
            try:
                shm.unlink()
            except (OSError, FileNotFoundError):
                pass
        self._segments.clear()
        self._by_id.clear()
        self._spilled.clear()
        if self._own_spill_dir and self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None

    def __enter__(self) -> "HandoffManager":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
#: name -> attached SharedMemory, kept for the worker's whole life: the
#: ndarray views handed to executors borrow the segment's buffer, and the
#: parent (not the worker) owns unlinking.
_ATTACHED: Dict[str, Any] = {}
#: name -> materialized ndarray, so repeated units over one sequence hand
#: executors the *same* array object (id-keyed kernel caching stays warm).
_ARRAYS: Dict[str, np.ndarray] = {}


def _attach(name: str):
    shm = _ATTACHED.get(name)
    if shm is None:
        from multiprocessing import resource_tracker, shared_memory

        # Suppress registration: the parent owns the segment.  Without
        # this, fork workers double-register and the resource tracker
        # logs spurious KeyErrors when parent and child both unlink.
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None  # type: ignore[assignment]
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original  # type: ignore[assignment]
        # The ndarray views handed out below outlive any point where this
        # segment could safely close, and interpreter teardown would
        # otherwise spray BufferError from SharedMemory.__del__.  The
        # mapping dies with the process either way; the parent unlinks.
        shm.close = lambda: None  # type: ignore[method-assign]
        _ATTACHED[name] = shm
    return shm


def _materialize(handle: ShmArray) -> np.ndarray:
    arr = _ARRAYS.get(handle.name)
    if arr is None:
        shm = _attach(handle.name)
        arr = np.frombuffer(shm.buf, dtype=np.int64, count=handle.length)
        _ARRAYS[handle.name] = arr
    return arr


def execute_prepared(task: PreparedTask) -> CellOutcome:
    """Worker entry point for :class:`PreparedTask` (mirrors
    :func:`~repro.exec.units.execute_unit`)."""
    params = dict(task.params)
    for key, value in params.items():
        if isinstance(value, ShmArray):
            params[key] = _materialize(value)
    if task.seed is not None:
        from ..paging.kernel import kernel_backend, seed_kernel

        if kernel_backend() != "reference":
            seed_kernel(
                params["seq"],
                _materialize(task.seed[0]),
                _materialize(task.seed[1]),
            )
    return execute_unit(WorkUnit(kind=task.kind, params=params, label=task.label))
