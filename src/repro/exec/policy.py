"""Per-unit execution policy: timeouts, bounded retries, graceful failure.

A :class:`ExecutionPolicy` describes how the engine treats one work unit
that misbehaves — how long it may run (``timeout_s``), how many times it
is retried (``retries``, with exponential backoff and deterministic
jitter), and what happens when every attempt fails: ``keep_going=True``
turns the unit into a typed :class:`FailedCell` outcome that flows
through telemetry and reports, ``keep_going=False`` (the default)
raises :class:`UnitExecutionError` and aborts the batch.

The serial execution path lives here too (:func:`run_unit_with_policy`),
so the in-process and process-pool engines share identical failure
semantics — the chaos tests in ``tests/exec/test_faults.py`` assert that
parity.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Union

from .units import CellOutcome, WorkUnit, execute_unit

__all__ = [
    "ExecutionPolicy",
    "FailedCell",
    "UnitTimeoutError",
    "UnitExecutionError",
    "call_with_timeout",
    "run_unit_with_policy",
]


class UnitTimeoutError(TimeoutError):
    """A work unit exceeded its per-attempt wall-clock budget."""


class UnitExecutionError(RuntimeError):
    """A work unit failed every attempt under a fail-fast policy."""

    def __init__(self, unit: WorkUnit, attempts: int, cause: Optional[BaseException]) -> None:
        self.unit = unit
        self.attempts = attempts
        name = unit.label or unit.kind
        super().__init__(
            f"work unit {name!r} failed after {attempts} attempt(s): {cause!r}"
        )


@dataclass(frozen=True)
class FailedCell:
    """Typed outcome of a unit that exhausted its retries under ``--keep-going``.

    Flows through the engine in place of the unit's value: telemetry
    records it with ``failed=True``, the harness counts it per row, and
    reports render the affected cells as ``FAIL`` instead of crashing
    the run.
    """

    kind: str
    label: str
    key: str
    error: str
    error_type: str
    attempts: int
    elapsed_s: float


@dataclass(frozen=True)
class ExecutionPolicy:
    """How the engine treats a misbehaving work unit.

    Parameters
    ----------
    timeout_s:
        Per-attempt wall-clock budget; ``None`` (default) means no limit.
        Serial execution guards attempts with a daemon worker thread; the
        pool engine tears down and rebuilds the pool so a hung worker
        cannot wedge the batch.
    retries:
        Extra attempts after the first failure (so a unit runs at most
        ``retries + 1`` times).
    backoff_s / backoff_multiplier:
        Delay before retry ``i`` is ``backoff_s * multiplier**(i-1)``,
        stretched by up to ``jitter`` (fractional, deterministic per unit
        key) to de-synchronize retry storms without breaking
        reproducibility.
    keep_going:
        After the last attempt fails: yield a :class:`FailedCell`
        (``True``) or raise :class:`UnitExecutionError` (``False``).
    """

    timeout_s: Optional[float] = None
    retries: int = 0
    backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    jitter: float = 0.1
    keep_going: bool = False

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive or None, got {self.timeout_s}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def backoff_delay(self, token: str, attempt: int) -> float:
        """Delay before re-running ``token`` after failed attempt ``attempt``.

        The jitter is drawn from a generator seeded on ``(token, attempt)``,
        so a rerun of the same batch backs off identically.
        """
        base = self.backoff_s * self.backoff_multiplier ** max(0, attempt - 1)
        if self.jitter == 0.0:
            return base
        u = random.Random(f"{token}:{attempt}").random()
        return base * (1.0 + self.jitter * u)


def call_with_timeout(fn: Callable[..., Any], args: Tuple[Any, ...], timeout_s: Optional[float]) -> Any:
    """Run ``fn(*args)``, raising :class:`UnitTimeoutError` after ``timeout_s``.

    Used by the serial path: the call runs on a daemon thread, and on
    timeout the thread is abandoned (it cannot be killed) while the
    caller moves on to retry or fail the unit.
    """
    if timeout_s is None:
        return fn(*args)
    box: list = []

    def target() -> None:
        try:
            box.append(("ok", fn(*args)))
        except BaseException as exc:  # noqa: BLE001 — re-raised on the caller thread
            box.append(("err", exc))

    thread = threading.Thread(target=target, daemon=True, name="repro-unit-attempt")
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise UnitTimeoutError(f"attempt exceeded timeout of {timeout_s}s")
    status, payload = box[0]
    if status == "err":
        raise payload
    return payload


def run_unit_with_policy(
    unit: WorkUnit, policy: ExecutionPolicy, key: str = ""
) -> Tuple[Union[CellOutcome, FailedCell], int]:
    """Serially execute one unit under ``policy``; returns ``(outcome, attempts)``.

    Retries transient failures with backoff; ``KeyboardInterrupt`` and
    ``SystemExit`` always propagate (an interrupt must stop the run, not
    burn a retry).
    """
    t0 = time.perf_counter()
    last: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return call_with_timeout(execute_unit, (unit,), policy.timeout_s), attempt
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            last = exc
            if attempt <= policy.retries:
                time.sleep(policy.backoff_delay(key or unit.label or unit.kind, attempt))
    if policy.keep_going:
        return (
            FailedCell(
                kind=unit.kind,
                label=unit.label,
                key=key,
                error=repr(last),
                error_type=type(last).__name__,
                attempts=policy.max_attempts,
                elapsed_s=time.perf_counter() - t0,
            ),
            policy.max_attempts,
        )
    raise UnitExecutionError(unit, policy.max_attempts, last) from last
