"""Structured run telemetry: per-cell timing, cache hits, simulated steps.

Every work unit the execution engine touches produces one
:class:`CellRecord`; a :class:`Telemetry` collector aggregates them and
can render a one-line summary (appended to experiment reports) or dump
the raw records as JSON lines for downstream tooling
(``repro ... --telemetry runs.jsonl``).

A process-wide collector (:data:`TELEMETRY`) is the default sink, so the
CLI can report per-experiment deltas without threading a collector
through every experiment function.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

__all__ = ["CellRecord", "Telemetry", "TELEMETRY"]


@dataclass(frozen=True)
class CellRecord:
    """Telemetry for one executed (or cache-served) work unit.

    ``duration_s`` is the wall time this run spent on the cell — the
    cache lookup time on a hit, the compute time on a miss.
    ``sim_steps`` is the number of simulated requests the cell covers
    (counted whether it was computed or served from cache).
    ``attempts`` counts executions including retries (1 = first try
    succeeded); ``failed`` marks a cell that exhausted its retries under
    a keep-going policy, with ``error`` holding the final exception repr.
    """

    kind: str
    label: str
    key: str
    cached: bool
    duration_s: float
    sim_steps: int
    failed: bool = False
    attempts: int = 1
    error: str = ""

    def to_json(self) -> str:
        """One JSON line (no trailing newline)."""
        return json.dumps(asdict(self), sort_keys=True)


class Telemetry:
    """Append-only collector of :class:`CellRecord` with aggregation."""

    def __init__(self) -> None:
        self.records: List[CellRecord] = []

    def record(self, rec: CellRecord) -> None:
        """Append one cell record."""
        self.records.append(rec)

    def clear(self) -> None:
        """Drop all records (start of a fresh measurement window)."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def summary(self, since: int = 0) -> Dict[str, object]:
        """Aggregate the records from index ``since`` onward.

        Returns cells, cache hit/miss counts, hit rate, total simulated
        steps, and total compute seconds — the quantities the acceptance
        telemetry line reports.
        """
        recs = self.records[since:]
        hits = sum(1 for r in recs if r.cached)
        misses = len(recs) - hits
        failed = sum(1 for r in recs if r.failed)
        return {
            "cells": len(recs),
            "cache_hits": hits,
            "cache_misses": misses,
            "hit_rate": (hits / len(recs)) if recs else 0.0,
            "sim_steps": sum(r.sim_steps for r in recs),
            "compute_s": round(sum(r.duration_s for r in recs), 3),
            "failed": failed,
            "retried": sum(1 for r in recs if r.attempts > 1),
        }

    def failures(self, since: int = 0) -> List[CellRecord]:
        """The failed-cell records from index ``since`` onward."""
        return [r for r in self.records[since:] if r.failed]

    def render(self, since: int = 0) -> str:
        """One-line summary for reports and the CLI."""
        s = self.summary(since)
        line = (
            f"[telemetry] cells={s['cells']} cache_hits={s['cache_hits']} "
            f"cache_misses={s['cache_misses']} hit_rate={s['hit_rate']:.0%} "
            f"sim_steps={s['sim_steps']} compute={s['compute_s']:.2f}s"
        )
        if s["failed"] or s["retried"]:
            line += f" failed={s['failed']} retried={s['retried']}"
        return line

    def write_jsonl(self, path: "str | Path", since: int = 0, append: bool = True) -> None:
        """Write records from index ``since`` as JSON lines."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if append else "w"
        with path.open(mode) as fh:
            for rec in self.records[since:]:
                fh.write(rec.to_json() + "\n")


#: Process-wide default collector (the engine's default sink).
TELEMETRY = Telemetry()
