"""Work units: the embarrassingly-parallel cells every experiment is made of.

A :class:`WorkUnit` is one self-contained, deterministic computation —
one ``(algorithm, workload, seed)`` simulation, one lower-bound DP, one
green-paging replicate — identified by a *kind* plus a flat parameter
mapping.  Units are picklable (they carry numpy arrays and workloads, no
closures), so the engine can ship them to worker processes, and their
parameters canonically hash into content-addressed cache keys
(:func:`repro.exec.cache.stable_key`).

Each kind maps to a module-level executor in :data:`UNIT_EXECUTORS`;
randomness is reconstructed inside the executor from explicit seed
material, so a unit computes the identical value in-process, in a forked
worker, or on a different machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..obs.metrics import MetricsRegistry
from ..obs.runtime import capture_requested
from ..obs.tracing import Tracer
from .cache import stable_key
from .faults import maybe_inject

__all__ = ["WorkUnit", "CellOutcome", "UNIT_EXECUTORS", "execute_unit"]


@dataclass(frozen=True)
class WorkUnit:
    """One cacheable cell of an experiment.

    Attributes
    ----------
    kind:
        Executor name (a key of :data:`UNIT_EXECUTORS`).
    params:
        Flat mapping of everything the executor needs; must be canonical
        for hashing (scalars, strings, arrays, workloads, nests thereof).
    label:
        Human-readable identity for telemetry (not part of the key).
    """

    kind: str
    params: Mapping[str, Any]
    label: str = ""

    def key(self) -> str:
        """Content-addressed cache key (includes the cache version)."""
        return stable_key(self.kind, self.params)


@dataclass(frozen=True)
class CellOutcome:
    """Executor product: the value plus its telemetry facts.

    ``duration_s`` records the *original* compute time, so a cache hit
    can still report how much work it avoided.

    ``metrics`` and ``trace_events`` are the observability deltas
    captured while the unit executed (``None``/empty when obs was off):
    a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict and a
    tuple of Chrome-trace events.  They travel *inside* the outcome —
    through pickling to pool workers and through the result cache — so
    the parent engine can merge identical metrics whether the cell was
    computed serially, on a worker, or served from cache.
    """

    value: Any
    sim_steps: int
    duration_s: float
    metrics: Optional[Mapping[str, Any]] = None
    trace_events: Tuple[Mapping[str, Any], ...] = ()


def _run_parallel(params: Mapping[str, Any]) -> CellOutcome:
    """Simulate one registered parallel-paging algorithm on a workload.

    Returns a lower-bound-free :class:`~repro.parallel.metrics.RunSummary`
    (ratios are attached by the harness, so one cached run is reusable
    under any lower-bound configuration).
    """
    from ..parallel.metrics import summarize
    from ..parallel.schedulers import RunSpec, make_algorithm

    workload = params["workload"]
    spec = RunSpec(
        algorithm=params["algorithm"],
        cache_size=int(params["cache_size"]),
        miss_cost=int(params["miss_cost"]),
        seed=int(params["seed"]),
    )
    t0 = time.perf_counter()
    result = make_algorithm(spec).run(workload)
    summary = summarize(result)
    return CellOutcome(
        value=summary,
        sim_steps=workload.total_requests,
        duration_s=time.perf_counter() - t0,
    )


def _makespan_lb(params: Mapping[str, Any]) -> CellOutcome:
    """Compute the certified makespan lower bound for a workload."""
    from ..parallel.opt import makespan_lower_bound

    workload = params["workload"]
    t0 = time.perf_counter()
    lb = makespan_lower_bound(
        workload,
        int(params["k"]),
        int(params["miss_cost"]),
        include_impact=bool(params["include_impact"]),
    )
    return CellOutcome(
        value=lb, sim_steps=workload.total_requests, duration_s=time.perf_counter() - t0
    )


def _mean_lb(params: Mapping[str, Any]) -> CellOutcome:
    """Compute the mean-completion-time lower bound for a workload."""
    from ..parallel.opt import mean_completion_lower_bound

    workload = params["workload"]
    t0 = time.perf_counter()
    value = mean_completion_lower_bound(workload, int(params["k"]), int(params["miss_cost"]))
    return CellOutcome(
        value=value, sim_steps=workload.total_requests, duration_s=time.perf_counter() - t0
    )


def _green_rng(params: Mapping[str, Any]) -> np.random.Generator:
    """Rebuild the exact generator an experiment would have constructed."""
    return np.random.default_rng(
        np.random.SeedSequence(
            entropy=int(params["entropy"]), spawn_key=tuple(int(x) for x in params["spawn_key"])
        )
    )


def _rand_green(params: Mapping[str, Any]) -> CellOutcome:
    """One RAND-GREEN replicate: impact of servicing ``seq`` online."""
    from ..core.box import HeightLattice
    from ..core.rand_green import RandGreen

    seq = np.ascontiguousarray(params["seq"], dtype=np.int64)
    lattice = HeightLattice(int(params["k"]), int(params["p"]))
    t0 = time.perf_counter()
    alg = RandGreen(
        lattice,
        int(params["miss_cost"]),
        _green_rng(params),
        kind=params.get("dist", "inverse_square"),
    )
    impact = float(alg.run(seq).impact)
    return CellOutcome(value=impact, sim_steps=len(seq), duration_s=time.perf_counter() - t0)


def _det_green(params: Mapping[str, Any]) -> CellOutcome:
    """DET-GREEN on ``seq``: deterministic green-paging impact."""
    from ..core.box import HeightLattice
    from ..core.det_green import DetGreen

    seq = np.ascontiguousarray(params["seq"], dtype=np.int64)
    lattice = HeightLattice(int(params["k"]), int(params["p"]))
    t0 = time.perf_counter()
    impact = float(DetGreen(lattice, int(params["miss_cost"])).run(seq).impact)
    return CellOutcome(value=impact, sim_steps=len(seq), duration_s=time.perf_counter() - t0)


def _adversary_eval(params: Mapping[str, Any]) -> CellOutcome:
    """Score one adversary-search candidate under one algorithm.

    The workload is rebuilt deterministically from scalar parameters
    inside the executor, so the unit's cache key stays tiny and a hunt
    resumes from the result cache without re-simulating anything.
    """
    from ..search.scorers import evaluate_adversary_params

    t0 = time.perf_counter()
    result = evaluate_adversary_params(params)
    steps = int(result["requests"]) * len(result["per_seed"])
    return CellOutcome(value=result, sim_steps=steps, duration_s=time.perf_counter() - t0)


def _green_opt(params: Mapping[str, Any]) -> CellOutcome:
    """Offline-optimal box-profile impact for ``seq`` (the E1/E8/E9 OPT)."""
    from ..core.box import HeightLattice
    from ..green.offline import optimal_box_profile

    seq = np.ascontiguousarray(params["seq"], dtype=np.int64)
    lattice = HeightLattice(int(params["k"]), int(params["p"]))
    t0 = time.perf_counter()
    impact = float(optimal_box_profile(seq, lattice, int(params["miss_cost"])).impact)
    return CellOutcome(value=impact, sim_steps=len(seq), duration_s=time.perf_counter() - t0)


#: kind -> executor.  Module-level functions only: workers resolve them by
#: qualified name, so anything here runs identically under fork or spawn.
UNIT_EXECUTORS: Dict[str, Callable[[Mapping[str, Any]], CellOutcome]] = {
    "parallel-run": _run_parallel,
    "makespan-lb": _makespan_lb,
    "mean-lb": _mean_lb,
    "rand-green": _rand_green,
    "det-green": _det_green,
    "green-opt": _green_opt,
    "adversary-eval": _adversary_eval,
}


def execute_unit(unit: WorkUnit) -> CellOutcome:
    """Run one unit to completion (the worker-process entry point).

    Honors any fault declared via :mod:`repro.exec.faults` (a single env
    lookup when none are configured), so chaos tests can crash, hang, or
    kill exactly this execution — in-process or in a pool worker.

    When observability is on (ambient scope or the ``REPRO_OBS_*``
    environment flags a pool worker inherits), the unit runs under a
    fresh registry/tracer and its deltas are attached to the outcome —
    the same code path serially and pooled, so an attempt that fails and
    retries contributes its metrics exactly once (only the successful
    attempt's outcome survives).
    """
    try:
        executor = UNIT_EXECUTORS[unit.kind]
    except KeyError:
        known = ", ".join(sorted(UNIT_EXECUTORS))
        raise KeyError(f"unknown work-unit kind {unit.kind!r}; known: {known}") from None
    maybe_inject(unit)
    want_metrics, want_trace = capture_requested()
    if not (want_metrics or want_trace):
        return executor(unit.params)
    registry = MetricsRegistry(enabled=want_metrics)
    tracer = Tracer(enabled=want_trace)
    with obs_metrics.collecting(registry), obs_tracing.collecting(tracer):
        with obs_tracing.span(f"unit:{unit.kind}", kind=unit.kind, label=unit.label):
            outcome = executor(unit.params)
    return replace(
        outcome,
        metrics=None if registry.is_empty() else registry.snapshot(),
        trace_events=tuple(tracer.events),
    )
