"""Checkpoint/resume: run manifests and completed-unit journals.

Every CLI experiment run owns a directory under ``.repro_runs/<run-id>/``
(override with ``--runs-dir`` or ``$REPRO_RUNS_DIR``) holding:

``manifest.json``
    The run's identity and configuration — experiment names, scale, seed,
    jobs, cache settings, execution-policy knobs — plus its status
    (``running`` / ``interrupted`` / ``complete``) and the list of
    experiments already finished.  Written atomically on every change.
``units.jsonl``
    An append-only journal of completed work-unit keys, written by the
    engine as each cell finishes.  Together with the content-addressed
    result cache this is what makes ``repro resume <run-id>`` cheap: the
    journal proves which cells finished, the cache holds their values.

A SIGINT/SIGTERM mid-run marks the manifest ``interrupted``; ``repro
resume <run-id>`` reloads the config, skips completed experiments, and
recomputes only the cells the cache does not already hold.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set

__all__ = [
    "MANIFEST_VERSION",
    "RunManifest",
    "RunCheckpoint",
    "default_runs_dir",
    "new_run_id",
    "list_runs",
]

#: Bump when the manifest layout changes incompatibly.
MANIFEST_VERSION = 1


def default_runs_dir() -> Path:
    """Run-state root: ``$REPRO_RUNS_DIR`` if set, else ``./.repro_runs``."""
    return Path(os.environ.get("REPRO_RUNS_DIR", ".repro_runs"))


def new_run_id(prefix: str = "run") -> str:
    """A fresh, filesystem-safe run id (timestamp + random suffix)."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{prefix}-{stamp}-{uuid.uuid4().hex[:6]}"


@dataclass
class RunManifest:
    """Everything needed to restart a run exactly as it was configured."""

    run_id: str
    names: List[str]
    config: Dict[str, Any]
    status: str = "running"
    completed: List[str] = field(default_factory=list)
    created: str = ""
    manifest_version: int = MANIFEST_VERSION

    def remaining(self) -> List[str]:
        """Experiment names not yet marked complete, in original order."""
        done = set(self.completed)
        return [name for name in self.names if name not in done]


class RunCheckpoint:
    """Disk-backed handle on one run's manifest and unit journal."""

    def __init__(self, root: Path, manifest: RunManifest) -> None:
        self.root = Path(root)
        self.manifest = manifest

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    @property
    def run_dir(self) -> Path:
        return self.root / self.manifest.run_id

    @property
    def manifest_path(self) -> Path:
        return self.run_dir / "manifest.json"

    @property
    def journal_path(self) -> Path:
        return self.run_dir / "units.jsonl"

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @classmethod
    def start(
        cls,
        names: List[str],
        config: Dict[str, Any],
        root: Optional[os.PathLike] = None,
        run_id: Optional[str] = None,
    ) -> "RunCheckpoint":
        """Create and persist a fresh run manifest."""
        manifest = RunManifest(
            run_id=run_id or new_run_id(),
            names=list(names),
            config=dict(config),
            created=time.strftime("%Y-%m-%dT%H:%M:%S"),
        )
        ckpt = cls(Path(root) if root is not None else default_runs_dir(), manifest)
        ckpt.save()
        return ckpt

    @classmethod
    def load(cls, run_id: str, root: Optional[os.PathLike] = None) -> "RunCheckpoint":
        """Reopen an existing run; raises ``FileNotFoundError`` with the
        known run ids when ``run_id`` does not exist."""
        base = Path(root) if root is not None else default_runs_dir()
        path = base / run_id / "manifest.json"
        if not path.exists():
            known = ", ".join(list_runs(base)) or "(none)"
            raise FileNotFoundError(f"no run {run_id!r} under {base}; known runs: {known}")
        data = json.loads(path.read_text())
        data.pop("manifest_version_found", None)
        manifest = RunManifest(
            run_id=data["run_id"],
            names=list(data["names"]),
            config=dict(data["config"]),
            status=data.get("status", "running"),
            completed=list(data.get("completed", [])),
            created=data.get("created", ""),
            manifest_version=int(data.get("manifest_version", MANIFEST_VERSION)),
        )
        return cls(base, manifest)

    def save(self) -> None:
        """Atomically persist the manifest (temp file + ``os.replace``)."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.run_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(asdict(self.manifest), fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.manifest_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    # progress
    # ------------------------------------------------------------------ #
    def record_unit(self, key: str, kind: str = "", label: str = "") -> None:
        """Journal one completed work unit (append-only, flushed per line)."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        line = json.dumps({"key": key, "kind": kind, "label": label}, sort_keys=True)
        with self.journal_path.open("a") as fh:
            fh.write(line + "\n")

    def completed_units(self) -> Set[str]:
        """Keys of every unit the journal has recorded as finished."""
        keys: Set[str] = set()
        if not self.journal_path.exists():
            return keys
        for line in self.journal_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                keys.add(json.loads(line)["key"])
            except (json.JSONDecodeError, KeyError):
                continue  # torn final line from a crash: ignore
        return keys

    def mark_experiment(self, name: str) -> None:
        """Record one experiment as fully finished."""
        if name not in self.manifest.completed:
            self.manifest.completed.append(name)
        self.save()

    def mark_status(self, status: str) -> None:
        """Update the run's lifecycle status (running/interrupted/complete)."""
        self.manifest.status = status
        self.save()


def list_runs(root: Optional[os.PathLike] = None) -> List[str]:
    """Run ids under ``root`` with a readable manifest, oldest first."""
    base = Path(root) if root is not None else default_runs_dir()
    if not base.exists():
        return []
    runs = [p.parent for p in base.glob("*/manifest.json")]
    # name as tie-break: equal mtimes (coarse filesystems) stay stable
    runs.sort(key=lambda p: (p.stat().st_mtime, p.name))
    return [p.name for p in runs]
