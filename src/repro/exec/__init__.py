"""Execution engine: parallel, cache-aware, fault-tolerant cell runner.

The paper's claims are expectations over seeds and sweeps over ``p`` —
embarrassingly parallel — so every experiment decomposes into
:class:`~repro.exec.units.WorkUnit` cells that this package runs on a
process pool (``--jobs N``), memoizes in a content-addressed on-disk
cache (``.repro_cache/``), and accounts for in structured telemetry.

Layers:

* :mod:`~repro.exec.units` — the work-unit abstraction and executors
  (algorithm runs, lower bounds, green-paging replicates);
* :mod:`~repro.exec.cache` — versioned content-addressed result store
  with quarantine of corrupt entries;
* :mod:`~repro.exec.policy` — per-unit execution policy: timeouts,
  bounded retries with backoff, and typed :class:`FailedCell` outcomes;
* :mod:`~repro.exec.engine` — pool-backed engine with deterministic
  ordering, serial fallback, crash/hang recovery, and the ambient
  :func:`execution` scope;
* :mod:`~repro.exec.checkpoint` — run manifests and completed-unit
  journals behind ``repro resume <run-id>``;
* :mod:`~repro.exec.faults` — the fault-injection harness the chaos
  tests drive (crash / kill / hang / flaky / interrupt);
* :mod:`~repro.exec.telemetry` — per-cell records, JSONL export, and the
  one-line summaries appended to experiment reports.
"""

from .cache import CACHE_VERSION, CacheStats, ResultCache, default_cache_dir, stable_key, workload_fingerprint
from .checkpoint import RunCheckpoint, RunManifest, default_runs_dir, list_runs, new_run_id
from .engine import ExecutionEngine, current_engine, default_jobs, execution, use_engine
from .faults import FaultSpec, InjectedFault, active_faults, corrupt_cache_entry, inject_faults, maybe_inject
from .policy import ExecutionPolicy, FailedCell, UnitExecutionError, UnitTimeoutError, run_unit_with_policy
from .telemetry import TELEMETRY, CellRecord, Telemetry
from .units import UNIT_EXECUTORS, CellOutcome, WorkUnit, execute_unit

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "stable_key",
    "workload_fingerprint",
    "RunCheckpoint",
    "RunManifest",
    "default_runs_dir",
    "list_runs",
    "new_run_id",
    "ExecutionEngine",
    "current_engine",
    "default_jobs",
    "execution",
    "use_engine",
    "FaultSpec",
    "InjectedFault",
    "corrupt_cache_entry",
    "inject_faults",
    "ExecutionPolicy",
    "FailedCell",
    "UnitExecutionError",
    "UnitTimeoutError",
    "run_unit_with_policy",
    "TELEMETRY",
    "CellRecord",
    "Telemetry",
    "UNIT_EXECUTORS",
    "CellOutcome",
    "WorkUnit",
    "execute_unit",
]
