"""Execution engine: parallel, cache-aware experiment cell runner.

The paper's claims are expectations over seeds and sweeps over ``p`` —
embarrassingly parallel — so every experiment decomposes into
:class:`~repro.exec.units.WorkUnit` cells that this package runs on a
process pool (``--jobs N``), memoizes in a content-addressed on-disk
cache (``.repro_cache/``), and accounts for in structured telemetry.

Layers:

* :mod:`~repro.exec.units` — the work-unit abstraction and executors
  (algorithm runs, lower bounds, green-paging replicates);
* :mod:`~repro.exec.cache` — versioned content-addressed result store;
* :mod:`~repro.exec.engine` — pool-backed engine with deterministic
  ordering, serial fallback, and the ambient :func:`execution` scope;
* :mod:`~repro.exec.telemetry` — per-cell records, JSONL export, and the
  one-line summaries appended to experiment reports.
"""

from .cache import CACHE_VERSION, CacheStats, ResultCache, default_cache_dir, stable_key, workload_fingerprint
from .engine import ExecutionEngine, current_engine, default_jobs, execution
from .telemetry import TELEMETRY, CellRecord, Telemetry
from .units import UNIT_EXECUTORS, CellOutcome, WorkUnit, execute_unit

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "stable_key",
    "workload_fingerprint",
    "ExecutionEngine",
    "current_engine",
    "default_jobs",
    "execution",
    "TELEMETRY",
    "CellRecord",
    "Telemetry",
    "UNIT_EXECUTORS",
    "CellOutcome",
    "WorkUnit",
    "execute_unit",
]
