"""Gantt rendering of box schedules: see what the algorithm actually did.

A parallel-paging schedule is two-dimensional — which processor holds how
much cache when — and no table conveys it.  :func:`render_gantt` draws a
terminal timeline: one row per processor, time binned across the width,
each cell showing the (log₂ of the) tallest box height reserved for that
processor in that bin, with ``.`` for stalled/boxless stretches and a
trailing ``|`` at the processor's completion.

Reading DET-PAR's chart you can literally see Lemma 6: a carpet of base
boxes with periodic taller strip boxes sweeping round-robin across
processors, doubling in height as phases halve.

:func:`render_memory_profile` draws the total reserved height over time —
the capacity ledger as a skyline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..parallel.events import BoxRecord, ParallelRunResult, capacity_profile

__all__ = ["render_gantt", "render_memory_profile"]

_DIGITS = "0123456789abcdefghijklmnopqrstuvwxyz"


def render_gantt(
    result: ParallelRunResult,
    width: int = 72,
    procs: Optional[Sequence[int]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a box-trace timeline (one row per processor).

    Cell characters are ``log₂(height)`` digits (0 = height 1, 3 = height
    8, …); ``.`` marks time with no reserved box.  Completion is marked
    with ``|`` in the bin the processor finished.
    """
    if not result.trace:
        return "(no box trace to render)\n"
    horizon = max(result.makespan, max(r.end for r in result.trace))
    if horizon <= 0:
        return "(empty schedule)\n"
    chosen = list(procs) if procs is not None else list(range(result.p))
    bin_width = max(1, -(-horizon // width))
    n_bins = -(-horizon // bin_width)
    lines: List[str] = []
    if title:
        lines.append(title)
    label_w = len(str(max(chosen, default=0)))
    for i in chosen:
        levels = np.full(n_bins, -1, dtype=np.int64)
        for r in result.trace:
            if r.proc != i or r.duration == 0:
                continue
            lo = r.start // bin_width
            hi = min(n_bins - 1, (r.end - 1) // bin_width)
            level = int(r.height).bit_length() - 1
            levels[lo : hi + 1] = np.maximum(levels[lo : hi + 1], level)
        chars = ["." if lv < 0 else _DIGITS[min(lv, len(_DIGITS) - 1)] for lv in levels]
        done_bin = min(n_bins - 1, int(result.completion_times[i]) // bin_width)
        chars[done_bin] = "|"
        lines.append(f"p{str(i).rjust(label_w)} {''.join(chars)}")
    lines.append(
        f"{' ' * (label_w + 2)}0{' ' * (n_bins - 2)}{horizon}  "
        f"(cells are log2(box height); '.'=no box, '|'=done; bin={bin_width} steps)"
    )
    return "\n".join(lines) + "\n"


def render_memory_profile(
    result: ParallelRunResult,
    width: int = 72,
    height: int = 10,
    title: Optional[str] = None,
) -> str:
    """Render total reserved cache height over time as an ASCII skyline."""
    times, heights = capacity_profile(result.trace)
    if len(times) < 2:
        return "(no box trace to render)\n"
    horizon = int(times[-1])
    bin_width = max(1, -(-horizon // width))
    n_bins = -(-horizon // bin_width)
    # peak reserved height per bin
    binned = np.zeros(n_bins, dtype=np.int64)
    for idx in range(len(times) - 1):
        lo = int(times[idx]) // bin_width
        hi = min(n_bins - 1, (int(times[idx + 1]) - 1) // bin_width)
        binned[lo : hi + 1] = np.maximum(binned[lo : hi + 1], int(heights[idx]))
    top = max(int(binned.max()), 1)
    lines: List[str] = []
    if title:
        lines.append(title)
    for row in range(height, 0, -1):
        threshold = top * row / height
        cells = "".join("█" if b >= threshold else " " for b in binned)
        label = f"{top}" if row == height else ("0" if row == 1 else "")
        lines.append(f"{label.rjust(len(str(top)))} |{cells}|")
    lines.append(f"{' ' * len(str(top))} +{'-' * n_bins}+  cache={result.cache_size}, peak={top}")
    return "\n".join(lines) + "\n"
