"""Table rendering and CSV export — the "figures" of a terminal-native repro.

Every experiment ends in a markdown-compatible aligned table (written to
stdout and optionally to disk) plus a CSV for downstream plotting.  Keeping
rendering in one place means every benchmark reports identically.
"""

from __future__ import annotations

import csv
import io
import math
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["render_table", "render_failures", "write_csv", "write_report"]


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        # a nan cell is a replicate lost to a FailedCell under --keep-going;
        # mark it rather than printing "nan" as if it were a measurement
        return "FAIL" if math.isnan(value) else f"{value:.3f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned markdown table.

    Column order: explicit ``columns`` if given, else the key order of the
    first row (dicts preserve insertion order).
    """
    if not rows:
        return f"## {title}\n\n(no rows)\n" if title else "(no rows)\n"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(r.get(c)) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)]
    out = io.StringIO()
    if title:
        out.write(f"## {title}\n\n")
    out.write("| " + " | ".join(c.ljust(w) for c, w in zip(cols, widths)) + " |\n")
    out.write("|" + "|".join("-" * (w + 2) for w in widths) + "|\n")
    for row in cells:
        out.write("| " + " | ".join(v.rjust(w) for v, w in zip(row, widths)) + " |\n")
    return out.getvalue()


def render_failures(records: Sequence[object], title: str = "failed cells") -> str:
    """Render failed-cell telemetry records as a marked block.

    ``records`` are :class:`~repro.exec.CellRecord`-like objects with
    ``failed``/``label``/``kind``/``attempts``/``error`` attributes (a
    whole telemetry window can be passed; non-failed records are
    skipped).  Returns ``""`` when nothing failed, so callers can append
    unconditionally.
    """
    failed = [r for r in records if getattr(r, "failed", False)]
    if not failed:
        return ""
    out = io.StringIO()
    out.write(f"### {title} ({len(failed)})\n\n")
    for r in failed:
        name = r.label or r.kind
        out.write(f"- `{name}`: {r.error} after {r.attempts} attempt(s)\n")
    return out.getvalue()


def write_csv(rows: Sequence[Mapping[str, object]], path: str | Path, columns: Optional[Sequence[str]] = None) -> None:
    """Write dict-rows to CSV (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("")
        return
    cols = list(columns) if columns else list(rows[0].keys())
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=cols, extrasaction="ignore")
        writer.writeheader()
        for r in rows:
            writer.writerow({c: r.get(c) for c in cols})


def write_report(
    text: str,
    path: str | Path,
    echo: bool = True,
) -> None:
    """Persist a rendered report, optionally echoing to stdout.

    Benchmarks use this so results survive pytest's output capture: the
    table lands in ``benchmarks/out/`` regardless of how pytest was run.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    if echo:
        print(text)
