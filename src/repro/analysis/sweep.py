"""Parameter sweeps: the ratio-vs-p curves every theorem is about.

The paper's claims are all of the form "ratio = O(f(p))", so the canonical
experiment sweeps ``p`` with everything else scaled consistently
(``k = cache_factor · p``, fixed ``s``), runs each algorithm, and hands the
resulting ``(p, ratio)`` series to :mod:`.fitting` for a growth-model
check.

The sweep is engine-aware: the certified lower bounds for **all** ``p``
values are submitted to the ambient :mod:`repro.exec` engine as one batch
(the impact DP dominates sweep wall-clock, and the cells are independent),
then each per-``p`` experiment fans its ``(algorithm, seed)`` cells out
through the same engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..exec.engine import ExecutionEngine, current_engine
from ..exec.policy import FailedCell
from ..exec.units import WorkUnit
from ..parallel.schedulers import RunSpec
from ..workloads.generators import make_parallel_workload
from ..workloads.trace import ParallelWorkload
from .harness import ExperimentRow, run_experiment

__all__ = ["SweepResult", "sweep_p", "series_of"]

#: A workload factory: (p, k, rng) -> ParallelWorkload.
WorkloadFactory = Callable[[int, int, np.random.Generator], ParallelWorkload]


@dataclass(frozen=True)
class SweepResult:
    """All rows of a p-sweep, with helpers to extract per-algorithm series."""

    rows: List[ExperimentRow]
    p_values: Sequence[int]

    def series(self, algorithm: str, field: str = "makespan_ratio") -> Dict[int, float]:
        """{p: value} for one algorithm across the sweep."""
        out: Dict[int, float] = {}
        for row in self.rows:
            if row.algorithm == algorithm:
                value = getattr(row, field)
                if value is not None:
                    out[row.p] = float(value)
        return out

    def as_dicts(self) -> List[Dict[str, object]]:
        """All rows as dicts, in sweep order."""
        return [r.as_dict() for r in self.rows]


def default_workload_factory(kind: str = "mixed_kinds", n_requests_per_proc: int = 400) -> WorkloadFactory:
    """Standard sweep workload: heterogeneous per-processor patterns."""

    def factory(p: int, k: int, rng: np.random.Generator) -> ParallelWorkload:
        return make_parallel_workload(p=p, n_requests=n_requests_per_proc, k=k, rng=rng, kind=kind)

    return factory


def sweep_p(
    algorithms: Sequence[str],
    p_values: Sequence[int],
    miss_cost: int,
    workload_factory: Optional[WorkloadFactory] = None,
    cache_factor: int = 4,
    xi: int = 2,
    seeds: Sequence[int] = (0, 1, 2),
    workload_seed: int = 12345,
    include_impact_lb: bool = True,
    engine: Optional[ExecutionEngine] = None,
) -> SweepResult:
    """Run ``algorithms`` across ``p_values`` with ``k = cache_factor·p``.

    One workload per ``p`` (seeded deterministically from ``workload_seed``
    and ``p``) shared by every algorithm and replication seed, so rows
    within a ``p`` are directly comparable.
    """
    factory = workload_factory or default_workload_factory()
    eng = engine if engine is not None else current_engine()
    workloads: List[ParallelWorkload] = []
    ks: List[int] = []
    for p in p_values:
        k = cache_factor * p
        rng = np.random.default_rng(np.random.SeedSequence(entropy=workload_seed, spawn_key=(p,)))
        workloads.append(factory(p, k, rng))
        ks.append(k)
    # one batch for every p's certified bounds: the expensive impact DPs
    # run concurrently (and cache individually) instead of serializing
    lb_units = [
        WorkUnit(
            kind="makespan-lb",
            params={"workload": wl, "k": k, "miss_cost": miss_cost, "include_impact": include_impact_lb},
            label=f"makespan-lb/p={wl.p}/k={k}",
        )
        for wl, k in zip(workloads, ks)
    ] + [
        WorkUnit(
            kind="mean-lb",
            params={"workload": wl, "k": k, "miss_cost": miss_cost},
            label=f"mean-lb/p={wl.p}/k={k}",
        )
        for wl, k in zip(workloads, ks)
    ]
    bounds = eng.run(lb_units)
    # a bound lost to a FailedCell (keep-going policy) degrades that p's
    # rows to unbounded (ratios None) instead of aborting the whole sweep
    bounds = [None if isinstance(b, FailedCell) else b for b in bounds]
    makespan_lbs = bounds[: len(workloads)]
    mean_lbs = bounds[len(workloads) :]
    rows: List[ExperimentRow] = []
    for wl, k, lb, mean_lb in zip(workloads, ks, makespan_lbs, mean_lbs):
        specs = [
            RunSpec(algorithm=name, cache_size=xi * k, miss_cost=miss_cost, xi=xi)
            for name in algorithms
        ]
        rows.extend(
            run_experiment(
                wl,
                specs,
                seeds=seeds,
                include_impact_lb=include_impact_lb,
                lower_bound=lb,
                mean_lower_bound=mean_lb,
                engine=eng,
            )
        )
    return SweepResult(rows=rows, p_values=list(p_values))


def series_of(result: SweepResult, algorithm: str, field: str = "makespan_ratio"):
    """(p_array, value_array) for fitting, sorted by p."""
    series = result.series(algorithm, field)
    ps = np.array(sorted(series), dtype=np.float64)
    ys = np.array([series[int(p)] for p in ps], dtype=np.float64)
    return ps, ys
