"""Era analysis: the time structure of a parallel run (§4's proof device).

The Theorem 4 narrative divides a greedily-green run into ~log p **eras**
of roughly equal duration, the number of uncompleted sequences halving
each era, with every era costing ≈ α·s·k² because prefixes are pinned to
minimum boxes.  This module extracts that structure from any
:class:`~repro.parallel.events.ParallelRunResult`: the survivor count over
time, the halving instants, and per-era durations — letting E7 check the
"equal eras" prediction empirically instead of just the end-to-end ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..parallel.events import ParallelRunResult

__all__ = ["EraReport", "era_analysis", "survivors_over_time"]


def survivors_over_time(result: ParallelRunResult) -> Tuple[np.ndarray, np.ndarray]:
    """Step function of uncompleted-sequence count.

    Returns ``(times, counts)``: ``counts[i]`` sequences are alive during
    ``[times[i], times[i+1])``; the first time is 0.
    """
    completions = result.completion_times
    times = np.unique(np.concatenate([[0], completions])).astype(np.int64)
    counts = np.array([int((completions > t).sum()) for t in times], dtype=np.int64)
    return times, counts


@dataclass(frozen=True)
class EraReport:
    """Halving structure of a run.

    Attributes
    ----------
    boundaries:
        Times at which the survivor count first dropped to ``p/2^i``
        (i = 1, 2, …); the final boundary is the makespan.
    durations:
        Era lengths between consecutive boundaries (starting from 0).
    balance:
        max(durations)/min(durations) over nonzero eras — ≈1 means the
        equal-era structure of the §4 proof sketch holds.
    """

    boundaries: Tuple[int, ...]
    durations: Tuple[int, ...]
    balance: float


def era_analysis(result: ParallelRunResult) -> EraReport:
    """Detect the halving eras of a run from its completion times."""
    p = result.p
    if p == 0:
        return EraReport(boundaries=(), durations=(), balance=1.0)
    completions = np.sort(result.completion_times)
    boundaries: List[int] = []
    threshold = p // 2
    for i, t in enumerate(completions):
        finished = i + 1
        alive = p - finished
        while threshold >= 1 and alive <= threshold:
            boundaries.append(int(t))
            threshold //= 2
        if threshold < 1:
            break
    if not boundaries or boundaries[-1] != int(completions[-1]):
        boundaries.append(int(completions[-1]))
    durations = [boundaries[0]] + [b - a for a, b in zip(boundaries, boundaries[1:])]
    positive = [d for d in durations if d > 0]
    balance = (max(positive) / min(positive)) if positive else 1.0
    return EraReport(boundaries=tuple(boundaries), durations=tuple(durations), balance=balance)
