"""One-call experiment runner: algorithms × workload → comparable summaries.

Every benchmark and example funnels through :func:`run_experiment`, which
fixes the methodology once:

* the same certified lower bound (computed at the **un-augmented** cache
  ``k``) divides every algorithm's makespan, so rows are comparable;
* algorithms are granted ``ξ·k`` physical cache (resource augmentation is
  explicit, never hidden);
* randomized algorithms are replicated over seeds and report mean/max.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..parallel.metrics import RunSummary, summarize
from ..parallel.opt import MakespanLowerBound, makespan_lower_bound, mean_completion_lower_bound
from ..parallel.schedulers import ParallelPager, make_algorithm
from ..workloads.trace import ParallelWorkload

__all__ = ["ExperimentRow", "run_experiment"]


@dataclass(frozen=True)
class ExperimentRow:
    """Aggregated result of one (algorithm, workload) cell.

    ``*_ratio`` fields are means over seeds; ``max_makespan_ratio`` is the
    worst seed (what an adversary sees of a randomized algorithm).
    """

    algorithm: str
    p: int
    seeds: int
    makespan: float
    makespan_ratio: Optional[float]
    max_makespan_ratio: Optional[float]
    mean_completion_ratio: Optional[float]
    xi_measured: float
    utilization: float

    def as_dict(self) -> Dict[str, object]:
        """Rounded dict form for table rendering / CSV export."""
        rnd = lambda v: None if v is None else round(v, 3)
        return {
            "algorithm": self.algorithm,
            "p": self.p,
            "seeds": self.seeds,
            "makespan": round(self.makespan, 1),
            "makespan_ratio": rnd(self.makespan_ratio),
            "max_makespan_ratio": rnd(self.max_makespan_ratio),
            "mean_completion_ratio": rnd(self.mean_completion_ratio),
            "xi_measured": round(self.xi_measured, 3),
            "utilization": round(self.utilization, 3),
        }


def run_experiment(
    workload: ParallelWorkload,
    algorithms: Sequence[str],
    k: int,
    miss_cost: int,
    xi: int = 2,
    seeds: Sequence[int] = (0,),
    include_impact_lb: bool = True,
    lower_bound: Optional[MakespanLowerBound] = None,
) -> List[ExperimentRow]:
    """Run each named algorithm on ``workload`` and summarize against LB.

    Parameters
    ----------
    k:
        OPT's cache size; the lower bound is computed here.
    xi:
        Resource augmentation: algorithms receive ``xi * k`` physical cache.
    seeds:
        Replication seeds (deterministic algorithms just repeat; the
        harness detects identical makespans and keeps one).
    lower_bound:
        Pass a precomputed bound to skip the (potentially expensive)
        impact DP when sweeping algorithms over one workload.
    """
    if xi < 1:
        raise ValueError("xi must be >= 1")
    lb = lower_bound if lower_bound is not None else makespan_lower_bound(
        workload, k, miss_cost, include_impact=include_impact_lb
    )
    mean_lb = mean_completion_lower_bound(workload, k, miss_cost)
    cache = xi * k
    rows: List[ExperimentRow] = []
    for name in algorithms:
        summaries: List[RunSummary] = []
        for seed in seeds:
            alg = make_algorithm(name, cache, miss_cost, seed=seed)
            result = alg.run(workload)
            summaries.append(summarize(result, makespan_lb=lb, mean_lb=mean_lb))
            if len(seeds) > 1 and len(summaries) == 2 and summaries[0].makespan == summaries[1].makespan:
                # deterministic algorithm: further seeds are identical
                break
        mks = [sm.makespan for sm in summaries]
        ratios = [sm.makespan_ratio for sm in summaries if sm.makespan_ratio is not None]
        mean_ratios = [sm.mean_completion_ratio for sm in summaries if sm.mean_completion_ratio is not None]
        rows.append(
            ExperimentRow(
                algorithm=name,
                p=workload.p,
                seeds=len(summaries),
                makespan=float(np.mean(mks)),
                makespan_ratio=float(np.mean(ratios)) if ratios else None,
                max_makespan_ratio=float(np.max(ratios)) if ratios else None,
                mean_completion_ratio=float(np.mean(mean_ratios)) if mean_ratios else None,
                xi_measured=float(np.mean([sm.xi_measured for sm in summaries])),
                utilization=float(np.mean([sm.utilization for sm in summaries])),
            )
        )
    return rows
