"""One-call experiment runner: algorithms × workload → comparable summaries.

Every benchmark and example funnels through :func:`run_experiment`, which
fixes the methodology once:

* the same certified lower bound (computed at the **un-augmented** cache
  ``k``) divides every algorithm's makespan, so rows are comparable;
* algorithms are granted ``ξ·k`` physical cache (resource augmentation is
  explicit, never hidden);
* randomized algorithms are replicated over seeds and report mean/max.

Execution is delegated to the :mod:`repro.exec` engine: every
``(algorithm, seed)`` cell and every lower-bound computation is a cacheable
work unit, run serially by default or fanned out over a process pool when
an ``execution(jobs=N)`` scope (or CLI ``--jobs N``) is active — with
row-for-row identical results either way.

The stable calling convention passes :class:`~repro.parallel.RunSpec`
objects; the historical ``(workload, names, k, miss_cost, …)`` signature
remains as a deprecation shim.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exec.engine import ExecutionEngine, current_engine
from ..exec.policy import FailedCell
from ..exec.units import WorkUnit
from ..parallel.metrics import RunSummary
from ..parallel.opt import MakespanLowerBound
from ..parallel.schedulers import RunSpec
from ..workloads.trace import ParallelWorkload

__all__ = ["ExperimentRow", "resolve_workload", "run_experiment", "round_optional", "SCHEMA_VERSION"]

#: Version of the exported row schema (the ``as_dict`` key set and
#: rounding rules).  Bumped to 2 when ``schema_version`` itself was added,
#: to 3 when the ``failed`` column (seeds lost to FailedCell outcomes)
#: arrived, to 4 when the ``trace`` column (content digest of a
#: registry/store-backed workload) arrived; bump again whenever a column
#: is added, renamed, or re-rounded so CSV consumers can detect the change.
SCHEMA_VERSION = 4


def round_optional(value: Optional[float], ndigits: int = 3) -> Optional[float]:
    """Round for stable CSV/Markdown export; ``None`` (no bound) passes through."""
    return None if value is None else round(value, ndigits)


@dataclass(frozen=True)
class ExperimentRow:
    """Aggregated result of one (algorithm, workload) cell.

    ``*_ratio`` fields are means over seeds; ``max_makespan_ratio`` is the
    worst seed (what an adversary sees of a randomized algorithm).
    ``failed`` counts replicates lost to :class:`~repro.exec.FailedCell`
    outcomes under a keep-going policy; a row whose every replicate
    failed carries ``makespan = nan`` and renders as ``FAIL``.
    ``trace`` is the workload's content digest when it came from the
    trace registry or a ``.trc`` store (empty for ad-hoc in-memory
    workloads), so exported tables say exactly which trace produced them.
    """

    algorithm: str
    p: int
    seeds: int
    makespan: float
    makespan_ratio: Optional[float]
    max_makespan_ratio: Optional[float]
    mean_completion_ratio: Optional[float]
    xi_measured: float
    utilization: float
    failed: int = 0
    trace: str = ""

    def as_dict(self) -> Dict[str, object]:
        """Rounded dict form for table rendering / CSV export.

        The key order and rounding are stable within a
        :data:`SCHEMA_VERSION`; the version rides along in every row so
        exported tables are self-describing.
        """
        return {
            "algorithm": self.algorithm,
            "p": self.p,
            "seeds": self.seeds,
            "makespan": round(self.makespan, 1) if not math.isnan(self.makespan) else self.makespan,
            "makespan_ratio": round_optional(self.makespan_ratio),
            "max_makespan_ratio": round_optional(self.max_makespan_ratio),
            "mean_completion_ratio": round_optional(self.mean_completion_ratio),
            "xi_measured": round(self.xi_measured, 3),
            "utilization": round(self.utilization, 3),
            "failed": self.failed,
            "trace": self.trace,
            "schema_version": SCHEMA_VERSION,
        }


def resolve_workload(workload: Union[ParallelWorkload, str]) -> ParallelWorkload:
    """Accept a workload object or a trace-registry reference.

    A string is resolved through the default :class:`repro.traces.TraceRegistry`
    (name, content digest, or digest prefix) and opened as a zero-copy
    store-backed workload, so experiments can say ``workload="my-trace"``
    and the trace's content digest flows into cache keys and result rows.
    """
    if not isinstance(workload, str):
        # anything workload-shaped passes through untouched: in-memory
        # ParallelWorkload, store-backed StoredWorkload, or a streamed
        # StreamingWorkload view
        return workload
    from ..traces.registry import default_registry

    return default_registry().workload(workload)


def _cell_unit(workload: ParallelWorkload, spec: RunSpec, seed: int) -> WorkUnit:
    """The work unit for one (algorithm, workload, seed) simulation."""
    return WorkUnit(
        kind="parallel-run",
        params={
            "algorithm": spec.algorithm,
            "cache_size": spec.cache_size,
            "miss_cost": spec.miss_cost,
            "seed": seed,
            "workload": workload,
        },
        label=f"{spec.algorithm}/p={workload.p}/seed={seed}",
    )


def _attach_bounds(
    summary: RunSummary, lb: Optional[MakespanLowerBound], mean_lb: Optional[float]
) -> RunSummary:
    """Attach ratio fields to a lower-bound-free cached summary."""
    return replace(
        summary,
        makespan_ratio=(summary.makespan / lb.value) if lb and lb.value else None,
        mean_completion_ratio=(summary.mean_completion / mean_lb) if mean_lb else None,
    )


def _aggregate(
    spec: RunSpec,
    workload: ParallelWorkload,
    summaries: Sequence[RunSummary],
    failed: int = 0,
    trace: str = "",
) -> ExperimentRow:
    """Reduce per-seed summaries to one table row (mean/max over seeds).

    ``failed`` replicates are excluded from every aggregate; with no
    surviving summary at all the row is a marked placeholder (nan
    makespan) rather than a crash.
    """
    if not summaries:
        return ExperimentRow(
            algorithm=spec.algorithm,
            p=workload.p,
            seeds=0,
            makespan=float("nan"),
            makespan_ratio=None,
            max_makespan_ratio=None,
            mean_completion_ratio=None,
            xi_measured=float("nan"),
            utilization=float("nan"),
            failed=failed,
            trace=trace,
        )
    mks = [sm.makespan for sm in summaries]
    ratios = [sm.makespan_ratio for sm in summaries if sm.makespan_ratio is not None]
    mean_ratios = [sm.mean_completion_ratio for sm in summaries if sm.mean_completion_ratio is not None]
    return ExperimentRow(
        algorithm=spec.algorithm,
        p=workload.p,
        seeds=len(summaries),
        makespan=float(np.mean(mks)),
        makespan_ratio=float(np.mean(ratios)) if ratios else None,
        max_makespan_ratio=float(np.max(ratios)) if ratios else None,
        mean_completion_ratio=float(np.mean(mean_ratios)) if mean_ratios else None,
        xi_measured=float(np.mean([sm.xi_measured for sm in summaries])),
        utilization=float(np.mean([sm.utilization for sm in summaries])),
        failed=failed,
        trace=trace,
    )


def _resolve_specs(
    algorithms: Union[RunSpec, Sequence[Union[str, RunSpec]]],
    k: Optional[int],
    miss_cost: Optional[int],
    xi: int,
) -> Tuple[List[RunSpec], int, int]:
    """Normalize either calling convention to ``(specs, k, miss_cost)``."""
    if isinstance(algorithms, RunSpec):
        algorithms = [algorithms]
    specs_in = list(algorithms)
    if specs_in and all(isinstance(s, RunSpec) for s in specs_in):
        if k is not None or miss_cost is not None:
            raise TypeError("pass either RunSpecs or the legacy (k, miss_cost) arguments, not both")
        specs: List[RunSpec] = specs_in  # type: ignore[assignment]
        ks = {s.k for s in specs}
        if len(ks) != 1:
            raise ValueError(f"all RunSpecs must share one k = cache_size/xi for a comparable lower bound; got {sorted(ks)}")
        costs = {s.miss_cost for s in specs}
        if len(costs) != 1:
            raise ValueError(f"all RunSpecs must share one miss_cost; got {sorted(costs)}")
        return specs, ks.pop(), costs.pop()
    warnings.warn(
        "run_experiment(workload, names, k, miss_cost, ...) is deprecated; "
        "pass a sequence of RunSpec instead (will be removed in 2.0)",
        DeprecationWarning,
        stacklevel=3,
    )
    if k is None or miss_cost is None:
        raise TypeError("legacy run_experiment requires k and miss_cost")
    if xi < 1:
        raise ValueError("xi must be >= 1")
    specs = [
        RunSpec(algorithm=str(name), cache_size=xi * k, miss_cost=miss_cost, xi=xi)
        for name in specs_in
    ]
    return specs, k, miss_cost


def run_experiment(
    workload: Union[ParallelWorkload, str],
    algorithms: Union[RunSpec, Sequence[Union[str, RunSpec]]],
    k: Optional[int] = None,
    miss_cost: Optional[int] = None,
    xi: int = 2,
    seeds: Optional[Sequence[int]] = None,
    include_impact_lb: bool = True,
    lower_bound: Optional[MakespanLowerBound] = None,
    mean_lower_bound: Optional[float] = None,
    engine: Optional[ExecutionEngine] = None,
) -> List[ExperimentRow]:
    """Run each algorithm on ``workload`` and summarize against the LB.

    ``workload`` may be a :class:`ParallelWorkload` or a trace-registry
    reference (name / digest / digest prefix, see
    :class:`repro.traces.TraceRegistry`); registry and store-backed
    workloads stream zero-copy from disk and stamp their content digest
    into every row's ``trace`` column.

    Stable form::

        run_experiment(workload, [RunSpec("det-par", cache_size=32,
                                          miss_cost=8, xi=2), ...],
                       seeds=(0, 1, 2))

    where ``k = cache_size // xi`` (shared by all specs) locates the
    certified lower bound.  The legacy form
    ``run_experiment(workload, ["det-par"], k=16, miss_cost=8, xi=2)``
    still works but emits a :class:`DeprecationWarning`.

    Parameters
    ----------
    seeds:
        Replication seeds; defaults to each spec's own ``seed``.  The
        harness detects deterministic algorithms (identical makespans on
        the first two seeds) and keeps just those two replicates.
    lower_bound, mean_lower_bound:
        Pass precomputed bounds to skip the (potentially expensive)
        impact DP when sweeping algorithms over one workload.
    engine:
        Execution engine override; defaults to the ambient
        :func:`repro.exec.current_engine` (serial unless an
        ``execution(jobs=N)`` scope or CLI ``--jobs`` is active).
    """
    workload = resolve_workload(workload)
    trace_digest = str(getattr(workload, "content_digest", "") or "")
    specs, k_opt, cost = _resolve_specs(algorithms, k, miss_cost, xi)
    eng = engine if engine is not None else current_engine()

    # --- batch 1: lower bounds + the first (up to) two seeds per spec --- #
    prefix_units: List[WorkUnit] = []
    if lower_bound is None:
        prefix_units.append(
            WorkUnit(
                kind="makespan-lb",
                params={"workload": workload, "k": k_opt, "miss_cost": cost, "include_impact": include_impact_lb},
                label=f"makespan-lb/p={workload.p}/k={k_opt}",
            )
        )
    if mean_lower_bound is None:
        prefix_units.append(
            WorkUnit(
                kind="mean-lb",
                params={"workload": workload, "k": k_opt, "miss_cost": cost},
                label=f"mean-lb/p={workload.p}/k={k_opt}",
            )
        )
    seed_lists = [list(seeds) if seeds is not None else [spec.seed] for spec in specs]
    probe_index: List[Tuple[int, int]] = []  # (spec index, seed)
    probe_units: List[WorkUnit] = []
    for si, (spec, seed_list) in enumerate(zip(specs, seed_lists)):
        for seed in seed_list[:2]:
            probe_index.append((si, seed))
            probe_units.append(_cell_unit(workload, spec, seed))
    values = eng.run(prefix_units + probe_units)
    vi = 0
    lb = lower_bound
    if lower_bound is None:
        lb = values[vi]
        vi += 1
    mean_lb = mean_lower_bound
    if mean_lower_bound is None:
        mean_lb = values[vi]
        vi += 1
    # a lower bound lost to a FailedCell (keep-going policy) degrades the
    # table to unbounded rows (ratios None) instead of aborting the run
    if isinstance(lb, FailedCell):
        warnings.warn(f"makespan lower bound failed ({lb.error}); ratios omitted", RuntimeWarning, stacklevel=2)
        lb = None
    if isinstance(mean_lb, FailedCell):
        warnings.warn(
            f"mean-completion lower bound failed ({mean_lb.error}); ratios omitted", RuntimeWarning, stacklevel=2
        )
        mean_lb = None
    per_spec: List[List[RunSummary]] = [[] for _ in specs]
    failures: List[int] = [0 for _ in specs]

    def _absorb(si: int, value: object) -> None:
        if isinstance(value, FailedCell):
            failures[si] += 1
        else:
            per_spec[si].append(value)

    for (si, _seed), value in zip(probe_index, values[vi:]):
        _absorb(si, value)

    # --- dedup probe: deterministic algorithms need no further seeds --- #
    remaining: List[Tuple[int, int]] = []
    for si, (spec, seed_list) in enumerate(zip(specs, seed_lists)):
        summaries = per_spec[si]
        if len(seed_list) > 2 and (
            failures[si] > 0  # can't prove determinism from a failed probe
            or (len(summaries) == 2 and summaries[0].makespan != summaries[1].makespan)
        ):
            remaining.extend((si, seed) for seed in seed_list[2:])

    # --- batch 2: the remaining replicates of randomized algorithms --- #
    if remaining:
        tail_units = [_cell_unit(workload, specs[si], seed) for si, seed in remaining]
        for (si, _seed), value in zip(remaining, eng.run(tail_units)):
            _absorb(si, value)

    rows: List[ExperimentRow] = []
    for si, (spec, summaries) in enumerate(zip(specs, per_spec)):
        bounded = [_attach_bounds(sm, lb, mean_lb) for sm in summaries]
        rows.append(_aggregate(spec, workload, bounded, failed=failures[si], trace=trace_digest))
    return rows
