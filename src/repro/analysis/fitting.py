"""Growth-model fitting: is a measured ratio curve O(log p), O(log² p), …?

The reproduction cannot verify an asymptotic statement literally; what it
*can* do is check which growth model best explains the measured
ratio-vs-p series, and report the normalized constants.  Models:

* ``const``            — ratio ~ a
* ``log``              — ratio ~ a + b·log₂ p            (Theorems 1-3)
* ``log2``             — ratio ~ a + b·(log₂ p)²         (the old upper bound)
* ``log_over_loglog``  — ratio ~ a + b·log₂ p/log₂ log₂ p  (Theorem 4)

Least squares in the single coefficient (with intercept); model comparison
by residual sum of squares with a parsimony tie-break (a model only wins
over a strictly simpler one if it reduces RSS by >5%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["GrowthFit", "fit_growth", "best_model", "normalized_constants", "MODELS"]


def _feature(model: str, p: np.ndarray) -> np.ndarray:
    logp = np.log2(p)
    if model == "const":
        return np.zeros_like(logp)
    if model == "log":
        return logp
    if model == "log2":
        return logp**2
    if model == "log_over_loglog":
        # guard: log log p needs p > 2; clamp the inner log at 1
        return logp / np.maximum(np.log2(np.maximum(logp, 2.0)), 1.0)
    raise ValueError(f"unknown model {model!r}")


MODELS = ("const", "log", "log2", "log_over_loglog")


@dataclass(frozen=True)
class GrowthFit:
    """One model's least-squares fit to a ratio series."""

    model: str
    intercept: float
    slope: float
    rss: float
    r_squared: float

    def predict(self, p: Sequence[int]) -> np.ndarray:
        """Model prediction at the given p values."""
        arr = np.asarray(p, dtype=np.float64)
        return self.intercept + self.slope * _feature(self.model, arr)


def fit_growth(p: Sequence[int], ratio: Sequence[float], model: str) -> GrowthFit:
    """Least-squares fit of ``ratio ~ a + b·f_model(p)``."""
    ps = np.asarray(p, dtype=np.float64)
    ys = np.asarray(ratio, dtype=np.float64)
    if len(ps) != len(ys) or len(ps) < 2:
        raise ValueError("need at least two (p, ratio) points")
    x = _feature(model, ps)
    if model == "const":
        a, b = float(np.mean(ys)), 0.0
        pred = np.full_like(ys, a)
    else:
        A = np.column_stack([np.ones_like(x), x])
        coef, *_ = np.linalg.lstsq(A, ys, rcond=None)
        a, b = float(coef[0]), float(coef[1])
        pred = A @ coef
    rss = float(np.sum((ys - pred) ** 2))
    tss = float(np.sum((ys - np.mean(ys)) ** 2))
    r2 = 1.0 - rss / tss if tss > 0 else 1.0
    return GrowthFit(model=model, intercept=a, slope=b, rss=rss, r_squared=r2)


def best_model(
    p: Sequence[int],
    ratio: Sequence[float],
    models: Sequence[str] = MODELS,
    parsimony: float = 0.05,
) -> GrowthFit:
    """The simplest model within ``parsimony`` of the best RSS.

    Models are considered in the given order (simplest first); a later
    model displaces the incumbent only if it cuts RSS by more than the
    parsimony fraction.
    """
    fits = [fit_growth(p, ratio, m) for m in models]
    chosen = fits[0]
    for f in fits[1:]:
        if f.rss < chosen.rss * (1.0 - parsimony):
            chosen = f
    return chosen


def normalized_constants(p: Sequence[int], ratio: Sequence[float], model: str = "log") -> np.ndarray:
    """``ratio / f_model(p)`` per point — flat iff the model is right.

    The Theorem 1/2/3 experiments report this as the "hidden constant"
    column: for an O(log p)-competitive algorithm, ratio/log₂p should be
    roughly constant as p grows.
    """
    ps = np.asarray(p, dtype=np.float64)
    ys = np.asarray(ratio, dtype=np.float64)
    f = _feature(model, ps)
    f = np.where(f <= 0, 1.0, f)
    return ys / f
