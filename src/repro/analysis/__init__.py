"""Experiment harness: runners, sweeps, growth fitting, and reporting."""

from .eras import EraReport, era_analysis, survivors_over_time
from .gantt import render_gantt, render_memory_profile
from .fitting import MODELS, GrowthFit, best_model, fit_growth, normalized_constants
from .harness import ExperimentRow, resolve_workload, run_experiment
from .plots import bar_chart, line_chart
from .report import render_table, write_csv, write_report
from .sweep import SweepResult, default_workload_factory, series_of, sweep_p

__all__ = [
    "EraReport",
    "era_analysis",
    "survivors_over_time",
    "render_gantt",
    "render_memory_profile",
    "MODELS",
    "GrowthFit",
    "best_model",
    "fit_growth",
    "normalized_constants",
    "ExperimentRow",
    "resolve_workload",
    "run_experiment",
    "bar_chart",
    "line_chart",
    "render_table",
    "write_csv",
    "write_report",
    "SweepResult",
    "default_workload_factory",
    "series_of",
    "sweep_p",
]
