"""Terminal-native plotting: ASCII line charts and bar charts.

The reproduction has no plotting dependency, so its "figures" are rendered
as Unicode charts straight into reports and terminals.  Two primitives
cover every experiment:

* :func:`line_chart` — one or more (x, y) series on a shared log-x axis
  (the ratio-vs-p curves of E1/E3/E5/E7);
* :func:`bar_chart` — labelled horizontal bars (per-algorithm comparisons,
  box-height histograms).

Both return plain strings; the CLI appends them under the tables when
``--plot`` is given.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence, Tuple

__all__ = ["line_chart", "bar_chart"]

_MARKERS = "ox+*#%@&"


def line_chart(
    series: Mapping[str, Mapping[float, float]],
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    log_x: bool = True,
    y_label: str = "",
) -> str:
    """Render named {x: y} series as an ASCII scatter/line chart.

    Each series gets a marker from a fixed cycle; the legend maps markers
    back to names.  ``log_x`` plots x on a log₂ axis (natural for p).
    """
    points: Dict[str, Sequence[Tuple[float, float]]] = {
        name: sorted(
            (float(x), float(y))
            for x, y in vals.items()
            if math.isfinite(float(x)) and math.isfinite(float(y))  # FAIL cells are NaN
        )
        for name, vals in series.items()
    }
    all_pts = [pt for pts in points.values() for pt in pts]
    if not all_pts:
        return "(no data)\n"
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]

    def tx(x: float) -> float:
        return math.log2(x) if log_x and x > 0 else x

    x_lo, x_hi = min(map(tx, xs)), max(map(tx, xs))
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(points.items(), _MARKERS):
        for x, y in pts:
            col = int(round((tx(x) - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_top = f"{y_hi:.2f}"
    y_bot = f"{y_lo:.2f}"
    label_w = max(len(y_top), len(y_bot), len(y_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = y_top.rjust(label_w)
        elif i == height - 1:
            prefix = y_bot.rjust(label_w)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}|")
    x_axis = f"{' ' * label_w} +{'-' * width}+"
    lines.append(x_axis)
    x_lo_lab = f"{2**x_lo:.0f}" if log_x else f"{x_lo:g}"
    x_hi_lab = f"{2**x_hi:.0f}" if log_x else f"{x_hi:g}"
    axis_name = "p (log scale)" if log_x else "x"
    gap = max(1, width - len(x_lo_lab) - len(x_hi_lab))
    lines.append(f"{' ' * label_w}  {x_lo_lab}{' ' * gap}{x_hi_lab}  [{axis_name}]")
    legend = "  ".join(f"{m}={name}" for (name, _), m in zip(points.items(), _MARKERS))
    lines.append(f"{' ' * label_w}  {legend}")
    return "\n".join(lines) + "\n"


def bar_chart(
    values: Mapping[str, float],
    width: int = 48,
    title: Optional[str] = None,
    fmt: str = "{:.2f}",
) -> str:
    """Render labelled horizontal bars scaled to the maximum value."""
    if not values:
        return "(no data)\n"
    label_w = max(len(str(k)) for k in values)
    finite = [v for v in values.values() if math.isfinite(v)]
    vmax = max(finite) if finite else 0.0
    lines = [title] if title else []
    for name, value in values.items():
        if not math.isfinite(value):  # FAIL cells are NaN
            lines.append(f"{str(name).rjust(label_w)} |{' ' * width}| FAIL")
            continue
        filled = 0 if vmax <= 0 else int(round(value / vmax * width))
        bar = "█" * filled
        lines.append(f"{str(name).rjust(label_w)} |{bar.ljust(width)}| {fmt.format(value)}")
    return "\n".join(lines) + "\n"
