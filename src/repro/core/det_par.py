"""DET-PAR: the deterministic well-rounded parallel-paging algorithm (§3.3).

Lemma 6's construction, realized as an event-driven simulator:

* **Phases.**  A phase begins with ``P`` active processors and ends when
  the active count drops to ``P/2``.  The *base height* is ``b = 2·k/P``
  (the paper's ``b_Q = k/p_Q`` with ``p_Q`` = processors active at the end
  of the phase = ``P/2``).
* **Base boxes.**  Every active processor always holds a box of height at
  least ``b``: whenever a processor has nothing taller, it runs height-``b``
  boxes back to back.
* **Strips.**  For each lattice height ``z ∈ {2b, 4b, …, k}``, a *z-strip*
  owns ``m_z = max(1, k/(z·L))`` slots (``L`` = number of levels); each
  slot runs height-``z`` boxes back to back, handing each new box to the
  next active processor in round-robin order.  For ``z ≥ k/L`` this
  degenerates to the paper's single cycling box.  A processor *adopts* an
  offered box only if it is taller than what it currently holds
  (compartmentalized: adoption cold-starts the cache); otherwise the slot's
  box runs unclaimed — its reservation is still charged, exactly as in the
  paper's oblivious construction.
* The height-``b`` strip of the paper is subsumed by the base boxes (which
  provide a height-``b`` box *continuously*, a strictly stronger guarantee)
  and therefore not separately reserved.

The construction is **oblivious**: the schedule depends only on how many
processors are still active, never on hits/misses.  Its guarantees —
well-roundedness (every processor gets a box of height ≥ z at least every
``O(z²·s·log p / b)`` steps) and O(k) total reservation — are audited from
the produced trace by :mod:`.well_rounded` and the capacity tests.

Internal sizing: the algorithm plans against ``k_int``, the largest power
of two whose full reservation (bases + strips) fits in ``cache_size``;
``meta["k_int"]`` and per-phase reservations are reported so experiments
can state the measured resource augmentation exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..parallel.events import BoxRecord, EventScheduler, ParallelRunResult
from ..parallel.streaming import make_box_server
from ..workloads.trace import ParallelWorkload
from .box import validate_lattice
from .rand_par import next_power_of_two

__all__ = ["DetPar"]


class _Segment:
    """A processor's current execution interval: one (possibly trimmed) box.

    A ``__slots__`` class with a hand-written ``__init__``: one segment is
    allocated per box, and the generated dataclass constructor plus a
    per-instance ``__dict__`` are measurable at streamed scale.
    """

    __slots__ = ("height", "start", "end", "token", "tag")

    def __init__(self, height: int, start: int, end: int, token: int, tag: str) -> None:
        self.height = height
        self.start = start
        self.end = end
        self.token = token
        self.tag = tag


@dataclass
class _PhaseInfo:
    """Reservation bookkeeping per phase (for ξ reporting and audits)."""

    index: int
    start_time: int
    active_at_start: int
    base_height: int
    k_int: int
    levels: int
    strip_slots: Dict[int, int]
    reserved_height: int


class DetPar:
    """Deterministic well-rounded parallel paging (Lemma 6 / Theorem 3).

    Parameters
    ----------
    cache_size:
        Physical cache the algorithm may reserve (any integer >= 1).
        Internal planning uses the largest ``k_int`` whose reservation
        fits; strip heights double from the base, so all lattice
        arguments survive non-power-of-two caches.
    miss_cost:
        Fault service time ``s > 1``.
    """

    name = "det-par"

    def __init__(self, cache_size: int, miss_cost: int) -> None:
        validate_lattice(int(cache_size), 1)
        if miss_cost <= 1:
            raise ValueError(f"miss_cost must be > 1, got {miss_cost}")
        self.cache_size = int(cache_size)
        self.miss_cost = int(miss_cost)

    # ------------------------------------------------------------------ #
    # phase planning
    # ------------------------------------------------------------------ #
    @staticmethod
    def _phase_heights(k_int: int, b: int) -> List[int]:
        """Lattice heights for the phase, ascending: b, 2b, …, k_int."""
        hs = []
        z = b
        while z <= k_int:
            hs.append(z)
            z *= 2
        return hs

    def _plan_phase(self, n_active: int) -> Tuple[int, int, Dict[int, int], int]:
        """Choose ``(k_int, b, strip slot counts, reserved height)``.

        Shrinks ``k_int`` (halving from ``cache_size``) until bases +
        strips fit in ``cache_size``.  Raises if even the minimum plan
        does not fit.
        """
        p_pow = next_power_of_two(max(1, n_active))
        k_int = self.cache_size
        while k_int >= 1:
            b = max(1, (2 * k_int) // p_pow)
            if 2 * k_int >= p_pow:  # ensures b >= 1 without the clamp firing
                heights = self._phase_heights(k_int, b)
                L = len(heights)
                slots = {z: max(1, k_int // (z * L)) for z in heights if z > b}
                reserved = n_active * b + sum(m * z for z, m in slots.items())
                if reserved <= self.cache_size:
                    return k_int, b, slots, reserved
            k_int //= 2
        raise ValueError(
            f"cache_size={self.cache_size} too small for {n_active} active processors"
        )

    # ------------------------------------------------------------------ #
    def run(self, workload: ParallelWorkload) -> ParallelRunResult:
        """Simulate DET-PAR on ``workload`` until every processor finishes."""
        s = self.miss_cost
        p = workload.p
        if p < 1:
            raise ValueError("workload must have at least one processor")
        server = make_box_server(workload, s)
        n = server.lengths
        pos = [0] * p
        done = [n[i] == 0 for i in range(p)]
        remaining = sum(1 for d in done if not d)
        completion = np.zeros(p, dtype=np.int64)
        trace: List[BoxRecord] = []
        phases: List[_PhaseInfo] = []
        rebuild_times: List[int] = []

        sched = EventScheduler()
        epoch = 0
        token_counter = 0
        segments: List[Optional[_Segment]] = [None] * p
        strip_ptr: Dict[int, int] = {}
        phase_idx = -1
        phase_start_active = 0
        base_height = 1

        push = sched.schedule  # one frame less per event at streamed scale
        serve = server.serve

        def finalize(i: int, t: int) -> None:
            """Execute processor i's current segment up to time t."""
            nonlocal remaining
            seg = segments[i]
            if seg is None:
                return
            segments[i] = None
            budget = t - seg.start
            if budget <= 0:
                return
            run = serve(i, pos[i], seg.height, budget)
            trace.append(
                BoxRecord(
                    proc=i,
                    height=seg.height,
                    start=seg.start,
                    end=t,
                    served_start=run.start,
                    served_end=run.end,
                    hits=run.hits,
                    faults=run.faults,
                    phase=phase_idx,
                    tag=seg.tag,
                )
            )
            pos[i] = run.end
            if pos[i] >= n[i] and not done[i]:
                done[i] = True
                remaining -= 1
                completion[i] = seg.start + run.time_used

        def start_segment(i: int, h: int, t: int, tag: str) -> None:
            nonlocal token_counter
            token_counter += 1
            segments[i] = _Segment(height=h, start=t, end=t + s * h, token=token_counter, tag=tag)
            push(t + s * h, "seg_end", (i, token_counter))

        def setup_phase(t: int) -> None:
            nonlocal epoch, phase_idx, phase_start_active, base_height, strip_ptr
            active = [i for i in range(p) if not done[i]]
            if not active:
                return
            epoch += 1
            phase_idx += 1
            phase_start_active = len(active)
            k_int, b, slots, reserved = self._plan_phase(len(active))
            base_height = b
            heights = self._phase_heights(k_int, b)
            strip_ptr = {z: 0 for z in slots}
            phases.append(
                _PhaseInfo(
                    index=phase_idx,
                    start_time=t,
                    active_at_start=len(active),
                    base_height=b,
                    k_int=k_int,
                    levels=len(heights),
                    strip_slots=dict(slots),
                    reserved_height=reserved,
                )
            )
            for i in active:
                start_segment(i, b, t, "base")
            for z, m in slots.items():
                for slot in range(m):
                    push(t, "slot", (epoch, z, slot))

        def next_in_rotation(z: int) -> Optional[int]:
            """Round-robin over processor ids, skipping finished ones."""
            ptr = strip_ptr.get(z, 0)
            for off in range(p):
                i = (ptr + off) % p
                if not done[i]:
                    strip_ptr[z] = (i + 1) % p
                    return i
            return None

        setup_phase(0)
        needs_rebuild = False
        rebuild_time = 0

        pop = sched.pop
        while remaining > 0:
            try:
                t, _, kind, data = pop()
            except IndexError:
                break  # queue drained (the __bool__ check, minus a per-event scan)
            if kind == "seg_end":
                i, token = data
                seg = segments[i]
                if seg is None or seg.token != token:
                    continue  # stale: segment was preempted or phase rebuilt
                finalize(i, t)
                if not done[i]:
                    start_segment(i, base_height, t, "base")
            elif kind == "slot":
                ev_epoch, z, slot = data
                if ev_epoch != epoch:
                    continue  # stale: phase was rebuilt
                i = next_in_rotation(z)
                if i is None:
                    continue  # no active processors; strip dies this epoch
                seg = segments[i]
                if seg is None or z > seg.height:
                    finalize(i, t)
                    if not done[i]:
                        start_segment(i, z, t, "strip")
                    # if the processor finished inside the preempted
                    # segment, the slot's box simply runs unclaimed
                # shorter/equal offers are ignored by the processor; the
                # slot keeps cycling either way
                push(t + s * z, "slot", (epoch, z, slot))
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown event kind {kind!r}")

            # phase transition: half the processors active at phase start
            # have finished
            if remaining and remaining <= phase_start_active // 2:
                # finalize every running segment and rebuild at current time
                rebuild_times.append(t)
                for i in range(p):
                    if segments[i] is not None:
                        finalize(i, t)
                setup_phase(t)

        # drain: if the loop exited with all done, completions are recorded
        if remaining:  # pragma: no cover - defensive
            raise RuntimeError("DET-PAR event queue drained before completion (bug)")

        return ParallelRunResult(
            algorithm=self.name,
            completion_times=completion,
            trace=trace,
            cache_size=self.cache_size,
            miss_cost=s,
            meta={
                "phases": phases,
                "rebuild_times": rebuild_times,
                "reserved_peak": max((ph.reserved_height for ph in phases), default=0),
            },
        )
