"""RAND-PAR: the randomized online parallel-paging algorithm of §3.2.

Structure (exactly the paper's):

* The run proceeds in **chunks**.  Let ``r`` be the number of active
  processors at the start of the chunk, rounded up to a power of two.
* **Primary part** — every active processor receives ``log₂ r + 1``
  consecutive minimum boxes of height ``K/r`` (total length
  ``ℓ₁ = Θ(s·K·log r / r)``; concurrent height ≤ K).
* **Secondary part** — one height ``j`` is drawn from the inverse-square
  distribution on the lattice ``{K/r, …, K}`` (:mod:`.distributions`), and
  every active processor gets one height-``j`` box.  The boxes run
  ``⌊K/j⌋`` at a time (processors outside the current batch stall), so the
  part lasts ``ℓ₂ ≈ s·r·j²/K`` — matching Observation 1's
  ``E[ℓ₂] = ℓ₁`` in expectation.
* **Phases** — an analysis device: phase ``q`` ends when the active count
  first drops to half its value at the phase start.  We record phase
  boundaries in the result metadata for the E2/E3 experiments but the
  schedule itself only depends on the current active count, keeping the
  algorithm *oblivious* in the paper's sense (it never looks at which
  requests hit or miss, only at who has finished).

The theorem this reproduces (E3): expected makespan ``O(log p · T_OPT)``
with O(1) resource augmentation (Theorem 2); RAND-PAR's concurrent
reserved height never exceeds ``K``, so its measured ξ is 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..parallel.events import BoxRecord, ParallelRunResult
from ..parallel.streaming import make_box_server
from ..workloads.trace import ParallelWorkload
from .box import HeightLattice, ceil_pow2, validate_lattice
from .distributions import DistributionKind, make_distribution

__all__ = ["RandPar", "next_power_of_two"]


def next_power_of_two(x: int) -> int:
    """Smallest power of two >= x (x >= 1); alias of :func:`repro.core.box.ceil_pow2`."""
    return ceil_pow2(x)


@dataclass
class _ChunkStats:
    """Per-chunk bookkeeping surfaced for the Observation 1 experiment."""

    index: int
    active_at_start: int
    r_pow: int
    primary_length: int
    secondary_length: int
    drawn_height: int
    primary_impact: int
    secondary_impact: int


class RandPar:
    """Randomized online parallel paging (§3.2, Theorem 2).

    Parameters
    ----------
    cache_size:
        Total cache ``K`` the algorithm may reserve at any instant (any
        integer >= 1; the internal chunk lattice rounds the active count
        up to a power of two and clamps at ``K``).  Compare against lower
        bounds computed at ``K/ξ`` to account for resource augmentation.
    miss_cost:
        Fault service time ``s > 1``.
    rng:
        Seeded numpy Generator (drives only the secondary-part draws).
    kind:
        Height distribution for the secondary part; the paper's algorithm
        is ``"inverse_square"``; others exist for the E8 ablation.
    """

    name = "rand-par"

    def __init__(
        self,
        cache_size: int,
        miss_cost: int,
        rng: np.random.Generator,
        kind: DistributionKind = "inverse_square",
    ) -> None:
        validate_lattice(int(cache_size), 1)
        if miss_cost <= 1:
            raise ValueError(f"miss_cost must be > 1, got {miss_cost}")
        self.cache_size = int(cache_size)
        self.miss_cost = int(miss_cost)
        self.rng = rng
        self.kind: DistributionKind = kind

    # ------------------------------------------------------------------ #
    def run(self, workload: ParallelWorkload, max_chunks: Optional[int] = None) -> ParallelRunResult:
        """Simulate RAND-PAR on ``workload`` until every processor finishes."""
        K = self.cache_size
        s = self.miss_cost
        p = workload.p
        if p < 1:
            raise ValueError("workload must have at least one processor")
        validate_lattice(K, p)
        server = make_box_server(workload, s)
        n = server.lengths
        pos = [0] * p
        done = [n[i] == 0 for i in range(p)]
        completion = np.zeros(p, dtype=np.int64)
        trace: List[BoxRecord] = []
        chunks: List[_ChunkStats] = []
        phase_bounds: List[int] = []

        t = 0
        chunk_idx = 0
        # phase tracking (analysis bookkeeping only)
        phase_idx = 0
        phase_start_active = sum(1 for d in done if not d)

        while not all(done):
            if max_chunks is not None and chunk_idx >= max_chunks:
                break
            active = [i for i in range(p) if not done[i]]
            a = len(active)
            r_pow = min(next_power_of_two(a), K)
            h_min = K // r_pow
            lattice = HeightLattice(K, r_pow)
            dist = make_distribution(lattice, self.kind)
            rounds = lattice.levels  # log2(r) + 1 minimum boxes
            primary_len = 0
            primary_impact = 0

            # ---------------- primary part ---------------- #
            for _ in range(rounds):
                dur = s * h_min
                for i in active:
                    if done[i]:
                        continue
                    run = server.serve(i, pos[i], h_min, dur)
                    trace.append(
                        BoxRecord(
                            proc=i,
                            height=h_min,
                            start=t,
                            end=t + dur,
                            served_start=run.start,
                            served_end=run.end,
                            hits=run.hits,
                            faults=run.faults,
                            phase=phase_idx,
                            tag="primary",
                        )
                    )
                    primary_impact += h_min * dur
                    pos[i] = run.end
                    if pos[i] >= n[i]:
                        done[i] = True
                        completion[i] = t + run.time_used
                t += dur
                primary_len += dur

            # ---------------- secondary part ---------------- #
            j = int(dist.sample(self.rng))
            batch_size = max(1, K // j)
            secondary_len = 0
            secondary_impact = 0
            for lo in range(0, len(active), batch_size):
                batch = active[lo : lo + batch_size]
                dur = s * j
                ran_any = False
                for i in batch:
                    if done[i]:
                        continue
                    ran_any = True
                    run = server.serve(i, pos[i], j, dur)
                    trace.append(
                        BoxRecord(
                            proc=i,
                            height=j,
                            start=t,
                            end=t + dur,
                            served_start=run.start,
                            served_end=run.end,
                            hits=run.hits,
                            faults=run.faults,
                            phase=phase_idx,
                            tag="secondary",
                        )
                    )
                    secondary_impact += j * dur
                    pos[i] = run.end
                    if pos[i] >= n[i]:
                        done[i] = True
                        completion[i] = t + run.time_used
                if ran_any:
                    t += dur
                    secondary_len += dur

            chunks.append(
                _ChunkStats(
                    index=chunk_idx,
                    active_at_start=a,
                    r_pow=r_pow,
                    primary_length=primary_len,
                    secondary_length=secondary_len,
                    drawn_height=j,
                    primary_impact=primary_impact,
                    secondary_impact=secondary_impact,
                )
            )
            chunk_idx += 1

            # phase bookkeeping: phase ends when half the processors that
            # were active at its start have finished
            now_active = sum(1 for d in done if not d)
            if now_active <= phase_start_active // 2 and now_active > 0:
                phase_bounds.append(t)
                phase_idx += 1
                phase_start_active = now_active

        return ParallelRunResult(
            algorithm=self.name,
            completion_times=completion,
            trace=trace,
            cache_size=K,
            miss_cost=s,
            meta={
                "chunks": chunks,
                "phase_bounds": phase_bounds,
                "distribution": self.kind,
                "finished": all(done),
            },
        )
