"""The paper's contribution: boxes, distributions, and the paging algorithms.

* :mod:`~repro.core.box` — box/lattice/profile machinery (§2);
* :mod:`~repro.core.distributions` — the ``1/j²`` height distribution (§3.1);
* :mod:`~repro.core.rand_green` — RAND-GREEN (§3.1, Theorem 1);
* :mod:`~repro.core.det_green` — deterministic green paging (deficit form);
* :mod:`~repro.core.rand_par` — RAND-PAR (§3.2, Theorem 2);
* :mod:`~repro.core.det_par` — DET-PAR (§3.3, Lemma 6 / Theorem 3);
* :mod:`~repro.core.well_rounded` — well-roundedness / balance audits (§3.3);
* :mod:`~repro.core.black_box` — the [SODA '21] black-box construction that
  Theorem 4 lower-bounds.
"""

from .black_box import BlackBoxPar, det_green_source_factory, rand_green_source_factory
from .box import (
    Box,
    BoxProfile,
    HeightLattice,
    LatticeError,
    ceil_pow2,
    is_power_of_two,
    validate_lattice,
)
from .det_green import DetGreen, credit_schedule
from .det_par import DetPar
from .distributions import (
    DistributionKind,
    HeightDistribution,
    inverse_square_distribution,
    make_distribution,
)
from .rand_green import GreenRunResult, RandGreen
from .rand_par import RandPar, next_power_of_two
from .well_rounded import BalanceReport, WellRoundedReport, audit_balance, audit_well_rounded

__all__ = [
    "BlackBoxPar",
    "det_green_source_factory",
    "rand_green_source_factory",
    "Box",
    "BoxProfile",
    "HeightLattice",
    "LatticeError",
    "ceil_pow2",
    "is_power_of_two",
    "validate_lattice",
    "DetGreen",
    "credit_schedule",
    "DetPar",
    "DistributionKind",
    "HeightDistribution",
    "inverse_square_distribution",
    "make_distribution",
    "GreenRunResult",
    "RandGreen",
    "RandPar",
    "next_power_of_two",
    "BalanceReport",
    "WellRoundedReport",
    "audit_balance",
    "audit_well_rounded",
]
