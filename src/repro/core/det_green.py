"""DET-GREEN: deterministic online green paging via impact-equalizing credits.

The paper derandomizes its *parallel* algorithm by construction (Lemma 6)
rather than derandomizing RAND-GREEN directly, but both the DET-PAR strips
and the `O(log p)`-competitive deterministic green paging of [SODA '21]
realize the same scheduling idea, which this module captures in its pure
single-processor form:

    emit box heights so that **every height level receives the same
    cumulative impact**, just as RAND-GREEN equalizes *expected* impact
    per level (Lemma 1).

We implement this as deficit (credit) scheduling.  Level ``i`` carries
weight ``w_i ∝ 4^{-i}`` (the inverse-square pmf).  Each emission adds
``w_i`` of credit to every level and subtracts 1 from the emitted level;
the next box is the level with the largest credit (ties to the cheapest).
Standard deficit-round-robin analysis gives, deterministically:

* the long-run frequency of level ``i`` is exactly ``w_i``;
* between two consecutive level-``i`` boxes at most ``O(1/w_i)`` boxes are
  emitted, so the impact spent before the next height-``j`` box arrives is
  ``O(log p · s·j²)`` — the deterministic counterpart of Theorem 1's
  "expected memory impact until we get a box of size j is O(log p)·j²".

Experiment E9 verifies that DET-GREEN's measured competitive ratio tracks
RAND-GREEN's across ``p``.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..paging.engine import execute_profile
from .box import BoxProfile, HeightLattice
from .distributions import make_distribution
from .rand_green import GreenRunResult

__all__ = ["DetGreen", "credit_schedule"]


def credit_schedule(weights: np.ndarray, start_index: int = 0) -> Iterator[int]:
    """Infinite deterministic level schedule with frequencies ∝ ``weights``.

    Deficit scheduling: credits start equal to the (normalized) weights;
    each step emits the level with maximum credit (ties broken toward the
    *lowest* level, i.e. the cheapest box), subtracts 1 from it, then adds
    the weight vector again.  Credits stay bounded in ``[-1, 1]`` per
    level, which is what pins the gap between consecutive emissions of
    level ``i`` to ``⌈1/w_i⌉ + O(1)``.

    ``start_index`` rotates nothing (the schedule is fully determined by
    the weights) but offsets the emitted stream, letting DET-PAR stagger
    processors; level-0-heavy prefixes remain level-0-heavy regardless.
    """
    w = np.asarray(weights, dtype=np.float64)
    if np.any(w <= 0):
        raise ValueError("weights must be positive")
    w = w / w.sum()
    credits = w.copy()
    emitted = 0
    while True:
        level = int(np.argmax(credits))  # argmax takes the first (lowest) on ties
        if emitted >= start_index:
            yield level
        credits[level] -= 1.0
        credits += w
        emitted += 1


class DetGreen:
    """Deterministic online green paging (impact-equalizing deficit scheduler).

    Oblivious in the paper's sense: the emitted height sequence depends
    only on the lattice, never on the request sequence's hits/misses.
    """

    def __init__(self, lattice: HeightLattice, miss_cost: int, start_index: int = 0) -> None:
        if miss_cost <= 1:
            raise ValueError(f"miss_cost must be > 1, got {miss_cost}")
        self.lattice = lattice
        self.miss_cost = int(miss_cost)
        self.start_index = int(start_index)
        self._weights = np.asarray(make_distribution(lattice, "inverse_square").pmf, dtype=np.float64)

    def boxes(self) -> Iterator[int]:
        """Infinite deterministic stream of box heights."""
        heights = self.lattice.heights
        for level in credit_schedule(self._weights, self.start_index):
            yield heights[level]

    def run(self, seq: np.ndarray, max_boxes: Optional[int] = None) -> GreenRunResult:
        """Service ``seq`` to completion with the deterministic schedule."""
        pr = execute_profile(seq, self.boxes(), self.miss_cost, max_boxes=max_boxes)
        profile = BoxProfile(r.height for r in pr.runs)
        return GreenRunResult(profile=profile, impact=pr.impact, wall_time=pr.wall_time, run=pr)
