"""The black-box green→parallel transformation of [SODA '21] (§4's target).

This is the construction the paper *lower-bounds*: each processor's memory
is allotted by a black-box green-paging algorithm, and the parallel layer
merely packs the resulting boxes **fairly** (no sequence ever has more than
O(1) times the accumulated impact of another uncompleted sequence, up to an
additive slack) and **efficiently** (running boxes occupy an Ω(1) fraction
of capacity whenever work is available).  With an `O(log p)`-competitive
green source this yields the previous best `O(log² p)` makespan bound —
and Theorem 4 shows no such construction can beat `Ω̃(log p)` overhead, so
this scheduler is the comparator in experiments E5 and E7.

Mechanics:

* every processor has a *green source* — an iterator of box heights
  (DET-GREEN by default; RAND-GREEN optional).  Sources are **rebooted**
  whenever the number of surviving sequences halves, so each runs with
  thresholds ``[K'/v, K']`` as §4 prescribes ("rebooting the green paging
  algorithm whenever the minimum threshold doubles");
* a box-end-driven packing loop admits idle processors in ascending order
  of accumulated impact when their next green box fits in free capacity;
  a processor whose box does not fit raises a fairness barrier: processors
  more than one full-cache box of impact ahead of it must wait;
* any processor left idle receives a fallback minimum box of height
  ``K/(2·v̂)`` (``v̂`` = survivors rounded up to a power of two) from the
  reserved half of the cache, keeping every sequence in execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..parallel.events import BoxRecord, EventScheduler, ParallelRunResult
from ..parallel.streaming import make_box_server
from ..workloads.trace import ParallelWorkload
from .box import HeightLattice, validate_lattice
from .det_green import DetGreen
from .rand_green import RandGreen
from .rand_par import next_power_of_two

__all__ = ["GreenSourceFactory", "det_green_source_factory", "rand_green_source_factory", "BlackBoxPar"]

#: A factory: (lattice, miss_cost, proc_index) -> infinite height iterator.
GreenSourceFactory = Callable[[HeightLattice, int, int], Iterator[int]]


def det_green_source_factory(lattice: HeightLattice, miss_cost: int, proc: int) -> Iterator[int]:
    """DET-GREEN stream, staggered per processor to desynchronize boxes."""
    return DetGreen(lattice, miss_cost, start_index=proc).boxes()


def rand_green_source_factory(seed: int = 0) -> GreenSourceFactory:
    """RAND-GREEN streams with per-processor derived seeds."""

    def factory(lattice: HeightLattice, miss_cost: int, proc: int) -> Iterator[int]:
        rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(proc,)))
        return RandGreen(lattice, miss_cost, rng).boxes()

    return factory


@dataclass
class _ProcState:
    source: Iterator[int]
    pending: Optional[int] = None  # peeked next green height
    in_box: bool = False
    impact: int = 0  # accumulated reserved impact (height × duration)
    cur_height: int = 0  # height of the running box (0 when idle)
    cur_tag: str = ""

    def peek(self) -> int:
        if self.pending is None:
            self.pending = int(next(self.source))
        return self.pending

    def consume(self) -> int:
        h = self.peek()
        self.pending = None
        return h


class BlackBoxPar:
    """Parallel paging via black-box green paging + fair/efficient packing.

    Parameters
    ----------
    cache_size:
        Physical cache ``K`` (any integer >= 2, so that half of it can
        fund green boxes and half the fallback minimum boxes that keep
        everyone in execution).
    miss_cost:
        Fault service time ``s > 1``.
    source_factory:
        Green-paging stream per processor; default DET-GREEN.
    reboot:
        Reboot sources (with a doubled minimum threshold) whenever the
        survivor count halves, per §4.  Disable to measure how much the
        reboot matters.
    """

    name = "black-box-green"

    def __init__(
        self,
        cache_size: int,
        miss_cost: int,
        source_factory: GreenSourceFactory = det_green_source_factory,
        reboot: bool = True,
    ) -> None:
        validate_lattice(int(cache_size), 1)
        if miss_cost <= 1:
            raise ValueError(f"miss_cost must be > 1, got {miss_cost}")
        self.cache_size = int(cache_size)
        self.miss_cost = int(miss_cost)
        self.source_factory = source_factory
        self.reboot = bool(reboot)

    def run(self, workload: ParallelWorkload) -> ParallelRunResult:
        """Simulate the packing construction until every processor finishes."""
        K = self.cache_size
        s = self.miss_cost
        p = workload.p
        if p < 1:
            raise ValueError("workload must have at least one processor")
        green_budget = K // 2
        if next_power_of_two(p) > green_budget:
            raise ValueError(f"cache_size={K} too small for p={p} (need K/2 >= next_pow2(p))")
        server = make_box_server(workload, s)
        n = server.lengths
        pos = [0] * p
        done = [n[i] == 0 for i in range(p)]
        completion = np.zeros(p, dtype=np.int64)
        trace: List[BoxRecord] = []

        def make_lattice(v: int) -> HeightLattice:
            return HeightLattice(green_budget, min(next_power_of_two(max(1, v)), green_budget))

        survivors = sum(1 for d in done if not d)
        lattice = make_lattice(survivors)
        reboot_threshold = survivors // 2
        states = [
            _ProcState(source=self.source_factory(lattice, s, i)) for i in range(p)
        ]
        free_green = green_budget
        fairness_slack = s * K * K  # one full-cache box of impact

        sched = EventScheduler()
        t = 0

        def admit(i: int, h: int, now: int, tag: str) -> None:
            st = states[i]
            run = server.serve(i, pos[i], h, s * h)
            trace.append(
                BoxRecord(
                    proc=i,
                    height=h,
                    start=now,
                    end=now + s * h,
                    served_start=run.start,
                    served_end=run.end,
                    hits=run.hits,
                    faults=run.faults,
                    tag=tag,
                )
            )
            pos[i] = run.end
            st.in_box = True
            st.cur_height = h
            st.cur_tag = tag
            st.impact += h * s * h
            if run.end >= n[i]:
                completion[i] = now + run.time_used
            sched.schedule(now + s * h, "box_end", i)

        def admission_round(now: int, candidates: Iterable[int]) -> None:
            # every idle processor is admitted (green or fallback) each
            # round, so between rounds only just-freed processors can be
            # idle — candidates scopes the scan to them
            nonlocal free_green
            idle = [i for i in candidates if not done[i] and not states[i].in_box]
            idle.sort(key=lambda i: (states[i].impact, i))
            barrier: Optional[int] = None
            deferred: List[int] = []
            for i in idle:
                if barrier is not None and states[i].impact > barrier:
                    deferred.append(i)
                    continue
                h = states[i].peek()
                if h <= free_green:
                    states[i].consume()
                    free_green -= h
                    admit(i, h, now, "green")
                else:
                    barrier = states[i].impact + fairness_slack
                    deferred.append(i)
            # fallback minimum boxes from the reserved half of the cache
            v = max(1, survivors)
            fallback_h = max(1, (K // 2) // next_power_of_two(v))
            for i in deferred:
                admit(i, fallback_h, now, "fallback")

        admission_round(0, range(p))

        while sched:
            t, _, _, i = sched.pop()
            st = states[i]
            st.in_box = False
            # return capacity (green boxes only; fallback half is statically reserved)
            if st.cur_tag == "green":
                free_green += st.cur_height
            st.cur_height = 0
            st.cur_tag = ""
            if pos[i] >= n[i] and not done[i]:
                done[i] = True
                survivors -= 1
                if self.reboot and survivors and survivors <= reboot_threshold:
                    lattice = make_lattice(survivors)
                    reboot_threshold = survivors // 2
                    for jx in range(p):
                        if not done[jx]:
                            states[jx].source = self.source_factory(lattice, s, jx)
                            states[jx].pending = None
            if survivors == 0:
                break
            admission_round(t, (i,))

        if survivors:  # pragma: no cover - defensive
            raise RuntimeError("black-box packing stalled before completion (bug)")

        return ParallelRunResult(
            algorithm=self.name,
            completion_times=completion,
            trace=trace,
            cache_size=K,
            miss_cost=s,
            meta={"reboot": self.reboot},
        )
