"""Machine-checkable well-roundedness and balance audits (§3.3, Lemma 7).

The paper's deterministic result rests on two *structural* properties of a
schedule, both checkable from a trace without re-running the simulation:

**Well-rounded** (§3.3).  Within each phase Q with base height ``b_Q``:

1. every active processor holds a box of height ≥ ``b_Q`` at every moment;
2. for every processor x, every lattice height ``z ≥ b_Q``, and every
   moment t, either x currently holds a box of height ≥ z, or it will
   within ``O(z² · s · log p / b_Q)`` steps, or the phase (or x's life)
   ends within that window.

Lemma 5 turns these into the ``O(log p)`` makespan bound, so the audit's
measured constant — the largest gap normalized by ``z²·s·L/b_Q`` — is the
empirical content of experiment E4.

**Balanced** (Lemma 7).  (1) the schedule always reserves a constant
fraction of memory; (2) within each phase the impact given to each
remaining processor is equal up to additive poly(pk).  Balanced +
well-rounded ⇒ the per-processor allocation is O(log p)-competitive green
paging (Lemma 7), which is what gives Corollary 3 (mean completion time)
for free; the balance audit reports the per-phase impact spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..parallel.events import BoxRecord, ParallelRunResult

__all__ = ["WellRoundedReport", "audit_well_rounded", "BalanceReport", "audit_balance"]


def _merge_intervals(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge overlapping/adjacent [start, end) intervals (sorted by start)."""
    merged: List[Tuple[int, int]] = []
    for st, en in sorted(intervals):
        if merged and st <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], en))
        else:
            merged.append((st, en))
    return merged


def _gaps_within(
    intervals: List[Tuple[int, int]], window_start: int, window_end: int
) -> List[int]:
    """Uncovered stretches of [window_start, window_end) given covering
    intervals; includes leading and trailing gaps."""
    if window_end <= window_start:
        return []
    merged = _merge_intervals(
        [(max(st, window_start), min(en, window_end)) for st, en in intervals if en > window_start and st < window_end]
    )
    gaps: List[int] = []
    cursor = window_start
    for st, en in merged:
        if st > cursor:
            gaps.append(st - cursor)
        cursor = max(cursor, en)
    if cursor < window_end:
        gaps.append(window_end - cursor)
    return gaps


@dataclass(frozen=True)
class WellRoundedReport:
    """Audit outcome for the well-rounded property.

    Attributes
    ----------
    base_covered:
        True iff property 1 held: every active processor held height
        ≥ b_Q at every moment of every phase (up to its completion).
    max_base_gap:
        Largest uncovered stretch found for property 1 (0 when covered).
    max_gap_factor:
        Property 2's measured constant: the max over (phase, proc, z) of
        ``gap · b_Q / (z² · s · L)``.  The algorithm is well-rounded with
        constant c iff this is ≤ c.
    worst:
        (phase, proc, z, gap) achieving the max factor.
    """

    base_covered: bool
    max_base_gap: int
    max_gap_factor: float
    worst: Tuple[int, int, int, int]


def audit_well_rounded(result: ParallelRunResult) -> WellRoundedReport:
    """Audit a simulation trace for the §3.3 well-rounded property.

    Requires ``result.meta["phases"]`` (produced by DET-PAR) describing
    per-phase base heights and start times; phase q ends where phase q+1
    starts (the last ends at the makespan).
    """
    phases = result.meta.get("phases")
    if not phases:
        raise ValueError("result has no phase metadata; only phase-structured schedulers can be audited")
    s = result.miss_cost
    makespan = result.makespan
    completion = result.completion_times
    p = result.p

    # group trace by processor once
    by_proc: Dict[int, List[BoxRecord]] = {i: [] for i in range(p)}
    for r in result.trace:
        by_proc[r.proc].append(r)

    max_factor = 0.0
    worst = (-1, -1, -1, 0)
    base_covered = True
    max_base_gap = 0

    for q, ph in enumerate(phases):
        ph_start = ph.start_time
        ph_end = phases[q + 1].start_time if q + 1 < len(phases) else makespan
        b = ph.base_height
        L = ph.levels
        heights = [b << i for i in range(L)]
        for i in range(p):
            # the processor's audit window: phase ∩ its lifetime
            w_start = ph_start
            w_end = min(ph_end, int(completion[i]))
            if w_end <= w_start:
                continue
            boxes = [(r.start, r.end, r.height) for r in by_proc[i]]
            # property 1: coverage at height >= b
            cover = [(st, en) for st, en, h in boxes if h >= b]
            gaps = _gaps_within(cover, w_start, w_end)
            if gaps:
                base_covered = False
                max_base_gap = max(max_base_gap, max(gaps))
            # property 2: recurrence of each height z >= b
            for z in heights:
                tall = [(st, en) for st, en, h in boxes if h >= z]
                for gap in _gaps_within(tall, w_start, w_end):
                    factor = gap * b / (z * z * s * L)
                    if factor > max_factor:
                        max_factor = factor
                        worst = (q, i, z, gap)
    return WellRoundedReport(
        base_covered=base_covered,
        max_base_gap=max_base_gap,
        max_gap_factor=max_factor,
        worst=worst,
    )


@dataclass(frozen=True)
class BalanceReport:
    """Audit outcome for Lemma 7's *balanced* property.

    Attributes
    ----------
    min_reserved_fraction:
        Over phases, the minimum of reserved height / cache_size —
        property (1) of balance ("always allocates at least a constant
        fraction of memory").
    max_phase_spread:
        Over phases, the maximum additive spread of per-processor impact
        (max - min among processors active through the phase), normalized
        by ``s·k²`` (one full-cache box); property (2) asks this to be
        bounded by a constant independent of the phase length.
    spreads:
        Per-phase normalized spreads.
    """

    min_reserved_fraction: float
    max_phase_spread: float
    spreads: List[float]


def audit_balance(result: ParallelRunResult) -> BalanceReport:
    """Audit per-phase impact balance across processors (Lemma 7 premise)."""
    phases = result.meta.get("phases")
    if not phases:
        raise ValueError("result has no phase metadata")
    s = result.miss_cost
    k = result.cache_size
    makespan = result.makespan
    completion = result.completion_times
    p = result.p
    spreads: List[float] = []
    min_frac = float("inf")
    for q, ph in enumerate(phases):
        ph_start = ph.start_time
        ph_end = phases[q + 1].start_time if q + 1 < len(phases) else makespan
        reserved = getattr(ph, "reserved_height", None)
        if reserved is not None:
            min_frac = min(min_frac, reserved / k)
        # processors active through the entire phase
        survivors = [i for i in range(p) if completion[i] >= ph_end]
        if not survivors or ph_end <= ph_start:
            continue
        impact = {i: 0 for i in survivors}
        for r in result.trace:
            if r.proc in impact:
                lo, hi = max(r.start, ph_start), min(r.end, ph_end)
                if hi > lo:
                    impact[r.proc] += r.height * (hi - lo)
        values = list(impact.values())
        spread = (max(values) - min(values)) / (s * k * k)
        spreads.append(spread)
    return BalanceReport(
        min_reserved_fraction=min_frac if min_frac != float("inf") else 0.0,
        max_phase_spread=max(spreads) if spreads else 0.0,
        spreads=spreads,
    )
