"""The inverse-square box-height distribution of §3.1, plus ablation variants.

RAND-GREEN draws each box height independently from the distribution on the
lattice heights ``j ∈ {k/p, 2k/p, 4k/p, …, k}`` with

    ``Pr[height = j]  ∝  1/j²``                     (inverse impact)

so that, by Lemma 1, every height level contributes the *same* expected
memory impact ``Θ(k²·s/p²)`` per drawn box: the expected impact a box
"wastes" on heights the processor did not need is only a ``log p`` factor
above the useful impact, which is the entire content of Theorem 1.

The distribution is normalized exactly (probabilities are rationals with
denominator ``Σ 4^i``) rather than to Θ-precision, so the Lemma 1 identity
``Pr[j]·s·j² = const`` holds *exactly* here and is asserted in tests.

For the E8 ablation we also ship ``1/j`` and uniform height distributions,
which Theorem 1's proof predicts to be asymptotically worse (heavy tails
overweight big boxes; uniform overweights them even more).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Literal, Sequence, Tuple

import numpy as np

from .box import HeightLattice

__all__ = ["HeightDistribution", "inverse_square_distribution", "make_distribution", "DistributionKind"]

DistributionKind = Literal["inverse_square", "inverse_linear", "uniform"]


@dataclass(frozen=True)
class HeightDistribution:
    """A probability distribution over the heights of a lattice.

    Attributes
    ----------
    lattice:
        The height lattice the distribution lives on.
    pmf:
        Probabilities per level, ascending heights; sums to 1.
    """

    lattice: HeightLattice
    pmf: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.pmf) != self.lattice.levels:
            raise ValueError(
                f"pmf has {len(self.pmf)} entries for a lattice with {self.lattice.levels} levels"
            )
        total = float(np.sum(self.pmf))
        if not np.isclose(total, 1.0, atol=1e-12):
            raise ValueError(f"pmf sums to {total}, expected 1")
        if any(q < 0 for q in self.pmf):
            raise ValueError("pmf entries must be nonnegative")
        # Cache Generator.choice's own cdf (cumsum normalized by its last
        # entry) so scalar draws — RAND-GREEN's per-box hot path — become
        # one uniform draw plus a bisect, bit-identical to rng.choice
        # (asserted by tests) at a fraction of its per-call overhead.
        cdf = np.asarray(self.pmf, dtype=np.float64).cumsum()
        cdf /= cdf[-1]
        object.__setattr__(self, "_cdf_list", cdf.tolist())
        object.__setattr__(self, "_heights_list", [int(h) for h in self.lattice.heights])

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw height(s) i.i.d. from the distribution.

        Returns a single int when ``size`` is None, else an int64 array.
        """
        if size is None:
            return self._heights_list[bisect_right(self._cdf_list, rng.random())]
        heights = np.asarray(self.lattice.heights, dtype=np.int64)
        probs = np.asarray(self.pmf, dtype=np.float64)
        return rng.choice(heights, size=size, p=probs)

    # ------------------------------------------------------------------ #
    # Lemma 1 identities
    # ------------------------------------------------------------------ #
    def probability_of(self, height: int) -> float:
        """Pr[drawn height == height] for an exact lattice height."""
        return self.pmf[self.lattice.level_of(height)]

    def expected_impact_per_box(self, miss_cost: int) -> float:
        """``E[s·j²]`` over a single draw — the *total* (useful + wasted)
        expected impact per box in Theorem 1's accounting."""
        heights = np.asarray(self.lattice.heights, dtype=np.float64)
        return float(miss_cost) * float(np.dot(self.pmf, heights * heights))

    def expected_useful_impact(self, height: int, miss_cost: int) -> float:
        """Lemma 1's ``E[X·Y] = Pr[j]·s·j²`` for a target height ``j``.

        For the inverse-square distribution this is the same constant
        ``s·(k/p)²/Z`` for every lattice height — the equalization that
        drives the whole upper-bound argument.
        """
        j = int(height)
        return self.probability_of(j) * miss_cost * j * j

    def expected_duration_per_box(self, miss_cost: int) -> float:
        """``E[s·j]`` — expected wall-clock length of a drawn box."""
        heights = np.asarray(self.lattice.heights, dtype=np.float64)
        return float(miss_cost) * float(np.dot(self.pmf, heights))


def inverse_square_distribution(lattice: HeightLattice) -> HeightDistribution:
    """The paper's RAND-GREEN distribution: ``Pr[j] ∝ 1/j²``.

    With heights ``h_i = (k/p)·2^i`` the weights are ``4^{-i}``; the exact
    normalizer is ``Σ_{i=0}^{L-1} 4^{-i}``.
    """
    L = lattice.levels
    weights = np.array([4.0 ** (-i) for i in range(L)], dtype=np.float64)
    pmf = weights / weights.sum()
    return HeightDistribution(lattice=lattice, pmf=tuple(float(q) for q in pmf))


def make_distribution(lattice: HeightLattice, kind: DistributionKind = "inverse_square") -> HeightDistribution:
    """Factory for the paper's distribution and the E8 ablation variants.

    * ``"inverse_square"`` — Pr[j] ∝ 1/j² (the paper; equal impact/level);
    * ``"inverse_linear"`` — Pr[j] ∝ 1/j (overweights tall boxes by 2^i);
    * ``"uniform"`` — equal probability per level (tall boxes dominate
      impact completely).
    """
    L = lattice.levels
    if kind == "inverse_square":
        return inverse_square_distribution(lattice)
    if kind == "inverse_linear":
        weights = np.array([2.0 ** (-i) for i in range(L)], dtype=np.float64)
    elif kind == "uniform":
        weights = np.ones(L, dtype=np.float64)
    else:
        raise ValueError(f"unknown distribution kind {kind!r}")
    pmf = weights / weights.sum()
    return HeightDistribution(lattice=lattice, pmf=tuple(float(q) for q in pmf))
