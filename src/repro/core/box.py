"""Boxes, box profiles, and the doubling height lattice (paper §2).

The WLOG reduction from Agrawal et al. [SODA '21], restated in §2 of the
paper, lets every algorithm — and OPT — allocate memory to a processor in
**compartmentalized boxes**: a box of height ``h`` grants ``h`` cache pages
for exactly ``s·h`` time steps, starting from a cold cache, with LRU inside.
For power-of-two ``k`` and ``p`` box heights are normalized to the lattice

    ``h ∈ { (k/p)·2^i : i = 0 .. log₂ p }``

so there are exactly ``log₂ p + 1`` height *levels*.  A box of height ``h``
has **memory impact** ``s·h²`` (area = height × duration).

The lattice generalizes to **arbitrary integers** ``k >= p >= 1``: the
heights are still the doubling ladder starting at ``max(1, k // p)``, with
the top rung clamped to exactly ``k``.  The paper's power-of-two
restriction is a normalization, not a requirement — off-lattice heights
are handled by the explicit ceil-to-lattice policy
:meth:`HeightLattice.round_up`, and invalid geometry (``p > k``, values
below 1) raises the typed :class:`LatticeError` from the single validator
:func:`validate_lattice`.

This module provides the lattice arithmetic and the :class:`BoxProfile`
container used by every algorithm and by the offline green-paging DP, plus
the subsequence relation that drives the paper's Theorem 1 analysis
("RAND-GREEN finishes the request sequence if OPT's box sequence S is a
subsequence of RAND-GREEN's sequence R").
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = [
    "is_power_of_two",
    "ceil_pow2",
    "LatticeError",
    "validate_lattice",
    "HeightLattice",
    "Box",
    "BoxProfile",
]


def is_power_of_two(x: int) -> bool:
    """True iff ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def ceil_pow2(x: int) -> int:
    """Smallest power of two >= ``x`` (``x >= 1``)."""
    if x < 1:
        raise ValueError(f"need x >= 1, got {x}")
    return 1 << (int(x) - 1).bit_length()


class LatticeError(ValueError):
    """Invalid height-lattice geometry.

    Carries structured fields so callers (CLI, service, tests) can surface
    an actionable suggestion without parsing the message:

    ``param``
        Name of the offending parameter (``"k"``, ``"p"``, or ``"height"``).
    ``value``
        The rejected value.
    ``rounded``
        The nearest value that would have been accepted.
    """

    def __init__(self, param: str, value: int, rounded: int, reason: str) -> None:
        self.param = param
        self.value = int(value)
        self.rounded = int(rounded)
        super().__init__(
            f"{reason} (got {param}={self.value}; nearest valid {param} is {self.rounded})"
        )


def validate_lattice(k: int, p: int) -> None:
    """The single validator behind every lattice-shaped constructor.

    Any integers ``k >= p >= 1`` form a valid lattice; the power-of-two
    restriction of the paper is a normalization applied per-height by
    :meth:`HeightLattice.round_up`, never a constructor requirement.
    Violations raise :class:`LatticeError` with the nearest valid value
    attached.
    """
    if k < 1:
        raise LatticeError("k", k, 1, "cache size k must be >= 1")
    if p < 1:
        raise LatticeError("p", p, 1, "processor count p must be >= 1")
    if p > k:
        raise LatticeError("p", p, k, "need p <= k")


@dataclass(frozen=True)
class HeightLattice:
    """The normalized box-height lattice for a cache of size ``k`` shared by ``p``.

    Parameters
    ----------
    k:
        Cache size (any integer >= 1).
    p:
        Number of processors / the ratio between the max and min box height
        (any integer with ``1 <= p <= k``).  In green paging ``p`` is the
        parameter fixing the dynamic range ``[k/p, k]`` of permitted cache
        sizes.

    Notes
    -----
    Heights are the doubling ladder ``min_height · 2^i`` with the top rung
    clamped to exactly ``k``.  For power-of-two ``k`` and ``p`` this is the
    paper's lattice: ``levels = log₂ p + 1`` and level ``i`` has height
    ``(k/p)·2^i``; level 0 is the minimum box and the top level the full
    cache.  For other geometries the ladder keeps the same shape (each
    rung at most doubles) so every impact/competitiveness argument that
    charges a factor 2 per level still applies.
    """

    k: int
    p: int

    def __post_init__(self) -> None:
        validate_lattice(self.k, self.p)

    @property
    def min_height(self) -> int:
        return max(1, self.k // self.p)

    @property
    def max_height(self) -> int:
        return self.k

    @property
    def levels(self) -> int:
        """Number of height levels (``log₂ p + 1`` for power-of-two geometry)."""
        return len(self.heights)

    @cached_property
    def heights(self) -> Tuple[int, ...]:
        """All lattice heights, ascending: the doubling ladder from
        ``min_height``, top rung clamped to exactly ``k``."""
        base = self.min_height
        hs: List[int] = []
        h = base
        while h < self.k:
            hs.append(h)
            h <<= 1
        hs.append(self.k)
        return tuple(hs)

    def level_of(self, height: int) -> int:
        """Level index of an exact lattice height; raises if off-lattice."""
        h = int(height)
        hs = self.heights
        i = bisect_left(hs, h)
        if i == len(hs) or hs[i] != h:
            raise LatticeError(
                "height", h, self.round_up(h), f"height {h} not on lattice [{hs[0]}, {self.k}]"
            )
        return i

    def contains(self, height: int) -> bool:
        """True iff ``height`` is exactly on the lattice."""
        try:
            self.level_of(height)
            return True
        except ValueError:
            return False

    def round_up(self, height: int) -> int:
        """Ceil-to-lattice rounding: smallest lattice height >= ``height``
        (clamped into ``[min_height, k]``).

        This is the explicit policy that replaced the old power-of-two
        constructor ``ValueError``: callers holding an off-lattice height
        round it up here — the paper's "each of the heights is rounded up
        to the next power of two" normalization, generalized to clamp at
        the full cache for non-power-of-two ``k``.
        """
        h = max(int(height), self.min_height)
        if h >= self.k:
            return self.k
        hs = self.heights
        return hs[bisect_left(hs, h)]

    def restrict(self, new_p: int) -> "HeightLattice":
        """Lattice for the same cache but ``new_p`` processors (rebooting
        the green-paging thresholds as survivors halve, §4)."""
        return HeightLattice(self.k, new_p)

    def __iter__(self) -> Iterator[int]:
        return iter(self.heights)


@dataclass(frozen=True)
class Box:
    """A compartmentalized box: ``height`` pages for ``s·height`` steps.

    ``duration`` and ``impact`` are derived, not stored, because the miss
    cost ``s`` is an experiment parameter, not a property of the box.
    """

    height: int

    def __post_init__(self) -> None:
        if self.height < 1:
            raise ValueError(f"box height must be >= 1, got {self.height}")

    def duration(self, miss_cost: int) -> int:
        """Wall-clock duration ``s·h`` of the box."""
        return int(miss_cost) * self.height

    def impact(self, miss_cost: int) -> int:
        """Memory impact ``s·h²`` of the box."""
        return int(miss_cost) * self.height * self.height


class BoxProfile:
    """An ordered sequence of box heights for one processor.

    Stored as a growable int64 array; exposes impact/wall-time accounting
    and the subsequence relation from the Theorem 1 analysis.
    """

    __slots__ = ("_heights",)

    def __init__(self, heights: Iterable[int] = ()) -> None:
        hs = [int(h) for h in heights]
        for h in hs:
            if h < 1:
                raise ValueError(f"box height must be >= 1, got {h}")
        self._heights = hs

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def append(self, height: int) -> None:
        """Append one box height (must be >= 1)."""
        h = int(height)
        if h < 1:
            raise ValueError(f"box height must be >= 1, got {h}")
        self._heights.append(h)

    def extend(self, heights: Iterable[int]) -> None:
        """Append several box heights in order."""
        for h in heights:
            self.append(h)

    def __len__(self) -> int:
        return len(self._heights)

    def __getitem__(self, i) -> int:
        return self._heights[i]

    def __iter__(self) -> Iterator[int]:
        return iter(self._heights)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BoxProfile):
            return self._heights == other._heights
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(map(str, self._heights[:8]))
        more = "..." if len(self._heights) > 8 else ""
        return f"BoxProfile([{preview}{more}], n={len(self._heights)})"

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def heights_array(self) -> np.ndarray:
        """Heights as an int64 array (fresh copy for vectorized accounting)."""
        return np.asarray(self._heights, dtype=np.int64)

    def impact(self, miss_cost: int) -> int:
        """Total memory impact ``Σ s·h²``."""
        hs = self.heights_array()
        return int(miss_cost) * int(np.sum(hs * hs))

    def wall_time(self, miss_cost: int) -> int:
        """Total wall-clock duration ``Σ s·h``."""
        return int(miss_cost) * int(np.sum(self.heights_array()))

    def validate_on(self, lattice: HeightLattice) -> None:
        """Raise unless every height lies exactly on the lattice."""
        for h in self._heights:
            lattice.level_of(h)

    # ------------------------------------------------------------------ #
    # order structure
    # ------------------------------------------------------------------ #
    def is_subsequence_of(self, other: "BoxProfile") -> bool:
        """True iff self's heights appear in order (not necessarily
        contiguously) within ``other``.

        Theorem 1's argument: an online profile R completes the request
        sequence whenever OPT's profile S is a subsequence of R, because
        each box of S can be simulated inside the matching box of R (equal
        height, cold start both sides).
        """
        it = iter(other._heights)
        return all(any(h == o for o in it) for h in self._heights)

    def count_level_usage(self, lattice: HeightLattice) -> np.ndarray:
        """Histogram of boxes per lattice level (for distribution tests)."""
        counts = np.zeros(lattice.levels, dtype=np.int64)
        for h in self._heights:
            counts[lattice.level_of(h)] += 1
        return counts
