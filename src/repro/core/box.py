"""Boxes, box profiles, and the power-of-two height lattice (paper §2).

The WLOG reduction from Agrawal et al. [SODA '21], restated in §2 of the
paper, lets every algorithm — and OPT — allocate memory to a processor in
**compartmentalized boxes**: a box of height ``h`` grants ``h`` cache pages
for exactly ``s·h`` time steps, starting from a cold cache, with LRU inside.
Box heights are normalized to the lattice

    ``h ∈ { (k/p)·2^i : i = 0 .. log₂ p }``

so there are exactly ``log₂ p + 1`` height *levels*.  A box of height ``h``
has **memory impact** ``s·h²`` (area = height × duration).

This module provides the lattice arithmetic and the :class:`BoxProfile`
container used by every algorithm and by the offline green-paging DP, plus
the subsequence relation that drives the paper's Theorem 1 analysis
("RAND-GREEN finishes the request sequence if OPT's box sequence S is a
subsequence of RAND-GREEN's sequence R").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["is_power_of_two", "HeightLattice", "Box", "BoxProfile"]


def is_power_of_two(x: int) -> bool:
    """True iff ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class HeightLattice:
    """The normalized box-height lattice for a cache of size ``k`` shared by ``p``.

    Parameters
    ----------
    k:
        Cache size (power of two).
    p:
        Number of processors / the ratio between the max and min box height
        (power of two, ``p <= k``).  In green paging ``p`` is the parameter
        fixing the dynamic range ``[k/p, k]`` of permitted cache sizes.

    Notes
    -----
    ``levels = log₂ p + 1``; level ``i`` has height ``(k/p)·2^i``; level 0
    is the minimum box ``k/p`` and the top level is the full cache ``k``.
    """

    k: int
    p: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.k):
            raise ValueError(f"k must be a power of two, got {self.k}")
        if not is_power_of_two(self.p):
            raise ValueError(f"p must be a power of two, got {self.p}")
        if self.p > self.k:
            raise ValueError(f"need p <= k, got p={self.p} > k={self.k}")

    @property
    def min_height(self) -> int:
        return self.k // self.p

    @property
    def max_height(self) -> int:
        return self.k

    @property
    def levels(self) -> int:
        """Number of height levels, ``log₂ p + 1``."""
        return self.p.bit_length()  # log2(p) + 1 for powers of two

    @property
    def heights(self) -> Tuple[int, ...]:
        """All lattice heights, ascending."""
        base = self.min_height
        return tuple(base << i for i in range(self.levels))

    def level_of(self, height: int) -> int:
        """Level index of an exact lattice height; raises if off-lattice."""
        h = int(height)
        base = self.min_height
        if h < base or h > self.k or h % base != 0:
            raise ValueError(f"height {h} not on lattice [{base}, {self.k}]")
        q = h // base
        if not is_power_of_two(q):
            raise ValueError(f"height {h} not a power-of-two multiple of {base}")
        return q.bit_length() - 1

    def contains(self, height: int) -> bool:
        """True iff ``height`` is exactly on the lattice."""
        try:
            self.level_of(height)
            return True
        except ValueError:
            return False

    def round_up(self, height: int) -> int:
        """Smallest lattice height >= ``height`` (clamped into range).

        This implements the paper's "each of the heights is rounded up to
        the next power of two" normalization.
        """
        h = max(int(height), self.min_height)
        if h >= self.k:
            return self.k
        # round h/base up to the next power of two
        q = -(-h // self.min_height)  # ceil division
        level = (q - 1).bit_length()
        return self.min_height << level

    def restrict(self, new_p: int) -> "HeightLattice":
        """Lattice for the same cache but ``new_p`` processors (rebooting
        the green-paging thresholds as survivors halve, §4)."""
        return HeightLattice(self.k, new_p)

    def __iter__(self) -> Iterator[int]:
        return iter(self.heights)


@dataclass(frozen=True)
class Box:
    """A compartmentalized box: ``height`` pages for ``s·height`` steps.

    ``duration`` and ``impact`` are derived, not stored, because the miss
    cost ``s`` is an experiment parameter, not a property of the box.
    """

    height: int

    def __post_init__(self) -> None:
        if self.height < 1:
            raise ValueError(f"box height must be >= 1, got {self.height}")

    def duration(self, miss_cost: int) -> int:
        """Wall-clock duration ``s·h`` of the box."""
        return int(miss_cost) * self.height

    def impact(self, miss_cost: int) -> int:
        """Memory impact ``s·h²`` of the box."""
        return int(miss_cost) * self.height * self.height


class BoxProfile:
    """An ordered sequence of box heights for one processor.

    Stored as a growable int64 array; exposes impact/wall-time accounting
    and the subsequence relation from the Theorem 1 analysis.
    """

    __slots__ = ("_heights",)

    def __init__(self, heights: Iterable[int] = ()) -> None:
        hs = [int(h) for h in heights]
        for h in hs:
            if h < 1:
                raise ValueError(f"box height must be >= 1, got {h}")
        self._heights = hs

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def append(self, height: int) -> None:
        """Append one box height (must be >= 1)."""
        h = int(height)
        if h < 1:
            raise ValueError(f"box height must be >= 1, got {h}")
        self._heights.append(h)

    def extend(self, heights: Iterable[int]) -> None:
        """Append several box heights in order."""
        for h in heights:
            self.append(h)

    def __len__(self) -> int:
        return len(self._heights)

    def __getitem__(self, i) -> int:
        return self._heights[i]

    def __iter__(self) -> Iterator[int]:
        return iter(self._heights)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BoxProfile):
            return self._heights == other._heights
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(map(str, self._heights[:8]))
        more = "..." if len(self._heights) > 8 else ""
        return f"BoxProfile([{preview}{more}], n={len(self._heights)})"

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def heights_array(self) -> np.ndarray:
        """Heights as an int64 array (fresh copy for vectorized accounting)."""
        return np.asarray(self._heights, dtype=np.int64)

    def impact(self, miss_cost: int) -> int:
        """Total memory impact ``Σ s·h²``."""
        hs = self.heights_array()
        return int(miss_cost) * int(np.sum(hs * hs))

    def wall_time(self, miss_cost: int) -> int:
        """Total wall-clock duration ``Σ s·h``."""
        return int(miss_cost) * int(np.sum(self.heights_array()))

    def validate_on(self, lattice: HeightLattice) -> None:
        """Raise unless every height lies exactly on the lattice."""
        for h in self._heights:
            lattice.level_of(h)

    # ------------------------------------------------------------------ #
    # order structure
    # ------------------------------------------------------------------ #
    def is_subsequence_of(self, other: "BoxProfile") -> bool:
        """True iff self's heights appear in order (not necessarily
        contiguously) within ``other``.

        Theorem 1's argument: an online profile R completes the request
        sequence whenever OPT's profile S is a subsequence of R, because
        each box of S can be simulated inside the matching box of R (equal
        height, cold start both sides).
        """
        it = iter(other._heights)
        return all(any(h == o for o in it) for h in self._heights)

    def count_level_usage(self, lattice: HeightLattice) -> np.ndarray:
        """Histogram of boxes per lattice level (for distribution tests)."""
        counts = np.zeros(lattice.levels, dtype=np.int64)
        for h in self._heights:
            counts[lattice.level_of(h)] += 1
        return counts
