"""RAND-GREEN: the randomized online green-paging algorithm of §3.1.

The algorithm is startlingly simple — that simplicity is the point of the
section.  Whenever a new box is needed, draw its height i.i.d. from the
inverse-square distribution (``Pr[j] ∝ 1/j²``, :mod:`.distributions`) over
the lattice heights ``k/p·2^i``.  Theorem 1: with O(1) resource
augmentation this is ``O(log p)``-competitive in expectation.

The proof shape (mirrored by experiment E1): call a drawn box *useful* if
its height equals the height ``z`` of the next box in OPT's profile.  By
Lemma 1 each draw contributes expected useful impact ``Θ(k²s/p²)`` —
independent of ``z``, because the distribution exactly equalizes
``Pr[j]·s·j²`` across levels — while its total expected impact is the sum
over all ``Θ(log p)`` levels of that same constant.  Wasted impact is
therefore only an ``O(log p)`` factor above useful impact, and total useful
impact is at most OPT's impact because matching OPT's box heights in order
suffices to finish (subsequence argument,
:meth:`repro.core.box.BoxProfile.is_subsequence_of`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..paging.engine import ProfileRun, execute_profile
from .box import BoxProfile, HeightLattice
from .distributions import DistributionKind, HeightDistribution, make_distribution

__all__ = ["RandGreen", "GreenRunResult"]


@dataclass(frozen=True)
class GreenRunResult:
    """A green-paging execution: the profile used and its cost.

    Attributes
    ----------
    profile:
        Heights of the boxes actually consumed, in order.
    impact:
        Total memory impact charged (full boxes, including the last).
    wall_time:
        Total wall-clock time of the consumed boxes.
    run:
        The underlying per-box execution trace.
    """

    profile: BoxProfile
    impact: int
    wall_time: int
    run: ProfileRun

    @property
    def completed(self) -> bool:
        return self.run.completed


class RandGreen:
    """Randomized online green paging (§3.1).

    Parameters
    ----------
    lattice:
        Height lattice ``[k/p, k]`` (powers of two).
    miss_cost:
        Fault service time ``s > 1``.
    rng:
        numpy Generator; every experiment passes a seeded one.
    kind:
        Height distribution; ``"inverse_square"`` is the paper's algorithm,
        the others exist for the E8 ablation.
    """

    def __init__(
        self,
        lattice: HeightLattice,
        miss_cost: int,
        rng: np.random.Generator,
        kind: DistributionKind = "inverse_square",
    ) -> None:
        if miss_cost <= 1:
            raise ValueError(f"miss_cost must be > 1, got {miss_cost}")
        self.lattice = lattice
        self.miss_cost = int(miss_cost)
        self.rng = rng
        self.distribution: HeightDistribution = make_distribution(lattice, kind)

    def boxes(self) -> Iterator[int]:
        """Infinite i.i.d. stream of box heights (the online algorithm)."""
        dist = self.distribution
        rng = self.rng
        while True:
            yield dist.sample(rng)

    def run(self, seq: np.ndarray, max_boxes: Optional[int] = None) -> GreenRunResult:
        """Service ``seq`` to completion, drawing boxes as needed."""
        pr = execute_profile(seq, self.boxes(), self.miss_cost, max_boxes=max_boxes)
        profile = BoxProfile(r.height for r in pr.runs)
        return GreenRunResult(profile=profile, impact=pr.impact, wall_time=pr.wall_time, run=pr)
