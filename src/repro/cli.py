"""Command-line interface: ``repro <experiment> [--scale full] [--seed N]``.

Examples
--------
Run the Theorem 1 experiment at CI scale and print the table::

    repro e1

Run the full Theorem 4 separation, save the table and CSV::

    repro e7 --scale full --out results/e7.md --csv results/e7.csv

Run everything on 8 workers with the result cache warm-started, dumping
per-cell telemetry as JSON lines::

    repro all --scale quick --jobs 8 --telemetry runs.jsonl

Ride out flaky or hung cells instead of aborting the sweep::

    repro all --jobs 8 --retries 2 --timeout 300 --keep-going

Resume an interrupted run (Ctrl-C / SIGTERM are checkpointed; completed
experiments are skipped and finished cells come back from the cache)::

    repro resume run-20260806-120301-ab12cd

Manage the content-addressed result cache::

    repro cache stats
    repro cache clear

Build and use a local trace corpus (see docs/API.md, "Trace corpus")::

    repro trace import traces/app.addr.gz --format address --name app
    repro trace ls
    repro trace info app
    repro run --trace app --algorithms det-par,rand-par --cache-size 64 --miss-cost 16

Serve the engine to concurrent network clients, then drive it (see
docs/API.md, "Service & Session API")::

    repro serve --port 8177 --jobs 4 --cache-dir .repro_cache
    repro submit e1 --url http://127.0.0.1:8177 --csv e1.csv
    repro submit --url http://127.0.0.1:8177 --trace app \
        --algorithms det-par --cache-size 64 --miss-cost 16
    python -m repro.service.loadgen --url http://127.0.0.1:8177 --clients 8
"""

from __future__ import annotations

import argparse
import contextlib
import os
import signal
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from .analysis.report import render_failures, write_csv
from .exec import ExecutionPolicy, ResultCache, RunCheckpoint, TELEMETRY, execution, list_runs
from .experiments import EXPERIMENTS, run_named_experiment
from .obs import metrics as obs_metrics
from .obs.runtime import observability, render_metrics_delta

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and docs tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction experiments for 'Online Parallel Paging with Optimal "
            "Makespan' (SPAA '22). Each experiment id maps to a paper claim; "
            "see DESIGN.md §5."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list", "viz", "cache", "resume", "runs", "profile"],
        help=(
            "experiment id (e1..e11), 'all', 'list' (index), 'viz' (schedule "
            "visualization), 'cache' (result-cache management), 'resume <run-id>' "
            "(continue an interrupted run), 'runs' (list checkpointed runs), or "
            "'profile <experiment>' (run under tracing and show where time went)"
        ),
    )
    parser.add_argument(
        "arg",
        nargs="?",
        default=None,
        help=(
            "with 'cache': stats|clear (default stats); with 'resume': the run id; "
            "with 'profile': the experiment to profile"
        ),
    )
    parser.add_argument("--scale", choices=("quick", "full"), default="quick", help="experiment size")
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument("--out", type=Path, default=None, help="write the rendered report here")
    parser.add_argument("--csv", type=Path, default=None, help="write the raw rows here as CSV")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for experiment cells (default 1 = serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-addressed result cache (always recompute)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="result-cache root (default $REPRO_CACHE_DIR or ./.repro_cache)",
    )
    parser.add_argument(
        "--telemetry", type=Path, default=None, metavar="JSONL",
        help="append per-cell telemetry records to this JSON-lines file",
    )
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--metrics", type=Path, default=None, metavar="JSON",
        help="collect simulation/execution metrics and write the snapshot here",
    )
    obs.add_argument(
        "--trace-events", type=Path, default=None, metavar="JSON",
        help="collect span events and write a Chrome-trace file here "
             "(load in chrome://tracing or Perfetto)",
    )
    obs.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="profile: rows per table (default 10)",
    )
    fault = parser.add_argument_group("fault tolerance")
    fault.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-attempt wall-clock budget per cell in seconds (default: none)",
    )
    fault.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retries per cell after the first failure (default 0)",
    )
    fault.add_argument(
        "--backoff", type=float, default=0.05, metavar="S",
        help="base retry backoff in seconds, doubled per attempt with jitter (default 0.05)",
    )
    going = fault.add_mutually_exclusive_group()
    going.add_argument(
        "--keep-going", dest="keep_going", action="store_true",
        help="a cell that exhausts its retries becomes a marked FAIL row instead of aborting",
    )
    going.add_argument(
        "--fail-fast", dest="keep_going", action="store_false",
        help="abort the run on the first cell that exhausts its retries (default)",
    )
    parser.set_defaults(keep_going=False)
    fault.add_argument(
        "--runs-dir", type=Path, default=None,
        help="checkpoint root for run manifests (default $REPRO_RUNS_DIR or ./.repro_runs)",
    )
    fault.add_argument(
        "--run-id", default=None,
        help="name this run's checkpoint explicitly (default: generated)",
    )
    fault.add_argument(
        "--no-checkpoint", action="store_true",
        help="do not write a run manifest/journal (run is not resumable)",
    )
    parser.add_argument("--algorithm", default="det-par", help="viz: algorithm name (see registry)")
    parser.add_argument("--p", type=int, default=8, help="viz: number of processors")
    parser.add_argument("--k", type=int, default=None, help="viz: OPT cache size (default 4p)")
    parser.add_argument("--miss-cost", type=int, default=32, help="viz: fault cost s")
    return parser


def _run_one(
    name: str,
    scale: str,
    seed: int,
    out: Optional[Path],
    csv_path: Optional[Path],
) -> None:
    mark = len(TELEMETRY)
    reg = obs_metrics.active()
    metrics_before = reg.snapshot() if reg.enabled else None
    t0 = time.time()
    rows, text = run_named_experiment(name, scale=scale, seed=seed)
    elapsed = time.time() - t0
    text = text.rstrip("\n") + "\n\n" + TELEMETRY.render(since=mark) + "\n"
    failures = render_failures(TELEMETRY.records[mark:])
    if failures:
        text += "\n" + failures
    if metrics_before is not None:
        delta = render_metrics_delta(metrics_before, reg.snapshot())
        if delta:
            text += "\n" + delta + "\n"
    print(text)
    print(f"[{name}] {len(rows)} rows in {elapsed:.1f}s (scale={scale}, seed={seed})\n")
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text)
    if csv_path is not None:
        write_csv(rows, csv_path)


def _list_experiments() -> None:
    width = max(len(n) for n in EXPERIMENTS)
    for name in sorted(EXPERIMENTS, key=lambda n: int(n[1:])):
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
        print(f"{name.rjust(width)}  {doc}")


def _cache_command(op: Optional[str], cache_dir: Optional[Path]) -> int:
    """``repro cache stats|clear``: inspect or empty the result cache."""
    cache = ResultCache(cache_dir)
    if op in (None, "stats"):
        print(cache.stats().render())
    elif op == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached entries from {cache.root}")
    return 0


def _runs_command(runs_dir: Optional[Path]) -> int:
    """``repro runs``: list checkpointed runs and their status."""
    run_ids = list_runs(runs_dir)
    if not run_ids:
        print("no checkpointed runs")
        return 0
    for run_id in run_ids:
        ckpt = RunCheckpoint.load(run_id, root=runs_dir)
        m = ckpt.manifest
        print(f"{run_id}  status={m.status}  completed={len(m.completed)}/{len(m.names)}  [{' '.join(m.names)}]")
    return 0


def _viz(args) -> None:
    """Run one algorithm on a demo workload and draw its schedule."""
    import numpy as np

    from .analysis.gantt import render_gantt, render_memory_profile
    from .parallel.schedulers import RunSpec, make_algorithm
    from .workloads.generators import make_parallel_workload

    from .core.rand_par import next_power_of_two

    k = next_power_of_two(args.k or 4 * args.p)
    wl = make_parallel_workload(
        p=args.p, n_requests=400, k=k, rng=np.random.default_rng(args.seed), kind="multiscale"
    )
    spec = RunSpec(
        algorithm=args.algorithm, cache_size=2 * k, miss_cost=args.miss_cost, xi=2, seed=args.seed
    )
    result = make_algorithm(spec).run(wl)
    print(f"{args.algorithm} on {wl.describe()}  makespan={result.makespan}\n")
    print(render_gantt(result, width=84, title="schedule (rows = processors):"))
    print(render_memory_profile(result, width=84, height=8, title="reserved cache over time:"))


# --------------------------------------------------------------------- #
# fault-tolerant experiment driver (fresh runs and resumes share it)
# --------------------------------------------------------------------- #
def _experiment_config(args) -> Dict[str, Any]:
    """The manifest-serializable settings a resume must reproduce."""
    return {
        "experiment": args.experiment,
        "scale": args.scale,
        "seed": args.seed,
        "jobs": args.jobs,
        "no_cache": bool(args.no_cache),
        "cache_dir": str(args.cache_dir) if args.cache_dir else None,
        "out": str(args.out) if args.out else None,
        "csv": str(args.csv) if args.csv else None,
        "telemetry": str(args.telemetry) if args.telemetry else None,
        "timeout_s": args.timeout,
        "retries": args.retries,
        "backoff_s": args.backoff,
        "keep_going": bool(args.keep_going),
        "metrics": str(args.metrics) if args.metrics else None,
        "trace_events": str(args.trace_events) if args.trace_events else None,
    }


def _policy_from(config: Dict[str, Any]) -> ExecutionPolicy:
    return ExecutionPolicy(
        timeout_s=config.get("timeout_s"),
        retries=int(config.get("retries", 0)),
        backoff_s=float(config.get("backoff_s", 0.05)),
        keep_going=bool(config.get("keep_going", False)),
    )


class _SignalGuard:
    """Route SIGINT/SIGTERM to ``KeyboardInterrupt`` for the run's duration,
    so a ``kill`` lands the same clean checkpoint path as a Ctrl-C."""

    def __enter__(self) -> "_SignalGuard":
        def handler(signum, frame):
            raise KeyboardInterrupt(f"signal {signum}")

        self._old: Dict[int, Any] = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                self._old[sig] = signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover — non-main thread
                pass
        return self

    def __exit__(self, *exc) -> None:
        for sig, old in self._old.items():
            try:
                signal.signal(sig, old)
            except (ValueError, OSError):  # pragma: no cover
                pass


def _run_experiments(names: List[str], config: Dict[str, Any], ckpt: Optional[RunCheckpoint]) -> int:
    """Run ``names`` under ``config``, checkpointing progress as we go.

    Returns the process exit code: 0 on completion, 130 on a clean
    interrupt (with the manifest marked ``interrupted`` and a resume hint
    printed — the partial per-experiment reports are already on disk).
    """
    is_all = config.get("experiment") == "all"
    out = Path(config["out"]) if config.get("out") else None
    csv_path = Path(config["csv"]) if config.get("csv") else None
    telemetry_path = Path(config["telemetry"]) if config.get("telemetry") else None
    cache_dir = Path(config["cache_dir"]) if config.get("cache_dir") else None
    metrics_path = Path(config["metrics"]) if config.get("metrics") else None
    trace_path = Path(config["trace_events"]) if config.get("trace_events") else None
    # observability wraps the engine scope so pool workers see the env
    # flags at start-up and the output files flush even on interrupt
    if metrics_path is not None or trace_path is not None:
        obs_scope = observability(
            metrics=metrics_path is not None,
            trace=trace_path is not None,
            metrics_json=metrics_path,
            trace_json=trace_path,
        )
    else:
        obs_scope = contextlib.nullcontext()
    try:
        with _SignalGuard(), obs_scope:
            with execution(
                jobs=int(config.get("jobs", 1)),
                cache=not config.get("no_cache", False),
                cache_dir=cache_dir,
                policy=_policy_from(config),
                checkpoint=ckpt,
                telemetry_jsonl=telemetry_path,
            ):
                for name in names:
                    if is_all:
                        one_out = out / f"{name}.md" if out else None
                        one_csv = csv_path / f"{name}.csv" if csv_path else None
                    else:
                        one_out, one_csv = out, csv_path
                    _run_one(name, config["scale"], config["seed"], one_out, one_csv)
                    if ckpt is not None:
                        ckpt.mark_experiment(name)
        if ckpt is not None:
            ckpt.mark_status("complete")
        return 0
    except KeyboardInterrupt:
        if ckpt is not None:
            ckpt.mark_status("interrupted")
            done = len(ckpt.manifest.completed)
            print(
                f"\ninterrupted — {done}/{len(ckpt.manifest.names)} experiments complete; "
                f"resume with: repro resume {ckpt.manifest.run_id}",
                file=sys.stderr,
            )
        else:
            print("\ninterrupted (no checkpoint; rerun to recompute)", file=sys.stderr)
        return 130


def _profile_command(args) -> int:
    """``repro profile <experiment>``: run under full observability.

    Prints three tables: aggregate time by span name, the individually
    slowest spans (each row keeps the span's args, so a heavy-tail cell
    is localized to its exact label/seed), and the top counters.
    ``--metrics`` / ``--trace-events`` additionally write the raw
    snapshot and Chrome-trace files.
    """
    from .analysis.report import render_table
    from .obs import tracing as obs_tracing
    from .obs.tracing import aggregate_spans, slowest_spans

    name = args.arg
    if name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        print(f"repro profile: pick an experiment to profile ({known})", file=sys.stderr)
        return 2
    top = max(1, args.top)
    t0 = time.time()
    with observability(
        metrics=True, trace=True, metrics_json=args.metrics, trace_json=args.trace_events
    ) as scope:
        with execution(jobs=args.jobs, cache=not args.no_cache, cache_dir=args.cache_dir):
            with obs_tracing.span("experiment.run", experiment=name, scale=args.scale):
                run_named_experiment(name, scale=args.scale, seed=args.seed)
    elapsed = time.time() - t0
    events = scope.tracer.events
    print(render_table(aggregate_spans(events)[:top], title=f"{name}: time by span (top {top})"))
    print(render_table(slowest_spans(events, n=top), title=f"{name}: slowest individual spans"))
    snap = scope.metrics_snapshot()
    counters = sorted(snap.get("counters", {}).items(), key=lambda kv: (-kv[1], kv[0]))
    rows = [{"counter": k, "value": v} for k, v in counters[:top]]
    print(render_table(rows, title=f"{name}: top counters"))
    print(f"profiled {name} in {elapsed:.1f}s ({len(events)} trace events)")
    if args.metrics is not None:
        print(f"metrics snapshot written to {args.metrics}")
    if args.trace_events is not None:
        print(f"trace events written to {args.trace_events}")
    return 0


def _resume_command(run_id: Optional[str], runs_dir: Optional[Path]) -> int:
    """``repro resume <run-id>``: continue an interrupted/killed run."""
    if not run_id:
        known = ", ".join(list_runs(runs_dir)) or "(none)"
        print(f"resume requires a run id; known runs: {known}", file=sys.stderr)
        return 2
    try:
        ckpt = RunCheckpoint.load(run_id, root=runs_dir)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    remaining = ckpt.manifest.remaining()
    if ckpt.manifest.status == "complete" and not remaining:
        print(f"run {run_id} is already complete ({len(ckpt.manifest.names)} experiments)")
        return 0
    print(
        f"resuming {run_id}: {len(ckpt.manifest.completed)} done, "
        f"{len(remaining)} to go ({' '.join(remaining)})"
    )
    ckpt.mark_status("running")
    return _run_experiments(remaining, ckpt.manifest.config, ckpt)


# --------------------------------------------------------------------- #
# trace corpus commands: repro trace <op>, repro run --trace <ref>
# --------------------------------------------------------------------- #
def build_trace_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro trace`` command family."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Manage the local content-addressed trace corpus (.repro_traces).",
    )
    parser.add_argument(
        "--registry", type=Path, default=None, metavar="DIR",
        help="registry root (default $REPRO_TRACES_DIR or ./.repro_traces)",
    )
    sub = parser.add_subparsers(dest="op", required=True)

    p_import = sub.add_parser("import", help="normalize a trace file into the corpus")
    p_import.add_argument("src", type=Path, help="source trace file (may be .gz/.xz/.bz2)")
    p_import.add_argument("--name", default=None, help="registry name (default: file name)")
    p_import.add_argument(
        "--format", dest="fmt", default="auto",
        choices=("auto", "sequence", "trace", "address", "kv", "npz", "store"),
        help="source format (default: sniff from suffix/content)",
    )
    p_import.add_argument("--page-size", type=int, default=4096, help="address format: bytes per page")
    p_import.add_argument("--delimiter", default=",", help="kv format: field delimiter")
    p_import.add_argument("--key-field", type=int, default=0, help="kv format: key column (0-based)")
    p_import.add_argument(
        "--proc-field", type=int, default=None,
        help="kv format: processor/shard column (default: single processor)",
    )
    p_import.add_argument(
        "--allow-shared", action="store_true",
        help="permit pages shared across processors (shared-pages model)",
    )
    p_import.add_argument("--chunk-rows", type=int, default=None, help="rows per store chunk")

    p_export = sub.add_parser("export", help="copy a registered store out of the corpus")
    p_export.add_argument("ref", help="trace name, digest, or digest prefix")
    p_export.add_argument("dest", type=Path, help="destination .trc path")

    sub.add_parser("ls", help="list registered traces")

    p_info = sub.add_parser("info", help="show one trace's header detail")
    p_info.add_argument("ref", help="trace name, digest, or digest prefix")
    p_info.add_argument("--verify", action="store_true", help="also verify every chunk digest")

    p_sample = sub.add_parser("sample", help="print the first requests of a column")
    p_sample.add_argument("ref", help="trace name, digest, or digest prefix")
    p_sample.add_argument("--proc", type=int, default=0, help="processor column (default 0)")
    p_sample.add_argument("--rows", type=int, default=10, help="requests to print (default 10)")

    p_rm = sub.add_parser("rm", help="remove a trace from the corpus")
    p_rm.add_argument("ref", help="trace name, digest, or digest prefix")
    return parser


def _trace_command(argv: List[str]) -> int:
    """Dispatch ``repro trace <op> ...``."""
    from .traces import TraceNotFoundError, TraceRegistry
    from .traces.errors import TraceError

    args = build_trace_parser().parse_args(argv)
    registry = TraceRegistry(args.registry)
    try:
        if args.op == "import":
            chunk_rows = {} if args.chunk_rows is None else {"chunk_rows": args.chunk_rows}
            store = registry.import_file(
                args.src,
                name=args.name,
                fmt=args.fmt,
                page_size=args.page_size,
                delimiter=args.delimiter,
                key_field=args.key_field,
                proc_field=args.proc_field,
                allow_shared=args.allow_shared,
                **chunk_rows,
            )
            print(f"imported {store.describe()}")
        elif args.op == "export":
            dest = registry.export(args.ref, args.dest)
            print(f"exported {args.ref} -> {dest}")
        elif args.op == "ls":
            rows = registry.ls()
            if not rows:
                print(f"no traces registered under {registry.root}")
            for row in rows:
                print(
                    f"{row['name']}  digest={row['digest'][:12]}  p={row.get('p', '?')}  "
                    f"requests={row.get('requests', '?')}"
                )
        elif args.op == "info":
            info = registry.info(args.ref)
            if args.verify:
                registry.get(args.ref).verify()
                info["verified"] = True
            for key in ("name", "digest", "path", "p", "requests", "lengths",
                        "bytes", "chunk_rows", "chunk_algo", "allow_shared", "meta"):
                print(f"{key}: {info[key]}")
            if args.verify:
                print("verified: all chunk digests and content digest OK")
        elif args.op == "sample":
            store = registry.get(args.ref)
            if not 0 <= args.proc < max(store.p, 1):
                print(f"processor {args.proc} out of range (trace has p={store.p})", file=sys.stderr)
                return 2
            for page in store.sample(args.proc, args.rows).tolist():
                print(page)
        elif args.op == "rm":
            digest = registry.remove(args.ref)
            print(f"removed {args.ref} ({digest[:12]})")
    except (TraceNotFoundError, TraceError, ValueError, OSError) as exc:
        print(f"repro trace: {exc}", file=sys.stderr)
        return 2
    return 0


def build_run_parser() -> argparse.ArgumentParser:
    """Parser for ``repro run``: ad-hoc experiments on registered traces."""
    parser = argparse.ArgumentParser(
        prog="repro run",
        description=(
            "Run algorithms on a trace from the local corpus; rows carry the "
            "trace's content digest and hit the result cache by content."
        ),
    )
    parser.add_argument("--trace", required=True, help="trace name, digest, or digest prefix")
    parser.add_argument(
        "--algorithms", default="det-par",
        help="comma-separated algorithm names (see repro.parallel registry)",
    )
    parser.add_argument("--cache-size", type=int, required=True, help="physical cache size xi*k")
    parser.add_argument("--miss-cost", type=int, required=True, help="fault cost s")
    parser.add_argument("--xi", type=int, default=2, help="resource augmentation factor (default 2)")
    parser.add_argument("--seeds", type=int, default=3, help="replication seeds (default 3)")
    parser.add_argument("--no-lb", action="store_true", help="skip the impact lower bound (faster)")
    parser.add_argument(
        "--stream", action="store_true",
        help="feed the trace store chunk-by-chunk (bounded memory; event backend)",
    )
    parser.add_argument("--registry", type=Path, default=None, help="registry root")
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    parser.add_argument("--no-cache", action="store_true", help="disable the result cache")
    parser.add_argument("--cache-dir", type=Path, default=None, help="result-cache root")
    parser.add_argument("--out", type=Path, default=None, help="write the rendered table here")
    parser.add_argument("--csv", type=Path, default=None, help="write the rows here as CSV")
    parser.add_argument(
        "--metrics", type=Path, default=None, metavar="JSON",
        help="collect simulation/execution metrics and write the snapshot here",
    )
    parser.add_argument(
        "--trace-events", type=Path, default=None, metavar="JSON",
        help="collect span events and write a Chrome-trace file here",
    )
    return parser


def _run_trace_command(argv: List[str]) -> int:
    """Dispatch ``repro run --trace <ref> ...``."""
    from .analysis.harness import run_experiment
    from .analysis.report import render_table
    from .parallel.schedulers import RunSpec
    from .traces import TraceRegistry
    from .traces.errors import TraceError

    args = build_run_parser().parse_args(argv)
    if args.jobs < 1 or args.seeds < 1:
        print("repro run: --jobs and --seeds must be >= 1", file=sys.stderr)
        return 2
    try:
        registry = TraceRegistry(args.registry)
        if args.stream:
            from .parallel.streaming import open_streaming

            workload = open_streaming(registry.get(args.trace))
        else:
            workload = registry.workload(args.trace)
    except TraceError as exc:
        print(f"repro run: {exc}", file=sys.stderr)
        return 2
    specs = [
        RunSpec(algorithm=name.strip(), cache_size=args.cache_size, miss_cost=args.miss_cost, xi=args.xi)
        for name in args.algorithms.split(",")
        if name.strip()
    ]
    if not specs:
        print("repro run: --algorithms must name at least one algorithm", file=sys.stderr)
        return 2
    mark = len(TELEMETRY)
    t0 = time.time()
    if args.metrics is not None or args.trace_events is not None:
        obs_scope = observability(
            metrics=args.metrics is not None,
            trace=args.trace_events is not None,
            metrics_json=args.metrics,
            trace_json=args.trace_events,
        )
    else:
        obs_scope = contextlib.nullcontext()
    with obs_scope:
        with execution(jobs=args.jobs, cache=not args.no_cache, cache_dir=args.cache_dir):
            rows = run_experiment(
                workload, specs, seeds=range(args.seeds), include_impact_lb=not args.no_lb
            )
    dicts = [row.as_dict() for row in rows]
    digest = dicts[0]["trace"] if dicts else ""
    text = render_table(dicts, title=f"trace {args.trace} ({str(digest)[:12]})")
    text = text.rstrip("\n") + "\n\n" + TELEMETRY.render(since=mark) + "\n"
    print(text)
    print(f"{len(rows)} rows in {time.time() - t0:.1f}s")
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text)
    if args.csv is not None:
        write_csv(dicts, args.csv)
    return 0


# --------------------------------------------------------------------- #
# adversary search: repro hunt / hunt resume / hunt corpus
# --------------------------------------------------------------------- #
def _add_hunt_engine_options(parser: argparse.ArgumentParser) -> None:
    """Engine/observability flags shared by ``hunt`` start and resume."""
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    parser.add_argument("--no-cache", action="store_true", help="disable the result cache")
    parser.add_argument("--cache-dir", type=Path, default=None, help="result-cache root")
    parser.add_argument("--registry", type=Path, default=None, help="trace-corpus root")
    parser.add_argument("--runs-dir", type=Path, default=None, help="checkpoint root (default .repro_runs)")
    parser.add_argument(
        "--metrics", type=Path, default=None, metavar="JSON",
        help="collect search.* metrics and write the snapshot here",
    )
    parser.add_argument(
        "--trace-events", type=Path, default=None, metavar="JSON",
        help="collect span events and write a Chrome-trace file here",
    )


def build_hunt_parser() -> argparse.ArgumentParser:
    """Parser for ``repro hunt``: start a fresh adversary search."""
    from .search.scorers import SEARCH_ALGORITHMS

    parser = argparse.ArgumentParser(
        prog="repro hunt",
        description=(
            "Closed-loop adversary search: propose -> execute -> score -> refine "
            "over the registered workload families; record-beating instances land "
            "in the trace registry as hard/<algo>/<digest> (see repro.search)."
        ),
    )
    parser.add_argument("--rounds", type=int, default=5, help="search rounds (default 5)")
    parser.add_argument("--scale", choices=("quick", "full"), default="quick")
    parser.add_argument("--seed", type=int, default=0, help="hunt seed (the whole trajectory)")
    parser.add_argument("--population", type=int, default=4, help="elites kept per algorithm")
    parser.add_argument("--fresh", type=int, default=2, help="random exploration candidates per round")
    parser.add_argument("--eval-seeds", type=int, default=3, help="seeds per randomized evaluation")
    parser.add_argument("--xi", type=int, default=2, help="resource augmentation factor (default 2)")
    parser.add_argument("--commit-top", type=int, default=3, help="max corpus commits per algo per round")
    parser.add_argument(
        "--algorithms", default=",".join(SEARCH_ALGORITHMS),
        help=f"comma-separated objectives (default {','.join(SEARCH_ALGORITHMS)})",
    )
    parser.add_argument("--families", default=None, help="comma-separated family names (default all)")
    parser.add_argument("--run-id", default=None, help="name the hunt checkpoint explicitly")
    _add_hunt_engine_options(parser)
    return parser


def build_hunt_resume_parser() -> argparse.ArgumentParser:
    """Parser for ``repro hunt resume``: continue an interrupted hunt."""
    parser = argparse.ArgumentParser(
        prog="repro hunt resume",
        description="Continue an interrupted hunt to its configured final round.",
    )
    parser.add_argument("run_id", help="hunt run id (see repro runs)")
    _add_hunt_engine_options(parser)
    return parser


def build_hunt_corpus_parser() -> argparse.ArgumentParser:
    """Parser for ``repro hunt corpus``: list or replay the hard corpus."""
    parser = argparse.ArgumentParser(
        prog="repro hunt corpus",
        description=(
            "List the committed hard-instance corpus; with --replay, rebuild every "
            "instance from its recipe and demand byte-exact digests and ratios."
        ),
    )
    parser.add_argument("--algorithm", default=None, help="filter to one objective")
    parser.add_argument("--replay", action="store_true", help="re-measure and gate on recorded ratios")
    _add_hunt_engine_options(parser)
    return parser


def _drive_hunt(search, args) -> int:
    """Run (or resume) a hunt under the signal guard; 130 on interrupt."""
    if args.metrics is not None or args.trace_events is not None:
        obs_scope = observability(
            metrics=args.metrics is not None,
            trace=args.trace_events is not None,
            metrics_json=args.metrics,
            trace_json=args.trace_events,
        )
    else:
        obs_scope = contextlib.nullcontext()
    rounds = search.config.rounds

    def progress(record):
        best = "  ".join(f"{a}={r:.3f}" for a, r in sorted(record["best"].items()))
        print(
            f"round {record['round'] + 1}/{rounds}: evaluated {record['evaluated']}, "
            f"committed {len(record['new_commits'])}, best {best}"
        )

    t0 = time.time()
    try:
        with _SignalGuard(), obs_scope:
            with execution(
                jobs=args.jobs,
                cache=not args.no_cache,
                cache_dir=args.cache_dir,
                checkpoint=search.checkpoint,
            ):
                state = search.run(progress=progress)
    except KeyboardInterrupt:
        search.checkpoint.mark_status("interrupted")
        done = len(search.checkpoint.manifest.completed)
        print(
            f"\ninterrupted — {done}/{rounds} rounds complete; "
            f"resume with: repro hunt resume {search.checkpoint.manifest.run_id}",
            file=sys.stderr,
        )
        return 130
    print(f"\nhunt {search.checkpoint.manifest.run_id} complete in {time.time() - t0:.1f}s")
    for algo in search.config.algorithms:
        base = state.baseline[algo]["ratio"]
        rec = state.record[algo]
        print(
            f"  {algo}: hand-built baseline {base:.3f} -> record {rec['ratio']:.3f} "
            f"({rec['family']}, {len([c for c in state.committed if c['algorithm'] == algo])} committed)"
        )
    print(f"  corpus: {len(state.committed)} commits under hard/ in {search.registry.root}")
    return 0


def _hunt_command(argv: List[str]) -> int:
    """Dispatch ``repro hunt [resume|corpus] ...``."""
    from .search.loop import AdversarySearch, HuntConfig
    from .traces import TraceRegistry

    if argv and argv[0] == "corpus":
        from .search.corpus import corpus_entries, replay_corpus

        args = build_hunt_corpus_parser().parse_args(argv[1:])
        registry = TraceRegistry(args.registry)
        if not args.replay:
            entries = corpus_entries(registry, args.algorithm)
            if not entries:
                print(f"no hard instances under {registry.root}")
                return 0
            for e in entries:
                print(
                    f"{e['name']}  ratio={e['ratio']:.3f}  family={e['family']}  "
                    f"p={e.get('p', '?')}  requests={e.get('requests', '?')}"
                )
            return 0
        with execution(jobs=args.jobs, cache=not args.no_cache, cache_dir=args.cache_dir):
            report = replay_corpus(registry, args.algorithm)
        if not report:
            print(f"no hard instances under {registry.root}")
            return 0
        failed = [r for r in report if not r["ok"]]
        for r in report:
            status = "ok" if r["ok"] else ("DIGEST-DRIFT" if not r["digest_ok"] else "RATIO-DRIFT")
            print(f"{r['name']}  recorded={r['recorded']:.6g}  measured={r['measured']:.6g}  {status}")
        print(f"{len(report) - len(failed)}/{len(report)} instances replay byte-identically")
        return 1 if failed else 0

    if argv and argv[0] == "resume":
        args = build_hunt_resume_parser().parse_args(argv[1:])
        try:
            search = AdversarySearch.resume(
                args.run_id, runs_root=args.runs_dir, registry=TraceRegistry(args.registry)
            )
        except (FileNotFoundError, ValueError) as exc:
            print(f"repro hunt resume: {exc}", file=sys.stderr)
            return 2
        return _drive_hunt(search, args)

    args = build_hunt_parser().parse_args(argv)
    if args.jobs < 1 or args.rounds < 1 or args.eval_seeds < 1:
        print("repro hunt: --jobs, --rounds, and --eval-seeds must be >= 1", file=sys.stderr)
        return 2
    try:
        config = HuntConfig(
            seed=args.seed,
            rounds=args.rounds,
            scale=args.scale,
            population=args.population,
            fresh=args.fresh,
            eval_seeds=args.eval_seeds,
            xi=args.xi,
            commit_top=args.commit_top,
            algorithms=tuple(a.strip() for a in args.algorithms.split(",") if a.strip()),
            families=tuple(f.strip() for f in args.families.split(",") if f.strip())
            if args.families
            else (),
        )
    except (ValueError, KeyError) as exc:
        print(f"repro hunt: {exc}", file=sys.stderr)
        return 2
    search = AdversarySearch.start(
        config,
        runs_root=args.runs_dir,
        run_id=args.run_id,
        registry=TraceRegistry(args.registry),
    )
    return _drive_hunt(search, args)


# --------------------------------------------------------------------- #
# service commands: repro serve, repro submit
# --------------------------------------------------------------------- #
def build_serve_parser() -> argparse.ArgumentParser:
    """Parser for ``repro serve``: the long-running HTTP service."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve the execution engine over HTTP: submit traces, runs, sweeps, "
            "and experiments; poll jobs; read live metrics (see repro.service)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8177, help="TCP port, 0 = ephemeral (default 8177)")
    parser.add_argument("--jobs", type=int, default=1, help="engine worker processes (default 1)")
    parser.add_argument("--no-cache", action="store_true", help="disable the shared result cache")
    parser.add_argument("--cache-dir", type=Path, default=None, help="result-cache root")
    parser.add_argument("--registry", type=Path, default=None, help="trace-corpus root")
    parser.add_argument("--queue-limit", type=int, default=64, help="admission queue bound (default 64)")
    parser.add_argument(
        "--max-pending", type=int, default=8,
        help="per-client live-job quota; beyond it submissions get 429 (default 8)",
    )
    parser.add_argument("--timeout", type=float, default=None, help="per-cell wall-clock budget (s)")
    parser.add_argument("--retries", type=int, default=0, help="retries per cell (default 0)")
    parser.add_argument("--keep-going", action="store_true", help="failed cells become FAIL rows")
    parser.add_argument("--runs-dir", type=Path, default=None, help="checkpoint root (default .repro_runs)")
    parser.add_argument("--run-id", default=None, help="name the service checkpoint explicitly")
    parser.add_argument("--no-checkpoint", action="store_true", help="do not journal completed cells")
    parser.add_argument(
        "--drain-timeout", type=float, default=5.0,
        help="seconds to wait for the running job on SIGTERM before exiting (default 5)",
    )
    return parser


def _serve_command(argv: List[str]) -> int:
    """Dispatch ``repro serve ...``: boot the asyncio HTTP frontend."""
    from .service.backend import ServiceBackend, ServiceQuota
    from .service.server import run_server

    args = build_serve_parser().parse_args(argv)
    if args.jobs < 1:
        print("repro serve: --jobs must be >= 1", file=sys.stderr)
        return 2
    ckpt = None
    if not args.no_checkpoint:
        config = {"serve": True, "jobs": args.jobs, "cache_dir": str(args.cache_dir) if args.cache_dir else None}
        ckpt = RunCheckpoint.start(["service"], config, root=args.runs_dir, run_id=args.run_id)
    backend = ServiceBackend(
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        policy=ExecutionPolicy(
            timeout_s=args.timeout, retries=args.retries, keep_going=args.keep_going
        ),
        checkpoint=ckpt,
        registry=str(args.registry) if args.registry else None,
        quota=ServiceQuota(max_queue=args.queue_limit, max_pending_per_client=args.max_pending),
    )
    with observability(metrics=True):
        return run_server(backend, host=args.host, port=args.port, drain_timeout=args.drain_timeout)


def build_submit_parser() -> argparse.ArgumentParser:
    """Parser for ``repro submit``: drive a running service as a client."""
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description=(
            "Submit work to a running 'repro serve' and render the rows exactly "
            "like the local CLI would (same tables, same CSV bytes)."
        ),
    )
    parser.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment id (e1..e11) to run remotely; omit when using --trace",
    )
    parser.add_argument("--url", required=True, help="service base URL (from 'repro serve')")
    parser.add_argument("--client", default="cli", help="client identity for quotas/metrics (default cli)")
    parser.add_argument("--scale", choices=("quick", "full"), default="quick")
    parser.add_argument("--seed", type=int, default=0, help="experiment base seed")
    parser.add_argument("--trace", default=None, help="server-side trace name/digest to run on")
    parser.add_argument("--algorithms", default="det-par", help="comma-separated algorithm names")
    parser.add_argument("--cache-size", type=int, default=None, help="physical cache size xi*k")
    parser.add_argument("--miss-cost", type=int, default=None, help="fault cost s")
    parser.add_argument("--xi", type=int, default=2, help="resource augmentation factor")
    parser.add_argument("--seeds", type=int, default=3, help="replication seeds (default 3)")
    parser.add_argument("--no-lb", action="store_true", help="skip the impact lower bound")
    parser.add_argument("--out", type=Path, default=None, help="write the rendered table here")
    parser.add_argument("--csv", type=Path, default=None, help="write the rows here as CSV")
    parser.add_argument("--timeout", type=float, default=600.0, help="client-side wait budget (s)")
    return parser


def _submit_command(argv: List[str]) -> int:
    """Dispatch ``repro submit ...``: one request against a service."""
    from .client.protocol import ExperimentRequest, RunRequest, ServiceError
    from .client.session import HttpSession

    args = build_submit_parser().parse_args(argv)
    if (args.experiment is None) == (args.trace is None):
        print("repro submit: name an experiment OR pass --trace", file=sys.stderr)
        return 2
    if args.trace is not None and (args.cache_size is None or args.miss_cost is None):
        print("repro submit: --trace requires --cache-size and --miss-cost", file=sys.stderr)
        return 2
    session = HttpSession(args.url, client=args.client, timeout=args.timeout)
    t0 = time.time()
    try:
        if args.experiment is not None:
            reply = session.experiment(
                ExperimentRequest(name=args.experiment, scale=args.scale, seed=args.seed, client=args.client)
            )
        else:
            algorithms = tuple(a.strip() for a in args.algorithms.split(",") if a.strip())
            reply = session.run(
                RunRequest(
                    algorithms=algorithms,
                    cache_size=args.cache_size,
                    miss_cost=args.miss_cost,
                    xi=args.xi,
                    seeds=tuple(range(args.seeds)),
                    trace=args.trace,
                    include_lb=not args.no_lb,
                    client=args.client,
                )
            )
    except ServiceError as exc:
        print(f"repro submit: {exc.code}: {exc.message}", file=sys.stderr)
        return 3 if exc.code in ("quota-exceeded", "queue-full") else 2
    text = reply.table.rstrip("\n") + "\n"
    print(text)
    print(
        f"[{reply.job_id}] {len(reply.rows)} rows in {time.time() - t0:.1f}s "
        f"(server compute {reply.elapsed_s:.1f}s, cells={reply.cells}, cache_hits={reply.cache_hits})"
    )
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text)
    if args.csv is not None:
        write_csv(list(reply.rows), args.csv)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    raw = list(argv) if argv is not None else sys.argv[1:]
    try:
        return _dispatch(raw)
    except BrokenPipeError:
        # a downstream pager/head closed the pipe mid-listing; exit quietly
        # like cat(1), parking stdout on devnull so interpreter shutdown
        # does not raise a second time flushing the dead descriptor
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _dispatch(raw: List[str]) -> int:
    # `trace`, `hunt`, `run`, `serve`, and `submit` take their own option
    # sets, so they dispatch to dedicated parsers before the experiment
    # parser sees the argv.  `repro run e1 ...` is accepted as a synonym for
    # `repro e1 ...` (the bare `run` form is reserved for trace-corpus
    # runs).
    if raw and raw[0] == "trace":
        return _trace_command(raw[1:])
    if raw and raw[0] == "hunt":
        return _hunt_command(raw[1:])
    if raw and raw[0] == "serve":
        return _serve_command(raw[1:])
    if raw and raw[0] == "submit":
        return _submit_command(raw[1:])
    if raw and raw[0] == "run":
        if len(raw) > 1 and (raw[1] in EXPERIMENTS or raw[1] == "all"):
            raw = raw[1:]
        else:
            return _run_trace_command(raw[1:])
    parser = build_parser()
    args = parser.parse_args(raw)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.timeout is not None and args.timeout <= 0:
        parser.error("--timeout must be positive")
    if args.arg is not None and args.experiment not in ("cache", "resume", "profile"):
        parser.error("a positional argument only applies to 'cache', 'resume', and 'profile'")
    if args.experiment == "profile":
        return _profile_command(args)
    if args.experiment == "cache":
        if args.arg not in (None, "stats", "clear"):
            parser.error("'cache' takes 'stats' or 'clear'")
        return _cache_command(args.arg, args.cache_dir)
    if args.experiment == "runs":
        return _runs_command(args.runs_dir)
    if args.experiment == "resume":
        return _resume_command(args.arg, args.runs_dir)
    if args.experiment == "list":
        _list_experiments()
        return 0
    if args.experiment == "viz":
        _viz(args)
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    config = _experiment_config(args)
    ckpt = None
    if not args.no_checkpoint:
        ckpt = RunCheckpoint.start(names, config, root=args.runs_dir, run_id=args.run_id)
    return _run_experiments(names, config, ckpt)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
