"""Command-line interface: ``repro <experiment> [--scale full] [--seed N]``.

Examples
--------
Run the Theorem 1 experiment at CI scale and print the table::

    repro e1

Run the full Theorem 4 separation, save the table and CSV::

    repro e7 --scale full --out results/e7.md --csv results/e7.csv

Run everything on 8 workers with the result cache warm-started, dumping
per-cell telemetry as JSON lines::

    repro all --scale quick --jobs 8 --telemetry runs.jsonl

Manage the content-addressed result cache::

    repro cache stats
    repro cache clear
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from .analysis.report import write_csv
from .exec import TELEMETRY, ResultCache, execution
from .experiments import EXPERIMENTS, run_named_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and docs tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction experiments for 'Online Parallel Paging with Optimal "
            "Makespan' (SPAA '22). Each experiment id maps to a paper claim; "
            "see DESIGN.md §5."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list", "viz", "cache"],
        help=(
            "experiment id (e1..e11), 'all', 'list' (index), 'viz' (schedule "
            "visualization), or 'cache' (result-cache management)"
        ),
    )
    parser.add_argument(
        "cache_op",
        nargs="?",
        choices=("stats", "clear"),
        default=None,
        help="with 'cache': the operation to perform (default: stats)",
    )
    parser.add_argument("--scale", choices=("quick", "full"), default="quick", help="experiment size")
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument("--out", type=Path, default=None, help="write the rendered report here")
    parser.add_argument("--csv", type=Path, default=None, help="write the raw rows here as CSV")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for experiment cells (default 1 = serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-addressed result cache (always recompute)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="result-cache root (default $REPRO_CACHE_DIR or ./.repro_cache)",
    )
    parser.add_argument(
        "--telemetry", type=Path, default=None, metavar="JSONL",
        help="append per-cell telemetry records to this JSON-lines file",
    )
    parser.add_argument("--algorithm", default="det-par", help="viz: algorithm name (see registry)")
    parser.add_argument("--p", type=int, default=8, help="viz: number of processors")
    parser.add_argument("--k", type=int, default=None, help="viz: OPT cache size (default 4p)")
    parser.add_argument("--miss-cost", type=int, default=32, help="viz: fault cost s")
    return parser


def _run_one(
    name: str,
    scale: str,
    seed: int,
    out: Optional[Path],
    csv_path: Optional[Path],
    telemetry_path: Optional[Path],
) -> None:
    mark = len(TELEMETRY)
    t0 = time.time()
    rows, text = run_named_experiment(name, scale=scale, seed=seed)
    elapsed = time.time() - t0
    text = text.rstrip("\n") + "\n\n" + TELEMETRY.render(since=mark) + "\n"
    print(text)
    print(f"[{name}] {len(rows)} rows in {elapsed:.1f}s (scale={scale}, seed={seed})\n")
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text)
    if csv_path is not None:
        write_csv(rows, csv_path)
    if telemetry_path is not None:
        TELEMETRY.write_jsonl(telemetry_path, since=mark)


def _list_experiments() -> None:
    width = max(len(n) for n in EXPERIMENTS)
    for name in sorted(EXPERIMENTS, key=lambda n: int(n[1:])):
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
        print(f"{name.rjust(width)}  {doc}")


def _cache_command(op: Optional[str], cache_dir: Optional[Path]) -> int:
    """``repro cache stats|clear``: inspect or empty the result cache."""
    cache = ResultCache(cache_dir)
    if op in (None, "stats"):
        print(cache.stats().render())
    elif op == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached entries from {cache.root}")
    return 0


def _viz(args) -> None:
    """Run one algorithm on a demo workload and draw its schedule."""
    import numpy as np

    from .analysis.gantt import render_gantt, render_memory_profile
    from .parallel.schedulers import RunSpec, make_algorithm
    from .workloads.generators import make_parallel_workload

    from .core.rand_par import next_power_of_two

    k = next_power_of_two(args.k or 4 * args.p)
    wl = make_parallel_workload(
        p=args.p, n_requests=400, k=k, rng=np.random.default_rng(args.seed), kind="multiscale"
    )
    spec = RunSpec(
        algorithm=args.algorithm, cache_size=2 * k, miss_cost=args.miss_cost, xi=2, seed=args.seed
    )
    result = make_algorithm(spec).run(wl)
    print(f"{args.algorithm} on {wl.describe()}  makespan={result.makespan}\n")
    print(render_gantt(result, width=84, title="schedule (rows = processors):"))
    print(render_memory_profile(result, width=84, height=8, title="reserved cache over time:"))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.cache_op is not None and args.experiment != "cache":
        parser.error("'stats'/'clear' only apply to the 'cache' command")
    if args.experiment == "cache":
        return _cache_command(args.cache_op, args.cache_dir)
    if args.experiment == "list":
        _list_experiments()
        return 0
    if args.experiment == "viz":
        _viz(args)
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    with execution(jobs=args.jobs, cache=not args.no_cache, cache_dir=args.cache_dir):
        for name in names:
            if args.experiment == "all":
                out = args.out / f"{name}.md" if args.out else None
                csv_path = args.csv / f"{name}.csv" if args.csv else None
            else:
                out, csv_path = args.out, args.csv
            _run_one(name, args.scale, args.seed, out, csv_path, args.telemetry)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
