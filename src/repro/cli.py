"""Command-line interface: ``repro <experiment> [--scale full] [--seed N]``.

Examples
--------
Run the Theorem 1 experiment at CI scale and print the table::

    repro e1

Run the full Theorem 4 separation, save the table and CSV::

    repro e7 --scale full --out results/e7.md --csv results/e7.csv

Run everything::

    repro all --scale quick
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from .analysis.report import write_csv
from .experiments import EXPERIMENTS, run_named_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and docs tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction experiments for 'Online Parallel Paging with Optimal "
            "Makespan' (SPAA '22). Each experiment id maps to a paper claim; "
            "see DESIGN.md §5."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list", "viz"],
        help="experiment id (e1..e11), 'all', 'list' (index), or 'viz' (schedule visualization)",
    )
    parser.add_argument("--scale", choices=("quick", "full"), default="quick", help="experiment size")
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument("--out", type=Path, default=None, help="write the rendered report here")
    parser.add_argument("--csv", type=Path, default=None, help="write the raw rows here as CSV")
    parser.add_argument("--algorithm", default="det-par", help="viz: algorithm name (see registry)")
    parser.add_argument("--p", type=int, default=8, help="viz: number of processors")
    parser.add_argument("--k", type=int, default=None, help="viz: OPT cache size (default 4p)")
    parser.add_argument("--miss-cost", type=int, default=32, help="viz: fault cost s")
    return parser


def _run_one(name: str, scale: str, seed: int, out: Optional[Path], csv_path: Optional[Path]) -> None:
    t0 = time.time()
    rows, text = run_named_experiment(name, scale=scale, seed=seed)
    elapsed = time.time() - t0
    print(text)
    print(f"[{name}] {len(rows)} rows in {elapsed:.1f}s (scale={scale}, seed={seed})\n")
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text)
    if csv_path is not None:
        write_csv(rows, csv_path)


def _list_experiments() -> None:
    width = max(len(n) for n in EXPERIMENTS)
    for name in sorted(EXPERIMENTS, key=lambda n: int(n[1:])):
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
        print(f"{name.rjust(width)}  {doc}")


def _viz(args) -> None:
    """Run one algorithm on a demo workload and draw its schedule."""
    import numpy as np

    from .analysis.gantt import render_gantt, render_memory_profile
    from .parallel.schedulers import make_algorithm
    from .workloads.generators import make_parallel_workload

    from .core.rand_par import next_power_of_two

    k = next_power_of_two(args.k or 4 * args.p)
    wl = make_parallel_workload(
        p=args.p, n_requests=400, k=k, rng=np.random.default_rng(args.seed), kind="multiscale"
    )
    alg = make_algorithm(args.algorithm, 2 * k, args.miss_cost, seed=args.seed)
    result = alg.run(wl)
    print(f"{args.algorithm} on {wl.describe()}  makespan={result.makespan}\n")
    print(render_gantt(result, width=84, title="schedule (rows = processors):"))
    print(render_memory_profile(result, width=84, height=8, title="reserved cache over time:"))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        _list_experiments()
        return 0
    if args.experiment == "viz":
        _viz(args)
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        if args.experiment == "all":
            out = args.out / f"{name}.md" if args.out else None
            csv_path = args.csv / f"{name}.csv" if args.csv else None
        else:
            out, csv_path = args.out, args.csv
        _run_one(name, args.scale, args.seed, out, csv_path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
