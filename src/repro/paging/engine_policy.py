"""Box execution under arbitrary replacement policies.

The paper's WLOG fixes LRU inside boxes (within O(1), nothing better is
possible online), and the hot path :func:`repro.paging.engine.run_box`
hard-codes it.  This module provides the *general* form for substrate
experiments and tests:

* :func:`run_box_policy` — run a box with any
  :class:`~repro.paging.policies.ReplacementPolicy` (FIFO, marking,
  randomized MARK, …);
* :func:`run_box_min` — run a box with Belady's MIN *inside the box*
  (offline-optimal replacement given the box's cold start and budget),
  which upper-bounds how much any replacement policy could gain within
  the compartmentalized model.

The differential tests use these to quantify the LRU-vs-MIN in-box gap
(a constant; that constant is part of the O(1) the WLOG absorbs).
"""

from __future__ import annotations

import heapq
from typing import Dict, List

import numpy as np

from .engine import BoxRun
from .policies import ReplacementPolicy

__all__ = ["run_box_policy", "run_box_min"]


def run_box_policy(
    seq: np.ndarray,
    start: int,
    policy: ReplacementPolicy,
    budget: int,
    miss_cost: int,
) -> BoxRun:
    """Execute requests in a box managed by ``policy`` (fresh/cleared).

    Semantics identical to :func:`repro.paging.engine.run_box` except the
    replacement decisions come from ``policy``.  The policy is cleared
    first (compartmentalized cold start).
    """
    if miss_cost <= 1:
        raise ValueError(f"miss_cost must be > 1, got {miss_cost}")
    policy.clear()
    n = len(seq)
    pos = start
    t = 0
    hits = 0
    faults = 0
    mc = int(miss_cost)
    while pos < n:
        page = int(seq[pos])
        if page in policy:
            if t + 1 > budget:
                break
            policy.touch(page)
            t += 1
            hits += 1
        else:
            if t + mc > budget:
                break
            policy.touch(page)
            t += mc
            faults += 1
        pos += 1
    return BoxRun(
        start=start,
        end=pos,
        hits=hits,
        faults=faults,
        time_used=t,
        budget=int(budget),
        height=policy.capacity,
    )


def run_box_min(
    seq: np.ndarray,
    start: int,
    height: int,
    budget: int,
    miss_cost: int,
) -> BoxRun:
    """Execute a box with Belady's MIN replacement (cold start).

    "Next use" is computed over the *entire remaining sequence* (the
    offline algorithm sees the future beyond the box), which only makes
    MIN stronger — exactly what an upper-bound comparator should be.

    O(m log m) in the number of requests served.
    """
    if height < 1:
        raise ValueError(f"box height must be >= 1, got {height}")
    if miss_cost <= 1:
        raise ValueError(f"miss_cost must be > 1, got {miss_cost}")
    n = len(seq)
    mc = int(miss_cost)
    # lazy next-use: walk forward recording last-seen; we need next use at
    # each position in the served window, so scan ahead on demand.
    # Simpler: compute next_use for the suffix once (O(n - start)).
    nxt = np.full(n - start, n, dtype=np.int64)
    last: Dict[int, int] = {}
    for i in range(n - 1, start - 1, -1):
        page = int(seq[i])
        nxt[i - start] = last.get(page, n)
        last[page] = i
    resident: Dict[int, int] = {}
    heap: List = []
    pos = start
    t = 0
    hits = 0
    faults = 0
    while pos < n:
        page = int(seq[pos])
        nu = int(nxt[pos - start])
        if page in resident:
            if t + 1 > budget:
                break
            t += 1
            hits += 1
        else:
            if t + mc > budget:
                break
            t += mc
            faults += 1
            if len(resident) >= height:
                while True:
                    neg, victim = heapq.heappop(heap)
                    if resident.get(victim) == -neg:
                        del resident[victim]
                        break
        resident[page] = nu
        heapq.heappush(heap, (-nu, page))
        pos += 1
    return BoxRun(
        start=start,
        end=pos,
        hits=hits,
        faults=faults,
        time_used=t,
        budget=int(budget),
        height=int(height),
    )
