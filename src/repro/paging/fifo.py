"""FIFO replacement policy.

FIFO evicts the page that has been resident the longest, regardless of use.
It is a classical marking-free baseline: like LRU it is k/(k-h+1)-competitive
for sequential paging, but it lacks the inclusion (stack) property, which
makes it a useful *negative* fixture in the test suite (e.g. the
stack-distance machinery of :mod:`repro.paging.stack` applies to LRU but not
FIFO, and tests assert the difference on Belady-anomaly workloads).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Set

from .policies import register_policy

__all__ = ["FIFOCache"]


@register_policy("fifo")
class FIFOCache:
    """First-in-first-out cache of at most ``capacity`` pages."""

    __slots__ = ("capacity", "_resident", "_queue", "hits", "faults", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"FIFO capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._resident: Set[int] = set()
        self._queue: Deque[int] = deque()
        self.hits = 0
        self.faults = 0
        self.evictions = 0

    def touch(self, page: int) -> bool:
        """Serve one request; return True on hit, False on fault."""
        if page in self._resident:
            self.hits += 1
            return True
        self.faults += 1
        if len(self._resident) >= self.capacity:
            victim = self._queue.popleft()
            self._resident.remove(victim)
            self.evictions += 1
        self._resident.add(page)
        self._queue.append(page)
        return False

    def __contains__(self, page: int) -> bool:
        return page in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def clear(self) -> None:
        """Empty the cache; keeps counters (mirrors LRUCache.clear)."""
        self._resident.clear()
        self._queue.clear()

    def reset_counters(self) -> None:
        """Zero the hit/fault/eviction counters without touching contents."""
        self.hits = self.faults = self.evictions = 0

    def pages_fifo_order(self) -> List[int]:
        """Resident pages, oldest first (next victim first)."""
        return list(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FIFOCache(capacity={self.capacity}, size={len(self)}, hits={self.hits}, faults={self.faults})"
