"""O(1) LRU cache built on a hash map plus an intrusive doubly-linked list.

This is the single hottest data structure in the repository: every box a
parallel-paging algorithm allocates is executed by running LRU over a slice
of the processor's request sequence (see :mod:`repro.paging.engine`), so
``touch`` must be strictly O(1) with no per-request allocation beyond the
node created on first admission of a page.

We deliberately do *not* use :class:`collections.OrderedDict`:
``move_to_end`` + ``popitem`` would also be O(1), but an explicit node list
keeps eviction callbacks, residency snapshots, and the recency iteration
order (needed by stack-distance cross-checks in tests) cheap and obvious.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .policies import register_policy

__all__ = ["LRUCache"]


class _Node:
    """Intrusive list node; ``__slots__`` keeps it at two words + key."""

    __slots__ = ("page", "prev", "next")

    def __init__(self, page: int) -> None:
        self.page = page
        self.prev: Optional[_Node] = None
        self.next: Optional[_Node] = None


@register_policy("lru")
class LRUCache:
    """Least-recently-used cache of at most ``capacity`` pages.

    The list is ordered most-recent first.  ``touch`` returns ``True`` for a
    hit and ``False`` for a fault; faults admit the page, evicting the
    least-recently-used resident when the cache is full.

    Parameters
    ----------
    capacity:
        Maximum number of resident pages; must be >= 1.  (A zero-capacity
        cache would make every request a fault with nothing to evict; the
        paging model never produces one because box heights are >= 1.)
    """

    __slots__ = ("capacity", "_map", "_head", "_tail", "hits", "faults", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._map: Dict[int, _Node] = {}
        self._head: Optional[_Node] = None  # most recently used
        self._tail: Optional[_Node] = None  # least recently used
        self.hits = 0
        self.faults = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # list plumbing
    # ------------------------------------------------------------------ #
    def _unlink(self, node: _Node) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        node.prev = node.next = None

    def _push_front(self, node: _Node) -> None:
        node.prev = None
        node.next = self._head
        if self._head is not None:
            self._head.prev = node
        self._head = node
        if self._tail is None:
            self._tail = node

    # ------------------------------------------------------------------ #
    # policy protocol
    # ------------------------------------------------------------------ #
    def touch(self, page: int) -> bool:
        """Serve one request; return True on hit, False on fault."""
        node = self._map.get(page)
        if node is not None:
            self.hits += 1
            if node is not self._head:
                self._unlink(node)
                self._push_front(node)
            return True
        self.faults += 1
        if len(self._map) >= self.capacity:
            victim = self._tail
            assert victim is not None  # capacity >= 1 and map nonempty
            self._unlink(victim)
            del self._map[victim.page]
            self.evictions += 1
        node = _Node(page)
        self._map[page] = node
        self._push_front(node)
        return False

    def peek_victim(self) -> Optional[int]:
        """Page that would be evicted next (LRU end), or None if empty."""
        return None if self._tail is None else self._tail.page

    def __contains__(self, page: int) -> bool:
        return page in self._map

    def __len__(self) -> int:
        return len(self._map)

    def clear(self) -> None:
        """Empty the cache (compartmentalized cold start); keeps counters."""
        self._map.clear()
        self._head = self._tail = None

    def reset_counters(self) -> None:
        """Zero the hit/fault/eviction counters without touching contents."""
        self.hits = self.faults = self.evictions = 0

    def pages_mru_order(self) -> List[int]:
        """Resident pages, most-recently-used first (for tests/inspection)."""
        out: List[int] = []
        node = self._head
        while node is not None:
            out.append(node.page)
            node = node.next
        return out

    def __iter__(self) -> Iterator[int]:
        return iter(self.pages_mru_order())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LRUCache(capacity={self.capacity}, size={len(self)}, hits={self.hits}, faults={self.faults})"
