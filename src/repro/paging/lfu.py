"""LFU (least-frequently-used) replacement.

LFU evicts the resident page with the fewest accesses since admission
(ties broken by least-recent use).  It is the classical *frequency*
counterpoint to LRU's *recency*: strong on stable popularity skew (Zipf),
pathological when popularity shifts — old hot pages squat in the cache on
stale counts.  Here it completes the substrate's policy menu for the
policies-tour example and in-box ablations.

Implementation: dict of per-page ``(count, last_use)`` plus a lazy
min-heap of ``(count, last_use, page)`` snapshots; stale heap entries are
discarded on pop (same lazy-deletion idiom as the Belady simulator), so
``touch`` is O(log n) amortized.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from .policies import register_policy

__all__ = ["LFUCache"]


@register_policy("lfu")
class LFUCache:
    """Least-frequently-used cache of at most ``capacity`` pages."""

    __slots__ = ("capacity", "_stats", "_heap", "_clock", "hits", "faults", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"LFU capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._stats: Dict[int, Tuple[int, int]] = {}  # page -> (count, last_use)
        self._heap: List[Tuple[int, int, int]] = []  # (count, last_use, page)
        self._clock = 0
        self.hits = 0
        self.faults = 0
        self.evictions = 0

    def touch(self, page: int) -> bool:
        """Serve one request; return True on hit, False on fault."""
        page = int(page)
        self._clock += 1
        stat = self._stats.get(page)
        if stat is not None:
            self.hits += 1
            entry = (stat[0] + 1, self._clock)
            self._stats[page] = entry
            heapq.heappush(self._heap, (entry[0], entry[1], page))
            return True
        self.faults += 1
        if len(self._stats) >= self.capacity:
            while True:
                count, last, victim = heapq.heappop(self._heap)
                if self._stats.get(victim) == (count, last):
                    del self._stats[victim]
                    self.evictions += 1
                    break
        entry = (1, self._clock)
        self._stats[page] = entry
        heapq.heappush(self._heap, (1, self._clock, page))
        return False

    def frequency_of(self, page: int) -> int:
        """Access count of a resident page (0 if not resident)."""
        stat = self._stats.get(int(page))
        return stat[0] if stat is not None else 0

    def __contains__(self, page: int) -> bool:
        return int(page) in self._stats

    def __len__(self) -> int:
        return len(self._stats)

    def clear(self) -> None:
        """Empty the cache (cold start); keeps counters."""
        self._stats.clear()
        self._heap.clear()

    def reset_counters(self) -> None:
        """Zero the hit/fault/eviction counters without touching contents."""
        self.hits = self.faults = self.evictions = 0
