"""Compiled box-kernel primitives behind ``REPRO_KERNEL=native``.

The numpy fast path (:mod:`repro.paging.kernel`) already amortizes the
reuse-distance precompute, but three inner loops remain bound by python
or by O(window) vectorized work per probe:

* the reuse-distance Fenwick sweep (python loop beyond the vectorized
  build cutoff, O(n²/chunk) numpy below it),
* the per-box service walk (a cumsum over the whole budget window even
  when the box serves a dozen requests), and
* the offline green DP relaxation (a python ``zip`` loop over every
  reachable position × ladder level).

This module provides those loops as compiled primitives with two
flavors, tried in order:

* ``numba`` — ``@njit`` kernels, when the optional dependency imports;
* ``cc`` — a tiny C translation unit compiled on demand with the
  system C compiler into a content-addressed shared library and loaded
  through :mod:`ctypes` (no third-party dependency at all).

Both flavors implement the *identical* integer algorithms, so every
value they produce — reuse distances, box endpoints, DP distances and
parent pointers — is bit-identical to the numpy fast path and to the
dict-LRU reference.  When neither flavor is available
:func:`native_ops` returns ``None`` and ``REPRO_KERNEL=native``
gracefully degrades to the numpy fast path (see
:func:`repro.paging.kernel.kernel_backend`).

``$REPRO_NATIVE`` pins the flavor: ``auto`` (default), ``numba``,
``cc``, or ``off`` (pretend neither is available — used by CI to prove
the fallback).  ``$REPRO_NATIVE_CACHE`` overrides the build directory
for the cc flavor.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple

import numpy as np

__all__ = ["NativeOps", "native_ops", "native_flavor", "NATIVE_ENV", "clear_native_cache"]

#: Environment variable pinning the native flavor (auto/numba/cc/off).
NATIVE_ENV = "REPRO_NATIVE"
#: Environment variable overriding the cc build cache directory.
NATIVE_CACHE_ENV = "REPRO_NATIVE_CACHE"

_C_SOURCE = r"""
#include <stdint.h>

/* Reuse-distance sweep in deletion form (cf. SequenceKernel.__init__):
 * position j is marked in the Fenwick tree once its page reoccurs, so
 * the distinct count between an occurrence pair (j, i) is the gap
 * length minus the marks inside it.  Rows in [0, lo) are processed for
 * their tree marks but not written, which is exactly what the
 * streaming kernel's suffix rebuild needs.  `tree` must be zeroed,
 * length cap + 1, cap >= hi. */
void repro_reuse_sweep(const int64_t *prev, int64_t lo, int64_t hi,
                       int64_t cold, int64_t *tree, int64_t cap,
                       int64_t *reuse) {
    int64_t i, j, x, acc;
    for (i = 0; i < hi; i++) {
        j = prev[i];
        if (j >= 0) {
            if (i >= lo) {
                acc = i - 1 - j;
                for (x = i; x > 0; x -= x & (-x))
                    acc -= tree[x];
                for (x = j + 1; x > 0; x -= x & (-x))
                    acc += tree[x];
                reuse[i] = acc;
            }
            for (x = j + 1; x <= cap; x += x & (-x))
                tree[x] += 1;
        } else if (i >= lo) {
            reuse[i] = cold;
        }
    }
}

/* One box service walk: the reference loop over the precomputed hit
 * predicate (hit iff prev[i] >= start && reuse[i] < height).  Writes
 * (served, hits, time_used) into out3. */
void repro_box_run(const int64_t *prev, const int64_t *reuse, int64_t n,
                   int64_t start, int64_t height, int64_t budget,
                   int64_t s, int64_t *out3) {
    int64_t i = start, t = 0, hits = 0, c;
    while (i < n) {
        c = (prev[i] >= start && reuse[i] < height) ? 1 : s;
        if (t + c > budget)
            break;
        t += c;
        hits += (c == 1);
        i++;
    }
    out3[0] = i - start;
    out3[1] = hits;
    out3[2] = t;
}

/* Box endpoints for a block of B consecutive starts across a whole
 * ascending height ladder.  lev[i] is the first ladder index whose
 * height exceeds reuse[i] (so level l hits i iff lev[i] <= l), which
 * collapses the nested hit sets to one comparison per request. */
void repro_ladder_block(const int64_t *prev, const int64_t *lev, int64_t n,
                        int64_t L, const int64_t *budgets, int64_t s,
                        int64_t q0, int64_t B, int64_t *ends_out) {
    int64_t b, l, q, budget, t, i, c;
    for (b = 0; b < B; b++) {
        q = q0 + b;
        for (l = 0; l < L; l++) {
            budget = budgets[l];
            t = 0;
            i = q;
            while (i < n) {
                c = (prev[i] >= q && lev[i] <= l) ? 1 : s;
                if (t + c > budget)
                    break;
                t += c;
                i++;
            }
            ends_out[b * L + l] = i;
        }
    }
}

/* The whole offline green DP relaxation (repro.green.offline): ascending
 * positions, ascending ladder levels, strict-< improvement — the exact
 * tie-breaking of the python sweep, so distances and parent pointers
 * are bit-identical.  dist has length n + 1 with dist[0] = 0 and inf
 * elsewhere on entry. */
void repro_dp_solve(const int64_t *prev, const int64_t *lev, int64_t n,
                    int64_t L, const int64_t *budgets, const int64_t *costs,
                    const int64_t *heights, int64_t s, int64_t inf,
                    int64_t *dist, int64_t *parent_pos, int64_t *parent_h) {
    int64_t q, l, d, budget, t, i, c, nd;
    for (q = 0; q < n; q++) {
        d = dist[q];
        if (d == inf)
            continue;
        for (l = 0; l < L; l++) {
            budget = budgets[l];
            t = 0;
            i = q;
            while (i < n) {
                c = (prev[i] >= q && lev[i] <= l) ? 1 : s;
                if (t + c > budget)
                    break;
                t += c;
                i++;
            }
            nd = d + costs[l];
            if (nd < dist[i]) {
                dist[i] = nd;
                parent_pos[i] = q;
                parent_h[i] = heights[l];
            }
        }
    }
}
"""


@dataclass(frozen=True)
class NativeOps:
    """Flavor-agnostic handle to the compiled kernel primitives.

    Every callable takes contiguous int64 numpy arrays and plain ints;
    output arrays are filled in place.  ``flavor`` is ``"numba"`` or
    ``"cc"`` (reported by benchmarks and the ``sim.*`` metrics).
    """

    flavor: str
    reuse_sweep: Callable[..., None]
    box_run: Callable[..., List[int]]
    ladder_block: Callable[..., None]
    dp_solve: Callable[..., None]
    #: ``prepare(prev, reuse)`` -> opaque handle; ``box_probe(handle, ...)``
    #: is ``box_run`` minus the per-call pointer/array marshalling, for
    #: call sites that probe the same arrays tens of thousands of times
    #: (the streamed box server).  The handle keeps the arrays alive and
    #: must be dropped whenever they are replaced.
    prepare: Callable[..., object]
    box_probe: Callable[..., List[int]]


def _i64(arr: np.ndarray) -> np.ndarray:
    """Contiguous int64 view/copy (inputs are int64 already on hot paths)."""
    return np.ascontiguousarray(arr, dtype=np.int64)


# --------------------------------------------------------------------- #
# cc flavor: compile-on-demand C shared library, loaded via ctypes
# --------------------------------------------------------------------- #
def _cc_build_dir() -> Path:
    override = os.environ.get(NATIVE_CACHE_ENV)
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / f"repro-native-{os.getuid() if hasattr(os, 'getuid') else 'u'}"


def _compile_cc() -> Optional[ctypes.CDLL]:
    """Compile (once, content-addressed) and load the C translation unit."""
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    suffix = ".so" if sys.platform != "win32" else ".dll"
    build = _cc_build_dir()
    lib_path = build / f"repro_kernel_{digest}{suffix}"
    if not lib_path.exists():
        compiler = os.environ.get("CC") or "cc"
        try:
            build.mkdir(parents=True, exist_ok=True)
            src = build / f"repro_kernel_{digest}.c"
            src.write_text(_C_SOURCE)
            with tempfile.NamedTemporaryFile(
                dir=build, suffix=suffix + ".tmp", delete=False
            ) as tmp:
                tmp_path = tmp.name
            cmd = [compiler, "-O2", "-shared", "-fPIC", "-o", tmp_path, str(src)]
            proc = subprocess.run(
                cmd, capture_output=True, timeout=120, check=False
            )
            if proc.returncode != 0:
                os.unlink(tmp_path)
                return None
            os.replace(tmp_path, lib_path)  # atomic under concurrent builds
        except (OSError, subprocess.SubprocessError):
            return None
    try:
        return ctypes.CDLL(str(lib_path))
    except OSError:
        return None


def _cc_ops() -> Optional[NativeOps]:
    lib = _compile_cc()
    if lib is None:
        return None
    c_i64 = ctypes.c_int64
    p_i64 = ctypes.c_void_p  # raw addresses: ndarray.ctypes.data ints pass
    # straight through, skipping data_as()'s cast machinery per call
    for name, argtypes in (
        ("repro_reuse_sweep", [p_i64, c_i64, c_i64, c_i64, p_i64, c_i64, p_i64]),
        ("repro_box_run", [p_i64, p_i64, c_i64, c_i64, c_i64, c_i64, c_i64, p_i64]),
        ("repro_ladder_block", [p_i64, p_i64, c_i64, c_i64, p_i64, c_i64, c_i64, c_i64, p_i64]),
        ("repro_dp_solve", [p_i64, p_i64, c_i64, c_i64, p_i64, p_i64, p_i64, c_i64, c_i64, p_i64, p_i64, p_i64]),
    ):
        fn = getattr(lib, name)
        fn.argtypes = argtypes
        fn.restype = None

    def ptr(arr: np.ndarray) -> int:
        return arr.ctypes.data

    # per-thread (out array, out pointer) scratch for box probes: the C
    # call releases the GIL, so a shared buffer could race across threads
    tls = threading.local()

    def _out():
        pair = getattr(tls, "pair", None)
        if pair is None:
            arr = np.empty(3, dtype=np.int64)
            pair = tls.pair = (arr, ptr(arr))
        return pair

    box_fn = lib.repro_box_run

    def reuse_sweep(prev, lo, hi, cold, tree, cap, reuse):
        lib.repro_reuse_sweep(ptr(prev), lo, hi, cold, ptr(tree), cap, ptr(reuse))

    def box_run(prev, reuse, n, start, height, budget, s):
        out, optr = _out()
        box_fn(ptr(prev), ptr(reuse), n, start, height, budget, s, optr)
        return out.tolist()

    def prepare(prev, reuse):
        # the handle holds the arrays alongside their raw pointers so the
        # pointers can never dangle
        return (ptr(prev), ptr(reuse), prev, reuse)

    def box_probe(handle, n, start, height, budget, s):
        # flattened _out(): this runs once per event-driven box, where a
        # spare function frame is measurable
        try:
            out, optr = tls.pair
        except AttributeError:
            arr = np.empty(3, dtype=np.int64)
            out, optr = tls.pair = (arr, ptr(arr))
        box_fn(handle[0], handle[1], n, start, height, budget, s, optr)
        return out.tolist()

    def ladder_block(prev, lev, n, budgets, s, q0, B, ends_out):
        lib.repro_ladder_block(
            ptr(prev), ptr(lev), n, len(budgets), ptr(budgets), s, q0, B, ptr(ends_out)
        )

    def dp_solve(prev, lev, budgets, costs, heights, s, inf, dist, parent_pos, parent_h):
        lib.repro_dp_solve(
            ptr(prev), ptr(lev), len(prev), len(budgets), ptr(budgets), ptr(costs),
            ptr(heights), s, inf, ptr(dist), ptr(parent_pos), ptr(parent_h),
        )

    return NativeOps(
        flavor="cc",
        reuse_sweep=reuse_sweep,
        box_run=box_run,
        ladder_block=ladder_block,
        dp_solve=dp_solve,
        prepare=prepare,
        box_probe=box_probe,
    )


# --------------------------------------------------------------------- #
# numba flavor
# --------------------------------------------------------------------- #
def _numba_ops() -> Optional[NativeOps]:
    try:
        from numba import njit  # type: ignore
    except ImportError:
        return None

    @njit(cache=True)
    def _nb_reuse_sweep(prev, lo, hi, cold, tree, cap, reuse):  # pragma: no cover — jit
        for i in range(hi):
            j = prev[i]
            if j >= 0:
                if i >= lo:
                    acc = i - 1 - j
                    x = i
                    while x > 0:
                        acc -= tree[x]
                        x -= x & (-x)
                    x = j + 1
                    while x > 0:
                        acc += tree[x]
                        x -= x & (-x)
                    reuse[i] = acc
                x = j + 1
                while x <= cap:
                    tree[x] += 1
                    x += x & (-x)
            elif i >= lo:
                reuse[i] = cold

    @njit(cache=True)
    def _nb_box_run(prev, reuse, n, start, height, budget, s, out3):  # pragma: no cover — jit
        i = start
        t = np.int64(0)
        hits = np.int64(0)
        while i < n:
            c = 1 if (prev[i] >= start and reuse[i] < height) else s
            if t + c > budget:
                break
            t += c
            if c == 1:
                hits += 1
            i += 1
        out3[0] = i - start
        out3[1] = hits
        out3[2] = t

    @njit(cache=True)
    def _nb_ladder_block(prev, lev, n, L, budgets, s, q0, B, ends_out):  # pragma: no cover — jit
        for b in range(B):
            q = q0 + b
            for l in range(L):
                budget = budgets[l]
                t = np.int64(0)
                i = q
                while i < n:
                    c = 1 if (prev[i] >= q and lev[i] <= l) else s
                    if t + c > budget:
                        break
                    t += c
                    i += 1
                ends_out[b * L + l] = i

    @njit(cache=True)
    def _nb_dp_solve(prev, lev, n, L, budgets, costs, heights, s, inf, dist, parent_pos, parent_h):  # pragma: no cover — jit
        for q in range(n):
            d = dist[q]
            if d == inf:
                continue
            for l in range(L):
                budget = budgets[l]
                t = np.int64(0)
                i = q
                while i < n:
                    c = 1 if (prev[i] >= q and lev[i] <= l) else s
                    if t + c > budget:
                        break
                    t += c
                    i += 1
                nd = d + costs[l]
                if nd < dist[i]:
                    dist[i] = nd
                    parent_pos[i] = q
                    parent_h[i] = heights[l]

    tls = threading.local()

    def _out():
        out = getattr(tls, "out", None)
        if out is None:
            out = tls.out = np.empty(3, dtype=np.int64)
        return out

    def box_run(prev, reuse, n, start, height, budget, s):
        out = _out()
        _nb_box_run(prev, reuse, n, start, height, budget, s, out)
        return out.tolist()

    def prepare(prev, reuse):
        return (prev, reuse)

    def box_probe(handle, n, start, height, budget, s):
        try:
            out = tls.out
        except AttributeError:
            out = tls.out = np.empty(3, dtype=np.int64)
        _nb_box_run(handle[0], handle[1], n, start, height, budget, s, out)
        return out.tolist()

    def ladder_block(prev, lev, n, budgets, s, q0, B, ends_out):
        _nb_ladder_block(prev, lev, n, len(budgets), budgets, s, q0, B, ends_out)

    def dp_solve(prev, lev, budgets, costs, heights, s, inf, dist, parent_pos, parent_h):
        _nb_dp_solve(
            prev, lev, len(prev), len(budgets), budgets, costs, heights, s, inf,
            dist, parent_pos, parent_h,
        )

    try:
        # force one compilation now so an unusable numba (missing llvmlite,
        # unsupported python) degrades to the cc flavor instead of raising
        # from a hot loop later
        probe = np.zeros(1, dtype=np.int64)
        _nb_reuse_sweep(np.full(1, -1, dtype=np.int64), 0, 1, 0, np.zeros(2, dtype=np.int64), 1, probe)
    except Exception:
        return None
    return NativeOps(
        flavor="numba",
        reuse_sweep=_nb_reuse_sweep,
        box_run=box_run,
        ladder_block=ladder_block,
        dp_solve=dp_solve,
        prepare=prepare,
        box_probe=box_probe,
    )


# --------------------------------------------------------------------- #
# flavor selection
# --------------------------------------------------------------------- #
_OPS_CACHE: dict = {}


def native_ops() -> Optional[NativeOps]:
    """The active compiled primitives, or ``None`` when unavailable.

    Flavor is chosen by ``$REPRO_NATIVE``: ``auto`` (default; numba
    first, then cc), ``numba``, ``cc``, or ``off``.  The probe result is
    cached per flavor request, so hot paths pay one dict lookup.
    """
    mode = os.environ.get(NATIVE_ENV, "auto").strip().lower() or "auto"
    if mode == "off":
        return None
    if mode not in ("auto", "numba", "cc"):
        raise ValueError(
            f"unknown {NATIVE_ENV} flavor {mode!r}; expected 'auto', 'numba', 'cc', or 'off'"
        )
    if mode in _OPS_CACHE:
        return _OPS_CACHE[mode]
    ops: Optional[NativeOps] = None
    if mode in ("auto", "numba"):
        ops = _numba_ops()
    if ops is None and mode in ("auto", "cc"):
        ops = _cc_ops()
    _OPS_CACHE[mode] = ops
    return ops


def native_flavor() -> Optional[str]:
    """``"numba"``/``"cc"`` when a native flavor is usable, else ``None``."""
    ops = native_ops()
    return ops.flavor if ops is not None else None


def clear_native_cache() -> None:
    """Forget probed flavors (tests that flip ``$REPRO_NATIVE`` mid-process)."""
    _OPS_CACHE.clear()
