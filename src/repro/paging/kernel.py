"""Reuse-distance box kernel: vectorized :func:`run_box` over one precompute.

The classical LRU inclusion property (Mattson et al. [IBM Sys. J. 1970];
Fiat et al., *Competitive Paging Algorithms*) says an LRU cache of height
``h`` always holds exactly the ``h`` most-recently-used distinct pages.
Inside a compartmentalized box that cold-starts at position ``q`` this
collapses the whole per-request simulation into two facts that depend only
on the *sequence*, not on the box:

* ``prev_occ[i]`` — index of the previous occurrence of ``seq[i]``
  (``-1`` for a first occurrence), and
* ``reuse_dist[i]`` — number of distinct pages referenced strictly
  between that occurrence and ``i``.

Request ``i`` hits in a box ``(start, height)`` iff ``prev_occ[i] >=
start`` (its last occurrence is inside the box) **and** ``reuse_dist[i] <
height`` (it is still among the ``height`` most recent distinct pages).
Both arrays are computed **once per sequence** by an O(n log n)
Fenwick-tree sweep; every subsequent box — any ``start``, ``height``,
``budget`` — is then a handful of numpy array ops: build the hit mask,
turn it into per-request costs, ``cumsum`` + ``searchsorted`` for the
budget cutoff.  The offline green-paging DP alone probes the box engine
O(n · levels) times per solve, so the amortization is dramatic.

:func:`run_box_fast` is cross-checked bit-identical to the dict-LRU
reference :func:`repro.paging.engine.run_box` by the property suite in
``tests/paging/test_kernel.py``.  Set ``REPRO_KERNEL=reference`` to make
every threaded call site fall back to the reference loop, or
``REPRO_KERNEL=native`` to route the reuse-distance sweep, the box
service walk, and the offline DP relaxation through the compiled
primitives of :mod:`repro.paging._native` (numba when installed, else a
cc-compiled ctypes library; degrades to the numpy fast path when
neither is available).  All three tiers produce bit-identical rows.

Two kernel flavors:

* :class:`SequenceKernel` — whole sequence in memory, built once, shared
  through the LRU-bounded module cache (:func:`get_kernel`, keyed by
  array identity or an explicit content digest);
* :class:`StreamKernel` — incremental: chunks are appended as a stream
  delivers them and the swept prefix is compacted away as execution
  passes it, so bounded-memory streaming keeps bounded memory.
"""

from __future__ import annotations

import os
import weakref
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ._native import native_flavor, native_ops
from .engine import BoxRun, run_box

__all__ = [
    "SequenceKernel",
    "StreamKernel",
    "run_box_fast",
    "get_kernel",
    "maybe_kernel",
    "peek_kernel",
    "seed_kernel",
    "kernel_backend",
    "native_flavor",
    "native_dp_solve",
    "clear_kernel_cache",
    "KERNEL_ENV",
]

#: Environment variable selecting the box-engine backend.
KERNEL_ENV = "REPRO_KERNEL"

#: Streaming compaction threshold: the dead prefix must reach this many
#: requests *and* at least the live window before a compaction pays for its
#: Fenwick rebuild.  Module-level so tests can shrink it to force the path.
STREAM_COMPACT_MIN = 256

#: Sentinel reuse distance for requests with no usable previous occurrence.
#: Any value that compares >= every legal box height works; first
#: occurrences are already masked by ``prev_occ[i] = -1 < start``.
_COLD = np.iinfo(np.int64).max

#: Boxes that serve at most this many requests are evaluated by a scalar
#: walk over plain-int lists instead of ~10 numpy dispatches — RAND-GREEN's
#: inverse-square distribution draws mostly minimum-height boxes serving a
#: handful of requests each, where per-call numpy overhead dominates.
_SCALAR_MAX = 128

#: The offline DP's ladder plan evaluates endpoints for this many
#: consecutive start positions per batch, amortizing numpy dispatch
#: overhead ~_PLAN_BLOCK-fold over the per-probe path.
_PLAN_BLOCK = 32

#: The chunked vectorized reuse-distance build does O(n²/chunk) work in
#: its cross-chunk prefix counts, so it only runs below this length; the
#: O(n log n) Fenwick sweep takes over beyond it.
_VEC_BUILD_MAX = 16384
_BUILD_CHUNK = 128


def _reuse_vectorized(prev: np.ndarray, nxt: np.ndarray, n: int, start: int = 0) -> np.ndarray:
    """Chunked numpy reuse-distance computation (no per-request Python).

    Position ``x`` stops being its page's most recent occurrence — is
    *deleted* — once ``nxt[x]`` has passed, so for ``j = prev[i]``::

        reuse[i] = #actives in (j, i) = (i - 1 - j) - #{x in (j, i): nxt[x] < i}

    Per chunk ``[a, b)``, the deleted count splits into parts that are
    each one cumsum away: pairs with ``j >= a`` read a within-chunk
    matrix ``W[x, i] = nxt[x] < i``; pairs reaching back past ``a`` add
    pre-chunk positions already dead at the chunk start (a prefix count
    over ``nxt < a``) and pre-chunk positions dying inside the chunk
    (their killers ``y = nxt[x]`` lie in the chunk, so ``x = prev[y]``
    ranges over one chunk-sized array).

    ``start`` restricts the computation to positions ``>= start``
    (positions below it come back ``_COLD``): the streaming kernel knows
    reuse distances of already-swept rows can never change, so it only
    pays for the appended suffix.
    """
    reuse = np.full(n, _COLD, dtype=np.int64)
    step = _BUILD_CHUNK
    for a in range(start, n, step):
        b = min(n, a + step)
        prev_c = prev[a:b]
        warm = prev_c >= 0
        if not warm.any():
            continue
        m = b - a
        idx = np.arange(a, b, dtype=np.int64)
        irel = np.arange(m)
        prefix = np.maximum(irel - 1, 0)
        W = nxt[a:b, np.newaxis] < idx[np.newaxis, :]
        Wc = W.cumsum(axis=0, dtype=np.int32)
        top_w = np.where(irel > 0, Wc[prefix, irel], 0)
        jrel = prev_c - a
        within = jrel >= 0
        d_within = top_w - Wc[np.maximum(jrel, 0), irel]
        if a > 0:
            dead_at_a = np.cumsum(nxt[:a] < a, dtype=np.int64)
            g1 = dead_at_a[a - 1] - dead_at_a[np.clip(prev_c, 0, a - 1)]
            pre_chunk_kill = warm & (prev_c < a)
            N = (prev_c[:, np.newaxis] > prev_c[np.newaxis, :]) & pre_chunk_kill[:, np.newaxis]
            Nc = N.cumsum(axis=0, dtype=np.int32)
            g2 = np.where(irel > 0, Nc[prefix, irel], 0)
            dead = np.where(within, d_within, g1 + g2 + top_w)
        else:
            dead = d_within
        reuse[a:b] = np.where(warm, (idx - 1 - prev_c) - dead, _COLD)
    return reuse


def kernel_backend() -> str:
    """The active box-engine backend: ``"fast"`` (default), ``"native"``,
    or ``"reference"``.

    Controlled by ``$REPRO_KERNEL``.  All backends produce bit-identical
    :class:`~repro.paging.engine.BoxRun` values; the reference dict-LRU
    exists as a cross-check oracle and an escape hatch, and ``native``
    routes the inner loops through :mod:`repro.paging._native`.  When
    ``native`` is requested but no compiled flavor is available (numba
    not installed, no usable C compiler, or ``REPRO_NATIVE=off``), this
    resolves to ``"fast"`` — graceful degradation, never an error.
    """
    value = os.environ.get(KERNEL_ENV, "fast").strip().lower() or "fast"
    if value in ("fast", "kernel"):
        return "fast"
    if value in ("reference", "ref"):
        return "reference"
    if value in ("native", "compiled"):
        return "native" if native_ops() is not None else "fast"
    raise ValueError(
        f"unknown {KERNEL_ENV} backend {value!r}; expected 'fast', 'native', or 'reference'"
    )


def _active_native():
    """The compiled primitives when ``REPRO_KERNEL=native`` resolves, else None.

    Read at kernel construction: the compiled tier is bit-identical to
    the numpy path, so a cached kernel built under one setting stays
    correct if the benchmark harness flips ``$REPRO_KERNEL`` afterwards —
    it only keeps its construction-time speed.  Flip-sensitive callers
    (the benchmarks) clear the kernel cache between timings.
    """
    value = os.environ.get(KERNEL_ENV, "fast").strip().lower() or "fast"
    if value in ("native", "compiled"):
        return native_ops()
    return None


class _KernelOps:
    """Shared vectorized box evaluation over ``prev_occ``/``reuse_dist``.

    Subclasses provide ``_prev``/``_reuse`` (int64 arrays, at least
    ``_n`` valid entries) in *local* coordinates plus ``_ops``/``_hand``
    (the construction-time native primitives and their prepared-probe
    handle, both ``None`` on the numpy tier).  No validation happens
    here: callers either go through :func:`run_box_fast` (which validates
    like the reference) or pre-validate once (the offline DP).
    """

    _prev: np.ndarray
    _reuse: np.ndarray
    _n: int
    _ops: object
    _hand: object

    def box_end(self, start: int, height: int, budget: int, miss_cost: int) -> int:
        """First unserved position after a box — the offline DP's only need.

        Pre-validated fast path: ``height``/``miss_cost`` are assumed
        legal (hoist the checks out of the probe loop).
        """
        n = self._n
        ops = self._ops
        if ops is not None and start < n:
            hand = self._hand
            if hand is None:
                hand = self._hand = ops.prepare(self._prev, self._reuse)
            served, _, _ = ops.box_probe(hand, n, start, height, budget, miss_cost)
            return start + served
        stop = start + budget
        if stop > n:
            stop = n
        if stop <= start:
            return start
        hit = (self._prev[start:stop] >= start) & (self._reuse[start:stop] < height)
        cum = np.cumsum(miss_cost - (miss_cost - 1) * hit)
        return start + int(np.searchsorted(cum, budget, side="right"))

    def box(self, start: int, height: int, budget: int, miss_cost: int, offset: int = 0) -> BoxRun:
        """Full :class:`BoxRun` for one box, shifted by ``offset`` into
        global coordinates (used by the streaming engine)."""
        n = self._n
        stop = start + budget
        if stop > n:
            stop = n
        if stop <= start:
            return BoxRun(
                start=start + offset,
                end=start + offset,
                hits=0,
                faults=0,
                time_used=0,
                budget=budget,
                height=height,
            )
        hit = (self._prev[start:stop] >= start) & (self._reuse[start:stop] < height)
        cum = np.cumsum(miss_cost - (miss_cost - 1) * hit)
        served = int(np.searchsorted(cum, budget, side="right"))
        hits = int(np.count_nonzero(hit[:served]))
        return BoxRun(
            start=start + offset,
            end=start + served + offset,
            hits=hits,
            faults=served - hits,
            time_used=int(cum[served - 1]) if served else 0,
            budget=budget,
            height=height,
        )


class SequenceKernel(_KernelOps):
    """Per-sequence reuse-distance precompute for the fast box engine.

    Construction computes ``prev_occ``/``reuse_dist`` once — a chunked
    vectorized pass for typical lengths, an O(n log n) Fenwick sweep
    beyond ``_VEC_BUILD_MAX``; every box probe afterwards is
    O(min(budget, n - start)) vectorized work.  Instances
    are immutable in spirit — share them freely across boxes, heights,
    algorithms, and DP solves on the same sequence (see :func:`get_kernel`).
    """

    __slots__ = (
        "seq", "_prev", "_reuse", "_n", "_weak", "_plan_cache",
        "_prev_list", "_reuse_list", "_ops", "_hand",
    )

    def __init__(self, seq: np.ndarray) -> None:
        arr = np.ascontiguousarray(seq, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError(f"sequence must be 1-D, got shape {arr.shape}")
        self.seq = seq if isinstance(seq, np.ndarray) else arr
        self._plan_cache: Dict[Tuple, "_LadderPlan"] = {}
        self._prev_list: Optional[List[int]] = None
        self._reuse_list: Optional[List[int]] = None
        self._hand = None
        n = len(arr)
        self._n = n
        # prev_occ fully vectorized: stable-sort positions by page, then
        # each position's predecessor within its page group is its
        # previous occurrence.
        prev = np.full(n, -1, dtype=np.int64)
        if n:
            order = np.argsort(arr, kind="stable")
            same = arr[order[1:]] == arr[order[:-1]]
            prev[order[1:]] = np.where(same, order[:-1], -1)
        ops = _active_native()
        self._ops = ops
        if n and ops is not None:
            # compiled Fenwick sweep: O(n log n) with a C/jit constant,
            # bit-identical to both pure-python forms below
            reuse = np.empty(n, dtype=np.int64)
            ops.reuse_sweep(prev, 0, n, _COLD, np.zeros(n + 1, dtype=np.int64), n, reuse)
            self._prev = prev
            self._reuse = reuse
        elif n and n <= _VEC_BUILD_MAX:
            nxt = np.full(n, n, dtype=np.int64)
            nxt[order[:-1]] = np.where(same, order[1:], n)
            self._prev = prev
            self._reuse = _reuse_vectorized(prev, nxt, n)
        else:
            # Fenwick sweep for reuse_dist, in deletion form: position j
            # is marked once its page reoccurs, so the distinct count
            # between an occurrence pair is the gap length minus the
            # marks inside it (cf. the most-recent-flag form in
            # repro.paging.stack, which pays an extra O(log n) insert per
            # request — including every cold one; this form does BIT work
            # only on warm requests).
            tree = [0] * (n + 1)
            reuse_l = [_COLD] * n
            for i, j in enumerate(prev.tolist()):
                if j >= 0:
                    acc = i - 1 - j  # gap length, minus marks in (j, i):
                    x = i  # deleted in 1-indexed prefix [1, i] = pos < i
                    while x > 0:
                        acc -= tree[x]
                        x -= x & -x
                    x = j + 1  # add back deleted at positions <= j
                    while x > 0:
                        acc += tree[x]
                        x -= x & -x
                    reuse_l[i] = acc
                    x = j + 1  # j is no longer its page's latest occurrence
                    while x <= n:
                        tree[x] += 1
                        x += x & -x
            self._prev = prev
            self._reuse = np.array(reuse_l, dtype=np.int64)

    @classmethod
    def from_precomputed(
        cls, seq: np.ndarray, prev: np.ndarray, reuse: np.ndarray
    ) -> "SequenceKernel":
        """Wrap already-computed ``prev_occ``/``reuse_dist`` arrays.

        Used by the zero-copy worker handoff: the parent ships its
        kernel's arrays over shared memory and the worker rebuilds the
        kernel in O(1) instead of re-running the precompute.  The arrays
        are trusted to match what ``__init__`` would produce for ``seq``.
        """
        self = cls.__new__(cls)
        self.seq = seq
        self._plan_cache = {}
        self._prev_list = None
        self._reuse_list = None
        self._ops = _active_native()
        self._hand = None
        self._n = len(prev)
        self._prev = np.ascontiguousarray(prev, dtype=np.int64)
        self._reuse = np.ascontiguousarray(reuse, dtype=np.int64)
        return self

    def __len__(self) -> int:
        return self._n

    @property
    def prev_occ(self) -> np.ndarray:
        """Previous-occurrence index per request (``-1`` = first occurrence)."""
        return self._prev

    @property
    def reuse_dist(self) -> np.ndarray:
        """Distinct pages since the previous occurrence (huge for cold)."""
        return self._reuse

    def box(self, start: int, height: int, budget: int, miss_cost: int, offset: int = 0) -> BoxRun:
        """:meth:`_KernelOps.box` with a scalar walk for short boxes.

        The walk is the reference loop verbatim over the precomputed
        hit predicate, so it is exact by construction; after
        ``_SCALAR_MAX`` served requests with budget to spare it defers
        to the vectorized pass (the walk so far is then sunk cost, but
        boxes that large are exactly where vectorization wins).  Under
        ``REPRO_KERNEL=native`` the walk runs compiled instead, with no
        length cutoff — the compiled loop is O(served) at C speed.
        """
        ops = self._ops
        if ops is not None:
            hand = self._hand
            if hand is None:
                hand = self._hand = ops.prepare(self._prev, self._reuse)
            served, hits, t = ops.box_probe(
                hand, self._n, start, height, budget, miss_cost
            )
            return BoxRun(
                start=start + offset,
                end=start + served + offset,
                hits=hits,
                faults=served - hits,
                time_used=t,
                budget=budget,
                height=height,
            )
        pl = self._prev_list
        if pl is None:
            pl = self._prev.tolist()
            rl = self._reuse.tolist()
            self._prev_list = pl
            self._reuse_list = rl
        else:
            rl = self._reuse_list
        n = self._n
        i = start
        t = 0
        hits = 0
        cutoff = start + _SCALAR_MAX
        while i < n:
            c = 1 if (pl[i] >= start and rl[i] < height) else miss_cost
            nt = t + c
            if nt > budget:
                break
            t = nt
            if c == 1:
                hits += 1
            i += 1
            if i == cutoff and t < budget:
                # still both budget and window left: go vectorized
                return _KernelOps.box(self, start, height, budget, miss_cost, offset)
        return BoxRun(
            start=start + offset,
            end=i + offset,
            hits=hits,
            faults=i - start - hits,
            time_used=t,
            budget=budget,
            height=height,
        )

    def ladder_plan(
        self,
        heights: Tuple[int, ...],
        budgets: Tuple[int, ...],
        miss_cost: int,
    ) -> "_LadderPlan":
        """Memoized :class:`_LadderPlan` for an ascending height ladder.

        The offline DP probes one lattice thousands of times per solve;
        everything that depends only on (sequence, ladder, miss_cost) —
        warmth thresholds, cost prefixes, budget columns — is hoisted
        here so each probe is pure sliced-array work.  Under
        ``REPRO_KERNEL=native`` the plan evaluates its blocks in the
        compiled walk instead (same ``ends`` contract, same rows); the
        memo key includes the backend so flipping ``$REPRO_KERNEL``
        between probes never serves a plan built for the other tier.
        """
        ops = self._ops
        key = (heights, budgets, miss_cost, ops is not None)
        plan = self._plan_cache.get(key)
        if plan is None:
            if ops is not None:
                plan = _NativeLadderPlan(self, heights, budgets, miss_cost, ops)
            else:
                plan = _LadderPlan(self, heights, budgets, miss_cost)
            self._plan_cache[key] = plan
        return plan

    def box_ends(
        self,
        start: int,
        heights: Tuple[int, ...],
        budgets: Tuple[int, ...],
        miss_cost: int,
    ) -> List[int]:
        """Box end positions from ``start`` for a whole ascending height
        ladder at once — the offline DP's relaxation step.

        One shared window pass replaces ``len(heights)`` independent
        :meth:`box_end` probes (see :class:`_LadderPlan`).  Pre-validated
        fast path: ``heights`` must be ascending with matching positive
        ``budgets`` and ``miss_cost > 1``.
        """
        return list(self.ladder_plan(heights, budgets, miss_cost).ends(start))


class _LadderPlan:
    """Batched box-endpoint evaluation for one (sequence, height ladder).

    Exploits three structural facts:

    * **Nested hits** — a taller box hits everything a shorter one does,
      so each request has a single warmth threshold ``lev[i]`` (index of
      the shortest height that hits it), and the per-level hit predicate
      collapses to one comparison ``D_l[i] >= start`` against a masked
      previous-occurrence array (``D_l[i] = prev_occ[i]`` where level
      ``l`` can hit, ``-1`` elsewhere).
    * **Dominant top row** — shorter heights have both more misses and
      smaller budgets, so no level can out-serve the tallest.  The top
      row is evaluated first and its furthest progress clamps the 3-D
      pass for every other level.
    * **Blocked starts** — the DP relaxes start positions in ascending
      order, so endpoints are computed for ``_PLAN_BLOCK`` consecutive
      starts per batch.  Rows share one window; a row's own start offset
      is removed by subtracting its prefix cost (every position before a
      row's start has ``D < start`` and is affordable, so prefix counts
      subtract out exactly).  Dispatch overhead per probe drops by the
      block factor while total element work is unchanged.
    """

    __slots__ = ("_n", "_s", "_L", "_b_top", "_bud_low", "_Dtop", "_Dlow", "_T", "_dt", "_blk_q0", "_blk")

    def __init__(
        self,
        kernel: SequenceKernel,
        heights: Tuple[int, ...],
        budgets: Tuple[int, ...],
        miss_cost: int,
    ) -> None:
        n = kernel._n
        s = int(miss_cost)
        L = len(heights)
        harr = np.asarray(heights, dtype=np.int64)
        prev = kernel._prev
        # lev[i] = first ladder index whose height exceeds reuse_dist[i];
        # lev == levels means no height on the ladder ever hits it.
        lev = np.searchsorted(harr, kernel._reuse, side="right")
        self._n = n
        self._s = s
        self._L = L
        self._b_top = int(budgets[-1])
        # Every quantity in a block pass is bounded by one full window of
        # misses plus a budget; int32 halves the memory traffic of the
        # cumsum-dominated inner passes whenever that fits.
        dt = np.int32 if s * (n + _PLAN_BLOCK + 1) + self._b_top < 2**31 - 1 else np.int64
        self._dt = dt
        self._bud_low = np.asarray(budgets[:-1], dtype=dt)[:, np.newaxis]
        self._Dtop = np.where(lev < L, prev, -1).astype(dt)
        self._Dlow = (
            np.where(
                lev[np.newaxis, :] <= np.arange(L - 1, dtype=np.int64)[:, np.newaxis],
                prev[np.newaxis, :],
                -1,
            ).astype(dt)
            if L > 1
            else None
        )
        self._T = (s * np.arange(1, n + 1, dtype=np.int64)).astype(dt)
        self._blk_q0 = -1
        self._blk: List[List[int]] = []

    def ends(self, start: int) -> List[int]:
        """Box end positions from ``start``, one per ladder height.

        Returns a cached row of the current block — callers must treat
        it as read-only (:meth:`SequenceKernel.box_ends` copies).
        """
        if start >= self._n:
            return [start] * self._L
        q0 = self._blk_q0
        if q0 < 0 or not q0 <= start < q0 + len(self._blk):
            self._compute_block(start - start % _PLAN_BLOCK)
            q0 = self._blk_q0
        return self._blk[start - q0]

    def _compute_block(self, q0: int) -> None:
        n = self._n
        s = self._s
        s1 = s - 1
        L = self._L
        dt = self._dt
        B = min(_PLAN_BLOCK, n - q0)
        b_top = self._b_top
        wmax = min(n, q0 + B - 1 + b_top) - q0
        rows = np.arange(B, dtype=np.int64)
        qcol = (q0 + rows)[:, np.newaxis].astype(dt)
        Dtop = self._Dtop
        T = self._T
        # Top row, all starts in the block at once, with geometric window
        # growth: an all-miss box serves b_top/s requests, so most blocks
        # resolve within a few times that; hit-heavy stretches grow out
        # to the full budget window.  C[b, i] is the time a box from
        # q0+b would spend serving the common window's prefix [q0, q0+i];
        # positions before the row's own start are all cold (prev <
        # position < start) and all affordable, so subtracting the
        # prefix cost offs[b] = C[b, b-1] re-bases each row exactly.
        w = min(wmax, 4 * (b_top // s) + B)
        while True:
            M = Dtop[q0 : q0 + w] >= qcol
            C = T[:w] - s1 * M.cumsum(axis=1, dtype=dt)
            offs = np.zeros(B, dtype=dt)
            if B > 1:
                offs[1:] = C[rows[1:], rows[:-1]]
            if w == wmax or bool((C[:, -1] > b_top + offs).all()):
                break
            w = min(wmax, w * 4)
        served_top = (C <= (b_top + offs)[:, np.newaxis]).sum(axis=1) - rows
        ends = np.empty((B, L), dtype=np.int64)
        ends[:, L - 1] = q0 + rows + served_top
        if L > 1:
            # Lower levels serve no further than the top row (subset
            # hits, smaller budgets) and never past their own budget, so
            # the shared window is clamped by both.
            U = min(int(served_top.max()), int(self._bud_low[-1, 0]))
            if U == 0:
                ends[:, : L - 1] = q0 + rows[:, np.newaxis]
            else:
                w2 = min(n, q0 + B - 1 + U) - q0
                M2 = self._Dlow[:, np.newaxis, q0 : q0 + w2] >= qcol[np.newaxis, :, :]
                C2 = T[:w2] - s1 * M2.cumsum(axis=2, dtype=dt)
                offs2 = np.zeros((L - 1, B), dtype=dt)
                if B > 1:
                    offs2[:, 1:] = C2[:, rows[1:], rows[:-1]]
                lim = self._bud_low + offs2
                served_low = (C2 <= lim[:, :, np.newaxis]).sum(axis=2) - rows[np.newaxis, :]
                ends[:, : L - 1] = q0 + rows[:, np.newaxis] + served_low.T
        self._blk_q0 = q0
        self._blk = ends.tolist()


class _NativeLadderPlan:
    """Compiled twin of :class:`_LadderPlan` (same ``ends`` contract).

    Shares the warmth-threshold reduction (``lev[i]`` = first ladder
    index whose height exceeds ``reuse_dist[i]``) but evaluates each
    blocked batch of starts with the compiled O(served) walk instead of
    windowed numpy passes.  Rows are bit-identical: both formulations
    serve a request iff ``prev_occ[i] >= start`` and ``lev[i] <= level``
    under the same budget arithmetic.
    """

    __slots__ = ("_ops", "_n", "_s", "_L", "_prev", "_lev", "_budgets", "_blk_q0", "_blk")

    def __init__(
        self,
        kernel: SequenceKernel,
        heights: Tuple[int, ...],
        budgets: Tuple[int, ...],
        miss_cost: int,
        ops,
    ) -> None:
        harr = np.asarray(heights, dtype=np.int64)
        self._ops = ops
        self._n = kernel._n
        self._s = int(miss_cost)
        self._L = len(heights)
        self._prev = kernel._prev
        self._lev = np.ascontiguousarray(
            np.searchsorted(harr, kernel._reuse, side="right"), dtype=np.int64
        )
        self._budgets = np.ascontiguousarray(budgets, dtype=np.int64)
        self._blk_q0 = -1
        self._blk: List[List[int]] = []

    def ends(self, start: int) -> List[int]:
        """Box end positions from ``start``, one per ladder height
        (cached block row — read-only, like :meth:`_LadderPlan.ends`)."""
        if start >= self._n:
            return [start] * self._L
        q0 = self._blk_q0
        if q0 < 0 or not q0 <= start < q0 + len(self._blk):
            q0 = start - start % _PLAN_BLOCK
            B = min(_PLAN_BLOCK, self._n - q0)
            out = np.empty(B * self._L, dtype=np.int64)
            self._ops.ladder_block(
                self._prev, self._lev, self._n, self._budgets, self._s, q0, B, out
            )
            self._blk_q0 = q0
            self._blk = out.reshape(B, self._L).tolist()
        return self._blk[start - self._blk_q0]


def native_dp_solve(
    kernel: SequenceKernel,
    heights: Tuple[int, ...],
    budgets: Tuple[int, ...],
    costs: Tuple[int, ...],
    miss_cost: int,
    inf: int,
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Run the whole offline green DP relaxation compiled, or ``None``.

    Returns ``(dist, parent_pos, parent_h)`` — byte-identical to the
    python sweep in :func:`repro.green.offline.optimal_box_profile`
    (ascending positions, ascending ladder levels, strict-``<``
    improvement) — when ``REPRO_KERNEL=native`` resolves to a compiled
    flavor; ``None`` otherwise, and the caller falls back to its own
    sweep.  Hoisting the relaxation loop itself (not just the endpoint
    probes) is what buys the DP arm its headroom: at typical experiment
    sizes the python ``zip`` loop costs as much as the probes.
    """
    ops = kernel._ops
    if ops is None:
        return None
    n = kernel._n
    harr = np.ascontiguousarray(heights, dtype=np.int64)
    lev = np.ascontiguousarray(
        np.searchsorted(harr, kernel._reuse, side="right"), dtype=np.int64
    )
    dist = np.full(n + 1, inf, dtype=np.int64)
    dist[0] = 0
    parent_pos = np.full(n + 1, -1, dtype=np.int64)
    parent_h = np.zeros(n + 1, dtype=np.int64)
    ops.dp_solve(
        kernel._prev,
        lev,
        np.ascontiguousarray(budgets, dtype=np.int64),
        np.ascontiguousarray(costs, dtype=np.int64),
        harr,
        int(miss_cost),
        int(inf),
        dist,
        parent_pos,
        parent_h,
    )
    return dist, parent_pos, parent_h


class StreamKernel(_KernelOps):
    """Incremental reuse-distance kernel over a stream of chunks.

    ``prev_occ``/``reuse_dist`` only ever look backwards, so appending a
    chunk can never change an already-swept row: :meth:`append`
    concatenates the chunk onto the retained window and runs the same
    vectorized build :class:`SequenceKernel` uses, restricted to the new
    suffix — O(window) numpy work per chunk instead of O(log window)
    Python work per request.  :meth:`compact` drops the already-served
    prefix (the stream engine never starts a box before its execution
    position), so resident state stays proportional to the active
    window — the same bound the chunked reference path guarantees.

    Local coordinates: position 0 is the oldest retained request;
    ``base`` is its global stream index.  Boxes must start at or after
    ``base``.
    """

    __slots__ = (
        "_window", "_prev", "_reuse", "_n", "base",
        "_prev_list", "_reuse_list", "_ops", "_hand",
    )

    def __init__(self, capacity: int = 1024) -> None:
        # ``capacity`` is a historical hint: arrays are rebuilt per
        # append, so no preallocation is needed; accepted for API
        # stability.
        del capacity
        self._window = np.empty(0, dtype=np.int64)
        self._prev = np.empty(0, dtype=np.int64)
        self._reuse = np.empty(0, dtype=np.int64)
        self._n = 0
        self.base = 0
        self._ops = _active_native()
        self._hand = None
        # plain-int mirrors of _prev/_reuse for the scalar short-box
        # walk; built lazily on the first box, then maintained
        # incrementally (append extends, compact re-slices) — appended
        # rows never change, so the extension is exact
        self._prev_list: Optional[List[int]] = None
        self._reuse_list: Optional[List[int]] = None

    def __len__(self) -> int:
        return self._n

    @property
    def end(self) -> int:
        """Global index one past the last swept request."""
        return self.base + self._n

    def append(self, chunk: np.ndarray) -> None:
        """Sweep one more chunk of the stream into the kernel."""
        arr = np.ascontiguousarray(chunk, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("chunks must be 1-D request arrays")
        if len(arr) == 0:
            return
        old = self._n
        window = np.concatenate([self._window, arr]) if old else arr.copy()
        n = len(window)
        # prev/nxt over the whole window (cheap vectorized sorts); rows
        # whose true previous occurrence was compacted away come back -1,
        # which the box predicate treats exactly like the old clamped
        # negative offsets.
        prev = np.full(n, -1, dtype=np.int64)
        order = np.argsort(window, kind="stable")
        same = window[order[1:]] == window[order[:-1]]
        prev[order[1:]] = np.where(same, order[:-1], -1)
        ops = self._ops
        if ops is not None:
            # compiled Fenwick sweep: rows [0, old) feed their tree marks
            # but only the appended suffix is written
            reuse = np.empty(n, dtype=np.int64)
            ops.reuse_sweep(prev, old, n, _COLD, np.zeros(n + 1, dtype=np.int64), n, reuse)
        else:
            nxt = np.full(n, n, dtype=np.int64)
            nxt[order[:-1]] = np.where(same, order[1:], n)
            reuse = _reuse_vectorized(prev, nxt, n, start=old)
        # already-swept rows keep their stored values (they cannot change)
        reuse[:old] = self._reuse
        self._window = window
        self._prev = prev
        self._reuse = reuse
        self._n = n
        self._hand = None  # prepared probe handle points at the old arrays
        if self._prev_list is not None:
            self._prev_list.extend(prev[old:].tolist())
            self._reuse_list.extend(reuse[old:].tolist())

    def box_end(self, start: int, height: int, budget: int, miss_cost: int) -> int:
        """Global-coordinate :meth:`_KernelOps.box_end` over the live window."""
        local = start - self.base
        if local < 0:
            raise ValueError(f"box start {start} precedes retained window base {self.base}")
        return _KernelOps.box_end(self, local, height, budget, miss_cost) + self.base

    def box(self, start: int, height: int, budget: int, miss_cost: int, offset: int = 0) -> BoxRun:
        """Global-coordinate box evaluation over the live window.

        Mirrors :meth:`SequenceKernel.box`: compiled walk under
        ``REPRO_KERNEL=native``, else a scalar list walk for short boxes
        (streamed box algorithms serve a handful of requests per box,
        where ~10 numpy dispatches plus an O(window) cumsum dominated
        the event backend), deferring to the vectorized pass after
        ``_SCALAR_MAX`` served requests with budget to spare.
        """
        local = start - self.base
        if local < 0:
            raise ValueError(f"box start {start} precedes retained window base {self.base}")
        ops = self._ops
        if ops is not None:
            hand = self._hand
            if hand is None:
                hand = self._hand = ops.prepare(self._prev, self._reuse)
            served, hits, t = ops.box_probe(
                hand, self._n, local, height, budget, miss_cost
            )
            glob = start + offset
            return BoxRun(
                start=glob,
                end=glob + served,
                hits=hits,
                faults=served - hits,
                time_used=t,
                budget=budget,
                height=height,
            )
        pl = self._prev_list
        if pl is None:
            pl = self._prev.tolist()
            rl = self._reuse.tolist()
            self._prev_list = pl
            self._reuse_list = rl
        else:
            rl = self._reuse_list
        n = self._n
        i = local
        t = 0
        hits = 0
        cutoff = local + _SCALAR_MAX
        while i < n:
            c = 1 if (pl[i] >= local and rl[i] < height) else miss_cost
            nt = t + c
            if nt > budget:
                break
            t = nt
            if c == 1:
                hits += 1
            i += 1
            if i == cutoff and t < budget:
                return _KernelOps.box(self, local, height, budget, miss_cost, offset + self.base)
        glob = start + offset
        return BoxRun(
            start=glob,
            end=glob + (i - local),
            hits=hits,
            faults=i - local - hits,
            time_used=t,
            budget=budget,
            height=height,
        )

    def compact(self, upto: int) -> None:
        """Forget everything before global position ``upto``.

        Sound whenever no future box starts before ``upto``: a dropped
        position can then never satisfy ``prev_occ >= start``, and pages
        whose last occurrence is dropped correctly re-enter cold.
        """
        d = int(upto) - self.base
        if d <= 0:
            return
        if d > self._n:
            raise ValueError(f"cannot compact past swept prefix ({upto} > {self.end})")
        # copies, not views: a view would pin the pre-compact arrays
        self._window = self._window[d:].copy()
        self._prev = self._prev[d:] - d
        self._reuse = self._reuse[d:].copy()
        self._n -= d
        self.base += d
        self._hand = None
        if self._prev_list is not None:
            # dropped previous occurrences go negative, exactly like the
            # array form above — the box predicate masks them as cold
            self._prev_list = [x - d for x in self._prev_list[d:]]
            self._reuse_list = self._reuse_list[d:]


def run_box_fast(
    kernel: _KernelOps,
    start: int,
    height: int,
    budget: int,
    miss_cost: int,
) -> BoxRun:
    """Vectorized :func:`repro.paging.engine.run_box` over a kernel.

    Same contract, same validation, bit-identical :class:`BoxRun` —
    ``start`` is in the kernel's local coordinates (identical to sequence
    coordinates for a :class:`SequenceKernel`).
    """
    if height < 1:
        raise ValueError(f"box height must be >= 1, got {height}")
    if miss_cost <= 1:
        raise ValueError(f"miss_cost must be > 1, got {miss_cost}")
    return kernel.box(int(start), int(height), int(budget), int(miss_cost))


# --------------------------------------------------------------------- #
# kernel cache
# --------------------------------------------------------------------- #
#: key -> (weakref-to-array-or-None, kernel).  Ordered for LRU eviction.
_CACHE: "OrderedDict[Tuple[str, Hashable], Tuple[Optional[weakref.ref], SequenceKernel]]" = OrderedDict()

_CACHE_MAX_ENTRIES = 64
#: Bound on total cached elements (~16 B/request), so huge traces cannot
#: pin unbounded memory through the cache.
_CACHE_MAX_ELEMENTS = 32_000_000
_cache_elements = 0


def _evict_until_bounded() -> None:
    global _cache_elements
    while _CACHE and (
        len(_CACHE) > _CACHE_MAX_ENTRIES or _cache_elements > _CACHE_MAX_ELEMENTS
    ):
        _, (_, old) = _CACHE.popitem(last=False)
        _cache_elements -= len(old)


def get_kernel(seq: np.ndarray, key: Optional[Hashable] = None) -> SequenceKernel:
    """A (possibly cached) :class:`SequenceKernel` for ``seq``.

    With ``key=None`` the cache entry is keyed on the array's object
    identity and guarded by a weak reference, so a recycled ``id()`` can
    never alias a dead array.  Pass an explicit ``key`` (e.g. a trace
    ``content_digest`` plus processor index) when the same bytes arrive
    as different array objects — registry-backed workloads reuse one
    kernel across algorithms, seeds, and whole experiment sweeps.

    The cache is LRU-bounded both in entries and in total cached
    elements; :func:`clear_kernel_cache` empties it.
    """
    global _cache_elements
    if key is not None:
        ck: Tuple[str, Hashable] = ("key", key)
        entry = _CACHE.get(ck)
        if entry is not None:
            _CACHE.move_to_end(ck)
            return entry[1]
        kern = SequenceKernel(seq)
        _CACHE[ck] = (None, kern)
    else:
        ck = ("id", id(seq))
        entry = _CACHE.get(ck)
        if entry is not None:
            ref = entry[0]
            if ref is not None and ref() is seq:
                _CACHE.move_to_end(ck)
                return entry[1]
            _CACHE.pop(ck)  # stale id from a dead array
            _cache_elements -= len(entry[1])
        kern = SequenceKernel(seq)
        try:
            ref = weakref.ref(seq)
        except TypeError:  # non-weakref-able sequence types: don't cache
            return kern
        _CACHE[ck] = (ref, kern)
    _cache_elements += len(kern)
    _evict_until_bounded()
    return kern


def maybe_kernel(seq: np.ndarray, key: Optional[Hashable] = None) -> Optional[SequenceKernel]:
    """:func:`get_kernel`, or ``None`` under ``REPRO_KERNEL=reference``.

    The idiom at every threaded call site::

        kern = maybe_kernel(seq)
        ...
        run = run_box_fast(kern, pos, h, budget, s) if kern is not None \\
            else run_box(seq, pos, h, budget, s)
    """
    if kernel_backend() == "reference":
        return None
    return get_kernel(seq, key=key)


def peek_kernel(seq: np.ndarray, key: Optional[Hashable] = None) -> Optional[SequenceKernel]:
    """The cached kernel for ``seq``/``key`` if one exists, else ``None``.

    Never computes: useful to decide whether precomputed ``prev_occ``/
    ``reuse_dist`` arrays are available to ship to pool workers.
    """
    ck: Tuple[str, Hashable] = ("key", key) if key is not None else ("id", id(seq))
    entry = _CACHE.get(ck)
    if entry is None:
        return None
    if key is None:
        ref = entry[0]
        if ref is None or ref() is not seq:
            return None
    return entry[1]


def seed_kernel(
    seq: np.ndarray,
    prev: np.ndarray,
    reuse: np.ndarray,
    key: Optional[Hashable] = None,
) -> SequenceKernel:
    """Install a kernel built from precomputed ``prev_occ``/``reuse_dist``.

    The zero-copy handoff path ships a parent's precomputes to pool
    workers over shared memory; this seeds the worker-side cache so the
    worker never recomputes them.  ``prev``/``reuse`` must be exactly
    what :class:`SequenceKernel` would compute for ``seq`` — callers are
    trusted (the arrays come from a kernel on the parent side).
    """
    global _cache_elements
    existing = peek_kernel(seq, key=key)
    if existing is not None:
        return existing
    kern = SequenceKernel.from_precomputed(seq, prev, reuse)
    if key is not None:
        _CACHE[("key", key)] = (None, kern)
    else:
        try:
            ref = weakref.ref(seq)
        except TypeError:
            return kern
        _CACHE[("id", id(seq))] = (ref, kern)
    _cache_elements += len(kern)
    _evict_until_bounded()
    return kern


def clear_kernel_cache() -> None:
    """Drop every cached kernel (tests and memory-pressure escape hatch)."""
    global _cache_elements
    _CACHE.clear()
    _cache_elements = 0
