"""Box execution engine: run a request sequence inside allocated boxes.

The WLOG reduction inherited from Agrawal et al. [SODA '21] means every
algorithm in this repository — RAND-GREEN, RAND-PAR, DET-PAR, the black-box
baseline, and the modeled OPT — interacts with a processor's request
sequence through exactly one operation:

    *give the processor a compartmentalized box of height ``h`` for
    ``s·h`` time steps and let it run LRU, cold-started, inside it.*

:func:`run_box` implements that operation with a hand-rolled
dict+linked-list LRU inline (hoisting all lookups into locals) rather than
going through the :class:`~repro.paging.lru.LRUCache` attribute API.  It is
no longer the production hot loop: the vectorized reuse-distance kernel in
:mod:`repro.paging.kernel` (``run_box_fast``) now serves every threaded
call site, and this per-request loop is kept as the cross-checked reference
semantics and the ``REPRO_KERNEL=reference`` escape hatch.  The two
implementations are asserted bit-identical in the test suite.

Timing semantics (paper §2, with the additive +1 folded into ``s``):

* a hit costs 1 time unit;
* a miss costs ``miss_cost = s > 1`` time units;
* a request is served only if it *finishes* within the box's budget;
  otherwise the processor stalls for the remainder of the box and the
  request is retried (from a cold cache) in its next box.

A box of height ``h`` has budget ``s·h`` by definition, but ``run_box``
accepts an arbitrary budget so schedulers can cut a box short (e.g. at a
phase boundary) and so tests can probe edge cases.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..obs import metrics as obs_metrics

__all__ = [
    "BoxRun",
    "run_box",
    "box_budget",
    "ProfileRun",
    "execute_profile",
    "execute_profile_streaming",
]


def box_budget(height: int, miss_cost: int) -> int:
    """Duration of a compartmentalized box of the given height: ``s·h``."""
    return int(height) * int(miss_cost)


class BoxRun(NamedTuple):
    """Outcome of executing one box.

    A NamedTuple rather than a (frozen) dataclass: one ``BoxRun`` is
    built per box across every simulator, and tuple construction is an
    order of magnitude cheaper than ``object.__setattr__`` per field.

    Attributes
    ----------
    start, end:
        Sequence positions: requests ``start .. end-1`` were served.
    hits, faults:
        Served-request counts (``hits + faults == end - start``).
    time_used:
        Time units consumed serving requests (<= budget).  The box still
        *occupies* its full budget of wall-clock time; ``time_used`` only
        measures productive service and is what progress accounting uses.
    budget, height:
        The box parameters, echoed for audit trails.
    """

    start: int
    end: int
    hits: int
    faults: int
    time_used: int
    budget: int
    height: int

    @property
    def served(self) -> int:
        return self.end - self.start

    @property
    def stalled(self) -> int:
        """Idle time at the end of the box (wall budget minus service)."""
        return self.budget - self.time_used


def run_box(
    seq: np.ndarray,
    start: int,
    height: int,
    budget: int,
    miss_cost: int,
) -> BoxRun:
    """Execute requests ``seq[start:]`` in a cold LRU box.

    Parameters
    ----------
    seq:
        Full request sequence (1-D integer array).
    start:
        Position of the first unserved request.
    height:
        Cache capacity inside the box (>= 1).
    budget:
        Time available, normally ``miss_cost * height``.
    miss_cost:
        Fault service time ``s`` (> 1).

    Returns
    -------
    BoxRun
        Progress and accounting for the box.
    """
    if height < 1:
        raise ValueError(f"box height must be >= 1, got {height}")
    if miss_cost <= 1:
        raise ValueError(f"miss_cost must be > 1, got {miss_cost}")
    n = len(seq)
    pos = start
    t = 0
    hits = 0
    faults = 0
    # Inline LRU: most-recent-first doubly linked list threaded through two
    # dicts.  Every resident page has entries in both prv and nxt, with -1
    # as the null sentinel; head is the MRU page, tail the LRU victim.
    prv: dict = {}
    nxt: dict = {}
    head = tail = -1
    cap = int(height)
    mc = int(miss_cost)
    while pos < n:
        page = int(seq[pos])
        if page in prv:  # hit
            if t + 1 > budget:
                break
            t += 1
            hits += 1
            if page != head:
                # unlink (page != head implies prv[page] != -1)
                p = prv[page]
                q = nxt[page]
                nxt[p] = q
                if q != -1:
                    prv[q] = p
                else:
                    tail = p
                # push front
                prv[page] = -1
                nxt[page] = head
                prv[head] = page
                head = page
        else:  # fault
            if t + mc > budget:
                break
            t += mc
            faults += 1
            if len(prv) >= cap:
                victim = tail
                p = prv[victim]
                del prv[victim]
                del nxt[victim]
                if p != -1:
                    nxt[p] = -1
                    tail = p
                else:
                    head = tail = -1
            # push front
            prv[page] = -1
            nxt[page] = head
            if head != -1:
                prv[head] = page
            else:
                tail = page
            head = page
        pos += 1
    return BoxRun(start=start, end=pos, hits=hits, faults=faults, time_used=t, budget=int(budget), height=cap)


@dataclass(frozen=True)
class ProfileRun:
    """Outcome of executing a sequence under a whole box profile.

    Attributes
    ----------
    runs:
        Per-box :class:`BoxRun` records, in order.
    completed:
        True iff the final position reached the end of the sequence.
    position:
        First unserved position after the last box.
    impact:
        Total memory impact ``sum(s * h_i^2)`` of the boxes *used* (every
        listed box counts in full, including its stalled tail — this is the
        green-paging cost the paper's Theorem 1 bounds).
    wall_time:
        Total wall-clock duration ``sum(s * h_i)`` of the boxes used.
    """

    runs: Tuple[BoxRun, ...]
    completed: bool
    position: int
    impact: int
    wall_time: int


def _record_profile_metrics(runs: Sequence[BoxRun], impact: int, wall: int) -> None:
    """Fold one profile execution into the ambient ``sim.*`` counters.

    Called once per profile (not per box, and never from inside
    :func:`run_box` — the offline DP probes ``run_box`` millions of times
    and must stay uninstrumented).  All values are pure functions of the
    simulated work, so they are byte-identical across reruns and worker
    counts.
    """
    reg = obs_metrics.active()
    if not reg.enabled or not runs:
        return
    reg.counter("sim.paging.boxes").inc(len(runs))
    reg.counter("sim.paging.hits").inc(sum(r.hits for r in runs))
    reg.counter("sim.paging.faults").inc(sum(r.faults for r in runs))
    reg.counter("sim.paging.stall_time").inc(sum(r.budget - r.time_used for r in runs))
    reg.counter("sim.paging.wall_time").inc(wall)
    reg.counter("sim.green.impact").inc(impact)
    hist = reg.histogram("sim.paging.box_height")
    for r in runs:
        hist.observe(r.height)


def execute_profile(
    seq: np.ndarray,
    heights: Iterable[int],
    miss_cost: int,
    start: int = 0,
    max_boxes: Optional[int] = None,
) -> ProfileRun:
    """Run ``seq`` through boxes of the given heights until completion.

    ``heights`` may be an infinite iterator (online algorithms emit boxes
    forever); execution stops as soon as the sequence completes, or after
    ``max_boxes`` boxes (a guard against profiles that cannot make
    progress — e.g. heights that never reach a long cycle's working set
    would still progress, so in practice the guard only trips on bugs).

    Boxes are evaluated by the cached reuse-distance kernel
    (:mod:`repro.paging.kernel`) unless ``REPRO_KERNEL=reference`` selects
    the dict-LRU loop; both produce bit-identical runs.

    Every consumed box is charged in full for impact and wall time, even
    the final partially-used one — matching the paper's box accounting.
    """
    from .kernel import maybe_kernel, run_box_fast

    runs: List[BoxRun] = []
    pos = int(start)
    n = len(seq)
    impact = 0
    wall = 0
    mc = int(miss_cost)
    kern = maybe_kernel(seq)
    it: Iterator[int] = iter(heights)
    count = 0
    while pos < n:
        if max_boxes is not None and count >= max_boxes:
            break
        try:
            h = int(next(it))
        except StopIteration:
            break
        budget = mc * h
        run = (
            run_box_fast(kern, pos, h, budget, mc)
            if kern is not None
            else run_box(seq, pos, h, budget, mc)
        )
        runs.append(run)
        pos = run.end
        impact += mc * h * h
        wall += budget
        count += 1
        if run.served == 0 and pos < n and budget >= mc:
            # A full box always serves at least one request: its first
            # request is either a hit (cost 1) or a miss (cost s <= s*h).
            raise AssertionError("box with budget >= miss_cost made no progress")
    _record_profile_metrics(runs, impact, wall)
    return ProfileRun(
        runs=tuple(runs),
        completed=pos >= n,
        position=pos,
        impact=impact,
        wall_time=wall,
    )


def execute_profile_streaming(
    chunks: Iterable[np.ndarray],
    heights: Iterable[int],
    miss_cost: int,
    start: int = 0,
    max_boxes: Optional[int] = None,
) -> ProfileRun:
    """:func:`execute_profile` over a *stream* of sequence chunks.

    ``chunks`` yields consecutive 1-D int64 slices whose concatenation is
    the request sequence (e.g. ``TraceStore.iter_chunks`` from
    :mod:`repro.traces`).  The result is **bit-identical** to running
    :func:`execute_profile` on the concatenated array, but peak memory is
    bounded by one box window plus one chunk: a box of height ``h`` can
    serve at most ``miss_cost·h`` requests (each costs >= 1 time unit), so
    only ``[pos, pos + budget)`` ever needs to be resident.

    Under the fast backend, chunks feed an incremental
    :class:`~repro.paging.kernel.StreamKernel` — one amortized sweep per
    request, zero window concatenation — and the swept prefix is compacted
    away as execution advances.  Under ``REPRO_KERNEL=reference``, resident
    chunks live in a :class:`~collections.deque` (dropping a served chunk
    is O(1)) and an unchanged resident window is never re-concatenated:
    front-drops shrink the cached concatenation by view.
    """
    from . import kernel as _kernel

    mc = int(miss_cost)
    runs: List[BoxRun] = []
    height_it: Iterator[int] = iter(heights)
    chunk_it: Iterator[np.ndarray] = iter(chunks)
    stream = _kernel.StreamKernel() if _kernel.kernel_backend() != "reference" else None
    parts: Deque[np.ndarray] = deque()  # reference backend: resident chunks
    base = 0  # global index of parts[0][0]
    loaded = 0  # total requests pulled from the stream so far
    exhausted = False
    cat: Optional[np.ndarray] = None  # cached concatenation of parts
    pos = int(start)
    impact = 0
    wall = 0
    count = 0

    def pull() -> bool:
        """Load one more non-empty chunk; False once the stream ends."""
        nonlocal loaded, exhausted, cat
        while True:
            try:
                chunk = next(chunk_it)
            except StopIteration:
                exhausted = True
                return False
            arr = np.ascontiguousarray(chunk, dtype=np.int64)
            if arr.ndim != 1:
                raise ValueError("chunks must be 1-D request arrays")
            if len(arr):
                if stream is not None:
                    stream.append(arr)
                else:
                    parts.append(arr)
                    cat = None
                loaded += len(arr)
                return True

    while True:
        while not exhausted and loaded <= pos:
            pull()
        if exhausted and pos >= loaded:
            break  # sequence complete (mirrors `while pos < n`)
        if max_boxes is not None and count >= max_boxes:
            break
        try:
            h = int(next(height_it))
        except StopIteration:
            break
        budget = mc * h
        while not exhausted and loaded < pos + budget:
            pull()
        if stream is not None:
            # No future box starts before ``pos``, so everything behind it
            # is dead weight; compact once the dead prefix outweighs the
            # live window (amortizing the Fenwick rebuild).
            dead = pos - stream.base
            if dead >= _kernel.STREAM_COMPACT_MIN and dead >= len(stream) - dead:
                stream.compact(pos)
            run = _kernel.run_box_fast(stream, pos, h, budget, mc)
        else:
            dropped = 0
            while parts and base + len(parts[0]) <= pos:
                n0 = len(parts[0])
                base += n0
                dropped += n0
                parts.popleft()
            if cat is not None and dropped:
                cat = cat[dropped:]  # same window minus a served prefix
            if cat is None:
                cat = parts[0] if len(parts) == 1 else np.concatenate(parts)
            local = run_box(cat, pos - base, h, budget, mc)
            run = BoxRun(
                start=local.start + base,
                end=local.end + base,
                hits=local.hits,
                faults=local.faults,
                time_used=local.time_used,
                budget=local.budget,
                height=local.height,
            )
        runs.append(run)
        pos = run.end
        impact += mc * h * h
        wall += budget
        count += 1
        if run.served == 0 and pos < loaded and budget >= mc:
            raise AssertionError("box with budget >= miss_cost made no progress")
    _record_profile_metrics(runs, impact, wall)
    return ProfileRun(
        runs=tuple(runs),
        completed=exhausted and pos >= loaded,
        position=pos,
        impact=impact,
        wall_time=wall,
    )
