"""Mattson stack distances and miss-ratio curves for LRU.

LRU has the *inclusion property*: the contents of an LRU cache of size c
are always a subset of the contents of an LRU cache of size c+1 processing
the same sequence.  Mattson et al. [IBM Sys. J. 1970] observed that a single
pass therefore suffices to compute LRU fault counts for *every* cache size
at once: the *stack distance* of a request is the number of distinct pages
referenced since the previous request to the same page (inclusive of the
page itself), and a request hits in a cache of size c iff its stack
distance is <= c.

We use the classical Fenwick-tree (binary indexed tree) formulation:
maintain a 0/1 array over request positions where position j holds 1 iff j
is the *most recent* access to its page; the stack distance of a request at
position i to a page last accessed at position j is 1 + (number of ones in
(j, i)).  Each request does O(log n) work.

These curves power workload characterization in the examples, the
marginal-benefit discussion of the paper's introduction (non-monotonic
benefit of extra cache), and cheap sanity oracles in tests (LRU fault
counts for all capacities at once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

__all__ = ["Fenwick", "stack_distances", "MissRatioCurve", "miss_ratio_curve", "lru_faults_all_sizes"]


class Fenwick:
    """Fenwick tree over ``n`` positions supporting point add / prefix sum.

    1-indexed internally; the public API is 0-indexed.
    """

    __slots__ = ("n", "_tree")

    def __init__(self, n: int) -> None:
        self.n = int(n)
        self._tree = np.zeros(self.n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        """Add ``delta`` at 0-indexed position ``i``."""
        tree = self._tree
        j = i + 1
        n = self.n
        while j <= n:
            tree[j] += delta
            j += j & (-j)

    def prefix_sum(self, i: int) -> int:
        """Sum of positions ``0..i`` inclusive (0-indexed); -1 gives 0."""
        tree = self._tree
        j = i + 1
        total = 0
        while j > 0:
            total += int(tree[j])
            j -= j & (-j)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of positions ``lo..hi`` inclusive; empty ranges give 0."""
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo > 0 else 0)


def stack_distances(requests: Sequence[int]) -> np.ndarray:
    """LRU stack distance of every request; 0 denotes a cold (first) access.

    A request with distance d >= 1 hits in any LRU cache of capacity >= d.
    Cold accesses miss at every capacity, encoded as 0 here (callers treat
    0 as "infinite distance"; 0 is unambiguous because true distances are
    always >= 1).

    O(n log n) time, O(n + #pages) space.
    """
    reqs = np.asarray(requests, dtype=np.int64)
    n = len(reqs)
    out = np.zeros(n, dtype=np.int64)
    tree = Fenwick(n)
    last: Dict[int, int] = {}
    for i in range(n):
        page = int(reqs[i])
        j = last.get(page)
        if j is None:
            out[i] = 0  # cold
        else:
            # distinct pages touched strictly between j and i, plus the page itself
            out[i] = tree.range_sum(j + 1, i - 1) + 1
            tree.add(j, -1)
        tree.add(i, 1)
        last[page] = i
    return out


@dataclass(frozen=True)
class MissRatioCurve:
    """LRU miss counts for every cache capacity, from one profiling pass.

    Attributes
    ----------
    faults:
        ``faults[c]`` = number of LRU faults with capacity ``c`` for
        ``c in 1..max_capacity`` (index 0 is unused and set to ``n``).
    n:
        Sequence length.
    cold:
        Number of cold (compulsory) misses = number of distinct pages.
    """

    faults: np.ndarray
    n: int
    cold: int

    def miss_ratio(self, capacity: int) -> float:
        """Fraction of requests that miss with the given LRU capacity."""
        c = min(int(capacity), len(self.faults) - 1)
        if c < 1:
            raise ValueError("capacity must be >= 1")
        return float(self.faults[c]) / self.n if self.n else 0.0

    def fault_count(self, capacity: int) -> int:
        """LRU fault count at the given capacity (clamped above max)."""
        c = min(int(capacity), len(self.faults) - 1)
        if c < 1:
            raise ValueError("capacity must be >= 1")
        return int(self.faults[c])


def miss_ratio_curve(requests: Sequence[int], max_capacity: int | None = None) -> MissRatioCurve:
    """Compute the full LRU miss-ratio curve in one pass.

    ``faults[c] = cold + #{i : distance_i > c}`` by the inclusion property.
    """
    reqs = np.asarray(requests, dtype=np.int64)
    n = len(reqs)
    dists = stack_distances(reqs)
    cold = int(np.count_nonzero(dists == 0))
    warm = dists[dists > 0]
    max_cap = int(max_capacity) if max_capacity is not None else (int(warm.max()) if len(warm) else 1)
    max_cap = max(max_cap, 1)
    # histogram of warm distances clipped to max_cap+1 (anything beyond
    # max_cap misses at every tracked capacity)
    clipped = np.minimum(warm, max_cap + 1)
    hist = np.bincount(clipped, minlength=max_cap + 2)
    # hits_at_or_below[c] = # warm requests with distance <= c
    hits_cum = np.cumsum(hist)
    faults = np.empty(max_cap + 1, dtype=np.int64)
    faults[0] = n
    for c in range(1, max_cap + 1):
        faults[c] = cold + (len(warm) - int(hits_cum[c]))
    return MissRatioCurve(faults=faults, n=n, cold=cold)


def lru_faults_all_sizes(requests: Sequence[int], capacities: Sequence[int]) -> Dict[int, int]:
    """LRU fault count for each requested capacity, via one profiling pass."""
    curve = miss_ratio_curve(requests, max_capacity=max(capacities) if len(capacities) else 1)
    return {int(c): curve.fault_count(int(c)) for c in capacities}
