"""Marking algorithms: deterministic marking and randomized MARK.

The marking family is the classical backbone of competitive paging
analysis [Borodin & El-Yaniv, ch. 3–4]:

* a **phase** ends when a (k+1)-st distinct page would enter the cache;
* every page requested in the current phase is *marked*; victims are
  chosen among unmarked pages only; at a phase boundary all marks clear.

Any marking algorithm is k-competitive; choosing the unmarked victim
uniformly at random (Fiat et al.'s MARK) is 2·H_k-competitive against an
oblivious adversary — the exponential randomization gap that motivates the
paper's interest in randomized-vs-deterministic parallel paging (its
conclusion conjectures that, unlike in sequential paging, randomization
does *not* help parallel makespan).

These policies plug into the same :class:`~repro.paging.policies.ReplacementPolicy`
protocol as LRU/FIFO and serve as substrate baselines and test oracles
(LRU is itself a marking algorithm, which the tests exploit: its phase
partition must coincide with the canonical one).
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from .policies import register_policy

__all__ = ["MarkingCache", "RandomMarkCache", "phase_partition"]


def phase_partition(requests, capacity: int) -> List[int]:
    """Start indices of the canonical k-phases of a request sequence.

    Phase boundaries are algorithm-independent: a new phase begins exactly
    when the (capacity+1)-st distinct page since the current phase's start
    is requested.  Returns the list of phase start positions (first is 0
    for nonempty sequences).
    """
    starts: List[int] = []
    distinct: Set[int] = set()
    for i, page in enumerate(requests):
        page = int(page)
        if not starts:
            starts.append(0)
        if page not in distinct:
            if len(distinct) == capacity:
                starts.append(i)
                distinct = set()
            distinct.add(page)
    return starts


class _MarkingBase:
    """Shared machinery: marked/unmarked bookkeeping and phase resets."""

    __slots__ = ("capacity", "_resident", "_marked", "hits", "faults", "evictions", "phases")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"marking capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._resident: Set[int] = set()
        self._marked: Set[int] = set()
        self.hits = 0
        self.faults = 0
        self.evictions = 0
        self.phases = 0  # completed phase resets

    def _pick_victim(self, unmarked: List[int]) -> int:
        raise NotImplementedError

    def touch(self, page: int) -> bool:
        page = int(page)
        if page in self._resident:
            self.hits += 1
            self._marked.add(page)
            return True
        self.faults += 1
        if len(self._resident) >= self.capacity:
            unmarked = [q for q in self._resident if q not in self._marked]
            if not unmarked:
                # phase boundary: every resident page is marked and a new
                # distinct page arrived — unmark everything and start over
                self._marked.clear()
                self.phases += 1
                unmarked = sorted(self._resident)
            victim = self._pick_victim(unmarked)
            self._resident.remove(victim)
            self.evictions += 1
        self._resident.add(page)
        self._marked.add(page)
        return False

    def __contains__(self, page: int) -> bool:
        return int(page) in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def clear(self) -> None:
        self._resident.clear()
        self._marked.clear()

    def marked_pages(self) -> Set[int]:
        return set(self._marked)


@register_policy("marking")
class MarkingCache(_MarkingBase):
    """Deterministic marking: evict the smallest-id unmarked page.

    The tie-break is arbitrary for the competitive bound; smallest-id keeps
    the policy fully deterministic and testable.
    """

    def _pick_victim(self, unmarked: List[int]) -> int:
        return min(unmarked)


class RandomMarkCache(_MarkingBase):
    """Fiat et al.'s MARK: evict a uniformly random unmarked page.

    2·H_k-competitive against oblivious adversaries — exponentially better
    than any deterministic policy's k.  Takes an explicit Generator (no
    registry entry: the registry's ``capacity -> policy`` factory signature
    has no seed channel, and hidden global randomness is banned here).
    """

    __slots__ = ("rng",)

    def __init__(self, capacity: int, rng: np.random.Generator) -> None:
        super().__init__(capacity)
        self.rng = rng

    def _pick_victim(self, unmarked: List[int]) -> int:
        unmarked.sort()  # make the distribution independent of set order
        return int(unmarked[self.rng.integers(0, len(unmarked))])
