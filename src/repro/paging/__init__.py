"""Sequential paging substrate: caches, offline MIN, box engine, profiling.

This package is the foundation everything else stands on:

* :mod:`~repro.paging.lru`, :mod:`~repro.paging.fifo` — online replacement
  policies with O(1) request handling;
* :mod:`~repro.paging.belady` — Belady's offline-optimal MIN, used for
  certified makespan lower bounds;
* :mod:`~repro.paging.engine` — the compartmentalized-box execution engine
  shared by every algorithm in :mod:`repro.core`;
* :mod:`~repro.paging.kernel` — the vectorized reuse-distance box kernel
  (``run_box_fast``) that serves every hot path, with the engine's
  dict-LRU kept as the cross-checked reference (``REPRO_KERNEL``);
* :mod:`~repro.paging.stack` — Mattson stack distances / miss-ratio curves
  for workload characterization and test oracles.
"""

from .clock import ClockCache
from .lfu import LFUCache
from .belady import BeladySimulation, belady_faults, min_service_time, next_use_indices
from .engine import BoxRun, ProfileRun, box_budget, execute_profile, execute_profile_streaming, run_box
from .engine_policy import run_box_min, run_box_policy
from .kernel import (
    SequenceKernel,
    StreamKernel,
    clear_kernel_cache,
    get_kernel,
    kernel_backend,
    maybe_kernel,
    run_box_fast,
)
from .fifo import FIFOCache
from .lru import LRUCache
from .marking import MarkingCache, RandomMarkCache, phase_partition
from .policies import POLICY_REGISTRY, ReplacementPolicy, count_faults, make_policy, register_policy
from .stack import Fenwick, MissRatioCurve, lru_faults_all_sizes, miss_ratio_curve, stack_distances

__all__ = [
    "BeladySimulation",
    "belady_faults",
    "min_service_time",
    "next_use_indices",
    "BoxRun",
    "ProfileRun",
    "box_budget",
    "execute_profile",
    "execute_profile_streaming",
    "run_box",
    "run_box_fast",
    "run_box_min",
    "run_box_policy",
    "SequenceKernel",
    "StreamKernel",
    "clear_kernel_cache",
    "get_kernel",
    "kernel_backend",
    "maybe_kernel",
    "ClockCache",
    "LFUCache",
    "FIFOCache",
    "LRUCache",
    "MarkingCache",
    "RandomMarkCache",
    "phase_partition",
    "POLICY_REGISTRY",
    "ReplacementPolicy",
    "count_faults",
    "make_policy",
    "register_policy",
    "Fenwick",
    "MissRatioCurve",
    "lru_faults_all_sizes",
    "miss_ratio_curve",
    "stack_distances",
]
