"""CLOCK (second-chance) replacement: the practical LRU approximation.

CLOCK arranges frames in a ring with one reference bit each; on a fault
the hand sweeps, clearing set bits, and evicts the first frame whose bit
is already clear.  It approximates LRU with O(1) state per frame and no
list maintenance — which is why real kernels use it — and is a marking
algorithm, hence k-competitive.

In this repository it is a substrate baseline (registered as ``"clock"``)
rounding out the policy menu for E11-style ablations and the policies-tour
example; the parallel machinery itself stays on exact LRU per the WLOG.
"""

from __future__ import annotations

from typing import Dict, List

from .policies import register_policy

__all__ = ["ClockCache"]


@register_policy("clock")
class ClockCache:
    """Second-chance ring of at most ``capacity`` frames."""

    __slots__ = ("capacity", "_frames", "_refbit", "_index", "_hand", "hits", "faults", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"CLOCK capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._frames: List[int] = []  # ring of resident pages
        self._refbit: List[bool] = []
        self._index: Dict[int, int] = {}  # page -> frame slot
        self._hand = 0
        self.hits = 0
        self.faults = 0
        self.evictions = 0

    def touch(self, page: int) -> bool:
        """Serve one request; return True on hit, False on fault."""
        page = int(page)
        slot = self._index.get(page)
        if slot is not None:
            self.hits += 1
            self._refbit[slot] = True
            return True
        self.faults += 1
        if len(self._frames) < self.capacity:
            self._index[page] = len(self._frames)
            self._frames.append(page)
            self._refbit.append(True)
            return False
        # sweep: clear set bits until a clear one is found
        while self._refbit[self._hand]:
            self._refbit[self._hand] = False
            self._hand = (self._hand + 1) % self.capacity
        victim_slot = self._hand
        del self._index[self._frames[victim_slot]]
        self._frames[victim_slot] = page
        self._refbit[victim_slot] = True
        self._index[page] = victim_slot
        self._hand = (victim_slot + 1) % self.capacity
        self.evictions += 1
        return False

    def __contains__(self, page: int) -> bool:
        return int(page) in self._index

    def __len__(self) -> int:
        return len(self._index)

    def clear(self) -> None:
        """Empty the ring (compartmentalized cold start); keeps counters."""
        self._frames.clear()
        self._refbit.clear()
        self._index.clear()
        self._hand = 0

    def reset_counters(self) -> None:
        """Zero the hit/fault/eviction counters without touching contents."""
        self.hits = self.faults = self.evictions = 0
