"""Belady's MIN: the offline-optimal replacement policy for a fixed cache.

On a fault with a full cache, MIN evicts the resident page whose next use is
furthest in the future (never-used-again pages first).  Belady [1966] proved
this minimizes faults for a single sequence and a fixed cache size; we rely
on it throughout :mod:`repro.parallel.opt` to build *certified lower bounds*
on the optimal parallel makespan (a processor running alone with the full
cache and MIN replacement can never be slower than it is under any parallel
OPT with the same cache).

Implementation notes
--------------------
The whole sequence is required up front (the policy is offline).  We
precompute, for every position ``i``, the index of the next request to the
same page (``n`` meaning "never again") with one backward pass — the
standard O(n) trick — then run the simulation with a lazy max-heap of
``(-next_use, page)`` entries.  Stale heap entries (from pages whose next
use was updated or that were already evicted) are discarded on pop, giving
O(n log n) total.  The hot loop hoists attribute lookups into locals per
the HPC guide's profiling advice.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["next_use_indices", "belady_faults", "BeladySimulation", "min_service_time"]


def next_use_indices(requests: Sequence[int]) -> np.ndarray:
    """For each position i, index of the next request to the same page.

    Positions whose page never recurs get ``len(requests)`` (an "infinity"
    that compares correctly against every real index).

    Runs in O(n) with a single backward pass and a dict of last-seen
    positions.
    """
    n = len(requests)
    nxt = np.full(n, n, dtype=np.int64)
    last_seen: Dict[int, int] = {}
    for i in range(n - 1, -1, -1):
        page = int(requests[i])
        nxt[i] = last_seen.get(page, n)
        last_seen[page] = i
    return nxt


class BeladySimulation:
    """Step-through simulation of MIN on a fixed request sequence.

    Unlike the online policies this is not a :class:`ReplacementPolicy`:
    it owns its sequence (offline knowledge is the whole point) and is
    advanced with :meth:`step` or :meth:`run`.

    Attributes
    ----------
    faults, hits:
        Counters, valid after (partial) runs.
    resident:
        Mapping page -> next-use index of the *current* pending occurrence,
        maintained exactly (used by tests to validate the eviction rule).
    """

    def __init__(self, requests: Sequence[int], capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"Belady capacity must be >= 1, got {capacity}")
        self.requests = np.asarray(requests, dtype=np.int64)
        self.capacity = int(capacity)
        self.next_use = next_use_indices(self.requests)
        self.pos = 0
        self.faults = 0
        self.hits = 0
        self.resident: Dict[int, int] = {}
        # Max-heap via negated keys; entries are (-next_use, page) and may
        # be stale — an entry is current iff resident[page] == next_use.
        self._heap: List[Tuple[int, int]] = []

    def done(self) -> bool:
        """True once every request has been served."""
        return self.pos >= len(self.requests)

    def _evict_furthest(self) -> int:
        """Pop stale heap entries until a live one surfaces; evict it."""
        resident = self.resident
        heap = self._heap
        while True:
            neg_nu, victim = heapq.heappop(heap)
            if resident.get(victim) == -neg_nu:
                del resident[victim]
                return victim

    def step(self) -> bool:
        """Serve one request; return True on hit.  Raises at end of sequence."""
        if self.done():
            raise IndexError("Belady simulation already finished")
        i = self.pos
        page = int(self.requests[i])
        nxt = int(self.next_use[i])
        hit = page in self.resident
        if hit:
            self.hits += 1
        else:
            self.faults += 1
            if len(self.resident) >= self.capacity:
                self._evict_furthest()
        self.resident[page] = nxt
        heapq.heappush(self._heap, (-nxt, page))
        self.pos = i + 1
        return hit

    def run(self, limit: int | None = None) -> None:
        """Serve up to ``limit`` further requests (all remaining if None)."""
        end = len(self.requests) if limit is None else min(len(self.requests), self.pos + limit)
        requests = self.requests
        next_use = self.next_use
        resident = self.resident
        heap = self._heap
        capacity = self.capacity
        push = heapq.heappush
        pop = heapq.heappop
        hits = self.hits
        faults = self.faults
        i = self.pos
        while i < end:
            page = int(requests[i])
            nxt = int(next_use[i])
            if page in resident:
                hits += 1
            else:
                faults += 1
                if len(resident) >= capacity:
                    while True:
                        neg_nu, victim = pop(heap)
                        if resident.get(victim) == -neg_nu:
                            del resident[victim]
                            break
            resident[page] = nxt
            push(heap, (-nxt, page))
            i += 1
        self.pos = i
        self.hits = hits
        self.faults = faults


def belady_faults(requests: Sequence[int], capacity: int) -> int:
    """Minimum number of faults to serve ``requests`` with ``capacity`` pages.

    One-shot convenience over :class:`BeladySimulation` for lower-bound code
    that only needs the count.
    """
    sim = BeladySimulation(requests, capacity)
    sim.run()
    return sim.faults


def min_service_time(requests: Sequence[int], capacity: int, miss_cost: int) -> int:
    """Minimum time to serve ``requests`` alone with a fixed ``capacity`` cache.

    Hits cost 1 time unit, faults cost ``miss_cost`` units, and MIN
    minimizes faults, so this is ``hits + miss_cost * min_faults`` — the
    per-processor term of the makespan lower bound in
    :func:`repro.parallel.opt.makespan_lower_bound`.
    """
    n = len(requests)
    f = belady_faults(requests, capacity)
    return (n - f) + miss_cost * f
