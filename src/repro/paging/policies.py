"""Replacement-policy protocol and registry for the sequential paging substrate.

A *replacement policy* manages a bounded set of pages (the cache contents)
under a stream of page requests.  The parallel-paging machinery in
:mod:`repro.core` only ever needs LRU (the paper's WLOG reduction lets every
processor run LRU inside its allocated boxes), but the substrate also ships
FIFO and Belady's offline-optimal MIN so that baselines, lower bounds, and
workload characterization have something to stand on.

The protocol is deliberately minimal and allocation-free per request:

``touch(page) -> bool``
    Serve one request.  Returns ``True`` on a hit, ``False`` on a fault.
    On a fault the policy admits the page, evicting per its rule if full.

Policies are registered by name in :data:`POLICY_REGISTRY` so simulators,
the CLI, and experiments can select them by string.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Protocol, runtime_checkable

from ..obs import metrics as obs_metrics

__all__ = [
    "ReplacementPolicy",
    "POLICY_REGISTRY",
    "register_policy",
    "make_policy",
    "count_faults",
]


@runtime_checkable
class ReplacementPolicy(Protocol):
    """Structural type for cache replacement policies.

    Implementations must expose a ``capacity`` attribute (maximum number of
    resident pages, ``>= 1``), a ``touch`` method serving one request, a
    ``__contains__`` for residency queries, a ``__len__`` for occupancy, and
    a ``clear`` that empties the cache (used for compartmentalized
    cold-starts at box boundaries).
    """

    capacity: int

    def touch(self, page: int) -> bool:
        """Serve one request for ``page``; return True on hit."""
        ...

    def __contains__(self, page: int) -> bool: ...

    def __len__(self) -> int: ...

    def clear(self) -> None:
        """Empty the cache (compartmentalized cold start)."""
        ...


#: Mapping from policy name to a factory ``capacity -> ReplacementPolicy``.
POLICY_REGISTRY: Dict[str, Callable[[int], ReplacementPolicy]] = {}


def register_policy(name: str) -> Callable[[Callable[..., ReplacementPolicy]], Callable[..., ReplacementPolicy]]:
    """Class decorator registering a policy factory under ``name``.

    The decorated class must be constructible as ``cls(capacity)``.
    Registration is idempotent per name; re-registering a name raises
    ``ValueError`` to catch accidental collisions early.
    """

    def decorator(cls: Callable[..., ReplacementPolicy]) -> Callable[..., ReplacementPolicy]:
        if name in POLICY_REGISTRY:
            raise ValueError(f"policy {name!r} already registered")
        POLICY_REGISTRY[name] = cls
        return cls

    return decorator


def make_policy(name: str, capacity: int) -> ReplacementPolicy:
    """Instantiate a registered policy by name.

    Raises ``KeyError`` with the list of known policies if ``name`` is
    unknown, so CLI typos fail with an actionable message.
    """
    try:
        factory = POLICY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(POLICY_REGISTRY))
        raise KeyError(f"unknown policy {name!r}; known policies: {known}") from None
    return factory(capacity)


def count_faults(policy: ReplacementPolicy, requests: Iterable[int]) -> int:
    """Run ``requests`` through ``policy`` and return the number of faults.

    Convenience used all over the tests and the workload characterization
    tooling; the policy is *not* cleared first, so warm-cache counts are
    possible by design.
    """
    faults = 0
    served = 0
    occupancy_before = len(policy)
    evictions_before = getattr(policy, "evictions", None)
    for page in requests:
        served += 1
        if not policy.touch(int(page)):
            faults += 1
    reg = obs_metrics.active()
    if reg.enabled and served:
        name = type(policy).__name__
        reg.counter("sim.policy.requests", policy=name).inc(served)
        reg.counter("sim.policy.hits", policy=name).inc(served - faults)
        reg.counter("sim.policy.faults", policy=name).inc(faults)
        if evictions_before is not None:
            evictions = int(getattr(policy, "evictions")) - int(evictions_before)
        else:
            # every fault admits a page; admissions beyond the occupancy
            # growth must have displaced a resident page
            evictions = faults - (len(policy) - occupancy_before)
        reg.counter("sim.policy.evictions", policy=name).inc(int(evictions))
    return faults
