"""The experiment suite: one function per claim of the paper (E1–E9).

The paper has no empirical section, so these experiments *are* the
reproduction's tables (see DESIGN.md §5 for the index and EXPERIMENTS.md
for recorded results).  Each function returns ``(rows, report_text)`` —
the CLI prints the report, the benchmark harness times the computation and
persists the report to ``benchmarks/out/``.

Every function takes a ``scale`` ("quick" for CI-sized runs, "full" for
the recorded numbers) and an optional seed; all randomness flows through
seeded generators.

Replicated computations (seed reps, sweep cells, offline OPT profiles)
are expressed as :mod:`repro.exec` work units and run through the ambient
execution engine, so ``repro eN --jobs N`` fans them out over worker
processes and the content-addressed cache makes reruns near-free — with
tables identical to serial execution.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from .analysis.fitting import best_model, fit_growth, normalized_constants
from .analysis.harness import run_experiment
from .analysis.plots import bar_chart, line_chart
from .analysis.report import render_table
from .analysis.sweep import series_of, sweep_p
from .core.box import HeightLattice
from .core.distributions import make_distribution
from .core.det_par import DetPar
from .core.rand_par import RandPar
from .core.well_rounded import audit_balance, audit_well_rounded
from .core.black_box import BlackBoxPar
from .exec.engine import current_engine
from .exec.policy import FailedCell
from .exec.units import WorkUnit
from .parallel.schedulers import observe_pager
from .workloads.adversarial import build_adversarial_instance, lemma8_opt_makespan
from .workloads.generators import cyclic, multiscale_cycles, phased_working_sets, polluted_cycle, scan
from .workloads.trace import ParallelWorkload

__all__ = ["EXPERIMENTS", "run_named_experiment"]

Rows = List[Dict[str, object]]


def _engine_values(units: List[WorkUnit]) -> List[object]:
    """Run units through the ambient engine, degrading failures to ``nan``.

    Under a keep-going policy a unit that exhausted its retries comes back
    as a :class:`~repro.exec.FailedCell`; mapping it to ``nan`` here lets
    every downstream mean/ratio propagate the loss and the table renderer
    mark the affected cells ``FAIL`` instead of crashing the experiment.
    """
    return [float("nan") if isinstance(v, FailedCell) else v for v in current_engine().run(units)]


# --------------------------------------------------------------------- #
# green-paging workload menu shared by E1 / E8 / E9
# --------------------------------------------------------------------- #
def _green_workloads(k: int, p: int, n: int, rng: np.random.Generator) -> Dict[str, np.ndarray]:
    """Single-processor sequences that exercise several cache scales."""
    return {
        "scan": scan(n),
        # light pollution over a cycle that fits in half the lattice, so a
        # mid-height box genuinely pays (cycle=k-1 cannot: a height-k box
        # would exhaust its whole s·k budget on warm-up misses)
        "polluted-cycle": polluted_cycle(n, max(2, k // 4), max(4, 2 * p)),
        # phases sweeping every box-height scale — the workload for which
        # the full lattice matters and the log p factor is sharpest
        "multiscale": multiscale_cycles(n, k, p, rng),
    }


def e1_rand_green(scale: str = "quick", seed: int = 0) -> Tuple[Rows, str]:
    """Theorem 1: RAND-GREEN impact within O(log p) of the offline box OPT."""
    p_values = [4, 8, 16, 32] if scale == "quick" else [4, 8, 16, 32, 64, 128]
    reps = 5 if scale == "quick" else 12
    # express every OPT profile and every RAND-GREEN replicate as a work
    # unit, then run the whole grid through the engine in one batch
    units: List[WorkUnit] = []
    cells: List[Tuple[int, str, int, List[int]]] = []  # (p, workload, opt idx, rep idxs)
    for p in p_values:
        k = 4 * p
        s = 2 * k  # tall boxes must beat thrashing (see DESIGN.md §4)
        n = 1200 if scale == "quick" else 3000
        rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(p,)))
        for name, seq in _green_workloads(k, p, n, rng).items():
            opt_idx = len(units)
            units.append(
                WorkUnit("green-opt", {"k": k, "p": p, "miss_cost": s, "seq": seq}, label=f"e1/opt/{name}/p={p}")
            )
            rep_idxs = []
            for r in range(reps):
                rep_idxs.append(len(units))
                units.append(
                    WorkUnit(
                        "rand-green",
                        {"k": k, "p": p, "miss_cost": s, "entropy": seed + 1, "spawn_key": (p, r), "seq": seq},
                        label=f"e1/rand-green/{name}/p={p}/r={r}",
                    )
                )
            cells.append((p, name, opt_idx, rep_idxs))
    values = _engine_values(units)
    rows: Rows = []
    for p, name, opt_idx, rep_idxs in cells:
        opt = values[opt_idx]
        ratios = [values[i] / opt for i in rep_idxs]
        rows.append(
            {
                "p": p,
                "workload": name,
                "log2_p": int(math.log2(p)),
                "ratio_mean": round(float(np.mean(ratios)), 3),
                "ratio_max": round(float(np.max(ratios)), 3),
                "ratio_over_log2p": round(float(np.mean(ratios)) / math.log2(p), 3),
            }
        )
    # shape check per workload
    lines = [render_table(rows, title="E1 — RAND-GREEN vs offline green OPT (Theorem 1)")]
    for name in ("scan", "polluted-cycle", "multiscale"):
        ps = [r["p"] for r in rows if r["workload"] == name]
        ys = [r["ratio_mean"] for r in rows if r["workload"] == name]
        fit = best_model(ps, ys)
        lines.append(f"best growth model[{name}]: {fit.model} (R²={fit.r_squared:.3f}, slope={fit.slope:.3f})\n")
    series = {
        name: {r["p"]: r["ratio_mean"] for r in rows if r["workload"] == name}
        for name in ("scan", "polluted-cycle", "multiscale")
    }
    lines.append(line_chart(series, title="impact ratio vs p", y_label="ratio"))
    return rows, "\n".join(lines)


def e2_chunk_balance(scale: str = "quick", seed: int = 0) -> Tuple[Rows, str]:
    """Observation 1: primary and secondary chunk parts match in expectation."""
    p_values = [4, 8, 16] if scale == "quick" else [4, 8, 16, 32, 64]
    rows: Rows = []
    for p in p_values:
        K, s = 8 * p, 16
        n = 30000 if scale == "quick" else 120000
        wl = ParallelWorkload.from_local([cyclic(n, 3) for _ in range(p)])
        res = observe_pager(RandPar(K, s, np.random.default_rng(seed))).run(wl, max_chunks=500)
        chunks = [c for c in res.meta["chunks"] if c.active_at_start == p]
        len_ratios = [c.secondary_length / c.primary_length for c in chunks]
        imp_ratios = [c.secondary_impact / max(1, c.primary_impact) for c in chunks]
        # analytic E[ℓ2]/ℓ1 from the drawing distribution (the identity
        # Observation 1 asserts; the empirical mean fluctuates because the
        # secondary length j² is heavy-tailed)
        lattice = HeightLattice(K, p)
        dist = make_distribution(lattice, "inverse_square")
        ell1 = lattice.levels * s * lattice.min_height
        exp_ell2 = sum(
            q * math.ceil(p / max(1, K // j)) * s * j for q, j in zip(dist.pmf, lattice.heights)
        )
        rows.append(
            {
                "p": p,
                "chunks": len(chunks),
                "analytic_len_ratio": round(exp_ell2 / ell1, 3),
                "mean_len_ratio": round(float(np.mean(len_ratios)), 3),
                "mean_impact_ratio": round(float(np.mean(imp_ratios)), 3),
                "max_len_ratio": round(float(np.max(len_ratios)), 3),
            }
        )
    text = render_table(rows, title="E2 — chunk primary/secondary balance (Observation 1)")
    text += (
        "\nanalytic_len_ratio is E[ℓ2]/ℓ1 computed from the drawing distribution"
        " (Observation 1 predicts Θ(1)); the empirical mean converges to it as"
        " chunks accumulate but the per-chunk ratio is heavy-tailed (max column).\n"
    )
    return rows, text


def _sweep_experiment(
    algorithms: Sequence[str],
    scale: str,
    seed: int,
    field: str,
    title: str,
    claim_models: Dict[str, str],
) -> Tuple[Rows, str]:
    from .analysis.sweep import default_workload_factory

    p_values = [2, 4, 8, 16] if scale == "quick" else [2, 4, 8, 16, 32]
    seeds = (seed, seed + 1, seed + 2) if scale == "quick" else tuple(seed + i for i in range(5))
    result = sweep_p(
        algorithms,
        p_values,
        miss_cost=64,
        # every processor is cache-sensitive at several scales, so the
        # allocation policy (not one bottleneck scan) decides the makespan
        workload_factory=default_workload_factory(
            kind="multiscale", n_requests_per_proc=400 if scale == "quick" else 1000
        ),
        cache_factor=4,
        xi=2,
        seeds=seeds,
        workload_seed=seed + 99,
        include_impact_lb=True,
    )
    rows = result.as_dicts()
    lines = [render_table(rows, title=title)]
    for alg in algorithms:
        ps, ys = series_of(result, alg, field)
        if len(ps) >= 2:
            fit = best_model(ps, ys)
            norm = normalized_constants(ps, ys, claim_models.get(alg, "log"))
            lines.append(
                f"{alg}: best model={fit.model} (R²={fit.r_squared:.3f}); "
                f"ratio/{claim_models.get(alg, 'log')}₂p = {np.round(norm, 3).tolist()}\n"
            )
    chart_series = {alg: result.series(alg, field) for alg in algorithms}
    lines.append(line_chart(chart_series, title=f"{field} vs p", y_label="ratio"))
    return rows, "\n".join(lines)


def e3_rand_par(scale: str = "quick", seed: int = 0) -> Tuple[Rows, str]:
    """Theorem 2: RAND-PAR expected makespan O(log p · T_OPT)."""
    return _sweep_experiment(
        ["rand-par"],
        scale,
        seed,
        field="makespan_ratio",
        title="E3 — RAND-PAR makespan vs certified lower bound (Theorem 2)",
        claim_models={"rand-par": "log"},
    )


def e4_well_rounded(scale: str = "quick", seed: int = 0) -> Tuple[Rows, str]:
    """Lemma 6: DET-PAR is well-rounded with O(k) memory."""
    from .workloads.generators import make_parallel_workload

    p_values = [4, 8, 16] if scale == "quick" else [4, 8, 16, 32, 64]
    rows: Rows = []
    for p in p_values:
        k = 4 * p
        rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(p,)))
        wl = make_parallel_workload(p=p, n_requests=300 if scale == "quick" else 800, k=k, rng=rng)
        res = observe_pager(DetPar(2 * k, 16)).run(wl)
        report = audit_well_rounded(res)
        balance = audit_balance(res)
        rows.append(
            {
                "p": p,
                "phases": len(res.meta["phases"]),
                "base_covered": report.base_covered,
                "max_gap_factor": round(report.max_gap_factor, 3),
                "reserved_frac_min": round(balance.min_reserved_fraction, 3),
                "reserved_peak/k": round(res.meta["reserved_peak"] / k, 3),
                "impact_spread": round(balance.max_phase_spread, 3),
            }
        )
    text = render_table(rows, title="E4 — DET-PAR well-roundedness & memory audit (Lemma 6)")
    text += (
        "\nmax_gap_factor is the measured constant c in the well-rounded window"
        " c·z²·s·log p/b — Lemma 6 predicts it stays O(1) as p grows.\n"
    )
    return rows, text


def e5_makespan(scale: str = "quick", seed: int = 0) -> Tuple[Rows, str]:
    """Theorem 3 + baselines: makespan ratios for every algorithm."""
    algorithms = [
        "det-par",
        "rand-par",
        "black-box-green",
        "equal-partition",
        "best-static-partition",
        "global-lru",
    ]
    return _sweep_experiment(
        algorithms,
        scale,
        seed,
        field="makespan_ratio",
        title="E5 — makespan competitive ratios across algorithms (Theorem 3)",
        claim_models={a: "log" for a in algorithms},
    )


def e6_mean_completion(scale: str = "quick", seed: int = 0) -> Tuple[Rows, str]:
    """Corollary 3: DET-PAR is simultaneously O(log p) for mean completion."""
    return _sweep_experiment(
        ["det-par", "rand-par", "equal-partition", "global-lru"],
        scale,
        seed,
        field="mean_completion_ratio",
        title="E6 — mean completion time ratios (Corollary 3)",
        claim_models={"det-par": "log", "rand-par": "log"},
    )


def e7_lower_bound(scale: str = "quick", seed: int = 0) -> Tuple[Rows, str]:
    """Theorem 4: the greedily-green separation grows like log p/log log p."""
    ells = [2, 3, 4] if scale == "quick" else [2, 3, 4, 5]
    rows: Rows = []
    for ell in ells:
        inst = build_adversarial_instance(ell, alpha=0.25, suffix_phase_multiplier=1)
        s = inst.recommended_miss_cost()
        K = 2 * inst.k
        opt = lemma8_opt_makespan(inst, s)
        bb = observe_pager(BlackBoxPar(K, s)).run(inst.workload)
        dp = observe_pager(DetPar(K, s)).run(inst.workload)
        rp = observe_pager(RandPar(K, s, np.random.default_rng(seed))).run(inst.workload)
        logp = math.log2(inst.p)
        ll = math.log2(max(2.0, logp))
        from .analysis.eras import era_analysis

        eras = era_analysis(bb)
        rows.append(
            {
                "ell": ell,
                "p": inst.p,
                "k": inst.k,
                "s": s,
                "opt_lemma8": opt,
                "blackbox_ratio": round(bb.makespan / opt, 3),
                "detpar_ratio": round(dp.makespan / opt, 3),
                "randpar_ratio": round(rp.makespan / opt, 3),
                "log_over_loglog": round(logp / ll, 3),
                "eras": len(eras.durations),
                "era_balance": round(eras.balance, 2),
            }
        )
    text = render_table(rows, title="E7 — Theorem 4 adversarial instance: PAR vs Lemma-8 OPT")
    ps = [r["p"] for r in rows]
    ys = [r["blackbox_ratio"] for r in rows]
    if len(ps) >= 2:
        fit = fit_growth(ps, ys, "log_over_loglog")
        text += (
            f"\nblack-box ratio vs log p/log log p fit: slope={fit.slope:.3f}, "
            f"R²={fit.r_squared:.3f} (Theorem 4 predicts linear growth in this feature).\n"
            "suffix_phase_multiplier=1 (paper: 4) — see EXPERIMENTS.md for why the paper's\n"
            "constant hides the separation at laptop-scale p.\n"
        )
        text += "\n" + line_chart(
            {
                "black-box": {r["p"]: r["blackbox_ratio"] for r in rows},
                "det-par": {r["p"]: r["detpar_ratio"] for r in rows},
                "logp/loglogp": {r["p"]: r["log_over_loglog"] for r in rows},
            },
            title="Theorem 4 separation vs p",
            y_label="ratio",
        )
    return rows, text


def e8_ablation(scale: str = "quick", seed: int = 0) -> Tuple[Rows, str]:
    """§3.1/§3.2 ablation: the 1/j² height distribution is the right one."""
    p_values = [8, 16, 32] if scale == "quick" else [8, 16, 32, 64]
    reps = 5 if scale == "quick" else 10
    kinds = ("inverse_square", "inverse_linear", "uniform")
    units: List[WorkUnit] = []
    cells: List[Tuple[int, int, Dict[str, List[int]]]] = []  # (p, opt idx, kind -> rep idxs)
    for p in p_values:
        k = 4 * p
        s = 2 * k
        n = 1200 if scale == "quick" else 2500
        # a scan is the sharpest discriminator: its OPT uses only minimum
        # boxes, so every unit of tall-box impact is pure waste — uniform
        # height draws then cost Θ(p/log p) while 1/j² costs Θ(log p)
        seq = scan(n)
        opt_idx = len(units)
        units.append(WorkUnit("green-opt", {"k": k, "p": p, "miss_cost": s, "seq": seq}, label=f"e8/opt/p={p}"))
        by_kind: Dict[str, List[int]] = {}
        for kind in kinds:
            by_kind[kind] = []
            for r in range(reps):
                by_kind[kind].append(len(units))
                units.append(
                    WorkUnit(
                        "rand-green",
                        {"k": k, "p": p, "miss_cost": s, "entropy": seed + 7, "spawn_key": (p, r), "dist": kind, "seq": seq},
                        label=f"e8/rand-green/{kind}/p={p}/r={r}",
                    )
                )
        cells.append((p, opt_idx, by_kind))
    values = _engine_values(units)
    rows: Rows = []
    for p, opt_idx, by_kind in cells:
        opt = values[opt_idx]
        row: Dict[str, object] = {"p": p}
        for kind in kinds:
            row[kind] = round(float(np.mean([values[i] / opt for i in by_kind[kind]])), 3)
        rows.append(row)
    text = render_table(rows, title="E8 — height-distribution ablation (green impact ratio)")
    text += (
        "\nLemma 1's equalization holds only for 1/j²: heavier-tailed distributions"
        " overspend on tall boxes and the ratio degrades with p.\n"
    )
    text += "\n" + line_chart(
        {kind: {r["p"]: r[kind] for r in rows} for kind in kinds},
        title="green impact ratio vs p by height distribution",
        y_label="ratio",
    )
    return rows, text


def e9_det_green(scale: str = "quick", seed: int = 0) -> Tuple[Rows, str]:
    """Deterministic green paging matches RAND-GREEN (derandomization)."""
    p_values = [4, 8, 16, 32] if scale == "quick" else [4, 8, 16, 32, 64, 128]
    reps = 5 if scale == "quick" else 10
    units: List[WorkUnit] = []
    cells: List[Tuple[int, str, int, int, List[int]]] = []  # (p, name, opt, det, rand idxs)
    for p in p_values:
        k = 4 * p
        s = 2 * k
        n = 1200 if scale == "quick" else 3000
        rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(p,)))
        for name, seq in _green_workloads(k, p, n, rng).items():
            opt_idx = len(units)
            units.append(WorkUnit("green-opt", {"k": k, "p": p, "miss_cost": s, "seq": seq}, label=f"e9/opt/{name}/p={p}"))
            det_idx = len(units)
            units.append(WorkUnit("det-green", {"k": k, "p": p, "miss_cost": s, "seq": seq}, label=f"e9/det-green/{name}/p={p}"))
            rand_idxs = []
            for r in range(reps):
                rand_idxs.append(len(units))
                units.append(
                    WorkUnit(
                        "rand-green",
                        {"k": k, "p": p, "miss_cost": s, "entropy": seed + 3, "spawn_key": (p, r), "seq": seq},
                        label=f"e9/rand-green/{name}/p={p}/r={r}",
                    )
                )
            cells.append((p, name, opt_idx, det_idx, rand_idxs))
    values = _engine_values(units)
    rows: Rows = []
    for p, name, opt_idx, det_idx, rand_idxs in cells:
        opt = values[opt_idx]
        det_ratio = values[det_idx] / opt
        rg_ratios = [values[i] / opt for i in rand_idxs]
        rows.append(
            {
                "p": p,
                "workload": name,
                "det_green_ratio": round(det_ratio, 3),
                "rand_green_mean": round(float(np.mean(rg_ratios)), 3),
                "det/rand": round(det_ratio / float(np.mean(rg_ratios)), 3),
            }
        )
    text = render_table(rows, title="E9 — DET-GREEN vs RAND-GREEN vs offline OPT")
    text += "\ndet/rand near (or below) 1 means derandomization costs nothing.\n"
    return rows, text


def e11_inbox_policy(scale: str = "quick", seed: int = 0) -> Tuple[Rows, str]:
    """Beyond the paper: what the WLOG-to-LRU reduction costs inside boxes.

    The model fixes LRU inside compartmentalized boxes (WLOG up to O(1)).
    This ablation measures that O(1) empirically: run identical green box
    profiles with LRU, FIFO, and offline MIN replacement inside each box
    and compare requests served per box — MIN/LRU bounds the constant the
    reduction absorbs; FIFO shows an online policy that is *not* within a
    small constant on sliding patterns.
    """
    from .paging.engine import run_box
    from .paging.engine_policy import run_box_min, run_box_policy
    from .paging.fifo import FIFOCache
    from .workloads.generators import sawtooth

    rows: Rows = []
    s = 64
    heights = (4, 8, 16, 32) if scale == "quick" else (4, 8, 16, 32, 64)
    rng = np.random.default_rng(seed)
    workloads = {
        "cycle(h+1)": lambda h: cyclic(6000, h + 1),
        "sawtooth(h+2)": lambda h: sawtooth(6000, h + 2),
        "multiscale": lambda h: multiscale_cycles(6000, 4 * h, 4, rng),
    }
    for name, make in workloads.items():
        for h in heights:
            seq = make(h)
            budget = 4 * s * h  # a few box lifetimes
            lru = run_box(seq, 0, h, budget, s).served
            lru2 = run_box(seq, 0, 2 * h, budget, s).served
            fifo = run_box_policy(seq, 0, FIFOCache(h), budget, s).served
            opt = run_box_min(seq, 0, h, budget, s).served
            rows.append(
                {
                    "workload": name,
                    "height": h,
                    "lru_served": lru,
                    "fifo_served": fifo,
                    "min_served": opt,
                    "lru@2h_served": lru2,
                    "min/lru": round(opt / max(1, lru), 3),
                    "lru@2h/min": round(lru2 / max(1, opt), 3),
                }
            )
    text = render_table(rows, title="E11 — in-box replacement ablation (requests served per box window)")
    worst = max(r["min/lru"] for r in rows)
    min_aug = min(r["lru@2h/min"] for r in rows)
    text += (
        f"\nSame-height MIN can beat LRU by up to min(h, s) on sliding cycles"
        f" (observed {worst}×) — equal-size equivalence does NOT hold.  What the"
        f" WLOG actually uses is Sleator–Tarjan augmentation: LRU with 2h never"
        f" trails MIN with h (worst lru@2h/min observed: {min_aug} >= 1), so the"
        " reduction costs one factor of 2 in resource augmentation, not a"
        " competitive-ratio factor.\n"
    )
    return rows, text


def e10_shared_pages(scale: str = "quick", seed: int = 0) -> Tuple[Rows, str]:
    """Beyond the paper: the shared-pages model of the conclusion.

    The paper assumes disjoint sequences and poses sharing as future work.
    We sweep the fraction of requests that hit a common hot set: box
    algorithms (which duplicate the hot set per processor) progressively
    lose to one globally shared LRU, quantifying what a sharing-aware
    parallel paging theory would have to beat.
    """
    from .workloads.generators import make_shared_workload

    p = 8
    K = 64
    s = 16
    n = 600 if scale == "quick" else 1500
    fractions = (0.0, 0.25, 0.5, 0.75, 0.95)
    algorithms = ("det-par", "equal-partition", "global-lru")
    units: List[WorkUnit] = []
    for frac in fractions:
        rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(int(frac * 100),)))
        wl = make_shared_workload(
            p, n, shared_pages=3 * K // 4, private_pages=K // 4, shared_fraction=frac, rng=rng
        )
        for name in algorithms:
            units.append(
                WorkUnit(
                    "parallel-run",
                    {"algorithm": name, "cache_size": 2 * K, "miss_cost": s, "seed": seed, "workload": wl},
                    label=f"e10/{name}/shared={frac}",
                )
            )
    values = _engine_values(units)
    rows: Rows = []
    for fi, frac in enumerate(fractions):
        row: Dict[str, object] = {"shared_fraction": frac}
        for ni, name in enumerate(algorithms):
            row[name] = values[fi * len(algorithms) + ni].makespan
        row["global/det-par"] = round(row["global-lru"] / row["det-par"], 3)
        rows.append(row)
    text = render_table(rows, title="E10 — shared pages (beyond the paper): makespans")
    text += (
        "\nAs sharing grows, the globally shared cache stores the hot set once"
        " while per-processor schemes duplicate it p times — the gap a"
        " sharing-aware parallel paging theory (the paper's open problem)"
        " would need to close.\n"
    )
    heavy = rows[-1]
    text += "\n" + bar_chart(
        {name: float(heavy[name]) for name in algorithms},
        title=f"makespans at shared_fraction={heavy['shared_fraction']}",
        fmt="{:.0f}",
    )
    return rows, text


EXPERIMENTS: Dict[str, Callable[..., Tuple[Rows, str]]] = {
    "e1": e1_rand_green,
    "e2": e2_chunk_balance,
    "e3": e3_rand_par,
    "e4": e4_well_rounded,
    "e5": e5_makespan,
    "e6": e6_mean_completion,
    "e7": e7_lower_bound,
    "e8": e8_ablation,
    "e9": e9_det_green,
    "e10": e10_shared_pages,
    "e11": e11_inbox_policy,
}


def run_named_experiment(name: str, scale: str = "quick", seed: int = 0) -> Tuple[Rows, str]:
    """Dispatch an experiment by id ('e1' … 'e9')."""
    try:
        fn = EXPERIMENTS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
    return fn(scale=scale, seed=seed)
