"""The unified client: one ``Session`` facade over every entry point.

Historically each way of running the reproduction had its own surface:
:func:`repro.run_experiment` for one workload, :func:`repro.sweep_p` for
ratio-vs-p curves, ``repro run --trace`` for corpus traces,
``repro <exp>`` for named experiments, and raw
``ExecutionEngine.run(units)`` for custom cells.  A
:class:`Session` folds them into one object with typed request/reply
dataclasses (:mod:`repro.client.protocol`) — and because those
dataclasses are shared verbatim with the HTTP service, the same calling
code works in-process::

    with Session(jobs=4, cache=True) as session:
        reply = session.run(RunRequest(("det-par",), 64, 8,
                                       workload=WorkloadSpec(8, 400, 32)))

or against a running ``repro serve`` instance::

    with HttpSession("http://127.0.0.1:8177") as session:
        reply = session.run(RunRequest(("det-par",), 64, 8,
                                       workload=WorkloadSpec(8, 400, 32)))

:func:`open_session` picks the right one from a URL-or-None.  The legacy
call paths (``run_experiment``, ``sweep_p``, positional shims from PR 1)
keep working unchanged — the facade delegates to them, it does not fork
their logic — so rows from a session are byte-identical to rows from the
historical API.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, List, Optional, Sequence, Union

from ..exec.cache import ResultCache
from ..exec.checkpoint import RunCheckpoint
from ..exec.engine import ExecutionEngine, use_engine
from ..exec.policy import ExecutionPolicy
from ..exec.telemetry import TELEMETRY
from ..exec.units import WorkUnit
from .protocol import (
    ExperimentRequest,
    MetricsReply,
    Request,
    RunReply,
    RunRequest,
    ServiceError,
    SweepRequest,
    TraceReply,
    TraceUpload,
)

__all__ = ["Session", "HttpSession", "open_session", "execute_request"]


def execute_request(
    request: Request,
    engine: ExecutionEngine,
    registry_root: Optional[str] = None,
    job_id: str = "",
) -> RunReply:
    """Execute one typed request on ``engine`` — the service's core.

    This is the single choke point the in-process :class:`Session` and
    the :class:`~repro.service.backend.ServiceBackend` share, which is
    what makes "rows from the service" and "rows from the library" the
    same rows by construction.  The reply's ``cells``/``cache_hits``
    come from the telemetry window this request occupied.
    """
    from ..analysis.report import render_table

    request.validate()
    mark = len(TELEMETRY)
    t0 = time.perf_counter()
    with use_engine(engine):
        if isinstance(request, RunRequest):
            rows, table = _execute_run(request, registry_root)
        elif isinstance(request, ExperimentRequest):
            from ..experiments import run_named_experiment

            rows, table = run_named_experiment(request.name, scale=request.scale, seed=request.seed)
        elif isinstance(request, SweepRequest):
            from ..analysis.sweep import sweep_p

            result = sweep_p(
                list(request.algorithms),
                list(request.p_values),
                miss_cost=int(request.miss_cost),
                cache_factor=int(request.cache_factor),
                xi=int(request.xi),
                seeds=list(request.seeds),
                workload_seed=int(request.workload_seed),
                include_impact_lb=bool(request.include_lb),
            )
            rows = result.as_dicts()
            table = render_table(rows, title="sweep")
        else:  # pragma: no cover — request_from_dict already rejects these
            raise ServiceError("bad-request", f"cannot execute request of type {type(request).__name__}")
    window = TELEMETRY.records[mark:]
    return RunReply(
        job_id=job_id,
        state="done",
        rows=tuple(rows),
        table=table,
        elapsed_s=time.perf_counter() - t0,
        cells=len(window),
        cache_hits=sum(1 for r in window if r.cached),
    )


def _execute_run(request: RunRequest, registry_root: Optional[str]) -> tuple:
    """A :class:`RunRequest` through the historical harness, unchanged."""
    from ..analysis.harness import run_experiment
    from ..analysis.report import render_table
    from ..parallel.schedulers import ALGORITHM_REGISTRY, RunSpec
    from ..traces.errors import TraceError

    unknown = [name for name in request.algorithms if name not in ALGORITHM_REGISTRY]
    if unknown:
        known = ", ".join(sorted(ALGORITHM_REGISTRY))
        raise ServiceError("bad-request", f"unknown algorithm(s) {unknown}; known: {known}")
    if request.trace is not None:
        from ..traces.registry import TraceRegistry

        try:
            workload = TraceRegistry(registry_root).workload(request.trace)
        except TraceError as exc:
            raise ServiceError("not-found", str(exc)) from exc
        title = f"trace {request.trace}"
    else:
        workload = request.workload.build()
        title = workload.describe() if hasattr(workload, "describe") else "workload"
    try:
        specs = [
            RunSpec(
                algorithm=name,
                cache_size=int(request.cache_size),
                miss_cost=int(request.miss_cost),
                xi=int(request.xi),
            )
            for name in request.algorithms
        ]
        result_rows = run_experiment(
            workload, specs, seeds=list(request.seeds), include_impact_lb=bool(request.include_lb)
        )
    except (KeyError, ValueError) as exc:
        raise ServiceError("bad-request", str(exc)) from exc
    rows = [row.as_dict() for row in result_rows]
    return rows, render_table(rows, title=title)


class Session:
    """In-process session: a persistent engine behind the typed API.

    Parameters mirror :func:`repro.exec.execution`, but the engine lives
    for the whole session instead of one ``with`` block, so its cache,
    policy, and checkpoint serve every request.  ``registry`` points
    trace-referencing requests at a specific corpus root.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: bool = False,
        cache_dir: Optional[Any] = None,
        policy: Optional[ExecutionPolicy] = None,
        checkpoint: Optional[RunCheckpoint] = None,
        engine: Optional[ExecutionEngine] = None,
        registry: Optional[str] = None,
    ) -> None:
        self.engine = engine if engine is not None else ExecutionEngine(
            jobs=jobs,
            cache=ResultCache(cache_dir) if cache else None,
            policy=policy,
            checkpoint=checkpoint,
        )
        self.registry_root = str(registry) if registry is not None else None

    # -- the unified request surface ----------------------------------- #
    def run(self, request: RunRequest) -> RunReply:
        """Algorithms × one workload (trace or generated) → rows."""
        return execute_request(request, self.engine, self.registry_root)

    def experiment(self, request: Union[ExperimentRequest, str], **kwargs: Any) -> RunReply:
        """A named experiment; accepts a request or just its name."""
        if isinstance(request, str):
            request = ExperimentRequest(name=request, **kwargs)
        return execute_request(request, self.engine, self.registry_root)

    def sweep(self, request: SweepRequest) -> RunReply:
        """A ratio-vs-p sweep → rows (one per algorithm × p)."""
        return execute_request(request, self.engine, self.registry_root)

    def submit_units(self, units: Sequence[WorkUnit]) -> List[Any]:
        """Raw engine submission for custom cells (expert path)."""
        return self.engine.run(list(units))

    def upload_trace(self, upload: TraceUpload) -> TraceReply:
        """Import raw trace text into the session's registry."""
        import os
        import tempfile

        from ..traces.registry import TraceRegistry

        upload.validate()
        registry = TraceRegistry(self.registry_root)
        fd, tmp = tempfile.mkstemp(suffix=".trace.txt")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(upload.text)
            store = registry.import_file(
                tmp,
                name=upload.name,
                fmt=upload.fmt,
                page_size=int(upload.page_size),
                delimiter=upload.delimiter,
                key_field=int(upload.key_field),
                proc_field=upload.proc_field,
                allow_shared=bool(upload.allow_shared),
            )
        except ServiceError:
            raise
        except Exception as exc:
            raise ServiceError("bad-request", f"trace import failed: {exc}") from exc
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        return TraceReply(
            name=upload.name,
            digest=store.content_digest,
            p=int(store.p),
            requests=int(store.total_requests),
        )

    def metrics(self) -> MetricsReply:
        """Snapshot of the ambient metrics registry (may be disabled/empty)."""
        from ..obs import metrics as obs_metrics

        return MetricsReply(snapshot=obs_metrics.active().snapshot())

    # -- lifecycle ------------------------------------------------------ #
    def close(self) -> None:
        """Sessions hold no open handles; provided for API symmetry."""

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class HttpSession:
    """The same session surface, spoken over HTTP to a ``repro serve``.

    Pure stdlib (``urllib``); every method serializes the shared
    protocol dataclasses and reconstructs typed replies — including
    :class:`ServiceError` with its original code — from the JSON the
    server answers with.
    """

    def __init__(self, base_url: str, client: str = "anonymous", timeout: float = 600.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.client = client
        self.timeout = float(timeout)

    # -- plumbing ------------------------------------------------------- #
    def _call(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        url = f"{self.base_url}{path}"
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            url, data=data, method=method, headers={"Content-Type": "application/json"}
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                payload = resp.read()
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode() or "{}")
            except (ValueError, OSError):
                detail = {}
            err = detail.get("error") or {"code": "server-error", "message": str(exc), "status": exc.code}
            raise ServiceError.from_dict(err) from None
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError("unavailable", f"cannot reach {self.base_url}: {exc}") from exc
        return json.loads(payload.decode() or "{}")

    def _branded(self, request: Any) -> Any:
        """Stamp this session's client identity onto an anonymous request."""
        if getattr(request, "client", None) == "anonymous" and self.client != "anonymous":
            import dataclasses

            return dataclasses.replace(request, client=self.client)
        return request

    def _submit_and_wait(self, request: Request) -> RunReply:
        reply = self._call("POST", "/v1/jobs?wait=1", self._branded(request).to_dict())
        return RunReply.from_dict(reply).raise_for_state()

    # -- the unified request surface ----------------------------------- #
    def run(self, request: RunRequest) -> RunReply:
        """Algorithms × one workload (trace or generated) → rows."""
        return self._submit_and_wait(request)

    def experiment(self, request: Union[ExperimentRequest, str], **kwargs: Any) -> RunReply:
        """A named experiment; accepts a request or just its name."""
        if isinstance(request, str):
            request = ExperimentRequest(name=request, **kwargs)
        return self._submit_and_wait(request)

    def sweep(self, request: SweepRequest) -> RunReply:
        """A ratio-vs-p sweep → rows (one per algorithm × p)."""
        return self._submit_and_wait(request)

    def submit(self, request: Request) -> "JobHandle":
        """Fire-and-poll submission: returns a handle, does not block."""
        from .protocol import JobStatus

        status = JobStatus.from_dict(self._call("POST", "/v1/jobs", self._branded(request).to_dict()))
        return JobHandle(self, status.job_id, status)

    def status(self, job_id: str) -> "JobStatus":
        from .protocol import JobStatus

        return JobStatus.from_dict(self._call("GET", f"/v1/jobs/{urllib.parse.quote(job_id)}"))

    def result(self, job_id: str, timeout: Optional[float] = None) -> RunReply:
        wait = self.timeout if timeout is None else float(timeout)
        path = f"/v1/jobs/{urllib.parse.quote(job_id)}?wait={wait:g}"
        return RunReply.from_dict(self._call("GET", path)).raise_for_state()

    def upload_trace(self, upload: TraceUpload) -> TraceReply:
        """Import raw trace text into the server's registry."""
        return TraceReply.from_dict(self._call("POST", "/v1/traces", self._branded(upload).to_dict()))

    def metrics(self) -> MetricsReply:
        """The server's live metrics snapshot."""
        return MetricsReply.from_dict(self._call("GET", "/v1/metrics"))

    def health(self) -> dict:
        """Liveness probe: server identity and versions."""
        return self._call("GET", "/v1/health")

    # -- lifecycle ------------------------------------------------------ #
    def close(self) -> None:
        """Connections are per-request; provided for API symmetry."""

    def __enter__(self) -> "HttpSession":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class JobHandle:
    """A submitted-but-unfinished job: poll or block for its reply."""

    def __init__(self, session: HttpSession, job_id: str, status: Any) -> None:
        self.session = session
        self.job_id = job_id
        self.last_status = status

    def status(self):
        self.last_status = self.session.status(self.job_id)
        return self.last_status

    def result(self, timeout: Optional[float] = None) -> RunReply:
        return self.session.result(self.job_id, timeout=timeout)


def open_session(url: Optional[str] = None, **kwargs: Any) -> Union[Session, HttpSession]:
    """One constructor for both worlds: a URL opens an
    :class:`HttpSession`, ``None`` an in-process :class:`Session` (with
    the same keyword arguments each accepts)."""
    if url:
        return HttpSession(url, **kwargs)
    return Session(**kwargs)
