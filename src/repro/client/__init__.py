"""Unified client API: typed requests, one Session facade, two transports.

* :mod:`~repro.client.protocol` — frozen request/reply dataclasses and
  the typed :class:`ServiceError`, shared **verbatim** between
  in-process and HTTP use (:data:`PROTOCOL_VERSION` guards the wire
  form);
* :mod:`~repro.client.session` — :class:`Session` (in-process, owns a
  persistent :class:`~repro.exec.ExecutionEngine`) and
  :class:`HttpSession` (stdlib urllib against ``repro serve``), plus
  :func:`open_session` to pick one from a URL-or-None.

The facade consolidates the historical entry points —
``run_experiment``, ``sweep_p``, ``repro run --trace``, raw engine
submission — without replacing them: every pre-existing public call
signature keeps working (see ``tests/client/test_legacy_api.py``).
"""

from .protocol import (
    PROTOCOL_VERSION,
    ExperimentRequest,
    JobStatus,
    MetricsReply,
    Request,
    RunReply,
    RunRequest,
    ServiceError,
    SweepRequest,
    TraceReply,
    TraceUpload,
    WorkloadSpec,
    request_from_dict,
)
from .session import HttpSession, JobHandle, Session, execute_request, open_session

__all__ = [
    "PROTOCOL_VERSION",
    "ExperimentRequest",
    "JobStatus",
    "MetricsReply",
    "Request",
    "RunReply",
    "RunRequest",
    "ServiceError",
    "SweepRequest",
    "TraceReply",
    "TraceUpload",
    "WorkloadSpec",
    "request_from_dict",
    "HttpSession",
    "JobHandle",
    "Session",
    "execute_request",
    "open_session",
]
