"""The service protocol: typed requests and replies, shared verbatim.

One set of frozen dataclasses describes everything a client can ask of
the paging service — run algorithms on a trace or generated workload,
run a named experiment, sweep ``p``, upload a trace, read metrics — and
everything the service answers with.  The **same objects** are used by
the in-process :class:`~repro.client.session.Session` and serialized
over HTTP by :class:`~repro.client.session.HttpSession` /
:mod:`repro.service.server`, so switching a caller from library use to
network use changes the constructor, never the request code.

Serialization is deliberately boring: ``to_dict()`` produces a flat
JSON-safe dict carrying a ``type`` tag and :data:`PROTOCOL_VERSION`;
:func:`request_from_dict` / each reply's ``from_dict`` invert it.
``content_key()`` hashes the canonical JSON form *minus client
identity*, which is what lets the service coalesce identical in-flight
requests across clients.

Errors travel as :class:`ServiceError` — a typed code plus the HTTP
status it maps to (``quota-exceeded`` → 429, ``queue-full`` → 503, …) —
raised identically by the in-process backend and the HTTP client.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple, Type, Union

__all__ = [
    "PROTOCOL_VERSION",
    "ServiceError",
    "WorkloadSpec",
    "RunRequest",
    "ExperimentRequest",
    "SweepRequest",
    "TraceUpload",
    "JobStatus",
    "RunReply",
    "TraceReply",
    "MetricsReply",
    "Request",
    "request_from_dict",
]

#: Version of the wire format; bumped whenever a request/reply field is
#: added, renamed, or re-typed so mixed-version client/server pairs fail
#: loudly instead of misreading each other.
PROTOCOL_VERSION = 1

#: HTTP status each error code maps to (and is reconstructed from).
ERROR_STATUS: Dict[str, int] = {
    "bad-request": 400,
    "not-found": 404,
    "quota-exceeded": 429,
    "server-error": 500,
    "queue-full": 503,
    "unavailable": 503,
    "timeout": 504,
}


class ServiceError(Exception):
    """A typed service rejection/failure, identical in- and cross-process.

    ``code`` is one of :data:`ERROR_STATUS`'s keys; ``status`` is the
    HTTP status the server responds with and the client reconstructs the
    error from, so ``except ServiceError as e: e.code`` works the same
    against a :class:`~repro.service.backend.ServiceBackend` or a URL.
    """

    def __init__(self, code: str, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.status = status if status is not None else ERROR_STATUS.get(code, 500)

    def to_dict(self) -> Dict[str, Any]:
        return {"code": self.code, "message": self.message, "status": self.status}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceError":
        return cls(
            str(data.get("code", "server-error")),
            str(data.get("message", "")),
            int(data.get("status", 500)),
        )


def _json_safe(obj: Any) -> Any:
    """Recursively coerce numpy scalars / tuples into JSON-native types."""
    if isinstance(obj, dict):
        return {str(k): _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    if hasattr(obj, "item") and not isinstance(obj, (str, bytes)):
        try:
            return obj.item()
        except (TypeError, ValueError):
            pass
    return obj


@dataclass(frozen=True)
class WorkloadSpec:
    """A generated workload, by recipe — deterministic on any machine.

    The builder mirrors :func:`repro.analysis.sweep.sweep_p`'s seeding
    (``SeedSequence(entropy=workload_seed, spawn_key=(p,))``), so a
    client and a server given the same spec construct byte-identical
    request sequences and therefore share cache keys.
    """

    p: int
    n_requests: int
    k: int
    kind: str = "mixed_kinds"
    workload_seed: int = 12345

    def build(self):
        """Materialize the :class:`~repro.workloads.ParallelWorkload`."""
        import numpy as np

        from ..workloads.generators import make_parallel_workload

        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=int(self.workload_seed), spawn_key=(int(self.p),))
        )
        return make_parallel_workload(
            p=int(self.p), n_requests=int(self.n_requests), k=int(self.k), rng=rng, kind=self.kind
        )


def _request_dict(req: "Request", type_tag: str) -> Dict[str, Any]:
    data = _json_safe(asdict(req))
    data["type"] = type_tag
    data["protocol_version"] = PROTOCOL_VERSION
    return data


def _filter_fields(cls: Type, data: Mapping[str, Any]) -> Dict[str, Any]:
    names = {f.name for f in fields(cls)}
    return {k: v for k, v in data.items() if k in names}


@dataclass(frozen=True)
class RunRequest:
    """Run algorithms on one workload — the ``repro run`` entry point.

    ``trace`` names a registry trace (name / digest / prefix); mutually
    exclusive ``workload`` describes a generated one.  Everything else
    mirrors :func:`repro.run_experiment`'s stable form with the specs
    flattened (all algorithms share ``cache_size``/``miss_cost``/``xi``,
    as the comparable-lower-bound rule already requires).
    """

    algorithms: Tuple[str, ...]
    cache_size: int
    miss_cost: int
    xi: int = 2
    seeds: Tuple[int, ...] = (0, 1, 2)
    trace: Optional[str] = None
    workload: Optional[WorkloadSpec] = None
    include_lb: bool = True
    client: str = "anonymous"

    def __post_init__(self) -> None:
        object.__setattr__(self, "algorithms", tuple(str(a) for a in self.algorithms))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if isinstance(self.workload, Mapping):
            object.__setattr__(self, "workload", WorkloadSpec(**_filter_fields(WorkloadSpec, self.workload)))

    def validate(self) -> None:
        if not self.algorithms:
            raise ServiceError("bad-request", "RunRequest needs at least one algorithm")
        if not self.seeds:
            raise ServiceError("bad-request", "RunRequest needs at least one seed")
        if (self.trace is None) == (self.workload is None):
            raise ServiceError("bad-request", "RunRequest needs exactly one of trace / workload")

    def to_dict(self) -> Dict[str, Any]:
        return _request_dict(self, "run")

    def content_key(self) -> str:
        return _content_key(self)


@dataclass(frozen=True)
class ExperimentRequest:
    """Run one named experiment (``e1`` … ``e11``) at a scale and seed."""

    name: str
    scale: str = "quick"
    seed: int = 0
    client: str = "anonymous"

    def validate(self) -> None:
        from ..experiments import EXPERIMENTS

        if self.name not in EXPERIMENTS:
            known = ", ".join(sorted(EXPERIMENTS))
            raise ServiceError("bad-request", f"unknown experiment {self.name!r}; known: {known}")
        if self.scale not in ("quick", "full"):
            raise ServiceError("bad-request", f"scale must be quick|full, got {self.scale!r}")

    def to_dict(self) -> Dict[str, Any]:
        return _request_dict(self, "experiment")

    def content_key(self) -> str:
        return _content_key(self)


@dataclass(frozen=True)
class SweepRequest:
    """Sweep ``p`` with ``k = cache_factor·p`` — the ratio-vs-p curves."""

    algorithms: Tuple[str, ...]
    p_values: Tuple[int, ...]
    miss_cost: int
    cache_factor: int = 4
    xi: int = 2
    seeds: Tuple[int, ...] = (0, 1, 2)
    workload_seed: int = 12345
    include_lb: bool = True
    client: str = "anonymous"

    def __post_init__(self) -> None:
        object.__setattr__(self, "algorithms", tuple(str(a) for a in self.algorithms))
        object.__setattr__(self, "p_values", tuple(int(p) for p in self.p_values))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))

    def validate(self) -> None:
        if not self.algorithms or not self.p_values:
            raise ServiceError("bad-request", "SweepRequest needs algorithms and p_values")

    def to_dict(self) -> Dict[str, Any]:
        return _request_dict(self, "sweep")

    def content_key(self) -> str:
        return _content_key(self)


@dataclass(frozen=True)
class TraceUpload:
    """Import a trace into the service's registry (the upload path).

    ``text`` carries the raw trace file content; the server funnels it
    through the same format-sniffing importers as ``repro trace import``
    and answers with the registered content digest.
    """

    name: str
    text: str
    fmt: str = "auto"
    page_size: int = 4096
    delimiter: str = ","
    key_field: int = 0
    proc_field: Optional[int] = None
    allow_shared: bool = False
    client: str = "anonymous"

    def validate(self) -> None:
        if not self.name:
            raise ServiceError("bad-request", "TraceUpload needs a name")
        if not self.text:
            raise ServiceError("bad-request", "TraceUpload needs non-empty text content")

    def to_dict(self) -> Dict[str, Any]:
        return _request_dict(self, "trace-upload")


Request = Union[RunRequest, ExperimentRequest, SweepRequest]

_REQUEST_TYPES: Dict[str, Type] = {
    "run": RunRequest,
    "experiment": ExperimentRequest,
    "sweep": SweepRequest,
    "trace-upload": TraceUpload,
}


def request_from_dict(data: Mapping[str, Any]) -> Union[Request, TraceUpload]:
    """Rebuild a typed request from its wire dict (inverse of ``to_dict``)."""
    tag = data.get("type")
    cls = _REQUEST_TYPES.get(str(tag))
    if cls is None:
        known = ", ".join(sorted(_REQUEST_TYPES))
        raise ServiceError("bad-request", f"unknown request type {tag!r}; known: {known}")
    version = int(data.get("protocol_version", PROTOCOL_VERSION))
    if version != PROTOCOL_VERSION:
        raise ServiceError(
            "bad-request",
            f"protocol version mismatch: peer speaks v{version}, this side v{PROTOCOL_VERSION}",
        )
    kwargs = _filter_fields(cls, data)
    for name in ("algorithms", "seeds", "p_values"):
        if name in kwargs and kwargs[name] is not None:
            kwargs[name] = tuple(kwargs[name])
    req = cls(**kwargs)
    req.validate()
    return req


def _content_key(req: Request) -> str:
    """SHA-256 of the canonical request JSON, client identity excluded.

    Two clients asking for the same computation hash identically, so the
    service can coalesce their in-flight jobs and share cached results.
    """
    data = req.to_dict()
    data.pop("client", None)
    return hashlib.sha256(json.dumps(data, sort_keys=True).encode()).hexdigest()


# --------------------------------------------------------------------- #
# replies
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class JobStatus:
    """Where one submitted job stands (the poll answer)."""

    job_id: str
    state: str  # queued | running | done | failed
    kind: str = ""
    client: str = ""
    queued_ahead: int = 0
    coalesced: bool = False
    error: Optional[Mapping[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        data = _json_safe(asdict(self))
        data["protocol_version"] = PROTOCOL_VERSION
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobStatus":
        return cls(**_filter_fields(cls, data))


@dataclass(frozen=True)
class RunReply:
    """The result of a run/experiment/sweep job.

    ``rows`` are the exact dict rows the serial CLI would have written
    (``schema_version`` rides inside each row), so a client-side CSV of
    a service run is byte-identical to a local one.  ``cells`` and
    ``cache_hits`` are this job's telemetry window: how many work units
    it touched and how many were served from the shared cache.
    """

    job_id: str
    state: str
    rows: Tuple[Mapping[str, Any], ...] = ()
    table: str = ""
    elapsed_s: float = 0.0
    cells: int = 0
    cache_hits: int = 0
    error: Optional[Mapping[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        data = _json_safe(asdict(self))
        data["protocol_version"] = PROTOCOL_VERSION
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunReply":
        kwargs = _filter_fields(cls, data)
        kwargs["rows"] = tuple(kwargs.get("rows") or ())
        return cls(**kwargs)

    def raise_for_state(self) -> "RunReply":
        """Raise the job's :class:`ServiceError` if it failed; else self."""
        if self.state == "failed":
            raise ServiceError.from_dict(self.error or {})
        return self


@dataclass(frozen=True)
class TraceReply:
    """Answer to a trace upload: the registered identity."""

    name: str
    digest: str
    p: int = 0
    requests: int = 0

    def to_dict(self) -> Dict[str, Any]:
        data = _json_safe(asdict(self))
        data["protocol_version"] = PROTOCOL_VERSION
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceReply":
        return cls(**_filter_fields(cls, data))


@dataclass(frozen=True)
class MetricsReply:
    """A deterministic metrics snapshot (see :mod:`repro.obs.metrics`)."""

    snapshot: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"snapshot": _json_safe(dict(self.snapshot)), "protocol_version": PROTOCOL_VERSION}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsReply":
        return cls(snapshot=dict(data.get("snapshot") or {}))

    def counter(self, name: str) -> float:
        """Convenience: one counter's value (0 when absent)."""
        return float(dict(self.snapshot).get("counters", {}).get(name, 0))
