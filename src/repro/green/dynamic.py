"""Green paging with time-varying thresholds (§2's closing remark, §4).

The basic green-paging problem fixes the permitted cache range ``[k/p, k]``.
Section 4 needs the generalization where the thresholds evolve: when a
green source is used inside a parallel scheduler, the minimum sensible
allocation grows as sequences complete ("when v sequences remain
uncompleted, an extra factor 2 of resource augmentation allows each
sequence to receive k/v memory at all times"), and the paper handles this
by **rebooting** the green algorithm whenever the minimum threshold
doubles — "so that it is always effectively running with fixed thresholds".

This module implements that machinery as a first-class object:

* :class:`ThresholdSchedule` — a piecewise-constant map from wall-clock
  time to a :class:`~repro.core.box.HeightLattice`;
* :func:`survivor_schedule` — the §4 pattern: the minimum threshold
  doubles at each given halving time;
* :class:`DynamicGreen` — runs any green source factory across a
  schedule, rebooting the source whenever a box would *start* in a new
  segment (in-flight boxes finish; heights are always legal for the
  lattice active at their start, matching the paper's convention).

The black-box parallel construction (:class:`repro.core.black_box.BlackBoxPar`)
contains a specialized inline version of the same reboot logic driven by
live completions; this standalone form exists so the mechanism can be
tested and studied in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.box import BoxProfile, HeightLattice
from ..core.det_green import DetGreen
from ..core.rand_green import GreenRunResult
from ..paging.engine import BoxRun, ProfileRun, _record_profile_metrics, run_box
from ..paging.kernel import maybe_kernel, run_box_fast

__all__ = ["ThresholdSchedule", "survivor_schedule", "DynamicGreen"]

#: A green source factory: lattice -> infinite iterator of box heights.
SourceFactory = Callable[[HeightLattice], Iterator[int]]


@dataclass(frozen=True)
class ThresholdSchedule:
    """Piecewise-constant threshold schedule: ``segments[i]`` is
    ``(start_time, lattice)``; the first must start at 0 and starts must be
    strictly increasing."""

    segments: Tuple[Tuple[int, HeightLattice], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("schedule needs at least one segment")
        if self.segments[0][0] != 0:
            raise ValueError("first segment must start at time 0")
        starts = [t for t, _ in self.segments]
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ValueError("segment starts must be strictly increasing")

    def lattice_at(self, t: int) -> HeightLattice:
        """The lattice governing a box that starts at time ``t``."""
        current = self.segments[0][1]
        for start, lattice in self.segments:
            if start <= t:
                current = lattice
            else:
                break
        return current

    def segment_index_at(self, t: int) -> int:
        """Index of the segment governing time ``t``."""
        idx = 0
        for i, (start, _) in enumerate(self.segments):
            if start <= t:
                idx = i
            else:
                break
        return idx

    @classmethod
    def constant(cls, lattice: HeightLattice) -> "ThresholdSchedule":
        return cls(segments=((0, lattice),))


def survivor_schedule(k: int, p: int, halving_times: Sequence[int]) -> ThresholdSchedule:
    """The §4 reboot pattern: survivors halve at each given time, so the
    minimum threshold ``k/v`` doubles (the lattice shrinks by one level).

    ``halving_times`` must be strictly increasing and positive; after
    ``len(halving_times)`` halvings the lattice bottoms out at ``[k, k]``.
    """
    segments: List[Tuple[int, HeightLattice]] = [(0, HeightLattice(k, p))]
    v = p
    for t in halving_times:
        if t <= segments[-1][0]:
            raise ValueError("halving times must be strictly increasing and positive")
        v = max(1, v // 2)
        segments.append((int(t), HeightLattice(k, v)))
        if v == 1:
            break
    return ThresholdSchedule(segments=tuple(segments))


def _det_green_factory(lattice: HeightLattice) -> Iterator[int]:
    # miss_cost is irrelevant for DET-GREEN's emitted heights; use a dummy
    return DetGreen(lattice, miss_cost=2).boxes()


class DynamicGreen:
    """Green paging under a time-varying threshold schedule.

    Parameters
    ----------
    schedule:
        The active thresholds over time.
    miss_cost:
        Fault service time ``s > 1``.
    source_factory:
        Builds a fresh height stream per segment (rebooted at boundaries);
        defaults to DET-GREEN.
    """

    def __init__(
        self,
        schedule: ThresholdSchedule,
        miss_cost: int,
        source_factory: Optional[SourceFactory] = None,
    ) -> None:
        if miss_cost <= 1:
            raise ValueError(f"miss_cost must be > 1, got {miss_cost}")
        self.schedule = schedule
        self.miss_cost = int(miss_cost)
        self.source_factory = source_factory or _det_green_factory

    def run(self, seq: np.ndarray, max_boxes: Optional[int] = None) -> GreenRunResult:
        """Service ``seq``; reboot the source when a box starts in a new
        segment.  ``meta``-like details land in the returned run's boxes:
        each box's height is legal for the lattice at its start time."""
        s = self.miss_cost
        pos = 0
        t = 0
        n = len(seq)
        runs: List[BoxRun] = []
        impact = 0
        wall = 0
        seg_idx = self.schedule.segment_index_at(0)
        source = self.source_factory(self.schedule.segments[seg_idx][1])
        kern = maybe_kernel(seq)
        while pos < n:
            if max_boxes is not None and len(runs) >= max_boxes:
                break
            now_idx = self.schedule.segment_index_at(t)
            if now_idx != seg_idx:
                seg_idx = now_idx
                source = self.source_factory(self.schedule.segments[seg_idx][1])
            h = int(next(source))
            box = (
                run_box_fast(kern, pos, h, s * h, s)
                if kern is not None
                else run_box(seq, pos, h, s * h, s)
            )
            runs.append(box)
            impact += s * h * h
            wall += s * h
            t += s * h
            pos = box.end
        _record_profile_metrics(runs, impact, wall)
        pr = ProfileRun(
            runs=tuple(runs),
            completed=pos >= n,
            position=pos,
            impact=impact,
            wall_time=wall,
        )
        return GreenRunResult(
            profile=BoxProfile(r.height for r in runs),
            impact=impact,
            wall_time=wall,
            run=pr,
        )
