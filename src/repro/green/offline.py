"""Offline optimal green paging over compartmentalized box profiles.

The paper's WLOG reduction (§2) lets the green-paging OPT be assumed to use
a compartmentalized box profile on the normalized height lattice.  Under
that normal form, computing OPT is a shortest-path problem on a DAG over
sequence positions:

* node ``q`` = "the first ``q`` requests have been served";
* for each lattice height ``h``, an edge ``q -> end(q, h)`` of cost
  ``s·h²``, where ``end(q, h)`` is how far a cold LRU box of height ``h``
  and budget ``s·h`` gets from position ``q`` (computed by the box engine);
* OPT impact = shortest distance from 0 to ``n``.

Maximal service per box is WLOG for green paging in isolation: the paper's
§4 discussion ("servicing a prefix with higher impact can never lower the
impact of the remaining suffix") is exactly the exchange argument that lets
each box serve as much as it can.  Edges go strictly forward (a box with
budget ``s·h >= s`` always serves at least one request), so one increasing
sweep over positions settles all distances — no priority queue needed.

Cost: O(Σ_{reachable q, level} service(q, h)); in practice the dominant
term is the tall-box simulations.  Experiments keep ``n`` in the tens of
thousands, well within budget for pure Python per the HPC guide's
"algorithmic optimization first" doctrine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.box import BoxProfile, HeightLattice
from ..obs import metrics as obs_metrics
from ..paging.engine import run_box
from ..paging.kernel import maybe_kernel, native_dp_solve

__all__ = ["OfflineGreenResult", "optimal_box_profile", "prefix_optimal_impacts"]

_INF = np.iinfo(np.int64).max


@dataclass(frozen=True)
class OfflineGreenResult:
    """Optimal offline green-paging solution for one sequence.

    Attributes
    ----------
    profile:
        An optimal compartmentalized box profile (heights, in order).
    impact:
        Its total memory impact ``Σ s·h²`` (the OPT value).
    distances:
        ``distances[q]`` = min impact to serve the first ``q`` requests
        *exactly* at a box boundary (``_INF`` where unreachable).  Used to
        derive per-prefix OPT costs for greedily-green certification.
    """

    profile: BoxProfile
    impact: int
    distances: np.ndarray


def optimal_box_profile(
    seq: np.ndarray,
    lattice: HeightLattice,
    miss_cost: int,
) -> OfflineGreenResult:
    """Compute the optimal compartmentalized box profile for ``seq``.

    Returns the profile, its impact, and the full distance table.
    """
    raw = seq
    seq = np.ascontiguousarray(seq, dtype=np.int64)
    n = len(seq)
    s = int(miss_cost)
    heights = lattice.heights
    # Validation is hoisted out of the relaxation sweep: the fast path
    # below probes box endpoints O(n · levels) times with no per-probe
    # branching, so bad parameters must be rejected here, with the same
    # errors the reference run_box raises per probe.
    if s <= 1:
        raise ValueError(f"miss_cost must be > 1, got {s}")
    for h in heights:
        if h < 1:
            raise ValueError(f"box height must be >= 1, got {h}")
    # One reuse-distance precompute amortized over every probe — keyed on
    # the caller's array when no copy was needed, so repeated solves on
    # the same sequence (replications, sweeps) share one kernel.
    kern = maybe_kernel(seq if seq is raw or not isinstance(raw, np.ndarray) else raw)
    costs = [s * h * h for h in heights]
    if kern is not None:
        # Batched relaxation: blocked windowed passes yield the endpoints
        # of every lattice height for a run of consecutive starts at once
        # (the hit sets of a geometric height ladder are nested — see
        # SequenceKernel.box_ends).  The tables live as plain-int lists
        # during the sweep: the loop body is scalar compares, where numpy
        # scalar indexing would triple the cost.
        hladder = tuple(int(h) for h in heights)
        budgets = tuple(s * h for h in hladder)
        solved = native_dp_solve(kern, hladder, budgets, tuple(costs), s, _INF)
        if solved is not None:
            # REPRO_KERNEL=native: the whole relaxation runs compiled,
            # with the exact tie-breaking of the python sweep below
            # (ascending start, ascending ladder level, strict '<'), so
            # parents — not just distances — stay bit-identical.
            dist, parent_pos, parent_h = solved
        else:
            ends = kern.ladder_plan(hladder, budgets, s).ends
            dist_l = [_INF] * (n + 1)
            parent_pos_l = [-1] * (n + 1)
            parent_h_l = [0] * (n + 1)
            dist_l[0] = 0
            for q in range(n):
                d = dist_l[q]
                if d == _INF:
                    continue
                for h, c, end in zip(hladder, costs, ends(q)):
                    nd = d + c
                    if nd < dist_l[end]:
                        dist_l[end] = nd
                        parent_pos_l[end] = q
                        parent_h_l[end] = h
            dist = np.array(dist_l, dtype=np.int64)
            parent_pos = np.array(parent_pos_l, dtype=np.int64)
            parent_h = np.array(parent_h_l, dtype=np.int64)
    else:
        dist = np.full(n + 1, _INF, dtype=np.int64)
        # parent pointers for profile reconstruction: best (prev_pos, height)
        parent_pos = np.full(n + 1, -1, dtype=np.int64)
        parent_h = np.zeros(n + 1, dtype=np.int64)
        dist[0] = 0
        for q in range(n):
            d = dist[q]
            if d == _INF:
                continue
            for h, c in zip(heights, costs):
                end = run_box(seq, q, h, s * h, s).end
                nd = d + c
                if nd < dist[end]:
                    dist[end] = nd
                    parent_pos[end] = q
                    parent_h[end] = h
                # A taller box reaching the same endpoint is dominated, but
                # we still need every height because endpoints differ; no
                # pruning beyond the relaxation itself is sound in general.
    if dist[n] == _INF:
        raise RuntimeError("offline DP failed to reach the end of the sequence (bug)")
    # reconstruct
    rev: List[int] = []
    q = n
    while q != 0:
        rev.append(int(parent_h[q]))
        q = int(parent_pos[q])
    rev.reverse()
    # one counter per DP solve — never per run_box probe: the relaxation
    # loop above calls run_box O(n * levels) times and must stay cheap
    reg = obs_metrics.active()
    if reg.enabled:
        reg.counter("sim.green.opt.profiles").inc()
        reg.counter("sim.green.opt.requests").inc(n)
    return OfflineGreenResult(profile=BoxProfile(rev), impact=int(dist[n]), distances=dist)


def prefix_optimal_impacts(result: OfflineGreenResult) -> np.ndarray:
    """Per-prefix OPT impacts ``c_OPT(π_q)`` for q = 0..n (Definition 1).

    The DP distances are defined at box boundaries; the cheapest way to
    serve *at least* ``q`` requests may overshoot, so
    ``c_OPT(q) = min_{q' >= q} distances[q']`` — a suffix minimum.
    """
    dist = result.distances.astype(np.float64)
    dist[dist == float(_INF)] = np.inf
    out = np.minimum.accumulate(dist[::-1])[::-1]
    return out
