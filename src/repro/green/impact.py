"""Memory-impact accounting and greedily-green certification (paper §2, §4).

*Memory impact* is the green-paging objective: the integral of allocated
cache size over time.  For a compartmentalized box of height ``h`` this is
``s·h²``; for a profile it is the sum over boxes.  This module centralizes
the arithmetic so every algorithm and experiment charges impact the same
way, and implements Definition 1's *greedily competitive* check used by the
Theorem 4 experiment: an execution is ``g``-greedily green (with slack
``g'``) if on **every prefix** of the request sequence it has incurred
impact at most ``g · c_OPT(prefix) + g'``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..paging.engine import ProfileRun

__all__ = ["box_impact", "profile_impact", "GreedinessReport", "certify_greedily_green"]


def box_impact(height: int, miss_cost: int) -> int:
    """Memory impact ``s·h²`` of a single box."""
    return int(miss_cost) * int(height) * int(height)


def profile_impact(heights: Sequence[int], miss_cost: int) -> int:
    """Total impact of a sequence of box heights."""
    hs = np.asarray(list(heights), dtype=np.int64)
    return int(miss_cost) * int(np.sum(hs * hs))


@dataclass(frozen=True)
class GreedinessReport:
    """Outcome of a greedily-green certification.

    Attributes
    ----------
    max_ratio:
        The largest ``(impact_so_far - slack) / c_OPT(prefix)`` observed
        over all box-boundary prefixes with ``c_OPT > 0``; the execution is
        ``g``-greedily green iff ``max_ratio <= g``.
    worst_position:
        Sequence position achieving the max ratio.
    ratios:
        Per-box-boundary ratio trace (for plotting / fitting).
    """

    max_ratio: float
    worst_position: int
    ratios: np.ndarray


def certify_greedily_green(
    run: ProfileRun,
    prefix_opt_costs: np.ndarray,
    miss_cost: int,
    slack: float = 0.0,
) -> GreedinessReport:
    """Check Definition 1 against an executed profile.

    Parameters
    ----------
    run:
        The executed profile (per-box progress records).
    prefix_opt_costs:
        ``prefix_opt_costs[q]`` = minimum offline impact to serve the first
        ``q`` requests (from :func:`repro.green.offline.prefix_optimal_impacts`).
    miss_cost:
        Fault cost ``s``.
    slack:
        The additive ``g'`` of Definition 1.

    Notes
    -----
    The check is evaluated at box boundaries (impact is only committed in
    whole boxes, so these are the points where the algorithm's cumulative
    impact changes).  Prefixes served mid-box are dominated by the next
    boundary check.
    """
    impact_so_far = 0
    max_ratio = 0.0
    worst = 0
    ratios = []
    for box in run.runs:
        impact_so_far += box_impact(box.height, miss_cost)
        q = box.end  # requests served after this box
        copt = float(prefix_opt_costs[q])
        if copt > 0:
            ratio = max(0.0, impact_so_far - slack) / copt
            ratios.append(ratio)
            if ratio > max_ratio:
                max_ratio = ratio
                worst = q
    return GreedinessReport(max_ratio=max_ratio, worst_position=worst, ratios=np.asarray(ratios, dtype=np.float64))
