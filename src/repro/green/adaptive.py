"""Adaptive green paging: probe-ladder with exponential backoff (§4's "greedy").

RAND-GREEN and DET-GREEN are *oblivious* — their box streams ignore the
request sequence.  Section 4's Definition 1, however, covers *greedily
competitive* algorithms in general, which may observe their own hits and
misses (but not the future).  This module implements the natural adaptive
member of that class, used as an extra comparator in tests and examples.

Policy (a ladder of probe episodes):

* **cruise** — while the current box produces hits (the working set fits),
  stay; if its fault-time fraction drops very low, descend one level (the
  working set shrank).
* **ascend** — a thrashing box (almost all time on faults) triggers an
  ascent episode: climb one level per box until either some level starts
  hitting (lock there; the episode *succeeded*) or the top level still
  thrashes (the sequence is unhelpable right now — e.g. a scan).
* **backoff** — after a failed ascent, drop back to the minimum height and
  wait an exponentially growing number of boxes before probing again.
  The geometric ladder makes each episode cost O(s·k²) and the doubling
  backoff keeps total probe waste within a constant factor of the
  minimum-box baseline over long runs.

This is greedily green in Definition 1's sense up to the probe waste; the
oblivious algorithms remain the paper's objects of study — this class
exists to quantify what adaptivity buys on stable working sets (it locks
onto the right height and stops paying the log p tax) and what it cannot
buy on adversarial phase changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.box import BoxProfile, HeightLattice
from ..core.rand_green import GreenRunResult
from ..paging.engine import BoxRun, ProfileRun, _record_profile_metrics, run_box
from ..paging.kernel import maybe_kernel, run_box_fast

__all__ = ["AdaptiveGreen"]


class AdaptiveGreen:
    """Progress-adaptive online green paging (probe ladder + backoff).

    Parameters
    ----------
    lattice:
        Permitted heights ``[k/p, k]``.
    miss_cost:
        Fault service time ``s > 1``.
    thrash_fraction:
        A box whose fault time exceeds this fraction of its service time
        counts as thrashing (default 0.9).
    descend_fraction:
        A box whose fault-time fraction is below this is oversized ->
        descend one level (default 0.25).
    """

    def __init__(
        self,
        lattice: HeightLattice,
        miss_cost: int,
        thrash_fraction: float = 0.9,
        descend_fraction: float = 0.25,
    ) -> None:
        if miss_cost <= 1:
            raise ValueError(f"miss_cost must be > 1, got {miss_cost}")
        if not (0.0 <= descend_fraction < thrash_fraction <= 1.0):
            raise ValueError("need 0 <= descend_fraction < thrash_fraction <= 1")
        self.lattice = lattice
        self.miss_cost = int(miss_cost)
        self.thrash = float(thrash_fraction)
        self.descend = float(descend_fraction)

    def run(self, seq: np.ndarray, max_boxes: Optional[int] = None) -> GreenRunResult:
        """Service ``seq`` to completion, adapting box heights to progress."""
        s = self.miss_cost
        heights = self.lattice.heights
        top = self.lattice.levels - 1
        level = 0
        ascending = False
        backoff = 1  # boxes to wait after a failed ascent
        wait = 0  # boxes remaining before the next probe is allowed
        pos = 0
        n = len(seq)
        runs: List[BoxRun] = []
        impact = 0
        wall = 0
        kern = maybe_kernel(seq)
        while pos < n:
            if max_boxes is not None and len(runs) >= max_boxes:
                break
            h = heights[level]
            box = (
                run_box_fast(kern, pos, h, s * h, s)
                if kern is not None
                else run_box(seq, pos, h, s * h, s)
            )
            runs.append(box)
            impact += s * h * h
            wall += s * h
            pos = box.end
            if pos >= n:
                break
            fault_frac = (s * box.faults) / max(1, box.time_used)
            thrashing = box.served == 0 or fault_frac >= self.thrash
            if ascending:
                if not thrashing:
                    ascending = False  # locked onto a useful height
                    backoff = 1
                elif level < top:
                    level += 1
                else:
                    # top level still thrashes: give up, back off at minimum
                    ascending = False
                    level = 0
                    wait = backoff
                    backoff *= 2
            elif thrashing:
                if wait > 0:
                    wait -= 1
                elif level < top:
                    ascending = True
                    level += 1
            elif fault_frac <= self.descend and level > 0:
                level -= 1
                backoff = 1
        _record_profile_metrics(runs, impact, wall)
        pr = ProfileRun(
            runs=tuple(runs),
            completed=pos >= n,
            position=pos,
            impact=impact,
            wall_time=wall,
        )
        return GreenRunResult(
            profile=BoxProfile(r.height for r in runs),
            impact=impact,
            wall_time=wall,
            run=pr,
        )
