"""Green paging substrate: impact accounting and the offline box-profile OPT.

Green paging (paper §2) is the single-processor problem of servicing a
request sequence with a dynamically resizable cache in ``[k/p, k]`` while
minimizing *memory impact* — the integral of cache size over time.  The
paper uses it as the engine room of parallel paging; this package provides:

* :mod:`~repro.green.impact` — impact arithmetic and Definition 1's
  greedily-green certification;
* :mod:`~repro.green.offline` — the offline optimal compartmentalized box
  profile (a DAG shortest path over sequence positions), the comparator for
  every green-paging competitive ratio we measure.

The online algorithms themselves (RAND-GREEN, DET-GREEN) live in
:mod:`repro.core` because they are part of the paper's contribution.
"""

from .adaptive import AdaptiveGreen
from .dynamic import DynamicGreen, ThresholdSchedule, survivor_schedule
from .impact import GreedinessReport, box_impact, certify_greedily_green, profile_impact
from .offline import OfflineGreenResult, optimal_box_profile, prefix_optimal_impacts

__all__ = [
    "AdaptiveGreen",
    "DynamicGreen",
    "ThresholdSchedule",
    "survivor_schedule",
    "GreedinessReport",
    "box_impact",
    "certify_greedily_green",
    "profile_impact",
    "OfflineGreenResult",
    "optimal_box_profile",
    "prefix_optimal_impacts",
]
