"""repro — a full reproduction of *Online Parallel Paging with Optimal
Makespan* (Agrawal, Bender, Das, Kuszmaul, Peserico, Scquizzato; SPAA '22).

The package implements the paper's algorithms and everything they stand on:

* **RAND-GREEN / DET-GREEN** — online green paging (§3.1);
* **RAND-PAR** — randomized online parallel paging with O(log p) expected
  makespan (§3.2);
* **DET-PAR** — the deterministic well-rounded algorithm achieving the
  optimal O(log p) for makespan *and* mean completion time (§3.3);
* the **black-box** green→parallel construction of [SODA '21] that
  Theorem 4 lower-bounds, plus the §4 adversarial instance itself;
* substrates: LRU/FIFO/Belady caches, the compartmentalized-box execution
  engine, Mattson miss-ratio curves, offline green-paging OPT, certified
  makespan lower bounds, shared-cache baselines (equal partition, best
  static partition, global LRU);
* an experiment harness (``repro e1`` … ``repro e11``) mapping every
  claim of the paper to a measured table, backed by a parallel execution
  engine with a content-addressed result cache (``repro --jobs N``,
  :mod:`repro.exec`);
* an observability layer (:mod:`repro.obs`): a deterministic metrics
  registry and Chrome-trace span tracing, surfaced as ``--metrics``,
  ``--trace-events``, and ``repro profile <experiment>``;
* a closed-loop adversary search (:mod:`repro.search`, ``repro hunt``):
  propose → execute → score → refine over parameterized workload
  families (:mod:`repro.workloads.families`), committing record-beating
  hard instances to the trace registry as a CI-replayed regression
  corpus (``hard/<algo>/<digest>``).

The stable experiment-runner surface is :class:`Session` (in-process)
and :class:`HttpSession` (against ``repro serve``): one typed
request/reply API over :func:`run_experiment` / :func:`sweep_p` /
named experiments (rows are :class:`ExperimentRow`); plug in your own
algorithm with :func:`register_algorithm`.  The historical call
signatures (:func:`run_experiment`, :func:`sweep_p`, ``repro run``)
keep working unchanged.

Quickstart::

    import numpy as np
    from repro import DetPar, make_parallel_workload, makespan_lower_bound

    wl = make_parallel_workload(p=8, n_requests=500, k=32, rng=np.random.default_rng(0))
    result = DetPar(cache_size=64, miss_cost=16).run(wl)
    lb = makespan_lower_bound(wl, k=32, miss_cost=16)
    print(result.makespan / lb.value)   # an upper bound on the competitive ratio

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .analysis.harness import SCHEMA_VERSION, ExperimentRow, run_experiment
from .analysis.sweep import SweepResult, sweep_p
from .client import (
    ExperimentRequest,
    HttpSession,
    RunReply,
    RunRequest,
    ServiceError,
    Session,
    SweepRequest,
    WorkloadSpec,
    open_session,
)
from .core import (
    BlackBoxPar,
    Box,
    BoxProfile,
    DetGreen,
    DetPar,
    HeightLattice,
    RandGreen,
    RandPar,
    audit_balance,
    audit_well_rounded,
    inverse_square_distribution,
    make_distribution,
)
from .exec import (
    ExecutionEngine,
    ExecutionPolicy,
    FailedCell,
    ResultCache,
    RunCheckpoint,
    Telemetry,
    WorkUnit,
    execution,
)
from .green import optimal_box_profile, prefix_optimal_impacts
from .obs import MetricsRegistry, Tracer, observability
from .paging import BeladySimulation, FIFOCache, LRUCache, belady_faults, miss_ratio_curve, run_box
from .parallel import (
    BestStaticPartition,
    EqualPartition,
    GlobalLRU,
    ParallelRunResult,
    RunSpec,
    make_algorithm,
    makespan_lower_bound,
    mean_completion_lower_bound,
    register_algorithm,
    summarize,
)
from .search import AdversarySearch, HuntConfig, hand_built_baseline, replay_corpus
from .workloads import (
    AdversarialInstance,
    ParallelWorkload,
    WorkloadFamily,
    build_adversarial_instance,
    build_candidate,
    family_names,
    lemma8_opt_makespan,
    make_parallel_workload,
)

__version__ = "1.0.0"

__all__ = [
    "BlackBoxPar",
    "Box",
    "BoxProfile",
    "DetGreen",
    "DetPar",
    "HeightLattice",
    "RandGreen",
    "RandPar",
    "audit_balance",
    "audit_well_rounded",
    "inverse_square_distribution",
    "make_distribution",
    "optimal_box_profile",
    "prefix_optimal_impacts",
    "BeladySimulation",
    "FIFOCache",
    "LRUCache",
    "belady_faults",
    "miss_ratio_curve",
    "run_box",
    "BestStaticPartition",
    "EqualPartition",
    "GlobalLRU",
    "ParallelRunResult",
    "RunSpec",
    "make_algorithm",
    "makespan_lower_bound",
    "mean_completion_lower_bound",
    "register_algorithm",
    "summarize",
    "SCHEMA_VERSION",
    "ExperimentRow",
    "run_experiment",
    "SweepResult",
    "sweep_p",
    "ExperimentRequest",
    "HttpSession",
    "RunReply",
    "RunRequest",
    "ServiceError",
    "Session",
    "SweepRequest",
    "WorkloadSpec",
    "open_session",
    "ExecutionEngine",
    "ExecutionPolicy",
    "FailedCell",
    "ResultCache",
    "RunCheckpoint",
    "Telemetry",
    "WorkUnit",
    "execution",
    "MetricsRegistry",
    "Tracer",
    "observability",
    "AdversarialInstance",
    "ParallelWorkload",
    "WorkloadFamily",
    "build_adversarial_instance",
    "build_candidate",
    "family_names",
    "lemma8_opt_makespan",
    "make_parallel_workload",
    "AdversarySearch",
    "HuntConfig",
    "hand_built_baseline",
    "replay_corpus",
    "__version__",
]
