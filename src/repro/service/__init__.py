"""Paging-as-a-service: the async network frontend over the engine.

* :mod:`~repro.service.backend` — :class:`ServiceBackend`: the shared
  multi-tenant :class:`~repro.exec.ExecutionEngine` behind admission
  control (bounded queue), per-client quotas, request coalescing, and
  metrics accounting;
* :mod:`~repro.service.server` — :class:`ServiceServer`, a handcrafted
  stdlib-asyncio HTTP frontend (``repro serve``), plus
  :func:`run_server` with SIGTERM-to-resumable-checkpoint semantics;
* :mod:`~repro.service.loadgen` — the concurrent load generator and
  latency/throughput benchmark behind ``BENCH_service.json``.

Clients speak :mod:`repro.client`: the same typed request/reply
dataclasses work in-process and over the wire.
"""

from .backend import Job, ServiceBackend, ServiceQuota
from .loadgen import percentile, run_load
from .server import ServiceServer, run_server

__all__ = [
    "Job",
    "ServiceBackend",
    "ServiceQuota",
    "ServiceServer",
    "percentile",
    "run_load",
    "run_server",
]
