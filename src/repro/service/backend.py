"""The multi-tenant backend: one shared engine behind many clients.

:class:`ServiceBackend` owns the long-lived
:class:`~repro.exec.ExecutionEngine` (process pool, content-addressed
cache, execution policy, checkpoint journal) and meters access to it:

* **Admission control** — a bounded job queue; a submission past the
  limit is rejected with a typed ``queue-full`` (HTTP 503) instead of
  growing memory without bound.
* **Per-client quotas** — at most ``max_pending_per_client`` live jobs
  per client identity; past that the submission is a typed
  ``quota-exceeded`` (HTTP 429).  Both admissions and rejections are
  accounted in the metrics registry (``service.*{client=...}``).
* **Coalescing** — requests hash to a content key (client identity
  excluded); a submission identical to a *live* (queued/running) job
  attaches to that job instead of queueing a duplicate, so N clients
  asking for the same thing cost one computation.  Completed duplicates
  are then served by the content-addressed result cache: the second
  client's cells come back as cache hits in O(1) per cell.
* **Batching** — each job's request decomposes into its
  :class:`~repro.exec.WorkUnit` cells through the same harness code the
  CLI uses, and the engine batches those cells over its pool.

Execution is deliberately one job at a time on a single worker thread:
cells inside a job already fan out over the engine's process pool, and
serializing jobs is what makes "identical request ⇒ cache hit" a
guarantee rather than a race.  A SIGTERM mid-job leaves the engine's
checkpoint journal and cache entries behind (PR 2's semantics), so a
restarted server serves the interrupted work from cache.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

from ..client.protocol import JobStatus, Request, RunReply, ServiceError, TraceReply, TraceUpload
from ..client.session import Session, execute_request
from ..exec.cache import ResultCache
from ..exec.checkpoint import RunCheckpoint
from ..exec.engine import ExecutionEngine
from ..exec.policy import ExecutionPolicy
from ..obs import metrics as obs_metrics

__all__ = ["ServiceQuota", "Job", "ServiceBackend"]


@dataclass(frozen=True)
class ServiceQuota:
    """Admission limits: queue depth (shared) and live jobs per client."""

    max_queue: int = 64
    max_pending_per_client: int = 8

    def __post_init__(self) -> None:
        if self.max_queue < 1 or self.max_pending_per_client < 1:
            raise ValueError("quota limits must be >= 1")


class Job:
    """One submitted request moving through queued → running → done/failed."""

    __slots__ = ("job_id", "request", "content_key", "clients", "state", "reply", "error", "done")

    def __init__(self, job_id: str, request: Request, content_key: str) -> None:
        self.job_id = job_id
        self.request = request
        self.content_key = content_key
        #: Every client identity attached to this job (first = submitter,
        #: rest = coalesced duplicates).
        self.clients: List[str] = [getattr(request, "client", "anonymous")]
        self.state = "queued"
        self.reply: Optional[RunReply] = None
        self.error: Optional[ServiceError] = None
        self.done = threading.Event()

    def status(self, queued_ahead: int = 0, coalesced: bool = False) -> JobStatus:
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            kind=self.request.to_dict()["type"],
            client=self.clients[0],
            queued_ahead=queued_ahead,
            coalesced=coalesced,
            error=self.error.to_dict() if self.error is not None else None,
        )


class ServiceBackend:
    """Shared execution backend with admission control and quotas.

    Parameters
    ----------
    jobs, cache, cache_dir, policy, checkpoint:
        Engine configuration (see :class:`~repro.exec.ExecutionEngine`);
        ``cache=True`` is the service default — the shared
        content-addressed cache *is* the multi-tenant story.
    registry:
        Trace-corpus root served to trace-referencing requests and
        uploads.
    quota:
        :class:`ServiceQuota`; ``None`` uses the defaults.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: bool = True,
        cache_dir: Optional[Any] = None,
        policy: Optional[ExecutionPolicy] = None,
        checkpoint: Optional[RunCheckpoint] = None,
        registry: Optional[str] = None,
        quota: Optional[ServiceQuota] = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> None:
        self.engine = engine if engine is not None else ExecutionEngine(
            jobs=jobs,
            cache=ResultCache(cache_dir) if cache else None,
            policy=policy,
            checkpoint=checkpoint,
        )
        self.registry_root = str(registry) if registry is not None else None
        self.quota = quota if quota is not None else ServiceQuota()
        self._session = Session(engine=self.engine, registry=self.registry_root)
        self._lock = threading.Lock()
        self._queue: Deque[Job] = deque()
        self._jobs: Dict[str, Job] = {}
        self._live_keys: Dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._wake = threading.Condition(self._lock)
        self._stop = False
        self._interrupted = False
        self._worker: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ServiceBackend":
        """Start the worker thread (idempotent)."""
        with self._lock:
            if self._worker is None or not self._worker.is_alive():
                self._stop = False
                self._worker = threading.Thread(target=self._run_loop, name="repro-service-worker", daemon=True)
                self._worker.start()
        return self

    def shutdown(self, timeout: float = 10.0) -> bool:
        """Stop the worker; returns True if work was left unfinished.

        Unfinished jobs fail with a typed ``unavailable`` error so
        blocked waiters unblock; the engine's checkpoint journal (if
        configured) and cache entries persist, which is what makes an
        interrupted run resumable.
        """
        with self._lock:
            self._stop = True
            self._wake.notify_all()
        worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout=timeout)
        with self._lock:
            leftovers = [job for job in self._jobs.values() if job.state in ("queued", "running")]
            for job in leftovers:
                job.state = "failed"
                job.error = ServiceError("unavailable", "service shut down before the job finished")
                job.done.set()
            self._queue.clear()
            self._live_keys.clear()
            self._interrupted = self._interrupted or bool(leftovers)
            return self._interrupted

    def __enter__(self) -> "ServiceBackend":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # submission / polling
    # ------------------------------------------------------------------ #
    def _pending_for(self, client: str) -> int:
        return sum(
            1
            for job in self._jobs.values()
            if client in job.clients and job.state in ("queued", "running")
        )

    def submit(self, request: Request) -> JobStatus:
        """Admit one request; raises :class:`ServiceError` on rejection.

        An identical live request coalesces: the returned status points
        at the existing job (``coalesced=True``) and both clients poll
        the same job id.
        """
        request.validate()
        client = getattr(request, "client", "anonymous")
        key = request.content_key()
        with self._lock:
            if self._stop:
                raise ServiceError("unavailable", "service is shutting down")
            live = self._live_keys.get(key)
            if live is not None:
                if client not in live.clients:
                    live.clients.append(client)
                obs_metrics.counter("service.coalesced").inc()
                obs_metrics.counter("service.requests", client=client).inc()
                return live.status(queued_ahead=self._queued_ahead(live), coalesced=True)
            if self._pending_for(client) >= self.quota.max_pending_per_client:
                obs_metrics.counter("service.quota_rejections", client=client).inc()
                raise ServiceError(
                    "quota-exceeded",
                    f"client {client!r} already has {self.quota.max_pending_per_client} live jobs",
                )
            if len(self._queue) >= self.quota.max_queue:
                obs_metrics.counter("service.queue_rejections").inc()
                raise ServiceError("queue-full", f"admission queue is full ({self.quota.max_queue} jobs)")
            job = Job(f"job-{next(self._ids)}", request, key)
            self._jobs[job.job_id] = job
            self._queue.append(job)
            self._live_keys[key] = job
            obs_metrics.counter("service.requests", client=client).inc()
            obs_metrics.counter("service.jobs").inc()
            obs_metrics.gauge("service.queue_depth").record_max(len(self._queue))
            self._wake.notify_all()
            return job.status(queued_ahead=len(self._queue) - 1)

    def _queued_ahead(self, job: Job) -> int:
        try:
            return list(self._queue).index(job)
        except ValueError:
            return 0

    def _get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError("not-found", f"no job {job_id!r}")
        return job

    def status(self, job_id: str) -> JobStatus:
        """Poll one job's state."""
        with self._lock:
            job = self._get(job_id)
            return job.status(queued_ahead=self._queued_ahead(job))

    def wait(self, job_id: str, timeout: Optional[float] = None) -> RunReply:
        """Block until the job finishes; raises its error if it failed.

        On timeout the reply is the job's *current* state with no rows,
        so pollers can long-poll without an exception per round.
        """
        with self._lock:
            job = self._get(job_id)
        if not job.done.wait(timeout):
            return RunReply(job_id=job.job_id, state=job.state)
        if job.error is not None:
            raise job.error
        assert job.reply is not None
        return job.reply

    def jobs(self) -> List[JobStatus]:
        """Every known job's status, submission order."""
        with self._lock:
            return [job.status(queued_ahead=self._queued_ahead(job)) for job in self._jobs.values()]

    # ------------------------------------------------------------------ #
    # the non-job surfaces (immediate, no queue)
    # ------------------------------------------------------------------ #
    def upload_trace(self, upload: TraceUpload) -> TraceReply:
        """Trace imports run inline: they are I/O-bound and idempotent."""
        reply = self._session.upload_trace(upload)
        obs_metrics.counter("service.trace_uploads", client=upload.client).inc()
        return reply

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The ambient registry's deterministic snapshot."""
        return obs_metrics.active().snapshot()

    # ------------------------------------------------------------------ #
    # worker
    # ------------------------------------------------------------------ #
    def _next_job(self) -> Optional[Job]:
        with self._lock:
            while not self._queue and not self._stop:
                self._wake.wait(timeout=0.5)
            if self._stop:
                return None
            job = self._queue.popleft()
            job.state = "running"
            return job

    def _run_loop(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                return
            try:
                reply = execute_request(
                    job.request, self.engine, self.registry_root, job_id=job.job_id
                )
            except ServiceError as exc:
                self._finish(job, error=exc)
            except KeyboardInterrupt:  # pragma: no cover — signal raced into the worker
                self._finish(job, error=ServiceError("unavailable", "interrupted"))
                with self._lock:
                    self._stop = True
                    self._interrupted = True
                return
            except Exception as exc:
                self._finish(job, error=ServiceError("server-error", f"{type(exc).__name__}: {exc}"))
            else:
                self._finish(job, reply=reply)

    def _finish(self, job: Job, reply: Optional[RunReply] = None, error: Optional[ServiceError] = None) -> None:
        with self._lock:
            job.reply = reply
            job.error = error
            job.state = "failed" if error is not None else "done"
            self._live_keys.pop(job.content_key, None)
            if error is not None:
                obs_metrics.counter("service.jobs_failed").inc()
            else:
                obs_metrics.counter("service.jobs_done").inc()
                obs_metrics.counter("service.cells_served").inc(reply.cells)
                obs_metrics.counter("service.cache_hits_served").inc(reply.cache_hits)
            job.done.set()
