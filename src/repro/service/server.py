"""Paging-as-a-service: a stdlib-asyncio HTTP frontend over the backend.

The server is handcrafted on :func:`asyncio.start_server` — no aiohttp,
no ``http.server`` — because the protocol surface is deliberately tiny:
JSON in, JSON out, HTTP/1.1 with keep-alive, bounded header/body sizes.
Blocking backend calls (waiting on a job, importing a trace) hop onto a
thread pool so the event loop keeps accepting while long jobs run.

Routes (all JSON)::

    GET  /v1/health                     liveness + versions
    GET  /v1/metrics                    deterministic metrics snapshot
    GET  /v1/jobs                       every job's status
    GET  /v1/jobs/<id>[?wait=SECONDS]   poll (or long-poll) one job
    POST /v1/jobs[?wait=1]              submit a typed request
    POST /v1/runs|/v1/experiments|/v1/sweeps    same, type implied
    POST /v1/traces                     upload a trace into the corpus

``repro serve`` wraps :func:`run_server`, which installs SIGINT/SIGTERM
handlers: a signal stops accepting, shuts the backend down, and — when
work was cut short — leaves the checkpoint journal + cache for a
restarted server to resume from, exiting 130 exactly like an interrupted
CLI run.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..client.protocol import PROTOCOL_VERSION, ServiceError, TraceUpload, request_from_dict
from .backend import ServiceBackend

__all__ = ["ServiceServer", "run_server"]

#: Transport bounds: one header block and one JSON body.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _json_default(obj: Any) -> Any:
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


class ServiceServer:
    """One listening socket bound to one :class:`ServiceBackend`."""

    def __init__(
        self,
        backend: ServiceBackend,
        host: str = "127.0.0.1",
        port: int = 8177,
        max_waiters: int = 32,
    ) -> None:
        self.backend = backend
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        # long-polls park here so the event loop never blocks on a job
        self._pool = ThreadPoolExecutor(max_workers=max_waiters, thread_name_prefix="repro-http-wait")

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "ServiceServer":
        self.backend.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._pool.shutdown(wait=False, cancel_futures=True)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body = parsed
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                status, payload = await self._dispatch(method, path, body)
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        except ValueError as exc:
            # malformed request line/headers: answer once, then hang up
            try:
                await self._respond(writer, 400, {"error": ServiceError("bad-request", str(exc)).to_dict()}, False)
            except (ConnectionResetError, OSError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            request_line = await reader.readline()
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ValueError(f"malformed request line: {request_line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        total = 0
        while True:
            line = await reader.readline()
            total += len(line)
            if total > MAX_HEADER_BYTES:
                raise ValueError("header block too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            raise ValueError("chunked request bodies are not supported")
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: Dict[str, Any], keep_alive: bool
    ) -> None:
        body = json.dumps(payload, default=_json_default).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    async def _dispatch(self, method: str, target: str, body: bytes) -> Tuple[int, Dict[str, Any]]:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        try:
            data = json.loads(body.decode() or "{}") if method == "POST" else {}
        except ValueError:
            return 400, {"error": ServiceError("bad-request", "request body is not valid JSON").to_dict()}
        try:
            return await self._route(method, path, query, data)
        except ServiceError as exc:
            return exc.status, {"error": exc.to_dict()}
        except Exception as exc:  # noqa: BLE001 — one request must not kill the server
            err = ServiceError("server-error", f"{type(exc).__name__}: {exc}")
            return err.status, {"error": err.to_dict()}

    async def _route(
        self, method: str, path: str, query: Dict[str, str], data: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        if path == "/v1/health" and method == "GET":
            from .. import __version__

            return 200, {
                "status": "ok",
                "version": __version__,
                "protocol_version": PROTOCOL_VERSION,
                "jobs": len(self.backend.jobs()),
            }
        if path == "/v1/metrics" and method == "GET":
            return 200, {"snapshot": self.backend.metrics_snapshot(), "protocol_version": PROTOCOL_VERSION}
        if path == "/v1/jobs" and method == "GET":
            return 200, {"jobs": [status.to_dict() for status in self.backend.jobs()]}
        if path in ("/v1/jobs", "/v1/runs", "/v1/experiments", "/v1/sweeps") and method == "POST":
            implied = {"/v1/runs": "run", "/v1/experiments": "experiment", "/v1/sweeps": "sweep"}.get(path)
            if implied is not None:
                data.setdefault("type", implied)
                data.setdefault("protocol_version", PROTOCOL_VERSION)
            request = request_from_dict(data)
            if isinstance(request, TraceUpload):
                raise ServiceError("bad-request", "trace uploads go to POST /v1/traces")
            status = self.backend.submit(request)
            if query.get("wait"):
                reply = await self._wait(status.job_id, None)
                return 200, reply
            return 202, status.to_dict()
        if path == "/v1/traces" and method == "POST":
            data.setdefault("type", "trace-upload")
            data.setdefault("protocol_version", PROTOCOL_VERSION)
            upload = request_from_dict(data)
            if not isinstance(upload, TraceUpload):
                raise ServiceError("bad-request", "POST /v1/traces takes a trace-upload request")
            loop = asyncio.get_running_loop()
            reply = await loop.run_in_executor(self._pool, self.backend.upload_trace, upload)
            return 200, reply.to_dict()
        if path.startswith("/v1/jobs/") and method == "GET":
            job_id = path[len("/v1/jobs/"):]
            if "wait" in query:
                timeout = float(query["wait"]) if query["wait"] not in ("", "1", "true") else None
                return 200, await self._wait(job_id, timeout)
            return 200, self.backend.status(job_id).to_dict()
        if path.startswith("/v1/"):
            raise ServiceError("not-found", f"no route {method} {path}")
        raise ServiceError("not-found", f"unknown path {path!r}; the API lives under /v1/")

    async def _wait(self, job_id: str, timeout: Optional[float]) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        reply = await loop.run_in_executor(self._pool, self.backend.wait, job_id, timeout)
        return reply.to_dict()


def run_server(
    backend: ServiceBackend,
    host: str = "127.0.0.1",
    port: int = 8177,
    ready_line: bool = True,
    drain_timeout: float = 5.0,
) -> int:
    """Serve until SIGINT/SIGTERM; returns the process exit code.

    Prints ``repro service listening on <url>`` once bound (so scripts
    and tests can scrape the actual port when ``port=0``), and on
    signal-driven shutdown mirrors the CLI contract: exit 0 when idle,
    exit 130 with a resume hint when jobs were cut short mid-run.
    """

    async def _main() -> None:
        server = await ServiceServer(backend, host=host, port=port).start()
        if ready_line:
            print(f"repro service listening on {server.url}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, ValueError):  # pragma: no cover — non-main thread
                pass
        await stop.wait()
        await server.stop()

    asyncio.run(_main())
    interrupted = backend.shutdown(timeout=drain_timeout)
    checkpoint = backend.engine.checkpoint
    if interrupted and checkpoint is not None:
        checkpoint.mark_status("interrupted")
        print(
            f"interrupted — journal and cache retained; restart with the same "
            f"--cache-dir to serve the finished cells (run {checkpoint.manifest.run_id})",
            file=sys.stderr,
        )
    elif checkpoint is not None:
        checkpoint.mark_status("complete")
    return 130 if interrupted else 0
