"""Load generator: N concurrent clients, measured p50/p99 — not a slogan.

Drives a running ``repro serve`` with ``--clients`` concurrent threads
(each a :class:`~repro.client.HttpSession` with its own client
identity), records per-request wall latency, and reads the server's
metrics before and after, so the report can state the *cross-client*
cache-hit rate next to the latency distribution.  Scenarios:

``duplicate-cells``
    Every client submits the identical :class:`RunRequest` repeatedly —
    the multi-tenant regime the paper's shared-cache story is about.
    The first arrival computes; coalescing and the content-addressed
    cache serve everyone else, so the measured hit rate should be high.
``unique-cells``
    Every (client, round) pair gets a distinct workload seed — the
    all-miss worst case that prices raw engine throughput.
``experiment``
    Every client asks for the same named experiment (default ``e1``
    quick) — the CI scenario, comparable to a serial CLI run.

Usage::

    python -m repro.service.loadgen --url http://127.0.0.1:8177 \\
        --clients 8 --requests 4 --scenario duplicate-cells \\
        --out BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..client.protocol import ExperimentRequest, Request, RunRequest, ServiceError, WorkloadSpec
from ..client.session import HttpSession

__all__ = ["percentile", "run_load", "main"]

#: The shared cell of the duplicate-cells scenario: small enough to be a
#: sane unit of load, large enough that computing vs cache-serving it is
#: clearly distinguishable in the latency distribution.
DUPLICATE_CELL = dict(
    algorithms=("det-par", "global-lru"),
    cache_size=64,
    miss_cost=8,
    xi=2,
    seeds=(0, 1),
    workload=WorkloadSpec(p=8, n_requests=400, k=32),
)


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 on empty input)."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * q // 100))  # ceil without floats
    return sorted_values[int(rank) - 1]


def _scenario_request(scenario: str, client: str, round_index: int, experiment: str, scale: str) -> Request:
    if scenario == "duplicate-cells":
        return RunRequest(client=client, **DUPLICATE_CELL)
    if scenario == "unique-cells":
        spec = DUPLICATE_CELL["workload"]
        import hashlib

        stable = int(hashlib.sha256(f"{client}/{round_index}".encode()).hexdigest()[:8], 16)
        unique = WorkloadSpec(p=spec.p, n_requests=spec.n_requests, k=spec.k, workload_seed=stable)
        return RunRequest(client=client, **{**DUPLICATE_CELL, "workload": unique})
    if scenario == "experiment":
        return ExperimentRequest(name=experiment, scale=scale, client=client)
    raise ValueError(f"unknown scenario {scenario!r}; known: duplicate-cells, unique-cells, experiment")


def run_load(
    url: str,
    clients: int = 8,
    requests_per_client: int = 4,
    scenario: str = "duplicate-cells",
    experiment: str = "e1",
    scale: str = "quick",
    out: Optional[Path] = None,
    timeout: float = 600.0,
) -> Dict[str, Any]:
    """Run one load scenario; returns (and optionally writes) the report."""
    latencies: List[float] = []
    errors: List[str] = []
    lock = threading.Lock()
    before = HttpSession(url, timeout=timeout).metrics()

    def one_client(index: int) -> None:
        session = HttpSession(url, client=f"loadgen-{index}", timeout=timeout)
        for round_index in range(requests_per_client):
            request = _scenario_request(scenario, f"loadgen-{index}", round_index, experiment, scale)
            t0 = time.perf_counter()
            try:
                reply = session.run(request) if isinstance(request, RunRequest) else session.experiment(request)
                if not reply.rows:
                    raise ServiceError("server-error", "empty row set")
            except ServiceError as exc:
                with lock:
                    errors.append(f"{exc.code}: {exc.message}")
                continue
            with lock:
                latencies.append(time.perf_counter() - t0)

    threads = [threading.Thread(target=one_client, args=(i,)) for i in range(clients)]
    wall0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall0
    after = HttpSession(url, timeout=timeout).metrics()

    computed = after.counter("exec.computed") - before.counter("exec.computed")
    hits = after.counter("exec.cache.hits") - before.counter("exec.cache.hits")
    coalesced = after.counter("service.coalesced") - before.counter("service.coalesced")
    cells = computed + hits
    ordered = sorted(latencies)
    report: Dict[str, Any] = {
        "scenario": scenario,
        "url": url,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "completed": len(latencies),
        "errors": len(errors),
        "error_samples": errors[:5],
        "wall_s": round(wall, 3),
        "throughput_rps": round(len(latencies) / wall, 3) if wall > 0 else 0.0,
        "latency_ms": {
            "p50": round(percentile(ordered, 50) * 1000, 1),
            "p90": round(percentile(ordered, 90) * 1000, 1),
            "p99": round(percentile(ordered, 99) * 1000, 1),
            "mean": round(sum(ordered) / len(ordered) * 1000, 1) if ordered else 0.0,
            "max": round(ordered[-1] * 1000, 1) if ordered else 0.0,
        },
        "cache": {
            "cells": int(cells),
            "computed": int(computed),
            "hits": int(hits),
            "hit_rate": round(hits / cells, 3) if cells else 0.0,
            "coalesced_jobs": int(coalesced),
        },
    }
    if out is not None:
        out = Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Drive a repro service with concurrent clients and report p50/p99 latency.",
    )
    parser.add_argument("--url", required=True, help="service base URL (from 'repro serve')")
    parser.add_argument("--clients", type=int, default=8, help="concurrent clients (default 8)")
    parser.add_argument("--requests", type=int, default=4, help="requests per client (default 4)")
    parser.add_argument(
        "--scenario", default="duplicate-cells",
        choices=("duplicate-cells", "unique-cells", "experiment"),
        help="load shape (default duplicate-cells)",
    )
    parser.add_argument("--experiment", default="e1", help="experiment scenario: which experiment")
    parser.add_argument("--scale", default="quick", choices=("quick", "full"))
    parser.add_argument("--out", type=Path, default=None, help="write the JSON report here")
    parser.add_argument("--timeout", type=float, default=600.0, help="per-request timeout seconds")
    args = parser.parse_args(argv)
    if args.clients < 1 or args.requests < 1:
        parser.error("--clients and --requests must be >= 1")
    try:
        report = run_load(
            args.url,
            clients=args.clients,
            requests_per_client=args.requests,
            scenario=args.scenario,
            experiment=args.experiment,
            scale=args.scale,
            out=args.out,
            timeout=args.timeout,
        )
    except ServiceError as exc:
        print(f"loadgen: {exc.code}: {exc.message}", file=sys.stderr)
        return 2
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.out is not None:
        print(f"report written to {args.out}", file=sys.stderr)
    return 0 if not report["errors"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
