"""Plain-text trace formats: streaming import/export of request sequences.

A minimal interchange format so real traces (or hand-written fixtures)
can flow in and out of the simulators:

* one request per line: an integer page id, optionally
  ``processor_id page_id`` for parallel traces;
* blank lines and ``#`` comments ignored;
* the parallel form groups lines by processor id, preserving per-processor
  request order (interleaving across processors carries no timing meaning
  — the model's schedulers control timing);
* files ending in ``.gz``/``.xz``/``.lzma``/``.bz2`` are transparently
  (de)compressed, and compressed inputs without a telltale suffix are
  sniffed by magic bytes.

The readers stream: files are consumed in bounded byte blocks and parsed
with vectorized NumPy casts, so multi-gigabyte traces import without ever
holding the whole text in memory.  ``.npz`` (``ParallelWorkload.save`` /
``load``) and the :mod:`repro.traces` binary store remain the efficient
native formats; this one is for humans and foreign tooling.
"""

from __future__ import annotations

import bz2
import gzip
import lzma
from pathlib import Path
from typing import IO, Dict, Iterator, List, Optional, Sequence

import numpy as np

from .trace import ParallelWorkload

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "open_trace_stream",
    "iter_clean_line_blocks",
    "parse_int_lines",
    "write_trace_text",
    "read_trace_text",
    "write_sequence_text",
    "read_sequence_text",
    "read_address_trace",
]

#: Bytes per streaming read; bounds reader memory (a block expands to the
#: parsed int64 rows it contains, nothing more).
DEFAULT_BLOCK_BYTES = 1 << 20

_MAGIC_OPENERS = (
    (b"\x1f\x8b", gzip.open),
    (b"\xfd7zXZ\x00", lzma.open),
    (b"BZh", bz2.open),
)
_SUFFIX_OPENERS = {
    ".gz": gzip.open,
    ".xz": lzma.open,
    ".lzma": lzma.open,
    ".bz2": bz2.open,
}


def _opener(path: Path):
    """Compression opener for ``path`` (suffix first, then magic sniff)."""
    opener = _SUFFIX_OPENERS.get(path.suffix.lower())
    if opener is None and path.exists():
        with path.open("rb") as fh:
            head = fh.read(6)
        for magic, candidate in _MAGIC_OPENERS:
            if head.startswith(magic):
                opener = candidate
                break
    return opener


def open_trace_stream(path: str | Path) -> IO[bytes]:
    """Open a possibly-compressed trace file for streaming binary reads."""
    path = Path(path)
    opener = _opener(path)
    return opener(path, "rb") if opener else path.open("rb")


def _open_text_write(path: Path) -> IO[str]:
    """Open ``path`` for text writing, compressing by suffix."""
    path.parent.mkdir(parents=True, exist_ok=True)
    opener = _SUFFIX_OPENERS.get(path.suffix.lower())
    return opener(path, "wt") if opener else path.open("w")


def _clean_lines(text: str) -> List[str]:
    """Strip comments/blank lines, preserving line boundaries."""
    if "#" in text:
        stripped = (line.split("#", 1)[0].strip() for line in text.splitlines())
    else:
        stripped = (line.strip() for line in text.splitlines())
    return [line for line in stripped if line]


def iter_clean_line_blocks(
    path: str | Path, block_bytes: int = DEFAULT_BLOCK_BYTES
) -> Iterator[List[str]]:
    """Stream a text trace as bounded blocks of cleaned lines.

    Each yielded block is a list of non-empty lines with comments already
    stripped; blocks split only at line boundaries, so every logical line
    appears exactly once.  Peak memory is ``O(block_bytes)`` regardless of
    file size.
    """
    carry = b""
    with open_trace_stream(path) as fh:
        while True:
            block = fh.read(block_bytes)
            if not block:
                break
            block = carry + block
            cut = block.rfind(b"\n")
            if cut < 0:
                carry = block
                continue
            carry = block[cut + 1 :]
            lines = _clean_lines(block[:cut].decode())
            if lines:
                yield lines
    if carry:
        lines = _clean_lines(carry.decode())
        if lines:
            yield lines


def _raise_bad_lines(lines: Sequence[str], columns: int, what: str) -> None:
    """Pinpoint the offending line for a parse error (slow path, errors only)."""
    for line in lines:
        parts = line.split()
        if len(parts) != columns:
            raise ValueError(f"expected {what} per line, got {line!r}")
        for token in parts:
            try:
                int(token)
            except ValueError:
                raise ValueError(f"expected {what} per line, got {line!r}") from None
    raise ValueError(f"malformed trace block (expected {what} per line)")


def parse_int_lines(lines: Sequence[str], columns: int, what: str) -> np.ndarray:
    """Parse cleaned lines of exactly ``columns`` integers each (vectorized).

    Returns an ``(n, columns)`` int64 array.  The fast path is a single
    NumPy string→int64 cast over every token in the block; the per-line
    Python loop runs only to produce a precise error message.
    """
    tokens = " ".join(lines).split()
    if len(tokens) != columns * len(lines):
        _raise_bad_lines(lines, columns, what)
    try:
        arr = np.array(tokens, dtype=np.int64)
    except (ValueError, OverflowError):
        _raise_bad_lines(lines, columns, what)
    return arr.reshape(len(lines), columns)


def write_sequence_text(seq: np.ndarray, path: str | Path, comment: str = "") -> None:
    """Write one request sequence, one page id per line (``.gz`` etc. compress)."""
    path = Path(path)
    arr = np.asarray(seq, dtype=np.int64)
    with _open_text_write(path) as fh:
        if comment:
            for line in comment.splitlines():
                fh.write(f"# {line}\n")
        for start in range(0, len(arr), 1 << 16):
            chunk = arr[start : start + (1 << 16)]
            fh.write("\n".join(map(str, chunk.tolist())))
            fh.write("\n")


def read_sequence_text(path: str | Path) -> np.ndarray:
    """Read a single-processor trace written by :func:`write_sequence_text`."""
    parts = [
        parse_int_lines(block, 1, "one page id").ravel()
        for block in iter_clean_line_blocks(path)
    ]
    if not parts:
        return np.asarray([], dtype=np.int64)
    return np.concatenate(parts)


def write_trace_text(workload: ParallelWorkload, path: str | Path) -> None:
    """Write a parallel workload as ``processor_id page_id`` lines."""
    path = Path(path)
    with _open_text_write(path) as fh:
        fh.write(f"# workload: {workload.name}\n")
        fh.write(f"# processors: {workload.p}\n")
        for i, seq in enumerate(workload.sequences):
            arr = np.asarray(seq, dtype=np.int64)
            for start in range(0, len(arr), 1 << 16):
                chunk = arr[start : start + (1 << 16)]
                fh.write("".join(f"{i} {page}\n" for page in chunk.tolist()))


def iter_parallel_blocks(
    path: str | Path, block_bytes: int = DEFAULT_BLOCK_BYTES
) -> Iterator[np.ndarray]:
    """Stream a ``processor page`` trace as ``(n, 2)`` int64 blocks."""
    for block in iter_clean_line_blocks(path, block_bytes=block_bytes):
        arr = parse_int_lines(block, 2, "'processor page'")
        if len(arr) and arr[:, 0].min() < 0:
            bad = int(arr[arr[:, 0] < 0][0, 0])
            raise ValueError(f"negative processor id {bad} in trace {path}")
        yield arr


def read_trace_text(
    path: str | Path, name: str = "text-trace", allow_shared: bool = False
) -> ParallelWorkload:
    """Read a parallel trace written by :func:`write_trace_text`.

    Processor ids may appear in any interleaving; per-processor order is
    the file order.  Missing intermediate processor ids yield empty
    sequences (ids are treated as dense 0..max).  The file streams in
    blocks; only the parsed int64 columns are held in memory.
    """
    by_proc: Dict[int, List[np.ndarray]] = {}
    for arr in iter_parallel_blocks(path):
        procs = arr[:, 0]
        pages = arr[:, 1]
        # stable grouping: per-processor order is preserved within and
        # (by append order) across blocks
        order = np.argsort(procs, kind="stable")
        sorted_procs = procs[order]
        sorted_pages = pages[order]
        uniq, starts = np.unique(sorted_procs, return_index=True)
        bounds = np.append(starts, len(sorted_procs))
        for j, proc in enumerate(uniq.tolist()):
            by_proc.setdefault(int(proc), []).append(
                sorted_pages[bounds[j] : bounds[j + 1]]
            )
    if not by_proc:
        return ParallelWorkload(sequences=[], name=name, allow_shared=allow_shared)
    p = max(by_proc) + 1
    empty = np.asarray([], dtype=np.int64)
    sequences = [
        np.concatenate(by_proc[i]) if i in by_proc else empty for i in range(p)
    ]
    return ParallelWorkload(sequences=sequences, name=name, allow_shared=allow_shared)


def _parse_address_block(lines: Sequence[str]) -> np.ndarray:
    """Parse one block of addresses: decimal fast path, hex fallback."""
    tokens = " ".join(lines).split()
    if len(tokens) != len(lines):
        _raise_bad_lines(lines, 1, "one address")
    try:
        return np.array(tokens, dtype=np.int64)
    except (ValueError, OverflowError):
        pass
    try:
        return np.array(
            [int(t, 16) if t.lower().startswith("0x") else int(t) for t in tokens],
            dtype=np.int64,
        )
    except (ValueError, OverflowError):
        _raise_bad_lines(lines, 1, "one address")
        raise AssertionError("unreachable")


def read_address_trace(path: str | Path, page_size: int = 4096) -> np.ndarray:
    """Convert a raw memory-address trace to a page-request sequence.

    One address per line (decimal, or hex with a ``0x`` prefix); blank
    lines and ``#`` comments ignored.  Each address maps to page
    ``address // page_size`` — the standard adapter for feeding real
    program traces (e.g. from a pintool or valgrind's lackey) into the
    simulators.  Streams in blocks, so arbitrarily large traces convert
    with bounded memory.
    """
    if page_size < 1:
        raise ValueError("page_size must be >= 1")
    parts: List[np.ndarray] = []
    for block in iter_clean_line_blocks(path):
        addrs = _parse_address_block(block)
        if len(addrs) and addrs.min() < 0:
            raise ValueError(f"negative address {int(addrs.min())} in trace {path}")
        parts.append(addrs // page_size)
    if not parts:
        return np.asarray([], dtype=np.int64)
    return np.concatenate(parts)
