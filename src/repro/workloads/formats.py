"""Plain-text trace format: import/export of request sequences.

A minimal interchange format so real traces (or hand-written fixtures)
can flow in and out of the simulators:

* one request per line: an integer page id, optionally
  ``processor_id page_id`` for parallel traces;
* blank lines and ``#`` comments ignored;
* the parallel form groups lines by processor id, preserving per-processor
  request order (interleaving across processors carries no timing meaning
  — the model's schedulers control timing).

``.npz`` (``ParallelWorkload.save``/``load``) remains the efficient native
format; this one is for humans and foreign tooling.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

import numpy as np

from .trace import ParallelWorkload

__all__ = [
    "write_trace_text",
    "read_trace_text",
    "write_sequence_text",
    "read_sequence_text",
    "read_address_trace",
]


def write_sequence_text(seq: np.ndarray, path: str | Path, comment: str = "") -> None:
    """Write one request sequence, one page id per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        if comment:
            for line in comment.splitlines():
                fh.write(f"# {line}\n")
        for page in np.asarray(seq, dtype=np.int64):
            fh.write(f"{int(page)}\n")


def read_sequence_text(path: str | Path) -> np.ndarray:
    """Read a single-processor trace written by :func:`write_sequence_text`."""
    out: List[int] = []
    for raw in Path(path).read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 1:
            raise ValueError(f"expected one page id per line, got {raw!r}")
        out.append(int(parts[0]))
    return np.asarray(out, dtype=np.int64)


def write_trace_text(workload: ParallelWorkload, path: str | Path) -> None:
    """Write a parallel workload as ``processor_id page_id`` lines."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        fh.write(f"# workload: {workload.name}\n")
        fh.write(f"# processors: {workload.p}\n")
        for i, seq in enumerate(workload.sequences):
            for page in seq:
                fh.write(f"{i} {int(page)}\n")


def read_trace_text(path: str | Path, name: str = "text-trace", allow_shared: bool = False) -> ParallelWorkload:
    """Read a parallel trace written by :func:`write_trace_text`.

    Processor ids may appear in any interleaving; per-processor order is
    the file order.  Missing intermediate processor ids yield empty
    sequences (ids are treated as dense 0..max).
    """
    by_proc: Dict[int, List[int]] = {}
    for raw in Path(path).read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"expected 'processor page' per line, got {raw!r}")
        proc, page = int(parts[0]), int(parts[1])
        if proc < 0:
            raise ValueError(f"negative processor id in line {raw!r}")
        by_proc.setdefault(proc, []).append(page)
    if not by_proc:
        return ParallelWorkload(sequences=[], name=name, allow_shared=allow_shared)
    p = max(by_proc) + 1
    sequences = [np.asarray(by_proc.get(i, []), dtype=np.int64) for i in range(p)]
    return ParallelWorkload(sequences=sequences, name=name, allow_shared=allow_shared)


def read_address_trace(path: str | Path, page_size: int = 4096) -> np.ndarray:
    """Convert a raw memory-address trace to a page-request sequence.

    One address per line (decimal, or hex with a ``0x`` prefix); blank
    lines and ``#`` comments ignored.  Each address maps to page
    ``address // page_size`` — the standard adapter for feeding real
    program traces (e.g. from a pintool or valgrind's lackey) into the
    simulators.
    """
    if page_size < 1:
        raise ValueError("page_size must be >= 1")
    pages: List[int] = []
    for raw in Path(path).read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        addr = int(line, 16) if line.lower().startswith("0x") else int(line)
        if addr < 0:
            raise ValueError(f"negative address in line {raw!r}")
        pages.append(addr // page_size)
    return np.asarray(pages, dtype=np.int64)
