"""Workload characterization: the structure the scheduler must reason about.

The paper's introduction frames parallel paging's difficulty in terms of
per-processor *marginal benefit* of cache — non-monotonic in size,
fluctuating over time.  This module computes exactly those diagnostics
from a request sequence, powering the examples, the workload-design notes
in EXPERIMENTS.md, and sanity tests on the generators:

* reuse-distance (stack-distance) histograms and summary quantiles;
* working-set size over sliding windows (Denning's W(t, τ));
* pollution level (fraction of use-once pages — the §4 polluters);
* the marginal-benefit curve Δfaults(c→c+1) from the miss-ratio curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..paging.stack import miss_ratio_curve, stack_distances

__all__ = ["SequenceStats", "characterize", "working_set_sizes", "pollution_level", "marginal_benefit"]


def working_set_sizes(requests: Sequence[int], window: int) -> np.ndarray:
    """Denning working-set sizes: distinct pages in each length-``window``
    sliding window (stride = window, i.e. tumbling, which is what the
    phase-structure diagnostics need)."""
    reqs = np.asarray(requests, dtype=np.int64)
    if window < 1:
        raise ValueError("window must be >= 1")
    out = []
    for start in range(0, len(reqs), window):
        out.append(len(np.unique(reqs[start : start + window])))
    return np.asarray(out, dtype=np.int64)


def pollution_level(requests: Sequence[int]) -> float:
    """Fraction of requests to pages used exactly once (§4's polluters)."""
    reqs = np.asarray(requests, dtype=np.int64)
    if len(reqs) == 0:
        return 0.0
    _, counts = np.unique(reqs, return_counts=True)
    return float((counts == 1).sum()) / len(reqs)


def marginal_benefit(requests: Sequence[int], max_capacity: int) -> np.ndarray:
    """``Δfaults[c] = faults(c) - faults(c+1)`` for c = 1..max_capacity-1.

    The marginal value of one more cache page under LRU.  Non-monotonic in
    general (e.g. cyclic workloads have a cliff at the cycle length) —
    the phenomenon the paper's introduction calls out.
    """
    curve = miss_ratio_curve(requests, max_capacity=max_capacity)
    faults = curve.faults[1 : max_capacity + 1].astype(np.int64)
    return faults[:-1] - faults[1:]


@dataclass(frozen=True)
class SequenceStats:
    """One-stop summary of a request sequence."""

    n_requests: int
    distinct_pages: int
    pollution: float
    reuse_median: float
    reuse_p90: float
    max_working_set: int
    mean_working_set: float

    def as_dict(self) -> Dict[str, object]:
        """Rounded dict form for table rendering."""
        return {
            "n_requests": self.n_requests,
            "distinct_pages": self.distinct_pages,
            "pollution": round(self.pollution, 3),
            "reuse_median": round(self.reuse_median, 1),
            "reuse_p90": round(self.reuse_p90, 1),
            "max_working_set": self.max_working_set,
            "mean_working_set": round(self.mean_working_set, 1),
        }


def characterize(requests: Sequence[int], window: int = 256) -> SequenceStats:
    """Compute a :class:`SequenceStats` summary (one pass per diagnostic)."""
    reqs = np.asarray(requests, dtype=np.int64)
    n = len(reqs)
    if n == 0:
        return SequenceStats(0, 0, 0.0, 0.0, 0.0, 0, 0.0)
    dists = stack_distances(reqs)
    warm = dists[dists > 0]
    ws = working_set_sizes(reqs, min(window, n))
    return SequenceStats(
        n_requests=n,
        distinct_pages=int(len(np.unique(reqs))),
        pollution=pollution_level(reqs),
        reuse_median=float(np.median(warm)) if len(warm) else 0.0,
        reuse_p90=float(np.percentile(warm, 90)) if len(warm) else 0.0,
        max_working_set=int(ws.max()),
        mean_working_set=float(ws.mean()),
    )
