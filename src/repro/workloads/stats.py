"""Workload characterization: the structure the scheduler must reason about.

The paper's introduction frames parallel paging's difficulty in terms of
per-processor *marginal benefit* of cache — non-monotonic in size,
fluctuating over time.  This module computes exactly those diagnostics
from a request sequence, powering the examples, the workload-design notes
in EXPERIMENTS.md, and sanity tests on the generators:

* reuse-distance (stack-distance) histograms and summary quantiles;
* working-set size over sliding windows (Denning's W(t, τ));
* pollution level (fraction of use-once pages — the §4 polluters);
* the marginal-benefit curve Δfaults(c→c+1) from the miss-ratio curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..paging.stack import Fenwick, miss_ratio_curve, stack_distances

__all__ = [
    "SequenceStats",
    "characterize",
    "characterize_chunks",
    "working_set_sizes",
    "pollution_level",
    "marginal_benefit",
    "ReuseDistanceTracker",
    "StreamingCharacterizer",
]


def working_set_sizes(requests: Sequence[int], window: int) -> np.ndarray:
    """Denning working-set sizes: distinct pages in each length-``window``
    sliding window (stride = window, i.e. tumbling, which is what the
    phase-structure diagnostics need).

    Fully vectorized: one stable lexsort over ``(window, page)`` pairs,
    then a boundary scan counts the first occurrence of each page within
    its window — no Python-level loop over windows.
    """
    reqs = np.asarray(requests, dtype=np.int64)
    if window < 1:
        raise ValueError("window must be >= 1")
    n = len(reqs)
    if n == 0:
        return np.asarray([], dtype=np.int64)
    win_idx = np.arange(n, dtype=np.int64) // window
    order = np.lexsort((reqs, win_idx))
    w_sorted = win_idx[order]
    r_sorted = reqs[order]
    first = np.ones(n, dtype=bool)
    first[1:] = (w_sorted[1:] != w_sorted[:-1]) | (r_sorted[1:] != r_sorted[:-1])
    n_windows = int(win_idx[-1]) + 1
    return np.bincount(w_sorted[first], minlength=n_windows).astype(np.int64)


def pollution_level(requests: Sequence[int]) -> float:
    """Fraction of requests to pages used exactly once (§4's polluters)."""
    reqs = np.asarray(requests, dtype=np.int64)
    if len(reqs) == 0:
        return 0.0
    _, counts = np.unique(reqs, return_counts=True)
    return float((counts == 1).sum()) / len(reqs)


def marginal_benefit(requests: Sequence[int], max_capacity: int) -> np.ndarray:
    """``Δfaults[c] = faults(c) - faults(c+1)`` for c = 1..max_capacity-1.

    The marginal value of one more cache page under LRU.  Non-monotonic in
    general (e.g. cyclic workloads have a cliff at the cycle length) —
    the phenomenon the paper's introduction calls out.
    """
    curve = miss_ratio_curve(requests, max_capacity=max_capacity)
    faults = curve.faults[1 : max_capacity + 1].astype(np.int64)
    return faults[:-1] - faults[1:]


@dataclass(frozen=True)
class SequenceStats:
    """One-stop summary of a request sequence."""

    n_requests: int
    distinct_pages: int
    pollution: float
    reuse_median: float
    reuse_p90: float
    max_working_set: int
    mean_working_set: float

    def as_dict(self) -> Dict[str, object]:
        """Rounded dict form for table rendering."""
        return {
            "n_requests": self.n_requests,
            "distinct_pages": self.distinct_pages,
            "pollution": round(self.pollution, 3),
            "reuse_median": round(self.reuse_median, 1),
            "reuse_p90": round(self.reuse_p90, 1),
            "max_working_set": self.max_working_set,
            "mean_working_set": round(self.mean_working_set, 1),
        }


def characterize(requests: Sequence[int], window: int = 256) -> SequenceStats:
    """Compute a :class:`SequenceStats` summary (one pass per diagnostic)."""
    reqs = np.asarray(requests, dtype=np.int64)
    n = len(reqs)
    if n == 0:
        return SequenceStats(0, 0, 0.0, 0.0, 0.0, 0, 0.0)
    dists = stack_distances(reqs)
    warm = dists[dists > 0]
    ws = working_set_sizes(reqs, min(window, n))
    return SequenceStats(
        n_requests=n,
        distinct_pages=int(len(np.unique(reqs))),
        pollution=pollution_level(reqs),
        reuse_median=float(np.median(warm)) if len(warm) else 0.0,
        reuse_p90=float(np.percentile(warm, 90)) if len(warm) else 0.0,
        max_working_set=int(ws.max()),
        mean_working_set=float(ws.mean()),
    )


# --------------------------------------------------------------------- #
# streaming (chunked) characterization — shared with repro.traces readers
# --------------------------------------------------------------------- #
class ReuseDistanceTracker:
    """Streaming LRU stack distances in ``O(distinct pages)`` memory.

    :func:`~repro.paging.stack.stack_distances` keeps a Fenwick tree over
    *all* request positions — ``O(n)`` memory, fine in RAM, fatal for a
    trace that doesn't fit.  This tracker maintains the same counts over a
    Fenwick of *active* slots only (one per currently-tracked page),
    compacting the slot domain whenever appends outrun it.  Distances land
    in a histogram (distances are bounded by the distinct-page count), so
    exact quantiles come out of bounded state.
    """

    def __init__(self) -> None:
        self._last: Dict[int, int] = {}  # page -> active slot
        self._cap = 1024
        self._tree = Fenwick(self._cap)
        self._next = 0  # next free slot
        self._active = 0
        self.cold = 0
        self._hist: Dict[int, int] = {}  # distance -> count

    def _compact(self) -> None:
        """Remap active slots to 0..d-1 and rebuild the Fenwick tree."""
        pages = list(self._last.keys())
        slots = np.asarray([self._last[p] for p in pages], dtype=np.int64)
        order = np.argsort(slots, kind="stable")
        self._cap = max(1024, 2 * len(pages))
        self._tree = Fenwick(self._cap)
        for rank, idx in enumerate(order.tolist()):
            self._last[pages[idx]] = rank
            self._tree.add(rank, 1)
        self._next = len(pages)
        self._active = len(pages)

    def push(self, page: int) -> None:
        """Observe one request."""
        last = self._last
        slot = last.get(page)
        if slot is None:
            self.cold += 1
        else:
            dist = self._active - self._tree.prefix_sum(slot) + 1
            self._hist[dist] = self._hist.get(dist, 0) + 1
            self._tree.add(slot, -1)
            self._active -= 1
            # drop the stale mapping so a compaction triggered below
            # cannot resurrect the slot we just vacated
            del last[page]
        if self._next >= self._cap:
            self._compact()
        self._tree.add(self._next, 1)
        last[page] = self._next
        self._next += 1
        self._active += 1

    def push_chunk(self, chunk: np.ndarray) -> None:
        """Observe a chunk of requests in order."""
        push = self.push
        for page in np.asarray(chunk, dtype=np.int64).tolist():
            push(page)

    def histogram(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(distances, counts)`` of warm requests, distances ascending."""
        if not self._hist:
            return np.asarray([], dtype=np.int64), np.asarray([], dtype=np.int64)
        dists = np.asarray(sorted(self._hist), dtype=np.int64)
        counts = np.asarray([self._hist[int(d)] for d in dists], dtype=np.int64)
        return dists, counts

    def quantile(self, q: float) -> float:
        """Exact quantile of the warm-distance distribution.

        Replicates ``np.percentile(..., method="linear")`` — including its
        branch-dependent lerp rounding — so streaming results are
        bit-identical to the in-memory path.
        """
        dists, counts = self.histogram()
        total = int(counts.sum()) if len(counts) else 0
        if total == 0:
            return 0.0
        cum = np.cumsum(counts)

        def value_at(idx: int) -> float:
            return float(dists[int(np.searchsorted(cum, idx, side="right"))])

        virtual = q * (total - 1)
        lo = math.floor(virtual)
        hi = math.ceil(virtual)
        a = value_at(lo)
        b = value_at(hi)
        t = virtual - lo
        if t < 0.5:
            return a + (b - a) * t
        return b - (b - a) * (1 - t)


class StreamingCharacterizer:
    """Single-pass, bounded-memory :func:`characterize`.

    Feed request chunks in order via :meth:`update`; :meth:`finalize`
    returns a :class:`SequenceStats` equal (bit-for-bit) to
    ``characterize(np.concatenate(chunks), window)``.  Peak memory is
    ``O(distinct pages + window)`` — independent of trace length — which
    is what lets :mod:`repro.traces` characterize stores larger than RAM.
    """

    def __init__(self, window: int = 256) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self.n = 0
        self._page_counts: Dict[int, int] = {}
        self._tracker = ReuseDistanceTracker()
        self._cur_window: set = set()
        self._cur_fill = 0
        self._ws: List[int] = []

    def update(self, chunk: np.ndarray) -> None:
        """Consume the next chunk of the sequence."""
        arr = np.ascontiguousarray(chunk, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("chunks must be 1-D request arrays")
        if len(arr) == 0:
            return
        self.n += len(arr)
        pages, counts = np.unique(arr, return_counts=True)
        pc = self._page_counts
        for page, count in zip(pages.tolist(), counts.tolist()):
            pc[page] = pc.get(page, 0) + count
        self._tracker.push_chunk(arr)
        # tumbling windows across chunk boundaries
        pos = 0
        w = self.window
        while pos < len(arr):
            take = min(w - self._cur_fill, len(arr) - pos)
            seg = arr[pos : pos + take]
            self._cur_window.update(np.unique(seg).tolist())
            self._cur_fill += take
            pos += take
            if self._cur_fill == w:
                self._ws.append(len(self._cur_window))
                self._cur_window = set()
                self._cur_fill = 0

    def finalize(self) -> SequenceStats:
        """Summarize everything seen so far."""
        if self.n == 0:
            return SequenceStats(0, 0, 0.0, 0.0, 0.0, 0, 0.0)
        ws_list = list(self._ws)
        if self._cur_fill:
            ws_list.append(len(self._cur_window))
        ws = np.asarray(ws_list, dtype=np.int64)
        n_once = sum(1 for c in self._page_counts.values() if c == 1)
        warm_total = self.n - self._tracker.cold
        return SequenceStats(
            n_requests=self.n,
            distinct_pages=len(self._page_counts),
            pollution=float(n_once) / self.n,
            reuse_median=self._tracker.quantile(0.5) if warm_total else 0.0,
            reuse_p90=self._tracker.quantile(0.9) if warm_total else 0.0,
            max_working_set=int(ws.max()),
            mean_working_set=float(ws.mean()),
        )


def characterize_chunks(chunks: Iterable[np.ndarray], window: int = 256) -> SequenceStats:
    """Streaming :func:`characterize` over an iterable of request chunks.

    Equal to ``characterize(np.concatenate(list(chunks)), window)`` without
    ever materializing the concatenation; pair it with
    ``TraceStore.iter_chunks`` to characterize traces larger than RAM.
    """
    state = StreamingCharacterizer(window=window)
    for chunk in chunks:
        state.update(chunk)
    return state.finalize()
