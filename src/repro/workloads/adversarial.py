"""The Theorem 4 adversarial instance (§4 + appendix) and Lemma 8's OPT.

The lower-bound construction that shows *any* parallel paging algorithm
built on a greedily-green black box loses a ``Ω(log p / log log p)`` factor
on makespan.  Structure (appendix, with our parameter names):

* ``p = 2^(ℓ+1) - 1`` sequences share a cache of ``k = p·2^(a-1)`` (we round
  ``k`` up to the next power of two for lattice compatibility and report
  both).
* Every sequence ends with a **suffix** of ``4·log₂ ℓ`` phases, each of
  ``γ·(k-1)`` requests to brand-new pages (pure polluters — no cache size
  helps, so suffixes progress at the same speed regardless of allocation;
  they carry the bulk of the impact and the key to optimality is running
  them *in parallel*).
* Only ``~p/ℓ`` sequences are **prefixed**.  Prefixed sequences form
  families ``F_0 … F_{ℓ-log ℓ}``; family ``F_i`` holds ``2^i`` isomorphic
  sequences with ``ℓ - log ℓ - i + 1`` prefix phases ``σ^0 … σ^{ℓ-logℓ-i}``.
* Phase ``σ^j`` is ``γ`` cycles over the same ``k-1`` repeater pages with
  every ``n_j = p/2^j``-th request replaced by a fresh polluter: pollution
  doubles phase over phase, calibrated so a greedily-green allocator can
  never justify a big box (the big box's impact exceeds ``c`` times the
  minimal-box cost) — while an allocator *willing to waste impact* can
  blast through each prefix with the full cache almost hit-free.

Lemma 8's OPT: run the prefixes one at a time with the full cache, then run
every suffix in parallel with one page each; total
``O(α·s·k²·log log p)``.  A greedily-green PAR is instead forced to serve
prefixes with minimal boxes, stretching execution to
``Ω(α·s·k²·log p)`` — the separation experiment E7 measures.

Scaling knobs: ``alpha`` multiplies the paper's ``γ = 2kα`` (laptop-sized
instances need ``α < 1``); the theorem wants ``s > c·k`` — use
:meth:`AdversarialInstance.recommended_miss_cost`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .trace import ParallelWorkload

__all__ = ["AdversarialInstance", "build_adversarial_instance", "lemma8_opt_makespan"]


@dataclass(frozen=True)
class AdversarialInstance:
    """A fully built Theorem 4 instance plus its structural metadata.

    Attributes
    ----------
    workload:
        The ``p`` disjoint request sequences.
    k:
        Cache size of the construction (lower-bound side; algorithms get
        ``c·k`` per the theorem).
    ell:
        The ``ℓ`` parameter (``p = 2^(ℓ+1) - 1``).
    gamma:
        Cycles per phase (``≈ 2kα``).
    prefix_lengths:
        Per-processor request count of the prefix part (0 for suffix-only).
    family_of:
        Per-processor family index (-1 for suffix-only sequences).
    phase_pollution_periods:
        ``n_j`` per prefix-phase index ``j``.
    suffix_phases:
        Number of suffix phases (``4·log₂ ℓ``, min 1).
    """

    workload: ParallelWorkload
    k: int
    ell: int
    gamma: int
    prefix_lengths: Tuple[int, ...]
    family_of: Tuple[int, ...]
    phase_pollution_periods: Tuple[int, ...]
    suffix_phases: int

    @property
    def p(self) -> int:
        return self.workload.p

    def recommended_miss_cost(self, c: int = 1) -> int:
        """A miss cost satisfying the theorem's ``s > c·k`` requirement."""
        return c * self.k + 1


def build_adversarial_instance(
    ell: int,
    alpha: float = 1.0,
    a: int = 1,
    min_gamma: int = 2,
    suffix_phase_multiplier: int = 4,
) -> AdversarialInstance:
    """Construct the §4 instance for ``p = 2^(ℓ+1) - 1`` sequences.

    Parameters
    ----------
    ell:
        Size exponent (``ℓ >= 2``); ``p = 2^(ℓ+1) - 1``.
    alpha:
        The paper's ``α``; ``γ = max(min_gamma, round(2kα))``.  Scale below
        1 to keep laptop instances tractable — the separation shape only
        needs every phase to be long enough for its pollution period.
    a:
        ``k = p·2^(a-1)`` rounded up to a power of two.
    suffix_phase_multiplier:
        Suffix phases = ``multiplier × log₂ ℓ``.  The paper uses 4, which
        makes the asymptotic separation ``≈ ℓ / (4·log ℓ)`` — below 1 for
        every ℓ reachable on a laptop (the constant only dies at
        astronomically large p).  Experiment E7 uses 1 so the *growth* of
        the separation with p — the actual claim, ``Θ(log p/log log p)`` —
        is visible at small scale; EXPERIMENTS.md documents the
        substitution.
    """
    if ell < 2:
        raise ValueError(f"need ell >= 2, got {ell}")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if suffix_phase_multiplier < 1:
        raise ValueError("suffix_phase_multiplier must be >= 1")
    p = (1 << (ell + 1)) - 1
    k_raw = p * (1 << (a - 1))
    k = 1 << (k_raw - 1).bit_length()  # round up to a power of two
    gamma = max(min_gamma, int(round(2 * k * alpha)))
    log_ell = max(1, int(round(math.log2(ell))))
    suffix_phases = suffix_phase_multiplier * log_ell
    phase_len = gamma * (k - 1)
    n_prefix_phase_kinds = ell - log_ell + 1  # σ^0 .. σ^{ℓ - log ℓ}
    pollution_periods = tuple(
        max(2, p // (1 << j)) for j in range(n_prefix_phase_kinds)
    )

    sequences: List[np.ndarray] = []
    prefix_lengths: List[int] = []
    family_of: List[int] = []

    def build_sequence(n_prefix_phases: int) -> Tuple[np.ndarray, int]:
        """One sequence: ``n_prefix_phases`` polluted-cycle phases then the
        suffix scan.  Local page ids: repeaters 0..k-2; polluters from k."""
        parts: List[np.ndarray] = []
        next_polluter = k  # local id space
        repeaters = np.arange(k - 1, dtype=np.int64)
        for j in range(n_prefix_phases):
            n_j = pollution_periods[j]
            reps = -(-phase_len // (k - 1))
            phase = np.tile(repeaters, reps)[:phase_len].copy()
            idx = np.arange(n_j - 1, phase_len, n_j, dtype=np.int64)
            phase[idx] = next_polluter + np.arange(len(idx), dtype=np.int64)
            next_polluter += len(idx)
            parts.append(phase)
        prefix_len = phase_len * n_prefix_phases
        suffix = next_polluter + np.arange(suffix_phases * phase_len, dtype=np.int64)
        parts.append(suffix)
        return np.concatenate(parts), prefix_len

    # families F_i: 2^i sequences with (ℓ - log ℓ - i + 1) prefix phases
    n_families = ell - log_ell + 1
    for i in range(n_families):
        phases_in_family = ell - log_ell - i + 1
        for _ in range(1 << i):
            if len(sequences) >= p:
                break
            seq, plen = build_sequence(phases_in_family)
            sequences.append(seq)
            prefix_lengths.append(plen)
            family_of.append(i)
    # remaining sequences are suffix-only
    while len(sequences) < p:
        seq, plen = build_sequence(0)
        sequences.append(seq)
        prefix_lengths.append(plen)
        family_of.append(-1)

    workload = ParallelWorkload.from_local(
        sequences,
        name=f"adversarial[ell={ell},alpha={alpha}]",
        meta={"ell": ell, "alpha": alpha, "a": a, "k": k, "gamma": gamma},
    )
    return AdversarialInstance(
        workload=workload,
        k=k,
        ell=ell,
        gamma=gamma,
        prefix_lengths=tuple(prefix_lengths),
        family_of=tuple(family_of),
        phase_pollution_periods=pollution_periods,
        suffix_phases=suffix_phases,
    )


def lemma8_opt_makespan(instance: AdversarialInstance, miss_cost: int) -> int:
    """Makespan of Lemma 8's explicit OPT schedule (an upper bound on OPT).

    Stage 1 — prefixes, one sequence at a time, full cache ``k``, LRU:
    charged at actual service time (hits + s·faults), simulated exactly.
    Stage 2 — all suffixes in parallel, one page per processor: every
    suffix request misses, so the stage lasts ``s × (longest suffix)``.

    Stage 2 requires ``k >= p`` (every processor needs a page), which the
    construction guarantees.
    """
    from ..paging.lru import LRUCache

    s = int(miss_cost)
    if instance.k < instance.p:
        raise ValueError("construction violated k >= p; cannot run suffixes in parallel")
    stage1 = 0
    for i, seq in enumerate(instance.workload.sequences):
        plen = instance.prefix_lengths[i]
        if plen == 0:
            continue
        cache = LRUCache(instance.k)
        hits = 0
        prefix = seq[:plen]
        for page in prefix:
            if cache.touch(int(page)):
                hits += 1
        stage1 += hits + s * (plen - hits)
    longest_suffix = max(
        len(seq) - plen for seq, plen in zip(instance.workload.sequences, instance.prefix_lengths)
    )
    stage2 = s * longest_suffix
    return stage1 + stage2
