"""Workload generation: synthetic patterns, parallel instances, adversarial §4 construction."""

from .adversarial import AdversarialInstance, build_adversarial_instance, lemma8_opt_makespan
from .families import (
    FAMILY_REGISTRY,
    BuiltCandidate,
    ParamSpec,
    WorkloadFamily,
    build_candidate,
    family_names,
    get_family,
)
from .formats import read_address_trace, read_sequence_text, read_trace_text, write_sequence_text, write_trace_text
from .generators import (
    WORKLOAD_KINDS,
    cyclic,
    make_parallel_workload,
    make_shared_workload,
    mixed_locality,
    multiscale_cycles,
    phased_working_sets,
    polluted_cycle,
    sawtooth,
    scan,
    uniform,
    zipf,
)
from .stats import SequenceStats, characterize, marginal_benefit, pollution_level, working_set_sizes
from .trace import PAGE_STRIDE, ParallelWorkload, disjointify

__all__ = [
    "AdversarialInstance",
    "build_adversarial_instance",
    "lemma8_opt_makespan",
    "FAMILY_REGISTRY",
    "BuiltCandidate",
    "ParamSpec",
    "WorkloadFamily",
    "build_candidate",
    "family_names",
    "get_family",
    "WORKLOAD_KINDS",
    "cyclic",
    "make_parallel_workload",
    "make_shared_workload",
    "mixed_locality",
    "multiscale_cycles",
    "phased_working_sets",
    "polluted_cycle",
    "sawtooth",
    "scan",
    "uniform",
    "zipf",
    "SequenceStats",
    "characterize",
    "marginal_benefit",
    "pollution_level",
    "working_set_sizes",
    "read_address_trace",
    "read_sequence_text",
    "read_trace_text",
    "write_sequence_text",
    "write_trace_text",
    "PAGE_STRIDE",
    "ParallelWorkload",
    "disjointify",
]
