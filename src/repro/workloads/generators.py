"""Synthetic request-sequence generators.

These are the building blocks of every experiment: the paper's own lower
bound (§4) is assembled from exactly two access patterns — *repeaters*
(cyclic reuse) and *polluters* (use-once streams) — which it notes "are
common access patterns, and not at all pathological".  We provide those,
plus standard locality models (Zipf, phased working sets, sawtooth scans)
used to exercise the algorithms on non-adversarial inputs.

All generators emit **processor-local** page ids starting at 0; assemble
parallel instances with :func:`repro.workloads.trace.ParallelWorkload.from_local`
or the :func:`make_parallel_workload` convenience, which relabel to
globally disjoint ids.

Every stochastic generator takes an explicit ``numpy.random.Generator`` —
no hidden global state, per the reproducibility policy in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .trace import ParallelWorkload

__all__ = [
    "cyclic",
    "scan",
    "polluted_cycle",
    "zipf",
    "uniform",
    "sawtooth",
    "phased_working_sets",
    "mixed_locality",
    "make_parallel_workload",
    "WORKLOAD_KINDS",
]


def cyclic(n_requests: int, cycle_len: int) -> np.ndarray:
    """Pure repeaters: ``0,1,…,cycle_len-1`` repeated (cache-friendly once
    the cycle fits; thrashes LRU when it is one page too big)."""
    if cycle_len < 1:
        raise ValueError("cycle_len must be >= 1")
    reps = -(-n_requests // cycle_len)
    return np.tile(np.arange(cycle_len, dtype=np.int64), reps)[:n_requests]


def scan(n_requests: int, start_page: int = 0) -> np.ndarray:
    """Pure polluters: every page requested exactly once (no cache helps)."""
    return np.arange(start_page, start_page + n_requests, dtype=np.int64)


def polluted_cycle(
    n_requests: int,
    cycle_len: int,
    pollution_period: int,
    polluter_start: Optional[int] = None,
) -> np.ndarray:
    """The paper's prefix phase ``σ^j``: cycle over ``cycle_len`` repeaters,
    with every ``pollution_period``-th request replaced by a fresh polluter.

    Pollution level = ``1/pollution_period``; §4 doubles it phase by phase
    to keep the green algorithm pinned to minimum-size boxes.

    Parameters
    ----------
    polluter_start:
        First polluter page id; defaults to ``cycle_len`` (just above the
        repeater ids) and increments per polluter.
    """
    if cycle_len < 1 or pollution_period < 1:
        raise ValueError("cycle_len and pollution_period must be >= 1")
    out = cyclic(n_requests, cycle_len)
    polluter = cycle_len if polluter_start is None else int(polluter_start)
    # positions pollution_period-1, 2*pollution_period-1, ... get polluters
    idx = np.arange(pollution_period - 1, n_requests, pollution_period, dtype=np.int64)
    out[idx] = polluter + np.arange(len(idx), dtype=np.int64)
    return out


def zipf(n_requests: int, n_pages: int, alpha: float, rng: np.random.Generator) -> np.ndarray:
    """Zipfian page popularity: page ``r`` drawn with weight ``(r+1)^-alpha``.

    The classic skewed-popularity model; with moderate ``alpha`` the miss
    ratio curve decays smoothly, giving the non-trivial marginal-benefit
    structure the paper's introduction discusses.
    """
    if n_pages < 1:
        raise ValueError("n_pages must be >= 1")
    weights = (np.arange(1, n_pages + 1, dtype=np.float64)) ** (-float(alpha))
    probs = weights / weights.sum()
    return rng.choice(n_pages, size=n_requests, p=probs).astype(np.int64)


def uniform(n_requests: int, n_pages: int, rng: np.random.Generator) -> np.ndarray:
    """Uniformly random requests over ``n_pages`` pages (locality-free)."""
    if n_pages < 1:
        raise ValueError("n_pages must be >= 1")
    return rng.integers(0, n_pages, size=n_requests, dtype=np.int64)


def sawtooth(n_requests: int, width: int) -> np.ndarray:
    """Sweep ``0..width-1`` then back down — the classic LRU-adversarial
    pattern whose stack distances concentrate just above the turning width."""
    if width < 2:
        raise ValueError("width must be >= 2")
    tooth = np.concatenate(
        [np.arange(width, dtype=np.int64), np.arange(width - 2, 0, -1, dtype=np.int64)]
    )
    reps = -(-n_requests // len(tooth))
    return np.tile(tooth, reps)[:n_requests]


def phased_working_sets(
    n_phases: int,
    phase_len: int,
    working_set: int,
    rng: np.random.Generator,
    overlap: float = 0.0,
) -> np.ndarray:
    """Working-set phases: each phase cycles over its own page set.

    ``overlap`` in [0,1) carries that fraction of pages between adjacent
    phases.  This produces exactly the "marginal benefit fluctuates
    unpredictably over time" behaviour the introduction motivates: the
    useful cache size jumps at phase boundaries.
    """
    if not (0.0 <= overlap < 1.0):
        raise ValueError("overlap must be in [0, 1)")
    if working_set < 1:
        raise ValueError("working_set must be >= 1")
    carried = int(overlap * working_set)
    pages = np.arange(working_set, dtype=np.int64)
    out: List[np.ndarray] = []
    next_fresh = working_set
    for _ in range(n_phases):
        order = pages[rng.permutation(working_set)]
        reps = -(-phase_len // working_set)
        out.append(np.tile(order, reps)[:phase_len])
        keep = pages[rng.permutation(working_set)[:carried]] if carried else np.empty(0, dtype=np.int64)
        fresh = np.arange(next_fresh, next_fresh + working_set - carried, dtype=np.int64)
        next_fresh += working_set - carried
        pages = np.concatenate([keep, fresh])
    return np.concatenate(out) if out else np.empty(0, dtype=np.int64)


def mixed_locality(
    n_requests: int,
    rng: np.random.Generator,
    hot_pages: int = 16,
    cold_pages: int = 4096,
    hot_fraction: float = 0.8,
) -> np.ndarray:
    """80/20-style mix: most requests to a small hot set, the rest scattered."""
    hot = rng.integers(0, hot_pages, size=n_requests, dtype=np.int64)
    cold = rng.integers(hot_pages, hot_pages + cold_pages, size=n_requests, dtype=np.int64)
    mask = rng.random(n_requests) < hot_fraction
    return np.where(mask, hot, cold)


def multiscale_cycles(
    n_requests: int,
    k: int,
    p: int,
    rng: np.random.Generator,
    passes_per_phase: int = 6,
) -> np.ndarray:
    """Phases of cycles whose working set sweeps every box-height scale.

    Phase ``i`` cycles over ``(k/p)·2^i / 2`` pages (half a lattice height,
    so a box of that height fits the cycle with room to warm up), repeated
    ``passes_per_phase`` times, with scales visited in a random order and
    fresh pages each phase.  This is the workload for which the paper's
    height lattice genuinely matters: the optimal box height changes phase
    by phase, so any algorithm stuck at one height pays at some scale.
    """
    if k < p or p < 1:
        raise ValueError("need k >= p >= 1")
    base = max(1, k // p)
    scales = []
    c = max(1, base // 2)
    while c <= k // 2:
        scales.append(c)
        c *= 2
    if not scales:
        scales = [1]
    out: List[np.ndarray] = []
    next_page = 0
    total = 0
    while total < n_requests:
        for i in rng.permutation(len(scales)):
            cyc = int(scales[i])
            phase_len = cyc * passes_per_phase
            pages = np.arange(next_page, next_page + cyc, dtype=np.int64)
            next_page += cyc
            out.append(np.tile(pages, passes_per_phase))
            total += phase_len
            if total >= n_requests:
                break
    return np.concatenate(out)[:n_requests]


def make_shared_workload(
    p: int,
    n_requests: int,
    shared_pages: int,
    private_pages: int,
    shared_fraction: float,
    rng: np.random.Generator,
) -> ParallelWorkload:
    """A workload where processors *share* a common hot set (future work).

    Every processor draws ``shared_fraction`` of its requests from one
    common pool of ``shared_pages`` pages (Zipf-skewed) and the rest from
    a private uniform pool — the "processors share pages" model the
    paper's conclusion poses as an open problem.  Sharing-oblivious
    schemes (static partitions, per-processor boxes) duplicate the hot
    set p times; a globally shared cache stores it once, which is the
    advantage experiment E10 quantifies.
    """
    if not (0.0 <= shared_fraction <= 1.0):
        raise ValueError("shared_fraction must be in [0, 1]")
    if shared_pages < 1 or private_pages < 1:
        raise ValueError("page pools must be >= 1")
    weights = (np.arange(1, shared_pages + 1, dtype=np.float64)) ** (-1.0)
    probs = weights / weights.sum()
    sequences = []
    for i in range(p):
        shared = rng.choice(shared_pages, size=n_requests, p=probs).astype(np.int64)
        lo = shared_pages + i * private_pages
        private = rng.integers(lo, lo + private_pages, size=n_requests, dtype=np.int64)
        mask = rng.random(n_requests) < shared_fraction
        sequences.append(np.where(mask, shared, private))
    return ParallelWorkload(
        sequences=sequences,
        name=f"shared[p={p},frac={shared_fraction}]",
        meta={
            "shared_pages": shared_pages,
            "private_pages": private_pages,
            "shared_fraction": shared_fraction,
        },
        allow_shared=True,
    )


#: Per-processor generator menu used by :func:`make_parallel_workload`.
WORKLOAD_KINDS = (
    "cyclic",
    "scan",
    "polluted_cycle",
    "zipf",
    "uniform",
    "sawtooth",
    "phased",
    "mixed",
    "multiscale",
    "bigcycle",
)


def make_parallel_workload(
    p: int,
    n_requests: int,
    k: int,
    rng: np.random.Generator,
    kind: str = "mixed_kinds",
    name: Optional[str] = None,
) -> ParallelWorkload:
    """Assemble a disjoint ``p``-processor workload.

    ``kind``:

    * a single generator name from :data:`WORKLOAD_KINDS` — every processor
      gets an (independently randomized) instance of that pattern, sized
      relative to the cache ``k`` so cache pressure is non-trivial;
    * ``"mixed_kinds"`` — processors round-robin through the menu, the
      heterogeneous default used by the makespan experiments (different
      processors *should* want different cache).
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    kinds = list(WORKLOAD_KINDS) if kind == "mixed_kinds" else [kind]
    locals_: List[np.ndarray] = []
    for i in range(p):
        kd = kinds[i % len(kinds)]
        if kd == "cyclic":
            # cycle sized between k/p and k so box height genuinely matters
            # (lo is clamped below k so the range stays non-empty at p=1)
            lo = max(2, min(k // p, k - 1))
            cl = max(2, int(rng.integers(lo, max(lo + 1, k))))
            locals_.append(cyclic(n_requests, cl))
        elif kd == "scan":
            locals_.append(scan(n_requests))
        elif kd == "polluted_cycle":
            cl = max(2, k - 1)
            period = int(rng.integers(2, max(3, p + 1)))
            locals_.append(polluted_cycle(n_requests, cl, period))
        elif kd == "zipf":
            locals_.append(zipf(n_requests, max(2, 4 * k), 1.1, rng))
        elif kd == "uniform":
            locals_.append(uniform(n_requests, max(2, 2 * k), rng))
        elif kd == "sawtooth":
            lo = max(2, min(k // p, k - 1))
            locals_.append(sawtooth(n_requests, max(2, int(rng.integers(lo, max(lo + 1, k))))))
        elif kd == "phased":
            ws = max(1, k // 2)
            phase_len = max(1, n_requests // 8)
            n_ph = -(-n_requests // phase_len)
            locals_.append(phased_working_sets(n_ph, phase_len, ws, rng)[:n_requests])
        elif kd == "mixed":
            locals_.append(mixed_locality(n_requests, rng, hot_pages=max(2, k // 4), cold_pages=4 * k))
        elif kd == "multiscale":
            locals_.append(multiscale_cycles(n_requests, k, p, rng))
        elif kd == "bigcycle":
            # working set k/2 per processor — individually cache-friendly,
            # collectively p/2 times oversubscribed: a static k/p split
            # thrashes everyone, while time-multiplexed full-height boxes
            # serve each processor at hit speed for s ≫ p
            cl = max(2, k // 2)
            phase = int(rng.integers(0, cl))
            locals_.append(np.roll(cyclic(n_requests, cl), -phase))
        else:
            raise ValueError(f"unknown workload kind {kd!r}")
    return ParallelWorkload.from_local(
        locals_,
        name=name or f"{kind}[p={p},n={n_requests},k={k}]",
        meta={"kind": kind, "p": p, "n_requests": n_requests, "k": k},
    )
