"""Workload container for parallel-paging instances.

A :class:`ParallelWorkload` is the input to every parallel experiment: one
request sequence per processor, **disjoint** across processors (the paper's
standing assumption — each processor runs a distinct program with no shared
pages).  The container enforces disjointness at construction, provides
page-relabeling helpers so generators can be written processor-locally, and
(de)serializes to ``.npz`` for reproducible experiment inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ParallelWorkload", "disjointify", "PAGE_STRIDE"]

#: Relabeling stride: processor ``i``'s local page ``x`` becomes
#: ``i * PAGE_STRIDE + x``.  2**40 local pages per processor is far beyond
#: any sequence we generate, and int64 holds 2**23 processors' worth.
PAGE_STRIDE = 1 << 40


def disjointify(sequences: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Relabel per-processor local page ids into globally disjoint ids."""
    out: List[np.ndarray] = []
    for i, seq in enumerate(sequences):
        arr = np.asarray(seq, dtype=np.int64)
        if len(arr) and (arr.min() < 0 or arr.max() >= PAGE_STRIDE):
            raise ValueError(f"sequence {i}: local page ids must lie in [0, {PAGE_STRIDE})")
        out.append(arr + np.int64(i) * np.int64(PAGE_STRIDE))
    return out


@dataclass
class ParallelWorkload:
    """``p`` request sequences plus experiment metadata.

    Sequences are **disjoint** by default — the paper's standing
    assumption, enforced at construction.  ``allow_shared=True`` opts out
    for the *shared pages* model the paper's conclusion lists as future
    work; the paper's box algorithms still run on such workloads (each
    treats its own sequence independently) but their theoretical
    guarantees do not apply, and sharing-aware baselines (GLOBAL-LRU) can
    exploit the overlap.  Experiment E10 probes exactly this.

    Attributes
    ----------
    sequences:
        One int64 array per processor.
    name:
        Human-readable workload identifier (appears in reports).
    meta:
        Free-form generator parameters, recorded for reproducibility.
    allow_shared:
        Skip the disjointness check (future-work model).
    """

    sequences: List[np.ndarray]
    name: str = "unnamed"
    meta: Dict[str, object] = field(default_factory=dict)
    allow_shared: bool = False

    def __post_init__(self) -> None:
        self.sequences = [np.ascontiguousarray(s, dtype=np.int64) for s in self.sequences]
        if not self.allow_shared:
            self._check_disjoint()

    @property
    def is_shared(self) -> bool:
        """True iff any page appears in more than one sequence."""
        seen: set = set()
        for seq in self.sequences:
            pages = set(np.unique(seq).tolist())
            if seen & pages:
                return True
            seen |= pages
        return False

    def _check_disjoint(self) -> None:
        seen: Dict[int, int] = {}
        for i, seq in enumerate(self.sequences):
            for page in np.unique(seq):
                owner = seen.get(int(page))
                if owner is not None and owner != i:
                    raise ValueError(
                        f"workload {self.name!r}: page {int(page)} appears in sequences {owner} and {i}"
                    )
                seen[int(page)] = i

    # ------------------------------------------------------------------ #
    # shape
    # ------------------------------------------------------------------ #
    @property
    def p(self) -> int:
        """Number of processors."""
        return len(self.sequences)

    @property
    def lengths(self) -> Tuple[int, ...]:
        return tuple(len(s) for s in self.sequences)

    @property
    def total_requests(self) -> int:
        return sum(self.lengths)

    def distinct_pages(self, proc: int) -> int:
        """Number of distinct pages processor ``proc`` touches."""
        return int(len(np.unique(self.sequences[proc])))

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.sequences)

    def __getitem__(self, i: int) -> np.ndarray:
        return self.sequences[i]

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        ls = self.lengths
        return (
            f"{self.name}: p={self.p}, requests={self.total_requests}, "
            f"len[min/med/max]={min(ls)}/{sorted(ls)[len(ls) // 2]}/{max(ls)}"
        )

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> None:
        """Serialize to ``.npz`` (sequences + name + meta repr)."""
        arrays = {f"seq_{i}": s for i, s in enumerate(self.sequences)}
        np.savez_compressed(
            Path(path),
            _name=np.array(self.name),
            _meta=np.array(repr(self.meta)),
            _p=np.array(self.p),
            _allow_shared=np.array(self.allow_shared),
            **arrays,
        )

    @classmethod
    def load(cls, path: str | Path) -> "ParallelWorkload":
        """Load a workload previously written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as data:
            p = int(data["_p"])
            sequences = [data[f"seq_{i}"] for i in range(p)]
            name = str(data["_name"])
            # files written before the shared-pages model default to disjoint
            allow_shared = bool(data["_allow_shared"]) if "_allow_shared" in data else False
            import ast

            meta = ast.literal_eval(str(data["_meta"]))
        return cls(sequences=sequences, name=name, meta=meta, allow_shared=allow_shared)

    @classmethod
    def from_local(
        cls,
        local_sequences: Sequence[np.ndarray],
        name: str = "unnamed",
        meta: Optional[Mapping[str, object]] = None,
    ) -> "ParallelWorkload":
        """Build a workload from processor-local page ids (auto-disjointify)."""
        return cls(sequences=disjointify(local_sequences), name=name, meta=dict(meta or {}))
