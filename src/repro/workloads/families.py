"""Parameterized workload families: the adversary search's search space.

A :class:`WorkloadFamily` is a named, bounded parameter space plus a
deterministic builder — ``(config, workload_seed) -> BuiltCandidate`` —
so a candidate is fully identified by plain scalars and can be hashed
into work-unit cache keys, journaled, and rebuilt byte-identically on
any machine.  The registered families cover the structured instance
classes the lower-bound literature tunes adversarially:

``adversarial``
    The §4 / Theorem 4 construction itself (:mod:`.adversarial`), with
    its scaling knobs (``ell``, ``alpha``, ``suffix_mult``) exposed.
    The hand-built E7 instances are points of this family, so the
    search starts from them and climbs.
``polluted-cycles``
    Repeaters + polluters — the paper's two primitive patterns — with
    tunable cycle length, pollution period, and miss cost.
``random-order``
    Working-set phases served in (seeded) random order, after the
    random-order scheduling model of Albers–Janke.
``biased-random``
    Zipf-biased random requests with a tunable skew and page-pool size,
    after Young's adversarially biased random inputs.
``multiscale``
    Cycles sweeping every box-height scale (the lattice stressor).
``parallel-schedules``
    The Albers–Hellwig makespan-minimization adversary translated to
    paging: every processor streams a prefix of small jobs (short
    working-set bursts over fresh pages) and then one large tail job
    whose weight grows geometrically across processors.  Any allocation
    balanced for the prefix is wrong for the tail, so makespan-optimal
    cache scheduling must hold capacity in reserve — the same tension
    their parallel-schedules model exploits against greedy assignment.

Parameter bounds carry a ``quick`` override so CI-sized hunts stay
tractable; every stochastic builder derives its randomness from the
explicit ``workload_seed`` — no hidden state, per DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from .generators import (
    cyclic,
    multiscale_cycles,
    phased_working_sets,
    polluted_cycle,
    zipf,
)
from .trace import ParallelWorkload

__all__ = [
    "ParamSpec",
    "BuiltCandidate",
    "WorkloadFamily",
    "FAMILY_REGISTRY",
    "family_names",
    "get_family",
    "build_candidate",
]


def _round_float(v: float) -> float:
    """Canonical float form: 6 significant digits, JSON-roundtrip stable."""
    return float(f"{float(v):.6g}")


@dataclass(frozen=True)
class ParamSpec:
    """One bounded search dimension (int or float, optionally log-scaled).

    ``quick_low``/``quick_high`` shrink the range on the ``quick`` scale
    so CI hunts never build instances too large to evaluate in seconds.
    """

    name: str
    kind: str  # "int" | "float"
    low: float
    high: float
    log: bool = False
    quick_low: Optional[float] = None
    quick_high: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("int", "float"):
            raise ValueError(f"param kind must be 'int' or 'float', got {self.kind!r}")
        if self.low > self.high:
            raise ValueError(f"{self.name}: low {self.low} > high {self.high}")
        if self.log and self.low <= 0:
            raise ValueError(f"{self.name}: log-scaled params need low > 0")

    def bounds(self, scale: str) -> Tuple[float, float]:
        """Effective (low, high) for ``scale`` (quick overrides, clipped)."""
        lo, hi = self.low, self.high
        if scale == "quick":
            lo = self.quick_low if self.quick_low is not None else lo
            hi = self.quick_high if self.quick_high is not None else hi
        return lo, hi

    def clip(self, value: Any, scale: str) -> Any:
        """Clamp into bounds and canonicalize the numeric type."""
        lo, hi = self.bounds(scale)
        v = min(max(float(value), lo), hi)
        return int(round(v)) if self.kind == "int" else _round_float(v)

    def sample(self, rng: np.random.Generator, scale: str) -> Any:
        """Draw uniformly (in log space when ``log``) inside the bounds."""
        lo, hi = self.bounds(scale)
        if self.kind == "int":
            return int(rng.integers(int(lo), int(hi) + 1))
        if self.log:
            return _round_float(math.exp(rng.uniform(math.log(lo), math.log(hi))))
        return _round_float(rng.uniform(lo, hi))

    def mutate(self, value: Any, rng: np.random.Generator, scale: str) -> Any:
        """A local random step from ``value``, clipped back into bounds."""
        lo, hi = self.bounds(scale)
        if self.kind == "int":
            step = int(rng.integers(1, 3)) * (1 if rng.random() < 0.5 else -1)
            return self.clip(int(value) + step, scale)
        if self.log:
            return self.clip(float(value) * math.exp(rng.normal(0.0, 0.35)), scale)
        return self.clip(float(value) + rng.normal(0.0, 0.15 * (hi - lo)), scale)

    def neighbors(self, value: Any, scale: str) -> Tuple[Any, ...]:
        """Deterministic up/down probes for the coordinate-descent refiner."""
        if self.kind == "int":
            cands = (self.clip(int(value) - 1, scale), self.clip(int(value) + 1, scale))
        elif self.log:
            cands = (self.clip(float(value) / 1.3, scale), self.clip(float(value) * 1.3, scale))
        else:
            lo, hi = self.bounds(scale)
            step = 0.12 * (hi - lo)
            cands = (self.clip(float(value) - step, scale), self.clip(float(value) + step, scale))
        return tuple(c for c in cands if c != value)


@dataclass(frozen=True)
class BuiltCandidate:
    """A realized candidate: the workload plus its evaluation geometry.

    ``k`` is the construction's cache size (the lower-bound side — the
    algorithms get ``xi * k``), ``miss_cost`` its fault cost ``s``, and
    ``green_p`` a lattice-compatible processor count (largest power of
    two ``<= p``) for the green-paging objective.
    """

    workload: ParallelWorkload
    k: int
    miss_cost: int
    green_p: int


@dataclass(frozen=True)
class WorkloadFamily:
    """A named parameter space plus its deterministic builder."""

    name: str
    params: Tuple[ParamSpec, ...]
    builder: Callable[[Mapping[str, Any], int], BuiltCandidate]
    description: str = ""

    def spec(self, name: str) -> ParamSpec:
        """The `ParamSpec` named ``name`` (KeyError if unknown)."""
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"family {self.name!r} has no parameter {name!r}")

    def default_config(self, scale: str = "quick") -> Dict[str, Any]:
        """Mid-range starting point (geometric midpoint for log params)."""
        cfg: Dict[str, Any] = {}
        for p in self.params:
            lo, hi = p.bounds(scale)
            mid = math.sqrt(lo * hi) if p.log else (lo + hi) / 2.0
            cfg[p.name] = p.clip(mid, scale)
        return cfg

    def clip_config(self, config: Mapping[str, Any], scale: str) -> Dict[str, Any]:
        """Canonical, in-bounds form of ``config`` (unknown keys rejected)."""
        known = {p.name for p in self.params}
        unknown = set(config) - known
        if unknown:
            raise KeyError(f"family {self.name!r}: unknown params {sorted(unknown)}")
        out = {}
        for p in self.params:
            if p.name not in config:
                raise KeyError(f"family {self.name!r}: missing param {p.name!r}")
            out[p.name] = p.clip(config[p.name], scale)
        return out

    def build(self, config: Mapping[str, Any], workload_seed: int = 0) -> BuiltCandidate:
        """Realize the candidate (deterministic in ``config`` + seed)."""
        return self.builder(config, int(workload_seed))


def _pow2_at_most(n: int) -> int:
    return 1 << max(0, int(n).bit_length() - 1)


def _family_rng(workload_seed: int, salt: int) -> np.random.Generator:
    """Builder randomness: explicit seed material, family-salted."""
    return np.random.default_rng(np.random.SeedSequence(entropy=workload_seed, spawn_key=(salt,)))


def _build_adversarial(config: Mapping[str, Any], workload_seed: int) -> BuiltCandidate:
    from .adversarial import build_adversarial_instance

    inst = build_adversarial_instance(
        ell=int(config["ell"]),
        alpha=float(config["alpha"]),
        suffix_phase_multiplier=int(config["suffix_mult"]),
    )
    return BuiltCandidate(
        workload=inst.workload,
        k=inst.k,
        miss_cost=inst.recommended_miss_cost(),
        green_p=_pow2_at_most(inst.p),
    )


def _geometry(config: Mapping[str, Any]) -> Tuple[int, int, int, int]:
    """Shared p/k/s/n decoding for the generator-backed families."""
    p = 1 << int(config["p_exp"])
    k = p << int(config["k_exp"])
    s = max(2, int(round(float(config["s_factor"]) * k)))
    n = int(config["length"])
    return p, k, s, n


def _build_polluted(config: Mapping[str, Any], workload_seed: int) -> BuiltCandidate:
    p, k, s, n = _geometry(config)
    cycle_len = max(2, int(round(float(config["cycle_frac"]) * k)))
    period = max(2, int(config["period"]))
    rng = _family_rng(workload_seed, 1)
    locals_ = []
    for i in range(p):
        # jitter the cycle length per processor so allocations must differ
        jitter = int(rng.integers(0, max(1, cycle_len // 4) + 1))
        locals_.append(polluted_cycle(n, cycle_len + jitter, period))
    workload = ParallelWorkload.from_local(
        locals_,
        name=f"polluted-cycles[p={p},k={k}]",
        meta={"family": "polluted-cycles"},
    )
    return BuiltCandidate(workload=workload, k=k, miss_cost=s, green_p=p)


def _build_random_order(config: Mapping[str, Any], workload_seed: int) -> BuiltCandidate:
    p, k, s, n = _geometry(config)
    ws = max(2, int(round(float(config["ws_frac"]) * k)))
    n_phases = max(1, int(config["phases"]))
    overlap = float(config["overlap"])
    rng = _family_rng(workload_seed, 2)
    phase_len = max(1, n // n_phases)
    locals_ = [
        phased_working_sets(n_phases, phase_len, ws, rng, overlap=overlap)[:n] for _ in range(p)
    ]
    workload = ParallelWorkload.from_local(
        locals_,
        name=f"random-order[p={p},k={k}]",
        meta={"family": "random-order"},
    )
    return BuiltCandidate(workload=workload, k=k, miss_cost=s, green_p=p)


def _build_biased_random(config: Mapping[str, Any], workload_seed: int) -> BuiltCandidate:
    p, k, s, n = _geometry(config)
    n_pages = max(2, int(round(float(config["pages_frac"]) * k)))
    rng = _family_rng(workload_seed, 3)
    locals_ = [zipf(n, n_pages, float(config["zipf_alpha"]), rng) for _ in range(p)]
    workload = ParallelWorkload.from_local(
        locals_,
        name=f"biased-random[p={p},k={k}]",
        meta={"family": "biased-random"},
    )
    return BuiltCandidate(workload=workload, k=k, miss_cost=s, green_p=p)


def _build_multiscale(config: Mapping[str, Any], workload_seed: int) -> BuiltCandidate:
    p, k, s, n = _geometry(config)
    rng = _family_rng(workload_seed, 4)
    locals_ = [
        multiscale_cycles(n, k, p, rng, passes_per_phase=int(config["passes"])) for _ in range(p)
    ]
    workload = ParallelWorkload.from_local(
        locals_,
        name=f"multiscale[p={p},k={k}]",
        meta={"family": "multiscale"},
    )
    return BuiltCandidate(workload=workload, k=k, miss_cost=s, green_p=p)


def _build_parallel_schedules(config: Mapping[str, Any], workload_seed: int) -> BuiltCandidate:
    p, k, s, n = _geometry(config)
    rng = _family_rng(workload_seed, 5)
    small = max(2, int(round(float(config["small_frac"]) * k / p)))
    big = max(small + 1, int(round(float(config["big_frac"]) * k)))
    tail_frac = float(config["tail_frac"])
    imbalance = float(config["imbalance"])
    jobs = max(1, int(config["jobs"]))
    n_tail = max(1, int(round(tail_frac * n)))
    n_head = max(1, n - n_tail)
    job_len = max(small, n_head // jobs)
    locals_ = []
    for i in range(p):
        segments = []
        offset = 0
        # small-job prefix: each job is a short cyclic burst over a fresh
        # page range (jittered so processors desynchronize), mirroring the
        # stream of small jobs the Albers-Hellwig adversary opens with
        pos = 0
        while pos < n_head:
            ln = min(max(1, job_len + int(rng.integers(0, max(2, small)))), n_head - pos)
            segments.append(cyclic(ln, small) + offset)
            offset += small
            pos += ln
        # large tail job: working set of `big` pages, weight growing
        # geometrically with the processor index — balanced prefixes end
        # in imbalanced tails unless the scheduler anticipates them
        weight = imbalance ** (i / max(1, p - 1))
        segments.append(cyclic(max(1, int(round(n_tail * weight))), big) + offset)
        locals_.append(np.concatenate(segments))
    workload = ParallelWorkload.from_local(
        locals_,
        name=f"parallel-schedules[p={p},k={k}]",
        meta={"family": "parallel-schedules"},
    )
    return BuiltCandidate(workload=workload, k=k, miss_cost=s, green_p=p)


_GEOMETRY_PARAMS = (
    ParamSpec("p_exp", "int", 2, 4, quick_high=3),
    ParamSpec("k_exp", "int", 1, 3, quick_high=2),
    ParamSpec("s_factor", "float", 0.5, 4.0, log=True),
    ParamSpec("length", "int", 400, 8000, quick_high=1600),
)


#: name -> family.  Insertion order is the canonical iteration order.
FAMILY_REGISTRY: Dict[str, WorkloadFamily] = {
    f.name: f
    for f in (
        WorkloadFamily(
            name="adversarial",
            params=(
                ParamSpec("ell", "int", 2, 4, quick_high=3),
                ParamSpec("alpha", "float", 0.05, 1.0, log=True, quick_high=0.5),
                ParamSpec("suffix_mult", "int", 1, 4, quick_high=2),
            ),
            builder=_build_adversarial,
            description="The Theorem 4 lower-bound construction with its scaling knobs.",
        ),
        WorkloadFamily(
            name="polluted-cycles",
            params=_GEOMETRY_PARAMS
            + (
                ParamSpec("cycle_frac", "float", 0.25, 2.0),
                ParamSpec("period", "int", 2, 64, log=False, quick_high=32),
            ),
            builder=_build_polluted,
            description="Repeaters with tunable pollution (the paper's primitive patterns).",
        ),
        WorkloadFamily(
            name="random-order",
            params=_GEOMETRY_PARAMS
            + (
                ParamSpec("ws_frac", "float", 0.25, 1.5),
                ParamSpec("phases", "int", 2, 8),
                ParamSpec("overlap", "float", 0.0, 0.9),
            ),
            builder=_build_random_order,
            description="Working-set phases in seeded random order (Albers-Janke model).",
        ),
        WorkloadFamily(
            name="biased-random",
            params=_GEOMETRY_PARAMS
            + (
                ParamSpec("zipf_alpha", "float", 0.4, 2.0),
                ParamSpec("pages_frac", "float", 0.5, 8.0, log=True),
            ),
            builder=_build_biased_random,
            description="Zipf-biased random inputs with tunable skew (Young's model).",
        ),
        WorkloadFamily(
            name="multiscale",
            params=_GEOMETRY_PARAMS + (ParamSpec("passes", "int", 2, 10),),
            builder=_build_multiscale,
            description="Cycles sweeping every box-height scale (lattice stressor).",
        ),
        WorkloadFamily(
            name="parallel-schedules",
            params=_GEOMETRY_PARAMS
            + (
                ParamSpec("small_frac", "float", 0.1, 1.0),
                ParamSpec("big_frac", "float", 0.5, 2.0, quick_high=1.5),
                ParamSpec("tail_frac", "float", 0.1, 0.6),
                ParamSpec("imbalance", "float", 0.25, 4.0, log=True),
                ParamSpec("jobs", "int", 2, 16, quick_high=8),
            ),
            builder=_build_parallel_schedules,
            description="Small-job prefixes with imbalanced large tails (Albers-Hellwig makespan adversary).",
        ),
    )
}


def family_names() -> Tuple[str, ...]:
    """Registered family names in canonical order."""
    return tuple(FAMILY_REGISTRY)


def get_family(name: str) -> WorkloadFamily:
    """Look up a family; raises with the known names on a miss."""
    try:
        return FAMILY_REGISTRY[name]
    except KeyError:
        known = ", ".join(FAMILY_REGISTRY)
        raise KeyError(f"unknown workload family {name!r}; known: {known}") from None


def build_candidate(family: str, config: Mapping[str, Any], workload_seed: int = 0) -> BuiltCandidate:
    """Realize ``(family, config, workload_seed)`` — the search's atom."""
    return get_family(family).build(config, workload_seed)
