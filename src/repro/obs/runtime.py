"""Observability runtime: scoping, cross-process capture, and merging.

:func:`observability` is the one entry point: it scopes an enabled
:class:`~repro.obs.metrics.MetricsRegistry` and/or
:class:`~repro.obs.tracing.Tracer` as the ambient sinks, exports the
``REPRO_OBS_METRICS`` / ``REPRO_OBS_TRACE`` environment flags so process
pool workers started inside the scope capture too, and flushes the
requested output files on exit — even when the body raises, so an
interrupted run keeps its partial metrics (mirroring how
``execution(telemetry_jsonl=...)`` flushes telemetry).

The cross-process contract is deliberately simple: a worker (or the
serial in-process path — they share :func:`repro.exec.units.execute_unit`)
runs each unit under a *fresh* registry/tracer, and the resulting deltas
ride back to the parent **inside the unit's**
:class:`~repro.exec.units.CellOutcome`.  The engine merges each delta as
the unit completes (:func:`absorb_outcome`).  Because the outcome is what
the result cache stores, a cache hit replays the exact metrics and spans
recorded at compute time — which is why ``--jobs N``, serial, and
warm-cache runs all report identical ``sim.*`` metrics.

One caveat falls out of that design: outcomes cached by an obs-*disabled*
run carry no deltas, so a later obs-enabled run served from that cache
reports empty ``sim.*`` counters for those cells.  Use ``--no-cache`` (or
a fresh ``--cache-dir``) when an exact simulation profile matters.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional, Tuple

from . import metrics as _metrics
from . import tracing as _tracing
from .metrics import MetricsRegistry, diff_snapshots, snapshot_to_json
from .tracing import Tracer

__all__ = [
    "METRICS_ENV",
    "TRACE_ENV",
    "ObsScope",
    "absorb_outcome",
    "capture_requested",
    "observability",
    "render_metrics_delta",
    "reset_observability",
]

#: Environment flags that tell pool workers to capture unit deltas.
METRICS_ENV = "REPRO_OBS_METRICS"
TRACE_ENV = "REPRO_OBS_TRACE"


@dataclass
class ObsScope:
    """The pair of sinks an :func:`observability` scope installs."""

    metrics: MetricsRegistry
    tracer: Tracer

    def metrics_snapshot(self) -> Dict[str, object]:
        """Deterministic snapshot of everything collected so far."""
        return self.metrics.snapshot()


def capture_requested() -> Tuple[bool, bool]:
    """Should a unit execution capture (metrics, trace) deltas?

    True when the ambient sink is enabled (serial in-process execution
    under an :func:`observability` scope) *or* the corresponding
    environment flag is set (pool workers inherit the parent's
    environment at pool start-up).
    """
    return (
        _metrics.enabled() or bool(os.environ.get(METRICS_ENV)),
        _tracing.enabled() or bool(os.environ.get(TRACE_ENV)),
    )


def absorb_outcome(outcome: object) -> None:
    """Merge a unit outcome's obs deltas into the ambient sinks.

    Safe to call on any outcome: missing/empty deltas (old cache
    entries, obs-disabled capture) are no-ops.  Counter/histogram merge
    is commutative, so pooled completion order cannot change the result.
    """
    reg = _metrics.active()
    if reg.enabled:
        reg.merge(getattr(outcome, "metrics", None))
    tracer = _tracing.active()
    if tracer.enabled:
        events = getattr(outcome, "trace_events", None)
        if events:
            tracer.extend(events)


@contextmanager
def observability(
    metrics: bool = True,
    trace: bool = False,
    metrics_json: Optional[os.PathLike] = None,
    trace_json: Optional[os.PathLike] = None,
) -> Iterator[ObsScope]:
    """Scope ambient metrics/trace collection for everything inside.

    Parameters
    ----------
    metrics, trace:
        Which sinks to enable.  Passing an output path implies the
        corresponding sink.
    metrics_json:
        Write the final metrics snapshot here on exit (deterministic
        JSON; see :func:`repro.obs.metrics.snapshot_to_json`).
    trace_json:
        Write the collected trace events here on exit, in Chrome-trace
        format (load in ``chrome://tracing`` or Perfetto).

    Both files are written even when the body raises, so interrupted
    runs keep their partial observability output.
    """
    reg = MetricsRegistry(enabled=metrics or metrics_json is not None)
    tracer = Tracer(enabled=trace or trace_json is not None)
    old_env = {name: os.environ.get(name) for name in (METRICS_ENV, TRACE_ENV)}
    if reg.enabled:
        os.environ[METRICS_ENV] = "1"
    if tracer.enabled:
        os.environ[TRACE_ENV] = "1"
    _metrics._STACK.append(reg)
    _tracing._STACK.append(tracer)
    try:
        yield ObsScope(metrics=reg, tracer=tracer)
    finally:
        _tracing._STACK.pop()
        _metrics._STACK.pop()
        for name, old in old_env.items():
            if old is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = old
        try:
            if metrics_json is not None:
                path = Path(metrics_json)
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(snapshot_to_json(reg.snapshot()))
            if trace_json is not None:
                tracer.write_chrome(trace_json)
        except OSError as exc:  # pragma: no cover — disk-full etc.
            warnings.warn(f"could not flush observability output: {exc}", RuntimeWarning)


def render_metrics_delta(
    before: Mapping[str, object],
    after: Mapping[str, object],
    limit: int = 12,
) -> str:
    """One ``[metrics]`` block for experiment reports.

    Shows the top ``limit`` counter deltas (largest first, then by name)
    from this experiment's window, wall-clock entries excluded, so the
    block is deterministic for deterministic work.  Returns ``""`` when
    nothing was counted, so callers can append unconditionally.
    """
    delta = diff_snapshots(before, after)
    items = [
        (name, value)
        for name, value in delta.get("counters", {}).items()  # type: ignore[union-attr]
        if not name.startswith("wall.")
    ]
    if not items:
        return ""
    items.sort(key=lambda kv: (-kv[1], kv[0]))
    shown = " ".join(f"{name}={value}" for name, value in items[: max(1, limit)])
    extra = len(items) - limit
    tail = f" (+{extra} more)" if extra > 0 else ""
    return f"[metrics] {shown}{tail}"


def reset_observability() -> None:
    """Restore pristine ambient obs state (test-isolation hook).

    Pops any stray registries/tracers left by a failed test and clears
    the disabled base sinks, so process-global state cannot leak between
    pytest cases.
    """
    _metrics._reset()
    _tracing._reset()
