"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

The registry is deliberately boring: metric objects are plain mutable
cells, names are strings with an optional ``{k=v,...}`` label suffix, and
a snapshot is a JSON-serializable dict with **sorted keys everywhere** so
two runs doing the same simulated work produce byte-identical output.

Three determinism families, by name prefix:

``sim.*``
    Pure functions of the simulated work (box counts, faults, impact).
    Byte-identical across reruns, worker counts, and cache states.
``exec.*``
    Facts about this run's execution (cache hits, retries, failed
    cells).  Identical serial vs ``--jobs N`` from the same cache state.
``wall.*``
    Wall-clock measurements.  Stripped by :func:`strip_wall` before any
    determinism comparison.

The disabled path is cheap by construction: a disabled registry hands
every instrumentation site the shared :data:`NULL_METRIC`, whose methods
are no-ops, so hot loops pay one dict-free method call — or nothing at
all if they hoist the ``enabled`` check (see
:func:`repro.paging.engine.execute_profile`).

Merging is commutative and associative (counters add, histogram buckets
add, gauges take the max), which is what makes per-worker registries
mergeable in *any* completion order with a deterministic result.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "DEFAULT_BUCKET_EDGES",
    "NULL_METRIC",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active",
    "collecting",
    "counter",
    "diff_snapshots",
    "enabled",
    "gauge",
    "histogram",
    "snapshot_to_json",
    "strip_wall",
]

#: Version of the snapshot dict layout; bump when keys move or re-round.
METRICS_SCHEMA_VERSION = 1

#: Default histogram bucket edges: powers of two, 1 .. 2^20.  Fixed edges
#: (never derived from the data) are what keep snapshots deterministic.
DEFAULT_BUCKET_EDGES: Tuple[float, ...] = tuple(float(1 << i) for i in range(21))

Number = Union[int, float]


def _metric_key(name: str, labels: Mapping[str, object]) -> str:
    """Canonical metric identity: ``name{k1=v1,k2=v2}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing numeric cell."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n


class Gauge:
    """A last/max-value cell; merged across workers by ``max``."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, v: Number) -> None:
        """Overwrite the gauge with ``v``."""
        self.value = v

    def record_max(self, v: Number) -> None:
        """Raise the gauge to ``v`` if larger (merge-safe update)."""
        if v > self.value:
            self.value = v


class Histogram:
    """Fixed-bucket histogram: counts per bucket plus sum and count.

    Bucket ``i`` counts observations ``v`` with
    ``edges[i-1] < v <= edges[i]`` (bucket 0 is ``v <= edges[0]``); the
    final bucket is the overflow ``v > edges[-1]``.  Edges are fixed at
    creation so output never depends on the data distribution.
    """

    __slots__ = ("edges", "counts", "sum", "count")

    def __init__(self, edges: Sequence[float] = DEFAULT_BUCKET_EDGES) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"histogram edges must be non-empty and strictly increasing: {edges}")
        self.edges = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, v: Number) -> None:
        """Record one observation."""
        v = float(v)
        self.counts[bisect_left(self.edges, v)] += 1
        self.sum += v
        self.count += 1


class _NullMetric:
    """Shared no-op stand-in handed out by disabled registries."""

    __slots__ = ()

    def inc(self, n: Number = 1) -> None:
        """No-op."""

    def set(self, v: Number) -> None:
        """No-op."""

    def record_max(self, v: Number) -> None:
        """No-op."""

    def observe(self, v: Number) -> None:
        """No-op."""


#: The one instance every disabled registry returns.
NULL_METRIC = _NullMetric()


def _num(v: Number) -> Number:
    """Canonicalize a numeric snapshot value (ints stay ints)."""
    return int(v) if isinstance(v, bool) or (isinstance(v, float) and v.is_integer()) else v


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    ``enabled=False`` (the library default) makes every accessor return
    :data:`NULL_METRIC`, so instrumentation sites cost almost nothing
    unless an :func:`repro.obs.observability` scope is active.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def counter(self, name: str, **labels: object):
        """The counter registered under ``name`` + labels (created on first use)."""
        if not self.enabled:
            return NULL_METRIC
        key = _metric_key(name, labels)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter()
        return c

    def gauge(self, name: str, **labels: object):
        """The gauge registered under ``name`` + labels (created on first use)."""
        if not self.enabled:
            return NULL_METRIC
        key = _metric_key(name, labels)
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge()
        return g

    def histogram(self, name: str, edges: Sequence[float] = DEFAULT_BUCKET_EDGES, **labels: object):
        """The histogram under ``name`` + labels; ``edges`` must match on reuse."""
        if not self.enabled:
            return NULL_METRIC
        key = _metric_key(name, labels)
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(edges)
        elif h.edges != tuple(float(e) for e in edges):
            raise ValueError(f"histogram {key!r} re-registered with different edges")
        return h

    # ------------------------------------------------------------------ #
    # snapshot / merge
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """Deterministic, JSON-serializable dump of every metric.

        Keys are sorted at every level; integral floats are emitted as
        ints so serial and merged-parallel runs render identically.
        """
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": {k: _num(c.value) for k, c in sorted(self._counters.items())},
            "gauges": {k: _num(g.value) for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: {
                    "edges": list(h.edges),
                    "counts": list(h.counts),
                    "sum": _num(h.sum),
                    "count": h.count,
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snap: Optional[Mapping[str, object]]) -> None:
        """Fold a snapshot (e.g. a worker delta) into this registry.

        Counters and histogram buckets add; gauges take the max.  All
        three operations are commutative and associative, so merging
        worker deltas in completion order yields the same result as any
        other order — the property the serial-vs-parallel determinism
        tests rely on.  A ``None``/empty snapshot is a no-op.
        """
        if not self.enabled or not snap:
            return
        for key, value in snap.get("counters", {}).items():  # type: ignore[union-attr]
            c = self._counters.get(key)
            if c is None:
                c = self._counters[key] = Counter()
            c.inc(value)
        for key, value in snap.get("gauges", {}).items():  # type: ignore[union-attr]
            g = self._gauges.get(key)
            if g is None:
                g = self._gauges[key] = Gauge()
            g.record_max(value)
        for key, dump in snap.get("histograms", {}).items():  # type: ignore[union-attr]
            h = self._histograms.get(key)
            if h is None:
                h = self._histograms[key] = Histogram(dump["edges"])
            elif list(h.edges) != list(dump["edges"]):
                raise ValueError(f"cannot merge histogram {key!r}: edge mismatch")
            for i, n in enumerate(dump["counts"]):
                h.counts[i] += n
            h.sum += dump["sum"]
            h.count += dump["count"]

    def is_empty(self) -> bool:
        """True iff nothing has been recorded."""
        return not (self._counters or self._gauges or self._histograms)

    def clear(self) -> None:
        """Drop every metric (start of a fresh measurement window)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


# --------------------------------------------------------------------- #
# snapshot utilities
# --------------------------------------------------------------------- #
def strip_wall(snap: Mapping[str, object]) -> Dict[str, object]:
    """Copy of a snapshot without ``wall.*`` entries (wall-clock noise).

    This is the canonical form the determinism tests compare: everything
    left is a pure function of the simulated work and the cache state.
    """
    out: Dict[str, object] = {}
    for section, value in snap.items():
        if isinstance(value, Mapping):
            out[section] = {k: v for k, v in value.items() if not k.startswith("wall.")}
        else:
            out[section] = value
    return out


def diff_snapshots(before: Mapping[str, object], after: Mapping[str, object]) -> Dict[str, object]:
    """The ``after - before`` delta: counter/histogram subtraction, gauges as-is.

    Zero counter deltas are dropped, so the result reads as "what this
    window did" — the form the per-experiment report block renders.
    """
    counters: Dict[str, Number] = {}
    for key, value in after.get("counters", {}).items():  # type: ignore[union-attr]
        delta = value - before.get("counters", {}).get(key, 0)  # type: ignore[union-attr]
        if delta:
            counters[key] = _num(delta)
    histograms: Dict[str, object] = {}
    for key, dump in after.get("histograms", {}).items():  # type: ignore[union-attr]
        prev = before.get("histograms", {}).get(key)  # type: ignore[union-attr]
        counts = list(dump["counts"])
        total, sigma = dump["count"], dump["sum"]
        if prev is not None:
            counts = [a - b for a, b in zip(counts, prev["counts"])]
            total -= prev["count"]
            sigma -= prev["sum"]
        if total:
            histograms[key] = {"edges": list(dump["edges"]), "counts": counts, "sum": _num(sigma), "count": total}
    return {
        "schema_version": METRICS_SCHEMA_VERSION,
        "counters": counters,
        "gauges": dict(after.get("gauges", {})),  # type: ignore[arg-type]
        "histograms": histograms,
    }


def snapshot_to_json(snap: Mapping[str, object]) -> str:
    """Canonical JSON text for a snapshot: sorted keys, 2-space indent.

    Byte-identical for equal snapshots — the determinism goldens compare
    this exact rendering.
    """
    return json.dumps(snap, sort_keys=True, indent=2) + "\n"


# --------------------------------------------------------------------- #
# ambient registry stack (mirrors repro.exec.engine's engine stack)
# --------------------------------------------------------------------- #
_BASE_REGISTRY = MetricsRegistry(enabled=False)
_STACK: List[MetricsRegistry] = [_BASE_REGISTRY]


def active() -> MetricsRegistry:
    """The innermost registry scoped via :func:`collecting` (or the disabled base)."""
    return _STACK[-1]


def enabled() -> bool:
    """True iff the ambient registry is collecting."""
    return _STACK[-1].enabled


def counter(name: str, **labels: object):
    """Counter accessor on the ambient registry (no-op when disabled)."""
    return _STACK[-1].counter(name, **labels)


def gauge(name: str, **labels: object):
    """Gauge accessor on the ambient registry (no-op when disabled)."""
    return _STACK[-1].gauge(name, **labels)


def histogram(name: str, edges: Sequence[float] = DEFAULT_BUCKET_EDGES, **labels: object):
    """Histogram accessor on the ambient registry (no-op when disabled)."""
    return _STACK[-1].histogram(name, edges, **labels)


@contextmanager
def collecting(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` (default: a fresh enabled one) as the ambient sink."""
    reg = registry if registry is not None else MetricsRegistry(enabled=True)
    _STACK.append(reg)
    try:
        yield reg
    finally:
        _STACK.pop()


def _reset() -> None:
    """Restore the pristine module state (test isolation hook)."""
    del _STACK[1:]
    _BASE_REGISTRY.clear()
