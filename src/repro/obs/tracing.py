"""Span tracing: Chrome-trace / Perfetto-compatible JSON event capture.

A :class:`Tracer` collects *trace events* — complete spans (``ph: "X"``,
with microsecond ``ts``/``dur``) and instant markers (``ph: "i"``) — and
writes them in the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_.

Spans nest naturally through the ordinary call stack::

    with span("execute_profile", proc=3):
        with span("run_box", height=16):
            ...

Wall-clock fields (``ts``, ``dur``, ``pid``, ``tid``) are obviously not
deterministic; :func:`canonical_events` strips and sorts them away so the
determinism tests can compare *what happened* across runs and worker
counts.  Aggregation helpers (:func:`aggregate_spans`,
:func:`slowest_spans`) back the ``repro profile`` CLI table.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "active",
    "aggregate_spans",
    "canonical_events",
    "collecting",
    "enabled",
    "instant",
    "slowest_spans",
    "span",
    "write_chrome_trace",
]

#: Version of the emitted trace-file envelope.
TRACE_SCHEMA_VERSION = 1


class Tracer:
    """Append-only trace-event buffer with a per-process time origin."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self.events: List[Dict[str, object]] = []
        self._origin = time.perf_counter()

    def _us(self, t: float) -> float:
        """Microseconds since this tracer's origin, rounded for stable JSON."""
        return round((t - self._origin) * 1e6, 1)

    @contextmanager
    def span(self, name: str, **args: object) -> Iterator[None]:
        """Record a complete span around the body (``ph: "X"``)."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            t1 = time.perf_counter()
            self.events.append(
                {
                    "name": name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": self._us(t0),
                    "dur": round((t1 - t0) * 1e6, 1),
                    "pid": os.getpid(),
                    "tid": 0,
                    "args": args,
                }
            )

    def complete(self, name: str, dur_s: float, **args: object) -> None:
        """Record a span that already happened (known duration, ends now)."""
        if not self.enabled:
            return
        now = time.perf_counter()
        self.events.append(
            {
                "name": name,
                "cat": "repro",
                "ph": "X",
                "ts": self._us(now - dur_s),
                "dur": round(dur_s * 1e6, 1),
                "pid": os.getpid(),
                "tid": 0,
                "args": args,
            }
        )

    def instant(self, name: str, **args: object) -> None:
        """Record an instant marker (``ph: "i"``)."""
        if not self.enabled:
            return
        self.events.append(
            {
                "name": name,
                "cat": "repro",
                "ph": "i",
                "s": "t",
                "ts": self._us(time.perf_counter()),
                "pid": os.getpid(),
                "tid": 0,
                "args": args,
            }
        )

    def extend(self, events: Iterable[Mapping[str, object]]) -> None:
        """Append already-built events (worker deltas replayed by the engine)."""
        if not self.enabled:
            return
        self.events.extend(dict(e) for e in events)

    def write_chrome(self, path: "str | Path") -> None:
        """Write the buffer as a Chrome-trace JSON file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.obs", "schema_version": TRACE_SCHEMA_VERSION},
        }
        path.write_text(json.dumps(envelope, sort_keys=True) + "\n")


def write_chrome_trace(events: Sequence[Mapping[str, object]], path: "str | Path") -> None:
    """Write a standalone event list as a Chrome-trace JSON file."""
    tracer = Tracer(enabled=True)
    tracer.extend(events)
    tracer.write_chrome(path)


# --------------------------------------------------------------------- #
# canonicalization & aggregation
# --------------------------------------------------------------------- #
_WALL_FIELDS = ("ts", "dur", "pid", "tid")


def canonical_events(events: Iterable[Mapping[str, object]]) -> List[Dict[str, object]]:
    """Events minus wall-clock fields, in a canonical sort order.

    Two runs doing the same logical work — serial or pooled, in any
    completion order — canonicalize to the same list, which is exactly
    what the determinism suite asserts.
    """
    stripped = [{k: v for k, v in e.items() if k not in _WALL_FIELDS} for e in events]
    return sorted(stripped, key=lambda e: json.dumps(e, sort_keys=True))


def aggregate_spans(events: Iterable[Mapping[str, object]]) -> List[Dict[str, object]]:
    """Group complete spans by name: count, total/mean/max duration (ms).

    Returns rows sorted by total duration descending — the ``repro
    profile`` "where did the time go" table.
    """
    totals: Dict[str, List[float]] = {}
    for e in events:
        if e.get("ph") != "X":
            continue
        totals.setdefault(str(e["name"]), []).append(float(e.get("dur", 0.0)) / 1e3)
    rows = []
    for name, durs in totals.items():
        rows.append(
            {
                "span": name,
                "count": len(durs),
                "total_ms": round(sum(durs), 2),
                "mean_ms": round(sum(durs) / len(durs), 2),
                "max_ms": round(max(durs), 2),
            }
        )
    rows.sort(key=lambda r: (-float(r["total_ms"]), str(r["span"])))
    return rows


def slowest_spans(events: Iterable[Mapping[str, object]], n: int = 10) -> List[Dict[str, object]]:
    """The ``n`` individually slowest complete spans, with their args.

    This is the table that localizes a heavy-tail cell: each row keeps
    the span's ``label``/args, so one slow ``unit:rand-green`` row names
    the exact workload, ``p``, and replicate seed responsible.
    """
    spans = [e for e in events if e.get("ph") == "X"]
    spans.sort(key=lambda e: -float(e.get("dur", 0.0)))
    rows = []
    for e in spans[: max(0, int(n))]:
        args = e.get("args") or {}
        detail = ", ".join(f"{k}={v}" for k, v in sorted(args.items())) if isinstance(args, Mapping) else str(args)
        rows.append(
            {
                "span": e["name"],
                "dur_ms": round(float(e.get("dur", 0.0)) / 1e3, 2),
                "detail": detail,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# ambient tracer stack
# --------------------------------------------------------------------- #
_BASE_TRACER = Tracer(enabled=False)
_STACK: List[Tracer] = [_BASE_TRACER]


class _NullSpan:
    """Reusable no-op context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


def active() -> Tracer:
    """The innermost tracer scoped via :func:`collecting` (or the disabled base)."""
    return _STACK[-1]


def enabled() -> bool:
    """True iff the ambient tracer is recording."""
    return _STACK[-1].enabled


def span(name: str, **args: object):
    """Span on the ambient tracer; a shared no-op when tracing is off."""
    tracer = _STACK[-1]
    if not tracer.enabled:
        return _NULL_SPAN
    return tracer.span(name, **args)


def instant(name: str, **args: object) -> None:
    """Instant marker on the ambient tracer (no-op when disabled)."""
    tracer = _STACK[-1]
    if tracer.enabled:
        tracer.instant(name, **args)


@contextmanager
def collecting(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Scope ``tracer`` (default: a fresh enabled one) as the ambient sink."""
    t = tracer if tracer is not None else Tracer(enabled=True)
    _STACK.append(t)
    try:
        yield t
    finally:
        _STACK.pop()


def _reset() -> None:
    """Restore the pristine module state (test isolation hook)."""
    del _STACK[1:]
    _BASE_TRACER.events.clear()
