"""Observability: metrics registry, span tracing, simulation counters.

``repro.obs`` gives every layer of the stack — the exec engine, the
paging engine, the parallel schedulers, green paging, and trace
streaming — a shared, low-overhead place to record what happened:

* :mod:`repro.obs.metrics` — process-local counters, gauges, and
  fixed-bucket histograms with a deterministic JSON snapshot.  Disabled
  (the default) every instrumentation site costs one attribute check.
* :mod:`repro.obs.tracing` — ``span(...)`` context managers emitting
  Chrome-trace/Perfetto-compatible JSON events.
* :mod:`repro.obs.runtime` — the :func:`observability` scope that turns
  both on, ships them across process-pool boundaries, and merges worker
  deltas back so ``--jobs N`` metrics equal serial metrics exactly.

Metric names are namespaced by determinism class: ``sim.*`` counters are
pure functions of the simulated work (byte-identical across reruns and
worker counts), ``exec.*`` counters describe this run's execution
(cache hits, retries, failed cells — identical serial vs parallel from
the same cache state), and ``wall.*`` values are wall-clock measurements
(stripped before any determinism comparison).
"""

from .metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    snapshot_to_json,
    strip_wall,
)
from .runtime import ObsScope, absorb_outcome, observability, render_metrics_delta, reset_observability
from .tracing import Tracer, aggregate_spans, canonical_events, slowest_spans

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsScope",
    "Tracer",
    "absorb_outcome",
    "aggregate_spans",
    "canonical_events",
    "diff_snapshots",
    "observability",
    "render_metrics_delta",
    "reset_observability",
    "slowest_spans",
    "snapshot_to_json",
    "strip_wall",
]
