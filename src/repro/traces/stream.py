"""Streaming glue: run simulators and statistics straight off a store.

These helpers connect :class:`~repro.traces.store.TraceStore` chunks to
the chunk-oriented engines — :func:`repro.paging.execute_profile_streaming`
and :class:`repro.workloads.stats.StreamingCharacterizer` — so a trace far
larger than RAM can be simulated and characterized with peak memory
bounded by one chunk plus one box window.  Results are bit-identical to
the in-memory paths (the test suite asserts it).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..paging.engine import ProfileRun, execute_profile_streaming
from ..workloads.stats import SequenceStats, characterize_chunks
from .store import TraceStore

__all__ = [
    "execute_store_profile",
    "characterize_store",
    "characterize_store_all",
]


def execute_store_profile(
    store: TraceStore,
    proc: int,
    heights: Iterable[int],
    miss_cost: int,
    start: int = 0,
    max_boxes: Optional[int] = None,
    verify: bool = False,
) -> ProfileRun:
    """Run one processor's column through a box profile, chunk by chunk.

    Identical to ``execute_profile(store.column(proc), ...)`` but never
    concatenates the column: chunks stream from the store (optionally
    digest-verified) and are dropped as the execution position passes them.
    Under the fast backend the chunks feed an incremental
    :class:`~repro.paging.kernel.StreamKernel`, so the reuse-distance sweep
    is shared across every box and chunk of the run; store-backed
    workloads handed to the parallel schedulers additionally share one
    cached kernel per ``(content_digest, proc)`` across runs.
    """
    with obs_tracing.span("traces.execute_store_profile", proc=proc, trace=store.name):
        return execute_profile_streaming(
            _counted_chunks(store.iter_chunks(proc, verify=verify), proc),
            heights,
            miss_cost,
            start=start,
            max_boxes=max_boxes,
        )


def _counted_chunks(chunks: Iterable[np.ndarray], proc: int) -> Iterator[np.ndarray]:
    """Pass chunks through, counting stream traffic into ``sim.traces.*``.

    Counts only what the execution actually *pulled* — lazy streaming
    means untouched tail chunks are never read, and the counters reflect
    that.
    """
    reg = obs_metrics.active()
    if not reg.enabled:
        yield from chunks
        return
    n_chunks = reg.counter("sim.traces.chunks", proc=proc)
    n_requests = reg.counter("sim.traces.requests_streamed", proc=proc)
    for chunk in chunks:
        n_chunks.inc()
        n_requests.inc(len(chunk))
        yield chunk


def characterize_store(
    store: TraceStore,
    proc: int,
    window: int = 1000,
    verify: bool = False,
) -> SequenceStats:
    """Streaming :func:`repro.workloads.stats.characterize` of one column."""
    return characterize_chunks(store.iter_chunks(proc, verify=verify), window=window)


def characterize_store_all(
    store: TraceStore,
    window: int = 1000,
    verify: bool = False,
) -> Dict[int, SequenceStats]:
    """Per-processor streaming characterization of every column."""
    return {
        proc: characterize_store(store, proc, window=window, verify=verify)
        for proc in range(store.p)
    }
