"""Streaming glue: run simulators and statistics straight off a store.

These helpers connect :class:`~repro.traces.store.TraceStore` chunks to
the chunk-oriented engines — :func:`repro.paging.execute_profile_streaming`
and :class:`repro.workloads.stats.StreamingCharacterizer` — so a trace far
larger than RAM can be simulated and characterized with peak memory
bounded by one chunk plus one box window.  Results are bit-identical to
the in-memory paths (the test suite asserts it).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..paging.engine import ProfileRun, execute_profile_streaming
from ..workloads.stats import SequenceStats, characterize_chunks
from .store import TraceStore

__all__ = [
    "execute_store_profile",
    "characterize_store",
    "characterize_store_all",
]


def execute_store_profile(
    store: TraceStore,
    proc: int,
    heights: Iterable[int],
    miss_cost: int,
    start: int = 0,
    max_boxes: Optional[int] = None,
    verify: bool = False,
) -> ProfileRun:
    """Run one processor's column through a box profile, chunk by chunk.

    Identical to ``execute_profile(store.column(proc), ...)`` but never
    concatenates the column: chunks stream from the store (optionally
    digest-verified) and are dropped as the execution position passes them.
    """
    return execute_profile_streaming(
        store.iter_chunks(proc, verify=verify),
        heights,
        miss_cost,
        start=start,
        max_boxes=max_boxes,
    )


def characterize_store(
    store: TraceStore,
    proc: int,
    window: int = 1000,
    verify: bool = False,
) -> SequenceStats:
    """Streaming :func:`repro.workloads.stats.characterize` of one column."""
    return characterize_chunks(store.iter_chunks(proc, verify=verify), window=window)


def characterize_store_all(
    store: TraceStore,
    window: int = 1000,
    verify: bool = False,
) -> Dict[int, SequenceStats]:
    """Per-processor streaming characterization of every column."""
    return {
        proc: characterize_store(store, proc, window=window, verify=verify)
        for proc in range(store.p)
    }
