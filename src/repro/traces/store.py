"""Binary columnar trace store: chunked int64 columns, mmap-backed reads.

The on-disk layout of a ``.trc`` store is::

    offset 0   magic  b"REPROTRC"
    offset 8   uint64 little-endian header length in bytes
    offset 16  UTF-8 JSON header
    ...        zero padding to a 64-byte boundary
    data       per-processor int64 (little-endian) columns, back to back

The JSON header records the schema version, per-column row counts and
byte offsets, a per-chunk digest table (default sha256; xxhash's xxh3 is
used opportunistically when the optional module is installed), free-form
metadata, and a whole-trace **content digest** computed with exactly the
same framing as :func:`repro.exec.cache.workload_fingerprint` — so a
store-backed workload and its in-memory twin produce *identical*
content-addressed result-cache keys.

Writes are atomic (temp file + ``os.replace``) and streaming: a
:class:`StoreWriter` spools appends per processor to disk, so traces far
larger than RAM import with bounded memory.  Reads are zero-copy: columns
come back as read-only ``np.memmap`` slices, and :meth:`TraceStore.iter_chunks`
feeds the streaming simulators and statistics chunk by chunk.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from ..workloads.trace import ParallelWorkload
from .errors import TraceCorruptError, TraceFormatError, TraceVersionError

__all__ = [
    "MAGIC",
    "STORE_VERSION",
    "DEFAULT_CHUNK_ROWS",
    "StoredWorkload",
    "StoreWriter",
    "TraceStore",
    "write_store",
    "spill_workload",
    "open_workload",
    "content_digest_of",
]

MAGIC = b"REPROTRC"
STORE_VERSION = 1
#: Rows per digest chunk (and per streaming-read unit): 64 Ki rows = 512 KiB.
DEFAULT_CHUNK_ROWS = 1 << 16
_ALIGN = 64
_DTYPE = "<i8"
_ROW_BYTES = 8

try:  # optional accelerator for chunk checksums; sha256 is always available
    import xxhash  # type: ignore

    _FAST_CHUNK_ALGO: Optional[str] = "xxh3_128"
except ImportError:  # pragma: no cover - depends on environment
    xxhash = None  # type: ignore
    _FAST_CHUNK_ALGO = None


def _chunk_hasher(algo: str):
    """Hasher factory for the per-chunk integrity digests."""
    if algo == "sha256":
        return hashlib.sha256()
    if algo == "xxh3_128":
        if xxhash is None:
            raise TraceFormatError(
                "store uses xxh3_128 chunk digests but the xxhash module is "
                "not installed; re-export the trace with sha256 digests"
            )
        return xxhash.xxh3_128()
    raise TraceFormatError(f"unknown chunk digest algorithm {algo!r}")


def content_digest_of(sequences: Sequence[np.ndarray]) -> str:
    """Whole-trace content digest over in-memory sequences.

    Byte-for-byte the same value :func:`repro.exec.cache.workload_fingerprint`
    computes for a :class:`ParallelWorkload` holding these sequences — the
    invariant that makes store-backed and in-memory runs share cache keys.
    """
    h = hashlib.sha256(b"repro-workload-v1")
    h.update(str(len(sequences)).encode())
    for seq in sequences:
        arr = np.ascontiguousarray(seq, dtype=np.int64)
        h.update(str(len(arr)).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def _reopen_stored_workload(path: str) -> "StoredWorkload":
    """Pickle helper: re-open a store-backed workload by path (zero-copy)."""
    return TraceStore(path).workload()


@dataclass
class StoredWorkload(ParallelWorkload):
    """A :class:`ParallelWorkload` whose sequences live in a trace store.

    Sequences are read-only ``np.memmap`` views — the OS pages them in and
    out on demand, so simulating a store-backed workload never materializes
    the full trace in RAM.  ``content_digest`` short-circuits result-cache
    fingerprinting (no re-hash of gigabytes), and pickling ships only the
    store *path*: a worker process re-opens the mmap instead of receiving
    the whole trace over the pipe.
    """

    content_digest: str = ""
    store_path: Optional[str] = None

    def __post_init__(self) -> None:
        # Store columns are already contiguous int64 and were disjointness-
        # checked when the store was written; re-running the base class's
        # per-page scan here would defeat zero-copy loading.
        pass

    def __reduce__(self):
        if self.store_path and Path(self.store_path).exists():
            return (_reopen_stored_workload, (str(self.store_path),))
        return super().__reduce__()


class StoreWriter:
    """Streaming trace-store writer with bounded memory.

    Append int64 page-id blocks per processor in any interleaving; blocks
    spool to per-processor temp files, so nothing is held in RAM.  ``close``
    assembles the final store atomically (digest pass, header, data copy,
    ``os.replace``) and returns the opened :class:`TraceStore`.  Use as a
    context manager to guarantee spool cleanup on error.
    """

    def __init__(
        self,
        dest: str | Path,
        name: str = "imported",
        meta: Optional[Mapping[str, Any]] = None,
        allow_shared: bool = False,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        p: Optional[int] = None,
        chunk_algo: Optional[str] = None,
    ) -> None:
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self.dest = Path(dest)
        self.name = name
        self.meta = dict(meta or {})
        self.allow_shared = bool(allow_shared)
        self.chunk_rows = int(chunk_rows)
        self.chunk_algo = chunk_algo or _FAST_CHUNK_ALGO or "sha256"
        self.dest.parent.mkdir(parents=True, exist_ok=True)
        self._spool_dir = Path(tempfile.mkdtemp(dir=self.dest.parent, prefix=".trc-spool-"))
        self._spools: Dict[int, Any] = {}
        self._rows: Dict[int, int] = {}
        self._min_p = int(p) if p is not None else 0
        self._closed = False

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self._closed:
            self.close()
        else:
            self.abort()

    def _spool(self, proc: int):
        fh = self._spools.get(proc)
        if fh is None:
            fh = (self._spool_dir / f"col-{proc}.raw").open("wb")
            self._spools[proc] = fh
            self._rows[proc] = 0
        return fh

    def append(self, proc: int, pages: np.ndarray) -> None:
        """Append a block of page ids to processor ``proc``'s column."""
        if self._closed:
            raise RuntimeError("writer is closed")
        proc = int(proc)
        if proc < 0:
            raise ValueError(f"processor id must be >= 0, got {proc}")
        arr = np.ascontiguousarray(pages, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("page blocks must be 1-D")
        fh = self._spool(proc)
        if len(arr):
            fh.write(arr.astype(_DTYPE, copy=False).tobytes())
            self._rows[proc] += len(arr)

    def abort(self) -> None:
        """Discard all spooled data (best-effort cleanup)."""
        self._closed = True
        for fh in self._spools.values():
            try:
                fh.close()
            except OSError:
                pass
        try:
            for f in self._spool_dir.glob("*"):
                try:
                    f.unlink()
                except OSError:
                    pass
            self._spool_dir.rmdir()
        except OSError:
            pass

    def _iter_spool_chunks(self, proc: int) -> Iterator[np.ndarray]:
        path = self._spool_dir / f"col-{proc}.raw"
        if not path.exists():
            return
        with path.open("rb") as fh:
            while True:
                buf = fh.read(self.chunk_rows * _ROW_BYTES)
                if not buf:
                    break
                yield np.frombuffer(buf, dtype=_DTYPE)

    def close(self) -> "TraceStore":
        """Assemble and atomically publish the store; returns it opened."""
        if self._closed:
            raise RuntimeError("writer is closed")
        for fh in self._spools.values():
            fh.close()
        p = max(max(self._spools) + 1 if self._spools else 0, self._min_p)
        # pass 1: digests + disjointness (memory: O(distinct pages))
        content = hashlib.sha256(b"repro-workload-v1")
        content.update(str(p).encode())
        columns: List[Dict[str, Any]] = []
        owners: Dict[int, int] = {}
        offset = 0
        for proc in range(p):
            rows = self._rows.get(proc, 0)
            content.update(str(rows).encode())
            chunks: List[Dict[str, Any]] = []
            for chunk in self._iter_spool_chunks(proc):
                raw = chunk.tobytes()
                content.update(raw)
                hasher = _chunk_hasher(self.chunk_algo)
                hasher.update(raw)
                chunks.append({"rows": len(chunk), "digest": hasher.hexdigest()})
                if not self.allow_shared:
                    for page in np.unique(chunk).tolist():
                        owner = owners.setdefault(int(page), proc)
                        if owner != proc:
                            self.abort()
                            raise ValueError(
                                f"trace {self.name!r}: page {int(page)} appears in "
                                f"sequences {owner} and {proc} (pass allow_shared=True "
                                "for the shared-pages model)"
                            )
            columns.append({"rows": rows, "offset": offset, "chunks": chunks})
            offset += rows * _ROW_BYTES
        header = {
            "format": "repro-trace-store",
            "version": STORE_VERSION,
            "dtype": _DTYPE,
            "p": p,
            "name": self.name,
            "meta": self.meta,
            "allow_shared": self.allow_shared,
            "chunk_rows": self.chunk_rows,
            "chunk_algo": self.chunk_algo,
            "content_digest": content.hexdigest(),
            "data_bytes": offset,
            "columns": columns,
        }
        header_bytes = json.dumps(header, sort_keys=True).encode()
        prefix_len = len(MAGIC) + 8 + len(header_bytes)
        pad = (-prefix_len) % _ALIGN
        # pass 2: stream everything into a temp file, then publish atomically
        fd, tmp = tempfile.mkstemp(dir=self.dest.parent, suffix=".trc.tmp")
        try:
            with os.fdopen(fd, "wb") as out:
                out.write(MAGIC)
                out.write(struct.pack("<Q", len(header_bytes)))
                out.write(header_bytes)
                out.write(b"\x00" * pad)
                for proc in range(p):
                    spool = self._spool_dir / f"col-{proc}.raw"
                    if spool.exists():
                        with spool.open("rb") as src:
                            while True:
                                buf = src.read(1 << 20)
                                if not buf:
                                    break
                                out.write(buf)
                out.flush()
                os.fsync(out.fileno())
            os.replace(tmp, self.dest)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        finally:
            self.abort()
        return TraceStore(self.dest)


def write_store(
    path: str | Path,
    workload: ParallelWorkload,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    meta: Optional[Mapping[str, Any]] = None,
    chunk_algo: Optional[str] = None,
) -> "TraceStore":
    """Persist an in-memory workload as a trace store (atomic write).

    Workload ``meta`` merges under any explicit ``meta`` argument; the
    returned store's ``content_digest`` equals
    ``workload_fingerprint(workload)``, so results cached against either
    representation are interchangeable.
    """
    merged = dict(workload.meta)
    merged.update(meta or {})
    merged = _json_safe_meta(merged)
    with StoreWriter(
        path,
        name=workload.name,
        meta=merged,
        allow_shared=workload.allow_shared,
        chunk_rows=chunk_rows,
        p=workload.p,
        chunk_algo=chunk_algo,
    ) as writer:
        for proc, seq in enumerate(workload.sequences):
            for start in range(0, len(seq), chunk_rows):
                writer.append(proc, seq[start : start + chunk_rows])
        return writer.close()


def spill_workload(
    workload: ParallelWorkload,
    directory: str | Path,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> StoredWorkload:
    """Spill an in-memory workload to a digest-named store in ``directory``.

    The file is named by the workload's content digest, so spilling the
    same trace twice (across units, batches, or processes sharing the
    directory) reuses one ``.trc`` — and the returned
    :class:`StoredWorkload` pickles as that *path*, which is what makes
    pool handoff zero-copy: workers re-open the memmap instead of
    receiving the request arrays over the pipe.

    Raises :class:`ValueError` when the workload's ``meta`` does not
    survive the store's JSON projection — such a workload must travel by
    pickle so no information is silently dropped.
    """
    meta = dict(workload.meta)
    if _json_safe_meta(meta) != meta:
        raise ValueError(
            f"workload {workload.name!r} has non-JSON metadata; it cannot be "
            "spilled to a trace store without altering it"
        )
    digest = content_digest_of(workload.sequences)
    path = Path(directory) / f"{digest}.trc"
    if not path.exists():
        write_store(path, workload, chunk_rows=chunk_rows)
    return TraceStore(path).workload()


def _json_safe_meta(meta: Mapping[str, Any]) -> Dict[str, Any]:
    """Project metadata to JSON-encodable values (repr fallback)."""
    out: Dict[str, Any] = {}
    for key, value in meta.items():
        if isinstance(value, (np.integer,)):
            value = int(value)
        elif isinstance(value, (np.floating,)):
            value = float(value)
        try:
            json.dumps(value)
        except TypeError:
            value = repr(value)
        out[str(key)] = value
    return out


class TraceStore:
    """Read side of a ``.trc`` trace store (header-validated, mmap-backed).

    Opening parses and validates the header and checks the payload size;
    per-chunk digests are verified on demand (:meth:`verify`, or
    ``iter_chunks(verify=True)``) so opening a terabyte store stays O(1).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        try:
            with self.path.open("rb") as fh:
                magic = fh.read(len(MAGIC))
                if magic != MAGIC:
                    raise TraceFormatError(
                        f"{self.path}: not a repro trace store (bad magic {magic!r})"
                    )
                raw_len = fh.read(8)
                if len(raw_len) != 8:
                    raise TraceCorruptError(f"{self.path}: truncated store header")
                (header_len,) = struct.unpack("<Q", raw_len)
                if header_len > (1 << 30):
                    raise TraceFormatError(f"{self.path}: implausible header length {header_len}")
                header_bytes = fh.read(header_len)
        except OSError as exc:
            raise TraceFormatError(f"{self.path}: cannot read store: {exc}") from exc
        if len(header_bytes) != header_len:
            raise TraceCorruptError(f"{self.path}: truncated store header")
        try:
            header = json.loads(header_bytes.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TraceCorruptError(f"{self.path}: corrupt store header: {exc}") from exc
        if header.get("format") != "repro-trace-store":
            raise TraceFormatError(f"{self.path}: unrecognized store format field")
        version = int(header.get("version", -1))
        if version > STORE_VERSION or version < 1:
            raise TraceVersionError(
                f"{self.path}: store version {version} not supported "
                f"(this build reads <= {STORE_VERSION})"
            )
        for key in ("p", "name", "chunk_rows", "content_digest", "data_bytes", "columns"):
            if key not in header:
                raise TraceFormatError(f"{self.path}: store header is missing {key!r}")
        self.header = header
        prefix_len = len(MAGIC) + 8 + header_len
        self._data_start = prefix_len + ((-prefix_len) % _ALIGN)
        expected = self._data_start + int(header["data_bytes"])
        actual = self.path.stat().st_size
        if actual != expected:
            raise TraceCorruptError(
                f"{self.path}: store is {actual} bytes but header expects {expected} "
                "(truncated or partially written)"
            )
        total = 0
        for proc, col in enumerate(self.columns):
            chunk_total = sum(int(c["rows"]) for c in col["chunks"])
            if chunk_total != int(col["rows"]):
                raise TraceCorruptError(
                    f"{self.path}: column {proc} chunk rows sum to {chunk_total}, "
                    f"header says {col['rows']}"
                )
            total += int(col["rows"])
        self._total_rows = total
        self._mm: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # header accessors
    # ------------------------------------------------------------------ #
    @property
    def p(self) -> int:
        return int(self.header["p"])

    @property
    def name(self) -> str:
        return str(self.header["name"])

    @property
    def meta(self) -> Dict[str, Any]:
        return dict(self.header.get("meta", {}))

    @property
    def allow_shared(self) -> bool:
        return bool(self.header.get("allow_shared", False))

    @property
    def chunk_rows(self) -> int:
        return int(self.header["chunk_rows"])

    @property
    def content_digest(self) -> str:
        return str(self.header["content_digest"])

    @property
    def columns(self) -> List[Dict[str, Any]]:
        return self.header["columns"]

    @property
    def lengths(self) -> tuple:
        return tuple(int(c["rows"]) for c in self.columns)

    @property
    def total_requests(self) -> int:
        return self._total_rows

    @property
    def nbytes(self) -> int:
        return int(self.header["data_bytes"])

    # ------------------------------------------------------------------ #
    # data access
    # ------------------------------------------------------------------ #
    def _mmap(self) -> np.ndarray:
        if self._mm is None:
            if self.nbytes == 0:
                self._mm = np.asarray([], dtype=np.int64)
            else:
                self._mm = np.memmap(
                    self.path,
                    dtype=_DTYPE,
                    mode="r",
                    offset=self._data_start,
                    shape=(self.nbytes // _ROW_BYTES,),
                )
        return self._mm

    def column(self, proc: int) -> np.ndarray:
        """Zero-copy read-only view of processor ``proc``'s full column."""
        col = self.columns[proc]
        start = int(col["offset"]) // _ROW_BYTES
        return self._mmap()[start : start + int(col["rows"])]

    def iter_chunks(self, proc: int, verify: bool = False) -> Iterator[np.ndarray]:
        """Stream processor ``proc``'s column chunk by chunk (zero-copy views).

        With ``verify=True`` every chunk is checked against its recorded
        digest and a mismatch raises :class:`TraceCorruptError` *before*
        the bad data is yielded.
        """
        col = self.columns[proc]
        algo = str(self.header.get("chunk_algo", "sha256"))
        view = self.column(proc)
        row = 0
        for i, chunk_info in enumerate(col["chunks"]):
            rows = int(chunk_info["rows"])
            chunk = view[row : row + rows]
            if verify:
                hasher = _chunk_hasher(algo)
                hasher.update(np.ascontiguousarray(chunk).tobytes())
                if hasher.hexdigest() != chunk_info["digest"]:
                    raise TraceCorruptError(
                        f"{self.path}: column {proc} chunk {i} fails its {algo} "
                        "digest (store is corrupt)"
                    )
            yield chunk
            row += rows

    def verify(self) -> bool:
        """Check every chunk digest and the whole-trace content digest.

        Returns ``True`` on success; raises :class:`TraceCorruptError` on
        the first mismatch.  Streams — O(chunk) memory.
        """
        content = hashlib.sha256(b"repro-workload-v1")
        content.update(str(self.p).encode())
        for proc in range(self.p):
            content.update(str(int(self.columns[proc]["rows"])).encode())
            for chunk in self.iter_chunks(proc, verify=True):
                content.update(np.ascontiguousarray(chunk).tobytes())
        if content.hexdigest() != self.content_digest:
            raise TraceCorruptError(
                f"{self.path}: content digest mismatch (chunks verify individually; "
                "header digest is inconsistent)"
            )
        return True

    def sample(self, proc: int, rows: int = 10) -> np.ndarray:
        """First ``rows`` requests of a column (for CLI previews)."""
        return np.asarray(self.column(proc)[: max(0, int(rows))])

    def workload(self, mode: str = "mmap") -> ParallelWorkload:
        """Materialize the store as a workload.

        ``mode="mmap"`` (default) returns a :class:`StoredWorkload` whose
        sequences are zero-copy memmap views with the content digest
        attached; ``mode="ram"`` copies into ordinary ndarrays (and
        re-runs the standard disjointness check) for callers that want a
        plain :class:`ParallelWorkload`.
        """
        if mode == "ram":
            return ParallelWorkload(
                sequences=[np.array(self.column(i)) for i in range(self.p)],
                name=self.name,
                meta=self.meta,
                allow_shared=self.allow_shared,
            )
        if mode != "mmap":
            raise ValueError(f"mode must be 'mmap' or 'ram', got {mode!r}")
        wl = StoredWorkload(
            sequences=[self.column(i) for i in range(self.p)],
            name=self.name,
            meta=self.meta,
            allow_shared=self.allow_shared,
            content_digest=self.content_digest,
            store_path=str(self.path),
        )
        return wl

    def describe(self) -> str:
        """One-line summary for CLI listings."""
        mib = (self._data_start + self.nbytes) / (1 << 20)
        return (
            f"{self.name}: p={self.p}, requests={self.total_requests}, "
            f"{mib:.2f} MiB, digest={self.content_digest[:12]}"
        )


def open_workload(path: str | Path, mode: str = "mmap") -> ParallelWorkload:
    """Open a trace store and return its workload in one call."""
    return TraceStore(path).workload(mode=mode)
