"""Trace corpus subsystem: binary stores, adapters, registry, streaming.

The pieces, bottom up:

* :mod:`~repro.traces.store` — the ``.trc`` binary columnar format:
  chunked int64 page-id columns per processor, atomic writes, per-chunk
  digests, zero-copy ``np.memmap`` reads, and a whole-trace content
  digest that doubles as the result-cache workload fingerprint;
* :mod:`~repro.traces.adapters` — normalize real traces (raw address
  dumps, CSV/key-value cache traces, this repo's text formats, ``.npz``)
  into stores, streaming with transparent decompression;
* :mod:`~repro.traces.registry` — a content-addressed local corpus
  (``.repro_traces/``) so experiments name traces instead of paths, with
  dedup by digest;
* :mod:`~repro.traces.stream` — glue that feeds store chunks to the
  streaming simulator and statistics engines with bounded memory.
"""

from .adapters import (
    TRACE_FORMATS,
    import_trace,
    read_kv_trace,
    sniff_format,
    stream_trace_blocks,
)
from .errors import (
    TraceCorruptError,
    TraceError,
    TraceFormatError,
    TraceNotFoundError,
    TraceVersionError,
)
from .registry import (
    DEFAULT_REGISTRY_DIR,
    REGISTRY_ENV_VAR,
    TraceRegistry,
    default_registry,
)
from .store import (
    DEFAULT_CHUNK_ROWS,
    MAGIC,
    STORE_VERSION,
    StoredWorkload,
    StoreWriter,
    TraceStore,
    content_digest_of,
    open_workload,
    write_store,
)
from .stream import characterize_store, characterize_store_all, execute_store_profile

__all__ = [
    "TRACE_FORMATS",
    "import_trace",
    "read_kv_trace",
    "sniff_format",
    "stream_trace_blocks",
    "TraceError",
    "TraceFormatError",
    "TraceVersionError",
    "TraceCorruptError",
    "TraceNotFoundError",
    "DEFAULT_REGISTRY_DIR",
    "REGISTRY_ENV_VAR",
    "TraceRegistry",
    "default_registry",
    "MAGIC",
    "STORE_VERSION",
    "DEFAULT_CHUNK_ROWS",
    "StoredWorkload",
    "StoreWriter",
    "TraceStore",
    "content_digest_of",
    "open_workload",
    "write_store",
    "characterize_store",
    "characterize_store_all",
    "execute_store_profile",
]
