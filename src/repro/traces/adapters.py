"""Real-trace adapters: normalize foreign trace formats into the store.

Supported inputs, all streamed with bounded memory and transparently
decompressed (``.gz``/``.xz``/``.lzma``/``.bz2`` or magic-byte sniff):

* ``sequence`` — one page id per line (this repo's text format);
* ``trace`` — ``processor_id page_id`` per line (parallel text format);
* ``address`` — one raw memory address per line (decimal or ``0x`` hex),
  folded to pages by ``address // page_size``;
* ``kv`` — delimited cache-trace records (CSV and friends, e.g. Twitter /
  memcached traces): one field is the key (arbitrary strings, densely
  re-labeled to int page ids in first-seen order), optionally another
  names the processor/shard;
* ``npz`` — a saved :class:`~repro.workloads.trace.ParallelWorkload`;
* ``store`` — an existing ``.trc`` trace store.

:func:`import_trace` is the one-call dispatcher the registry and CLI use:
it sniffs the format, streams the source through a
:class:`~repro.traces.store.StoreWriter`, and returns the opened store.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

from ..workloads.formats import (
    DEFAULT_BLOCK_BYTES,
    _parse_address_block,
    iter_clean_line_blocks,
    iter_parallel_blocks,
    open_trace_stream,
    parse_int_lines,
)
from ..workloads.trace import ParallelWorkload
from .errors import TraceFormatError
from .store import DEFAULT_CHUNK_ROWS, StoreWriter, TraceStore, write_store

__all__ = [
    "TRACE_FORMATS",
    "sniff_format",
    "iter_kv_records",
    "read_kv_trace",
    "stream_trace_blocks",
    "import_trace",
]

#: Formats :func:`import_trace` understands (plus "auto" to sniff).
TRACE_FORMATS = ("sequence", "trace", "address", "kv", "npz", "store")

_STORE_SUFFIX = ".trc"
_COMPRESSED = {".gz", ".xz", ".lzma", ".bz2"}


def _logical_suffix(path: Path) -> str:
    """File suffix with any compression suffix peeled off."""
    suffixes = [s.lower() for s in path.suffixes]
    while suffixes and suffixes[-1] in _COMPRESSED:
        suffixes.pop()
    return suffixes[-1] if suffixes else ""


def sniff_format(path: str | Path) -> str:
    """Guess a trace format from suffix, then content.

    ``.trc`` → store, ``.npz`` → npz, ``.csv``/``.tsv`` → kv; otherwise the
    first cleaned line decides: two integer tokens → ``trace``, one integer
    (or ``0x`` hex) token → ``sequence``/``address``, anything else → ``kv``.
    """
    path = Path(path)
    suffix = _logical_suffix(path)
    if suffix == _STORE_SUFFIX:
        return "store"
    if suffix == ".npz":
        return "npz"
    if suffix in (".csv", ".tsv"):
        return "kv"
    for block in iter_clean_line_blocks(path, block_bytes=1 << 14):
        line = block[0]
        parts = line.split()
        if len(parts) == 2 and all(_is_int(tok) for tok in parts):
            return "trace"
        if len(parts) == 1:
            tok = parts[0]
            if _is_int(tok):
                return "sequence"
            if tok.lower().startswith("0x"):
                return "address"
        return "kv"
    return "sequence"  # empty file: degenerate single-processor trace


def _is_int(token: str) -> bool:
    try:
        int(token)
        return True
    except ValueError:
        return False


def iter_kv_records(
    path: str | Path,
    delimiter: str = ",",
    comment: str = "#",
) -> Iterator[list]:
    """Stream delimited records, skipping blanks and comment lines."""
    with open_trace_stream(path) as fh:
        text = io.TextIOWrapper(fh, encoding="utf-8", newline="")
        for record in csv.reader(text, delimiter=delimiter):
            if not record:
                continue
            first = record[0].strip()
            if not first and len(record) == 1:
                continue
            if first.startswith(comment):
                continue
            yield record


def read_kv_trace(
    path: str | Path,
    key_field: int = 0,
    proc_field: Optional[int] = None,
    delimiter: str = ",",
    name: str = "kv-trace",
    allow_shared: bool = False,
) -> ParallelWorkload:
    """Read a delimited cache trace, relabeling keys to dense page ids.

    ``key_field``/``proc_field`` are 0-based column indices.  Keys are
    arbitrary strings mapped to int64 ids in first-seen order (the mapping
    is recorded size-only in ``meta``); without ``proc_field`` the result
    is a single-processor workload.
    """
    key_ids: Dict[str, int] = {}
    by_proc: Dict[int, list] = {}
    for record in iter_kv_records(path, delimiter=delimiter):
        try:
            key = record[key_field].strip()
            proc = int(record[proc_field]) if proc_field is not None else 0
        except (IndexError, ValueError) as exc:
            raise TraceFormatError(f"{path}: bad kv record {record!r}: {exc}") from exc
        if proc < 0:
            raise TraceFormatError(f"{path}: negative processor id in record {record!r}")
        page = key_ids.setdefault(key, len(key_ids))
        by_proc.setdefault(proc, []).append(page)
    p = (max(by_proc) + 1) if by_proc else 0
    sequences = [np.asarray(by_proc.get(i, []), dtype=np.int64) for i in range(p)]
    return ParallelWorkload(
        sequences=sequences,
        name=name,
        meta={"source_format": "kv", "distinct_keys": len(key_ids)},
        allow_shared=allow_shared or (proc_field is not None),
    )


def stream_trace_blocks(
    path: str | Path,
    fmt: str,
    page_size: int = 4096,
    delimiter: str = ",",
    key_field: int = 0,
    proc_field: Optional[int] = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Stream a text-family trace as ``(processor, pages)`` blocks.

    The workhorse behind :func:`import_trace` for the ``sequence`` /
    ``trace`` / ``address`` / ``kv`` formats — each yielded block is
    bounded by ``block_bytes`` of input, so the full trace is never
    resident.
    """
    if fmt == "sequence":
        for block in iter_clean_line_blocks(path, block_bytes=block_bytes):
            yield 0, parse_int_lines(block, 1, "one page id").ravel()
    elif fmt == "trace":
        for arr in iter_parallel_blocks(path, block_bytes=block_bytes):
            procs = arr[:, 0]
            pages = arr[:, 1]
            order = np.argsort(procs, kind="stable")
            sp = procs[order]
            pg = pages[order]
            uniq, starts = np.unique(sp, return_index=True)
            bounds = np.append(starts, len(sp))
            for j, proc in enumerate(uniq.tolist()):
                yield int(proc), pg[bounds[j] : bounds[j + 1]]
    elif fmt == "address":
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        for block in iter_clean_line_blocks(path, block_bytes=block_bytes):
            addrs = _parse_address_block(block)
            if len(addrs) and addrs.min() < 0:
                raise TraceFormatError(f"{path}: negative address in trace")
            yield 0, addrs // page_size
    elif fmt == "kv":
        key_ids: Dict[str, int] = {}
        buf: list = []
        buf_proc = 0
        for record in iter_kv_records(path, delimiter=delimiter):
            try:
                key = record[key_field].strip()
                proc = int(record[proc_field]) if proc_field is not None else 0
            except (IndexError, ValueError) as exc:
                raise TraceFormatError(f"{path}: bad kv record {record!r}: {exc}") from exc
            if proc < 0:
                raise TraceFormatError(f"{path}: negative processor id in record {record!r}")
            page = key_ids.setdefault(key, len(key_ids))
            if proc != buf_proc and buf:
                yield buf_proc, np.asarray(buf, dtype=np.int64)
                buf = []
            buf_proc = proc
            buf.append(page)
            if len(buf) >= DEFAULT_CHUNK_ROWS:
                yield buf_proc, np.asarray(buf, dtype=np.int64)
                buf = []
        if buf:
            yield buf_proc, np.asarray(buf, dtype=np.int64)
    else:
        raise ValueError(f"format {fmt!r} does not stream as blocks (known: sequence, trace, address, kv)")


def import_trace(
    src: str | Path,
    dest: str | Path,
    fmt: str = "auto",
    name: Optional[str] = None,
    page_size: int = 4096,
    delimiter: str = ",",
    key_field: int = 0,
    proc_field: Optional[int] = None,
    allow_shared: bool = False,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    meta: Optional[Mapping[str, Any]] = None,
) -> TraceStore:
    """Normalize any supported trace format into a store at ``dest``.

    Text-family sources stream through a :class:`StoreWriter` with bounded
    memory; ``npz`` loads via :class:`ParallelWorkload`; ``store`` re-chunks
    an existing store (streamed).  Returns the opened destination store.
    """
    src = Path(src)
    if fmt == "auto":
        fmt = sniff_format(src)
    if fmt not in TRACE_FORMATS:
        raise ValueError(f"unknown trace format {fmt!r}; known: auto, {', '.join(TRACE_FORMATS)}")
    trace_name = name or src.name
    base_meta: Dict[str, Any] = {
        "source": str(src),
        "source_format": fmt,
    }
    if fmt == "address":
        base_meta["page_size"] = int(page_size)
    base_meta.update(meta or {})

    if fmt == "npz":
        workload = ParallelWorkload.load(src)
        workload.name = trace_name
        workload.meta.update(base_meta)
        return write_store(dest, workload, chunk_rows=chunk_rows)
    if fmt == "store":
        source = TraceStore(src)
        merged = source.meta
        merged.update(base_meta)
        with StoreWriter(
            dest,
            name=name or source.name,
            meta=merged,
            allow_shared=source.allow_shared or allow_shared,
            chunk_rows=chunk_rows,
            p=source.p,
        ) as writer:
            for proc in range(source.p):
                for chunk in source.iter_chunks(proc, verify=True):
                    writer.append(proc, chunk)
            return writer.close()

    # kv traces with an explicit processor column may legitimately share
    # keys across processors (shared-pages model)
    shared = allow_shared or (fmt == "kv" and proc_field is not None)
    with StoreWriter(
        dest,
        name=trace_name,
        meta=base_meta,
        allow_shared=shared,
        chunk_rows=chunk_rows,
    ) as writer:
        for proc, pages in stream_trace_blocks(
            src,
            fmt,
            page_size=page_size,
            delimiter=delimiter,
            key_field=key_field,
            proc_field=proc_field,
        ):
            writer.append(proc, pages)
        return writer.close()
