"""Content-addressed trace registry: a local corpus of imported stores.

The registry is a directory (default ``./.repro_traces``, overridable via
``$REPRO_TRACES_DIR`` or an explicit root) laid out as::

    .repro_traces/
        catalog.json                   name -> digest, plus per-digest info
        objects/ab/<full-digest>.trc   the stores, keyed by content digest

Stores are *content addressed*: the object path is derived from the
whole-trace content digest, so importing the same trace twice (from the
same file, a re-download, or an equivalent in-memory workload) lands on
one object and one cache identity.  Names are mutable labels in the
catalog pointing at digests — re-registering a name moves the pointer,
never the data.

Catalog updates are atomic (temp file + ``os.replace``), matching the
store's own write discipline, so a crashed import never leaves a
half-written catalog.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from ..workloads.trace import ParallelWorkload
from .adapters import import_trace
from .errors import TraceNotFoundError
from .store import DEFAULT_CHUNK_ROWS, TraceStore, write_store

__all__ = [
    "DEFAULT_REGISTRY_DIR",
    "REGISTRY_ENV_VAR",
    "TraceRegistry",
    "default_registry",
]

DEFAULT_REGISTRY_DIR = ".repro_traces"
REGISTRY_ENV_VAR = "REPRO_TRACES_DIR"
_CATALOG_VERSION = 1


class TraceRegistry:
    """Catalog of trace stores keyed by content digest, labeled by name."""

    def __init__(self, root: Optional[str | Path] = None) -> None:
        if root is None:
            root = os.environ.get(REGISTRY_ENV_VAR) or DEFAULT_REGISTRY_DIR
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.catalog_path = self.root / "catalog.json"

    # ------------------------------------------------------------------ #
    # catalog bookkeeping
    # ------------------------------------------------------------------ #
    def _load_catalog(self) -> Dict[str, Any]:
        if not self.catalog_path.exists():
            return {"version": _CATALOG_VERSION, "names": {}, "traces": {}}
        with self.catalog_path.open() as fh:
            catalog = json.load(fh)
        catalog.setdefault("names", {})
        catalog.setdefault("traces", {})
        return catalog

    def _save_catalog(self, catalog: Dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".catalog.tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(catalog, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.catalog_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def object_path(self, digest: str) -> Path:
        """Canonical store location for a content digest."""
        return self.objects_dir / digest[:2] / f"{digest}.trc"

    def _register(self, store: TraceStore, name: str) -> TraceStore:
        """Record ``store`` (already at its object path) under ``name``."""
        catalog = self._load_catalog()
        digest = store.content_digest
        catalog["names"][name] = digest
        catalog["traces"][digest] = {
            "name": name,
            "p": store.p,
            "requests": store.total_requests,
            "bytes": store.nbytes,
            "allow_shared": store.allow_shared,
            "meta": store.meta,
        }
        self._save_catalog(catalog)
        return store

    # ------------------------------------------------------------------ #
    # resolution
    # ------------------------------------------------------------------ #
    def resolve(self, ref: str) -> str:
        """Resolve a name, full digest, or unambiguous digest prefix."""
        catalog = self._load_catalog()
        if ref in catalog["names"]:
            return catalog["names"][ref]
        if ref in catalog["traces"]:
            return ref
        if len(ref) >= 8:
            hits = [d for d in catalog["traces"] if d.startswith(ref)]
            if len(hits) == 1:
                return hits[0]
            if len(hits) > 1:
                raise TraceNotFoundError(f"digest prefix {ref!r} is ambiguous ({len(hits)} matches)")
        known = ", ".join(sorted(catalog["names"])) or "<registry is empty>"
        raise TraceNotFoundError(f"no registered trace matches {ref!r} (known: {known})")

    def __contains__(self, ref: str) -> bool:
        try:
            self.resolve(ref)
            return True
        except TraceNotFoundError:
            return False

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #
    def import_file(
        self,
        src: str | Path,
        name: Optional[str] = None,
        fmt: str = "auto",
        **import_kwargs: Any,
    ) -> TraceStore:
        """Import a trace file into the registry (streamed, deduplicated).

        The source is normalized into a store written next to the objects
        directory, then moved to its content-addressed path.  If an object
        with the same digest already exists, the new copy is discarded and
        the existing object is (re)labeled — identical content is stored
        once no matter how many times or from where it is imported.
        """
        src = Path(src)
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.objects_dir, suffix=".trc.import")
        os.close(fd)
        tmp_path = Path(tmp)
        try:
            store = import_trace(src, tmp_path, fmt=fmt, name=name, **import_kwargs)
            dest = self.object_path(store.content_digest)
            dest.parent.mkdir(parents=True, exist_ok=True)
            if dest.exists():
                tmp_path.unlink()
            else:
                os.replace(tmp_path, dest)
        except BaseException:
            try:
                tmp_path.unlink()
            except OSError:
                pass
            raise
        final = TraceStore(dest)
        return self._register(final, name or final.name)

    def add_workload(
        self,
        workload: ParallelWorkload,
        name: Optional[str] = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> TraceStore:
        """Register an in-memory workload (same dedup rules as files)."""
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.objects_dir, suffix=".trc.import")
        os.close(fd)
        tmp_path = Path(tmp)
        try:
            store = write_store(tmp_path, workload, chunk_rows=chunk_rows, meta=meta)
            dest = self.object_path(store.content_digest)
            dest.parent.mkdir(parents=True, exist_ok=True)
            if dest.exists():
                tmp_path.unlink()
            else:
                os.replace(tmp_path, dest)
        except BaseException:
            try:
                tmp_path.unlink()
            except OSError:
                pass
            raise
        final = TraceStore(dest)
        return self._register(final, name or workload.name)

    def get(self, ref: str) -> TraceStore:
        """Open a registered trace by name, digest, or digest prefix."""
        digest = self.resolve(ref)
        path = self.object_path(digest)
        if not path.exists():
            raise TraceNotFoundError(
                f"trace {ref!r} is cataloged as {digest[:12]} but its object file is missing"
            )
        return TraceStore(path)

    def workload(self, ref: str, mode: str = "mmap") -> ParallelWorkload:
        """Open a registered trace as a (store-backed) workload."""
        return self.get(ref).workload(mode=mode)

    def ls(self, prefix: Optional[str] = None) -> List[Dict[str, Any]]:
        """Catalog entries, sorted by (name, digest): name/digest/p/requests/bytes.

        The explicit two-level sort keeps listings byte-stable across
        platforms and insertion orders even if a future catalog allows
        one name to appear against several digests; ``prefix`` filters
        to a namespace (e.g. ``hard/`` for the adversary corpus).
        """
        catalog = self._load_catalog()
        items = [
            (name, digest)
            for name, digest in catalog["names"].items()
            if prefix is None or name.startswith(prefix)
        ]
        rows = []
        for name, digest in sorted(items):
            info = dict(catalog["traces"].get(digest, {}))
            info["name"] = name
            info["digest"] = digest
            rows.append(info)
        return rows

    def annotate(self, ref: str, meta: Mapping[str, Any]) -> Dict[str, Any]:
        """Shallow-merge ``meta`` into a trace's *catalog* metadata.

        The meta embedded in the store file is immutable (it is part of
        the content-addressed object); the catalog copy is the mutable,
        listing-facing view.  This is how several labels on one object
        can each carry their own bookkeeping — e.g. the adversary corpus
        records one recipe per algorithm against a shared workload.
        Returns the merged metadata.
        """
        digest = self.resolve(ref)
        catalog = self._load_catalog()
        info = catalog["traces"].get(digest)
        if info is None:
            raise TraceNotFoundError(f"trace {ref!r} has no catalog entry")
        merged = dict(info.get("meta") or {})
        merged.update(meta)
        info["meta"] = merged
        self._save_catalog(catalog)
        return merged

    def info(self, ref: str) -> Dict[str, Any]:
        """Full header-level detail for one registered trace."""
        store = self.get(ref)
        return {
            "name": store.name,
            "digest": store.content_digest,
            "path": str(store.path),
            "p": store.p,
            "requests": store.total_requests,
            "lengths": list(store.lengths),
            "bytes": store.nbytes,
            "chunk_rows": store.chunk_rows,
            "chunk_algo": str(store.header.get("chunk_algo", "sha256")),
            "allow_shared": store.allow_shared,
            "meta": store.meta,
        }

    def export(self, ref: str, dest: str | Path) -> Path:
        """Copy a registered store out of the registry to ``dest``."""
        store = self.get(ref)
        dest = Path(dest)
        dest.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=dest.parent, suffix=".trc.tmp")
        try:
            with os.fdopen(fd, "wb") as out, store.path.open("rb") as src:
                while True:
                    buf = src.read(1 << 20)
                    if not buf:
                        break
                    out.write(buf)
            os.replace(tmp, dest)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return dest

    def remove(self, ref: str) -> str:
        """Drop a name (and its object, once no other name references it)."""
        catalog = self._load_catalog()
        if ref in catalog["names"]:
            name = ref
            digest = catalog["names"][name]
        else:
            digest = self.resolve(ref)
            names = sorted(n for n, d in catalog["names"].items() if d == digest)
            name = names[0] if names else ""
        catalog["names"].pop(name, None)
        survivors = sorted(n for n, d in catalog["names"].items() if d == digest)
        if not survivors:
            catalog["traces"].pop(digest, None)
        elif digest in catalog["traces"]:
            # keep the per-digest display name pointing at a live label
            # (deterministically: first survivor in sort order)
            catalog["traces"][digest]["name"] = survivors[0]
        still_referenced = bool(survivors)
        self._save_catalog(catalog)
        if not still_referenced:
            path = self.object_path(digest)
            try:
                path.unlink()
                path.parent.rmdir()  # best-effort: drops the fan-out dir when empty
            except OSError:
                pass
        return digest


def default_registry(root: Optional[str | Path] = None) -> TraceRegistry:
    """The registry at ``root`` / ``$REPRO_TRACES_DIR`` / ``./.repro_traces``."""
    return TraceRegistry(root)
