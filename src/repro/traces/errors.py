"""Typed errors for the trace corpus subsystem.

Every failure mode of the store/registry stack has a distinct type, so
callers (and tests) can distinguish "this is not a trace store" from
"this store is damaged" from "no such registered trace" — a corrupt or
truncated chunk must surface as :class:`TraceCorruptError`, never as
garbage data or a bare ``struct``/``json`` exception.
"""

from __future__ import annotations

__all__ = [
    "TraceError",
    "TraceFormatError",
    "TraceVersionError",
    "TraceCorruptError",
    "TraceNotFoundError",
]


class TraceError(Exception):
    """Base class for all trace-subsystem errors."""


class TraceFormatError(TraceError, ValueError):
    """The file is not a valid trace store (bad magic, malformed header,
    or inconsistent column metadata)."""


class TraceVersionError(TraceFormatError):
    """The store was written by an incompatible (newer) schema version."""


class TraceCorruptError(TraceError):
    """The store's payload does not match its recorded digests or sizes
    (truncated file, flipped bits, partial write)."""


class TraceNotFoundError(TraceError, KeyError):
    """No registered trace matches the requested name or digest."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message readable
        return Exception.__str__(self)
