"""Candidate scoring: measured competitive ratios as cacheable work units.

One ``adversary-eval`` unit evaluates one ``(family, config, algorithm)``
candidate end to end — build the workload deterministically from scalars,
run the algorithm over its seeds, divide by the certified offline
baseline — so the unit's parameters stay canonically hashable (no arrays
travel in the key), hunts resume from the result cache, and a committed
hard instance replays byte-identically from its recorded metadata.

Objectives (higher = harder instance):

``det-par`` / ``rand-par``
    mean makespan over seeds ÷ :func:`repro.parallel.opt.makespan_lower_bound`
    at the construction's ``k`` (the algorithm runs with ``xi * k``).
``rand-green``
    mean RAND-GREEN impact over seeds ÷ the offline-optimal box profile
    on the candidate's densest sequence, on a ``(k, green_p)`` lattice.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Sequence, Tuple

import numpy as np

from ..exec.units import WorkUnit
from ..workloads.families import BuiltCandidate, build_candidate, get_family

__all__ = [
    "SEARCH_ALGORITHMS",
    "candidate_unit",
    "evaluate_adversary_params",
    "hand_built_grid",
    "hand_built_baseline",
]

#: The objectives the hunt steers; each gets its own record and corpus.
SEARCH_ALGORITHMS = ("det-par", "rand-par", "rand-green")


def candidate_unit(
    family: str,
    config: Mapping[str, Any],
    algorithm: str,
    *,
    workload_seed: int = 0,
    seeds: Sequence[int] = (0,),
    xi: int = 2,
) -> WorkUnit:
    """The work unit that scores one candidate under one algorithm."""
    if algorithm not in SEARCH_ALGORITHMS:
        known = ", ".join(SEARCH_ALGORITHMS)
        raise ValueError(f"unknown search algorithm {algorithm!r}; known: {known}")
    fam = get_family(family)  # fail fast on unknown families
    return WorkUnit(
        kind="adversary-eval",
        params={
            "family": fam.name,
            "config": dict(config),
            "workload_seed": int(workload_seed),
            "algorithm": algorithm,
            "seeds": tuple(int(s) for s in seeds),
            "xi": int(xi),
        },
        label=f"hunt/{algorithm}/{family}",
    )


def _green_sequence(built: BuiltCandidate) -> np.ndarray:
    """The candidate's densest (longest, lowest-index) sequence."""
    seqs = built.workload.sequences
    idx = max(range(len(seqs)), key=lambda i: (len(seqs[i]), -i))
    return np.ascontiguousarray(seqs[idx], dtype=np.int64)


def _eval_green(built: BuiltCandidate, seeds: Sequence[int]) -> Tuple[float, Tuple[float, ...]]:
    from ..core.box import HeightLattice
    from ..core.rand_green import RandGreen
    from ..green.offline import optimal_box_profile

    seq = _green_sequence(built)
    lattice = HeightLattice(built.k, built.green_p)
    offline = float(optimal_box_profile(seq, lattice, built.miss_cost).impact)
    impacts = []
    for seed in seeds:
        rng = np.random.default_rng(np.random.SeedSequence(entropy=int(seed), spawn_key=(97,)))
        impacts.append(float(RandGreen(lattice, built.miss_cost, rng).run(seq).impact))
    return offline, tuple(impacts)


def _eval_parallel(
    built: BuiltCandidate, algorithm: str, seeds: Sequence[int], xi: int
) -> Tuple[float, Tuple[float, ...]]:
    from ..parallel.opt import makespan_lower_bound
    from ..parallel.schedulers import RunSpec, make_algorithm

    offline = float(
        makespan_lower_bound(built.workload, built.k, built.miss_cost).value
    )
    makespans = []
    for seed in seeds:
        spec = RunSpec(
            algorithm=algorithm,
            cache_size=xi * built.k,
            miss_cost=built.miss_cost,
            xi=xi,
            seed=int(seed),
        )
        makespans.append(float(make_algorithm(spec).run(built.workload).makespan))
    return offline, tuple(makespans)


def evaluate_adversary_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Executor body for the ``adversary-eval`` unit kind.

    Rebuilds the candidate from scalars and returns a plain-scalar dict
    (cache- and JSON-friendly).  ``ratio`` is the steering objective.
    """
    algorithm = str(params["algorithm"])
    seeds = tuple(int(s) for s in params["seeds"])
    # det-par ignores its seed; collapse to one simulation for free caching
    if algorithm == "det-par":
        seeds = seeds[:1]
    built = build_candidate(
        str(params["family"]), dict(params["config"]), int(params["workload_seed"])
    )
    if algorithm == "rand-green":
        offline, values = _eval_green(built, seeds)
    else:
        offline, values = _eval_parallel(built, algorithm, seeds, int(params["xi"]))
    mean = float(sum(values) / len(values))
    return {
        "algorithm": algorithm,
        "ratio": float(mean / offline) if offline else float("inf"),
        "objective": mean,
        "offline": offline,
        "per_seed": values,
        "k": built.k,
        "p": built.workload.p,
        "miss_cost": built.miss_cost,
        "requests": built.workload.total_requests,
    }


#: The fixed E7-style instances the search must beat: the §4 construction
#: at its hand-chosen parameters (EXPERIMENTS.md documents the choices).
_HAND_BUILT_ELLS = {"quick": (2, 3), "full": (2, 3, 4)}


def hand_built_grid(scale: str = "quick") -> Tuple[Dict[str, Any], ...]:
    """The hand-built adversarial configs, as points of the search space."""
    ells = _HAND_BUILT_ELLS.get(scale, _HAND_BUILT_ELLS["quick"])
    return tuple({"ell": ell, "alpha": 0.25, "suffix_mult": 1} for ell in ells)


def hand_built_baseline(
    algorithm: str,
    scale: str = "quick",
    *,
    seeds: Sequence[int] = (0,),
    xi: int = 2,
    engine=None,
) -> Dict[str, Any]:
    """Best measured ratio over the hand-built grid (the record to beat).

    Evaluated through the same ``adversary-eval`` path as every search
    candidate, so the comparison is apples-to-apples and cached.
    """
    from ..exec.engine import current_engine

    eng = engine if engine is not None else current_engine()
    units = [
        candidate_unit("adversarial", cfg, algorithm, workload_seed=0, seeds=seeds, xi=xi)
        for cfg in hand_built_grid(scale)
    ]
    best: Dict[str, Any] = {}
    for cfg, value in zip(hand_built_grid(scale), eng.run(units)):
        if not isinstance(value, Mapping):
            continue  # a FailedCell under keep-going: skip, keep the rest
        if not best or float(value["ratio"]) > float(best["ratio"]):
            best = {"ratio": float(value["ratio"]), "config": dict(cfg)}
    if not best:
        raise RuntimeError(f"hand-built baseline evaluation failed for {algorithm!r}")
    return best
