"""The hard-instance corpus: the ``hard/`` namespace of the trace registry.

Every record-beating candidate the search finds is committed as
``hard/<algorithm>/<digest12>`` — content addressed, so re-finding the
same instance is a no-op — with the full evaluation recipe (family,
config, seeds, xi, measured ratio) in the catalog metadata, keyed by
algorithm since one workload may be hard for several.  That recipe
is what makes the corpus a *regression gate*: :func:`replay_corpus`
rebuilds each instance from scalars, checks the rebuilt bytes still hash
to the committed digest, re-measures the ratio through the same cached
work-unit path, and demands exact equality with the recorded value.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..traces.registry import TraceRegistry
from ..traces.store import content_digest_of
from ..workloads.families import build_candidate
from .scorers import candidate_unit

__all__ = [
    "CORPUS_PREFIX",
    "corpus_name",
    "commit_hard_instance",
    "corpus_entries",
    "replay_corpus",
]

CORPUS_PREFIX = "hard/"


def corpus_name(algorithm: str, digest: str) -> str:
    """Registry name for a hard instance: ``hard/<algorithm>/<digest12>``."""
    return f"{CORPUS_PREFIX}{algorithm}/{digest[:12]}"


def commit_hard_instance(
    registry: TraceRegistry,
    *,
    algorithm: str,
    family: str,
    config: Mapping[str, Any],
    workload_seed: int,
    seeds: tuple,
    xi: int,
    ratio: float,
    scale: str,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Serialize one record-beating candidate into the registry.

    The workload is rebuilt from its scalar recipe (the only authority),
    so the committed bytes are exactly what any replay will rebuild.
    Returns the catalog entry summary (name, digest, ratio).
    """
    built = build_candidate(family, config, workload_seed)
    digest = content_digest_of(built.workload.sequences)
    name = corpus_name(algorithm, digest)
    recipe = {
        "algorithm": algorithm,
        "family": family,
        "config": dict(config),
        "workload_seed": int(workload_seed),
        "seeds": [int(s) for s in seeds],
        "xi": int(xi),
        "ratio": float(ratio),
        "scale": scale,
        **(dict(extra) if extra else {}),
    }
    # The same workload bytes can beat the record for several algorithms,
    # so recipes are keyed by algorithm against the shared digest.  Read
    # any recipes already in the catalog first: registration resets the
    # catalog meta to the (first-written, immutable) store file's copy,
    # so the full merged map must be re-annotated after every add.
    prior: Dict[str, Any] = {}
    for row in registry.ls(prefix=CORPUS_PREFIX):
        if row["digest"] == digest:
            prior = dict((row.get("meta") or {}).get("hard_instance") or {})
            break
    recipes = {**prior, algorithm: recipe}
    store = registry.add_workload(
        built.workload, name=name, meta={"hard_instance": recipes}
    )
    if store.content_digest != digest:
        raise RuntimeError(
            f"corpus commit digest drift: computed {digest[:12]} but stored "
            f"{store.content_digest[:12]} for {name}"
        )
    registry.annotate(digest, {"hard_instance": recipes})
    return {"name": name, "digest": digest, "algorithm": algorithm, "ratio": float(ratio)}


def corpus_entries(
    registry: TraceRegistry, algorithm: Optional[str] = None
) -> List[Dict[str, Any]]:
    """The committed hard instances (name-sorted), with their recipes."""
    entries = []
    for row in registry.ls(prefix=CORPUS_PREFIX):
        parts = row["name"].split("/")
        if len(parts) != 3:
            continue
        name_algo = parts[1]
        if algorithm is not None and name_algo != algorithm:
            continue
        recipes = (row.get("meta") or {}).get("hard_instance") or {}
        recipe = recipes.get(name_algo)
        if not recipe:
            continue
        entries.append(
            {
                "name": row["name"],
                "digest": row["digest"],
                "p": row.get("p"),
                "requests": row.get("requests"),
                **{k: recipe[k] for k in ("algorithm", "family", "ratio")},
                "recipe": dict(recipe),
            }
        )
    return entries


def replay_corpus(
    registry: TraceRegistry,
    algorithm: Optional[str] = None,
    engine=None,
) -> List[Dict[str, Any]]:
    """Re-measure every committed hard instance; demand exact agreement.

    Each report row carries three checks: ``digest_ok`` (the scalar
    recipe still rebuilds the committed bytes), ``ratio_ok`` (the
    re-measured ratio equals the recorded one, float-exact), and their
    conjunction ``ok``.  Any ``False`` means an algorithm, generator, or
    scoring change silently moved a recorded result — the regression
    this corpus exists to catch.
    """
    from ..exec.engine import current_engine

    eng = engine if engine is not None else current_engine()
    entries = corpus_entries(registry, algorithm)
    units = []
    for entry in entries:
        recipe = entry["recipe"]
        units.append(
            candidate_unit(
                recipe["family"],
                recipe["config"],
                recipe["algorithm"],
                workload_seed=recipe["workload_seed"],
                seeds=tuple(recipe["seeds"]),
                xi=recipe["xi"],
            )
        )
    values = eng.run(units) if units else []
    report = []
    for entry, value in zip(entries, values):
        recipe = entry["recipe"]
        rebuilt = build_candidate(
            recipe["family"], recipe["config"], recipe["workload_seed"]
        )
        digest_ok = content_digest_of(rebuilt.workload.sequences) == entry["digest"]
        measured = float(value["ratio"]) if isinstance(value, Mapping) else float("nan")
        ratio_ok = measured == float(recipe["ratio"])
        report.append(
            {
                "name": entry["name"],
                "algorithm": recipe["algorithm"],
                "recorded": float(recipe["ratio"]),
                "measured": measured,
                "digest_ok": digest_ok,
                "ratio_ok": ratio_ok,
                "ok": digest_ok and ratio_ok,
            }
        )
    return report
