"""Candidate proposal: mutation, crossover, and coordinate probes.

All proposal operators work on plain ``(family, config)`` pairs — the
scalar form the scorers hash — and draw randomness only from explicit
generators, so a round's proposal set is a pure function of the hunt
seed and round index (the determinism the resume guarantee rests on).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Tuple

import numpy as np

from ..workloads.families import get_family

__all__ = [
    "canonical_config",
    "random_config",
    "mutate",
    "crossover",
    "coordinate_probes",
]


def canonical_config(config: Mapping[str, Any]) -> str:
    """Deduplication identity: sorted-key JSON of the clipped config."""
    return json.dumps(dict(config), sort_keys=True)


def random_config(family: str, rng: np.random.Generator, scale: str = "quick") -> Dict[str, Any]:
    """An independent uniform draw from the family's bounded space."""
    fam = get_family(family)
    return {p.name: p.sample(rng, scale) for p in fam.params}


def mutate(
    family: str,
    config: Mapping[str, Any],
    rng: np.random.Generator,
    scale: str = "quick",
) -> Dict[str, Any]:
    """Perturb ~1 parameter locally (each with probability ``1/n_params``).

    At least one parameter always moves — proposing an exact copy of an
    elite wastes an evaluation slot (it would be deduplicated anyway).
    """
    fam = get_family(family)
    cfg = fam.clip_config(config, scale)
    n = len(fam.params)
    moved = False
    for p in fam.params:
        if rng.random() < 1.0 / n:
            new = p.mutate(cfg[p.name], rng, scale)
            moved = moved or new != cfg[p.name]
            cfg[p.name] = new
    if not moved:
        p = fam.params[int(rng.integers(0, n))]
        neighbors = p.neighbors(cfg[p.name], scale)
        if neighbors:
            cfg[p.name] = neighbors[int(rng.integers(0, len(neighbors)))]
    return cfg


def crossover(
    family: str,
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    rng: np.random.Generator,
    scale: str = "quick",
) -> Dict[str, Any]:
    """Uniform crossover of two same-family configs (per-param coin flip)."""
    fam = get_family(family)
    ca, cb = fam.clip_config(a, scale), fam.clip_config(b, scale)
    return {p.name: (ca if rng.random() < 0.5 else cb)[p.name] for p in fam.params}


def coordinate_probes(
    family: str,
    config: Mapping[str, Any],
    scale: str = "quick",
) -> List[Tuple[str, Dict[str, Any]]]:
    """Deterministic one-axis neighbors of ``config`` (the refiner step).

    Returns ``(param_name, probe_config)`` pairs — every up/down neighbor
    along every axis, in parameter order — so the loop can climb the best
    candidate one coordinate at a time without any randomness.
    """
    fam = get_family(family)
    cfg = fam.clip_config(config, scale)
    probes: List[Tuple[str, Dict[str, Any]]] = []
    for p in fam.params:
        for neighbor in p.neighbors(cfg[p.name], scale):
            probe = dict(cfg)
            probe[p.name] = neighbor
            probes.append((p.name, probe))
    return probes
