"""Closed-loop adversary search: hunt for hard instances automatically.

ROADMAP item 5.  The paper's lower bound is witnessed in this repo by
hand-built §4 instances; this package *searches* for hard instances
instead: a propose → execute → score → refine loop over the registered
:mod:`repro.workloads.families` parameter spaces, scored by measured
competitive ratio against the certified offline baselines, steered
toward the worst cases found.  Record-beating instances are committed
to the content-addressed trace registry under ``hard/<algo>/<digest>``
and replayed by CI as a regression corpus.

Layers
------
:mod:`.scorers`
    Candidate evaluation as cacheable ``adversary-eval`` work units.
:mod:`.proposers`
    Mutation, crossover, and coordinate-descent probes over family
    parameter spaces.
:mod:`.corpus`
    The ``hard/`` registry namespace: commit and byte-exact replay.
:mod:`.loop`
    The search loop itself, checkpointed through the run manifest
    machinery so hunts survive SIGINT and resume deterministically.
"""

from .corpus import corpus_entries, corpus_name, replay_corpus
from .loop import AdversarySearch, HuntConfig, SearchState
from .proposers import coordinate_probes, crossover, mutate, random_config
from .scorers import (
    SEARCH_ALGORITHMS,
    candidate_unit,
    evaluate_adversary_params,
    hand_built_baseline,
    hand_built_grid,
)

__all__ = [
    "AdversarySearch",
    "HuntConfig",
    "SearchState",
    "SEARCH_ALGORITHMS",
    "candidate_unit",
    "evaluate_adversary_params",
    "hand_built_baseline",
    "hand_built_grid",
    "random_config",
    "mutate",
    "crossover",
    "coordinate_probes",
    "corpus_name",
    "corpus_entries",
    "replay_corpus",
]
