"""The propose → execute → score → refine loop.

A hunt is a fixed number of *rounds*.  Each round derives its RNG from
``(hunt seed, round index)`` alone, proposes candidates from the current
per-algorithm elite populations (mutation + crossover), refines the
record holder with deterministic coordinate probes, adds fresh random
exploration, evaluates everything through the cached execution engine,
and commits every candidate that beats the current record to the
``hard/`` corpus.  State is persisted at round boundaries through the
run-manifest machinery (``manifest.json`` names the rounds;
``search_state.json`` carries populations and records), so a SIGINT at
any point resumes to the byte-identical final state: the interrupted
round's proposals are a pure function of state already on disk, and the
result cache replays its evaluations for free.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exec.checkpoint import RunCheckpoint, new_run_id
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..traces.registry import TraceRegistry, default_registry
from ..workloads.families import family_names, get_family
from .corpus import commit_hard_instance
from .proposers import canonical_config, coordinate_probes, crossover, mutate, random_config
from .scorers import SEARCH_ALGORITHMS, candidate_unit, hand_built_grid

__all__ = ["HuntConfig", "SearchState", "AdversarySearch", "STATE_FILENAME"]

STATE_FILENAME = "search_state.json"


@dataclass(frozen=True)
class HuntConfig:
    """Everything that determines a hunt's trajectory (and only that).

    Two hunts with equal configs produce identical round records and
    corpus digests; every field is a scalar or tuple of scalars so the
    config JSON-roundtrips through the run manifest.
    """

    seed: int = 0
    rounds: int = 5
    scale: str = "quick"
    population: int = 4
    fresh: int = 2
    max_probes: int = 6
    eval_seeds: int = 3
    xi: int = 2
    commit_top: int = 3
    algorithms: Tuple[str, ...] = SEARCH_ALGORITHMS
    families: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.scale not in ("quick", "full"):
            raise ValueError(f"scale must be 'quick' or 'full', got {self.scale!r}")
        unknown = set(self.algorithms) - set(SEARCH_ALGORITHMS)
        if unknown:
            raise ValueError(f"unknown algorithms {sorted(unknown)}; known: {SEARCH_ALGORITHMS}")
        for name in self.families:
            get_family(name)  # raises with the known names

    def resolved_families(self) -> Tuple[str, ...]:
        return self.families or family_names()

    def seed_tuple(self) -> Tuple[int, ...]:
        """Replication seeds for randomized evaluations."""
        return tuple(range(self.eval_seeds))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rounds": self.rounds,
            "scale": self.scale,
            "population": self.population,
            "fresh": self.fresh,
            "max_probes": self.max_probes,
            "eval_seeds": self.eval_seeds,
            "xi": self.xi,
            "commit_top": self.commit_top,
            "algorithms": list(self.algorithms),
            "families": list(self.families),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HuntConfig":
        return cls(
            seed=int(data["seed"]),
            rounds=int(data["rounds"]),
            scale=str(data["scale"]),
            population=int(data["population"]),
            fresh=int(data["fresh"]),
            max_probes=int(data["max_probes"]),
            eval_seeds=int(data["eval_seeds"]),
            xi=int(data["xi"]),
            commit_top=int(data["commit_top"]),
            algorithms=tuple(data["algorithms"]),
            families=tuple(data["families"]),
        )


@dataclass
class SearchState:
    """Mutable hunt state, persisted at every round boundary."""

    baseline: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    record: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    population: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    rounds: List[Dict[str, Any]] = field(default_factory=list)
    committed: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "baseline": self.baseline,
            "record": self.record,
            "population": self.population,
            "rounds": self.rounds,
            "committed": self.committed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchState":
        return cls(
            baseline={k: dict(v) for k, v in data.get("baseline", {}).items()},
            record={k: dict(v) for k, v in data.get("record", {}).items()},
            population={k: [dict(e) for e in v] for k, v in data.get("population", {}).items()},
            rounds=[dict(r) for r in data.get("rounds", [])],
            committed=[dict(c) for c in data.get("committed", [])],
        )


@dataclass(frozen=True)
class _Proposal:
    """One candidate queued for evaluation under one set of algorithms."""

    family: str
    config: Mapping[str, Any]
    workload_seed: int
    algorithms: Tuple[str, ...]
    origin: str  # seed / mutate / crossover / probe / fresh

    def identity(self, algorithm: str) -> Tuple[str, str, int, str]:
        return (self.family, canonical_config(self.config), self.workload_seed, algorithm)


class AdversarySearch:
    """One hunt: owns the checkpoint, state file, registry, and loop."""

    def __init__(
        self,
        config: HuntConfig,
        checkpoint: RunCheckpoint,
        registry: Optional[TraceRegistry] = None,
        engine=None,
    ) -> None:
        self.config = config
        self.checkpoint = checkpoint
        self.registry = registry if registry is not None else default_registry()
        self._engine = engine
        self.state = SearchState()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @classmethod
    def start(
        cls,
        config: HuntConfig,
        runs_root: Optional[os.PathLike] = None,
        run_id: Optional[str] = None,
        registry: Optional[TraceRegistry] = None,
        engine=None,
    ) -> "AdversarySearch":
        """Create a fresh hunt with one manifest entry per round."""
        names = [f"round-{r}" for r in range(config.rounds)]
        ckpt = RunCheckpoint.start(
            names,
            {"hunt": config.to_dict()},
            root=runs_root,
            run_id=run_id or new_run_id("hunt"),
        )
        search = cls(config, ckpt, registry=registry, engine=engine)
        search.save_state()
        return search

    @classmethod
    def resume(
        cls,
        run_id: str,
        runs_root: Optional[os.PathLike] = None,
        registry: Optional[TraceRegistry] = None,
        engine=None,
    ) -> "AdversarySearch":
        """Reopen an interrupted hunt from its manifest and state file."""
        ckpt = RunCheckpoint.load(run_id, root=runs_root)
        if "hunt" not in ckpt.manifest.config:
            raise ValueError(f"run {run_id!r} is not a hunt (no hunt config in manifest)")
        config = HuntConfig.from_dict(ckpt.manifest.config["hunt"])
        search = cls(config, ckpt, registry=registry, engine=engine)
        state_path = search.state_path
        if state_path.exists():
            search.state = SearchState.from_dict(json.loads(state_path.read_text()))
        return search

    @property
    def state_path(self) -> Path:
        return self.checkpoint.run_dir / STATE_FILENAME

    def save_state(self) -> None:
        """Atomically persist the search state next to the manifest."""
        self.checkpoint.run_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.checkpoint.run_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(self.state.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.state_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    # evaluation plumbing
    # ------------------------------------------------------------------ #
    def _eng(self):
        if self._engine is not None:
            return self._engine
        from ..exec.engine import current_engine

        return current_engine()

    def _evaluate(self, proposals: Sequence[_Proposal]) -> List[Tuple[_Proposal, str, Dict[str, Any]]]:
        """Run every (proposal, algorithm) pair; skip failed cells."""
        pairs: List[Tuple[_Proposal, str]] = []
        units = []
        for prop in proposals:
            for algo in prop.algorithms:
                pairs.append((prop, algo))
                units.append(
                    candidate_unit(
                        prop.family,
                        prop.config,
                        algo,
                        workload_seed=prop.workload_seed,
                        seeds=self.config.seed_tuple(),
                        xi=self.config.xi,
                    )
                )
        results = []
        for (prop, algo), value in zip(pairs, self._eng().run(units)):
            if isinstance(value, Mapping):
                results.append((prop, algo, dict(value)))
                obs_metrics.counter("search.candidates", algorithm=algo).inc()
            else:
                obs_metrics.counter("search.failed", algorithm=algo).inc()
        return results

    def _ensure_baseline(self) -> None:
        """Measure the hand-built record-to-beat once per hunt (cached)."""
        if self.state.baseline:
            return
        with obs_tracing.span("search.baseline"):
            grid = hand_built_grid(self.config.scale)
            proposals = [
                _Proposal("adversarial", cfg, 0, tuple(self.config.algorithms), "seed")
                for cfg in grid
            ]
            best: Dict[str, Dict[str, Any]] = {}
            for prop, algo, value in self._evaluate(proposals):
                ratio = float(value["ratio"])
                if algo not in best or ratio > best[algo]["ratio"]:
                    best[algo] = {"ratio": ratio, "config": dict(prop.config)}
        missing = set(self.config.algorithms) - set(best)
        if missing:
            raise RuntimeError(f"baseline evaluation failed for {sorted(missing)}")
        self.state.baseline = best
        # the record starts at the hand-built bar: only strictly-harder
        # instances are ever committed
        self.state.record = {
            algo: {
                "ratio": info["ratio"],
                "family": "adversarial",
                "config": dict(info["config"]),
                "workload_seed": 0,
            }
            for algo, info in best.items()
        }
        for algo, info in best.items():
            obs_metrics.gauge("search.best_ratio", algorithm=algo).record_max(info["ratio"])

    # ------------------------------------------------------------------ #
    # proposal generation
    # ------------------------------------------------------------------ #
    def _round_rng(self, round_index: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(entropy=self.config.seed, spawn_key=(round_index,))
        )

    def _seed_proposals(self) -> List[_Proposal]:
        """Round 0: family defaults plus the hand-built adversarial grid."""
        algos = tuple(self.config.algorithms)
        proposals = [
            _Proposal("adversarial", cfg, 0, algos, "seed")
            for cfg in hand_built_grid(self.config.scale)
        ]
        for name in self.config.resolved_families():
            fam = get_family(name)
            proposals.append(
                _Proposal(name, fam.default_config(self.config.scale), 0, algos, "seed")
            )
        return proposals

    def _refine_proposals(self, round_index: int, rng: np.random.Generator) -> List[_Proposal]:
        """Rounds > 0: exploit elites, refine records, explore fresh."""
        cfg = self.config
        proposals: List[_Proposal] = []
        for algo in cfg.algorithms:
            elites = self.state.population.get(algo, [])[: cfg.population]
            for elite in elites:
                mutant = mutate(elite["family"], elite["config"], rng, cfg.scale)
                proposals.append(
                    _Proposal(elite["family"], mutant, int(elite["workload_seed"]), (algo,), "mutate")
                )
            by_family: Dict[str, List[Dict[str, Any]]] = {}
            for elite in elites:
                by_family.setdefault(elite["family"], []).append(elite)
            for family, members in sorted(by_family.items()):
                if len(members) >= 2:
                    child = crossover(family, members[0]["config"], members[1]["config"], rng, cfg.scale)
                    proposals.append(
                        _Proposal(family, child, int(members[0]["workload_seed"]), (algo,), "crossover")
                    )
            rec = self.state.record.get(algo)
            if rec:
                probes = coordinate_probes(rec["family"], rec["config"], cfg.scale)
                if probes:
                    start = (round_index * cfg.max_probes) % len(probes)
                    picked = [probes[(start + i) % len(probes)] for i in range(min(cfg.max_probes, len(probes)))]
                    for _, probe in picked:
                        proposals.append(
                            _Proposal(
                                rec["family"], probe, int(rec["workload_seed"]), (algo,), "probe"
                            )
                        )
        families = self.config.resolved_families()
        algos = tuple(cfg.algorithms)
        for _ in range(cfg.fresh):
            family = families[int(rng.integers(0, len(families)))]
            seed = 0 if family == "adversarial" else int(rng.integers(0, 1 << 20))
            proposals.append(
                _Proposal(family, random_config(family, rng, cfg.scale), seed, algos, "fresh")
            )
        return proposals

    def _proposals(self, round_index: int) -> List[_Proposal]:
        rng = self._round_rng(round_index)
        if round_index == 0 or not self.state.population:
            proposals = self._seed_proposals() + self._refine_proposals(round_index, rng)
        else:
            proposals = self._refine_proposals(round_index, rng)
        # dedupe against this round (by full identity) keeping first
        seen = set()
        unique: List[_Proposal] = []
        for prop in proposals:
            key = (prop.family, canonical_config(prop.config), prop.workload_seed, prop.algorithms)
            if key in seen:
                continue
            seen.add(key)
            unique.append(prop)
        return unique

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def _merge_population(
        self, algo: str, scored: List[Tuple[_Proposal, Dict[str, Any]]]
    ) -> None:
        entries = {  # existing population, keyed for dedup
            (e["family"], canonical_config(e["config"]), int(e["workload_seed"])): dict(e)
            for e in self.state.population.get(algo, [])
        }
        for prop, value in scored:
            key = (prop.family, canonical_config(prop.config), prop.workload_seed)
            entry = {
                "family": prop.family,
                "config": dict(prop.config),
                "workload_seed": prop.workload_seed,
                "ratio": float(value["ratio"]),
            }
            if key not in entries or entry["ratio"] > entries[key]["ratio"]:
                entries[key] = entry
        ranked = sorted(
            entries.values(),
            key=lambda e: (-e["ratio"], e["family"], canonical_config(e["config"]), e["workload_seed"]),
        )
        self.state.population[algo] = ranked[: max(self.config.population, 1)]

    def _run_round(self, round_index: int) -> Dict[str, Any]:
        with obs_tracing.span("search.round", round=round_index):
            proposals = self._proposals(round_index)
            results = self._evaluate(proposals)
            per_algo: Dict[str, List[Tuple[_Proposal, Dict[str, Any]]]] = {}
            for prop, algo, value in results:
                per_algo.setdefault(algo, []).append((prop, value))
            new_commits: List[str] = []
            best_ratios: Dict[str, float] = {}
            for algo in self.config.algorithms:
                scored = per_algo.get(algo, [])
                self._merge_population(algo, scored)
                record = self.state.record.get(algo, {"ratio": float("-inf")})
                beaters = sorted(
                    (pair for pair in scored if float(pair[1]["ratio"]) > float(record["ratio"])),
                    key=lambda pair: (-float(pair[1]["ratio"]), canonical_config(pair[0].config)),
                )
                committed_digests = set()
                for prop, value in beaters:
                    if len(committed_digests) >= self.config.commit_top:
                        break
                    entry = commit_hard_instance(
                        self.registry,
                        algorithm=algo,
                        family=prop.family,
                        config=prop.config,
                        workload_seed=prop.workload_seed,
                        seeds=self.config.seed_tuple(),
                        xi=self.config.xi,
                        ratio=float(value["ratio"]),
                        scale=self.config.scale,
                        extra={
                            "hunt_seed": self.config.seed,
                            "round": round_index,
                            "origin": prop.origin,
                            "baseline": self.state.baseline[algo]["ratio"],
                        },
                    )
                    if entry["digest"] in committed_digests:
                        continue
                    committed_digests.add(entry["digest"])
                    new_commits.append(entry["name"])
                    self.state.committed.append(entry)
                    obs_metrics.counter("search.commits", algorithm=algo).inc()
                if beaters:
                    top_prop, top_value = beaters[0]
                    self.state.record[algo] = {
                        "ratio": float(top_value["ratio"]),
                        "family": top_prop.family,
                        "config": dict(top_prop.config),
                        "workload_seed": top_prop.workload_seed,
                    }
                best_ratios[algo] = float(self.state.record.get(algo, {}).get("ratio", 0.0))
                obs_metrics.gauge("search.best_ratio", algorithm=algo).record_max(best_ratios[algo])
            obs_metrics.counter("search.rounds").inc()
            return {
                "round": round_index,
                "evaluated": len(results),
                "proposed": len(proposals),
                "new_commits": new_commits,
                "best": best_ratios,
            }

    def run(self, progress=None) -> SearchState:
        """Execute (or continue) the hunt through its final round.

        ``progress`` is an optional callable receiving each completed
        round's record dict (the CLI's live log line).  Raises whatever
        the engine raises — notably ``KeyboardInterrupt``, which leaves
        the manifest resumable at the last completed round.
        """
        self.checkpoint.mark_status("running")
        self._ensure_baseline()
        self.save_state()
        for name in self.checkpoint.manifest.remaining():
            round_index = int(name.split("-", 1)[1])
            record = self._run_round(round_index)
            self.state.rounds.append(record)
            self.save_state()
            self.checkpoint.mark_experiment(name)
            if progress is not None:
                progress(record)
        self.checkpoint.mark_status("complete")
        return self.state
