"""Archival (de)serialization of simulation results.

Experiments that take minutes should not need re-running to re-analyze:
this module round-trips a :class:`~repro.parallel.events.ParallelRunResult`
— completion times, full box trace, parameters, and JSON-safe metadata —
through a single ``.npz`` file.  The audits (`audit_well_rounded`,
`era_analysis`, `render_gantt`, …) all run off the stored trace, so a
saved result is fully re-analyzable.

Scheduler-specific metadata objects (phase records, chunk stats) are
stored in a JSON-safe projection: dataclasses become dicts, tuples become
lists; consumers that need the exact original objects should re-run.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List

import numpy as np

from .events import BoxRecord, ParallelRunResult

__all__ = ["save_result", "load_result"]

_TRACE_FIELDS = ("proc", "height", "start", "end", "served_start", "served_end", "hits", "faults", "phase")


def _json_safe(obj: Any) -> Any:
    """Project metadata into JSON-encodable structures."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {k: _json_safe(v) for k, v in dataclasses.asdict(obj).items()}
    if isinstance(obj, dict):
        return {str(k): _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def save_result(result: ParallelRunResult, path: str | Path) -> None:
    """Write a result (trace included) to ``.npz``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    trace_mat = np.array(
        [[getattr(r, f) for f in _TRACE_FIELDS] for r in result.trace], dtype=np.int64
    ).reshape(len(result.trace), len(_TRACE_FIELDS))
    tags = np.array([r.tag for r in result.trace], dtype=object) if result.trace else np.array([], dtype=object)
    np.savez_compressed(
        path,
        algorithm=np.array(result.algorithm),
        completion_times=result.completion_times,
        cache_size=np.array(result.cache_size),
        miss_cost=np.array(result.miss_cost),
        trace=trace_mat,
        trace_tags=tags,
        meta=np.array(json.dumps(_json_safe(result.meta))),
    )


def load_result(path: str | Path) -> ParallelRunResult:
    """Load a result written by :func:`save_result`.

    Metadata comes back as the JSON-safe projection (dicts/lists), not the
    original dataclasses.
    """
    with np.load(Path(path), allow_pickle=True) as data:
        trace_mat = data["trace"]
        tags = data["trace_tags"]
        trace: List[BoxRecord] = []
        for row, tag in zip(trace_mat, tags):
            kwargs: Dict[str, int] = {f: int(v) for f, v in zip(_TRACE_FIELDS, row)}
            trace.append(BoxRecord(tag=str(tag), **kwargs))
        return ParallelRunResult(
            algorithm=str(data["algorithm"]),
            completion_times=np.asarray(data["completion_times"], dtype=np.int64),
            trace=trace,
            cache_size=int(data["cache_size"]),
            miss_cost=int(data["miss_cost"]),
            meta=json.loads(str(data["meta"])),
        )
