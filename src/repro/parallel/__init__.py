"""Parallel-paging simulators, baselines, lower bounds, and metrics.

The algorithms under test (RAND-PAR, DET-PAR, the black-box construction)
live in :mod:`repro.core`; this package provides everything around them:

* :mod:`~repro.parallel.events` — event scheduler, run results, box traces,
  capacity ledger, and the ``$REPRO_SIM`` backend switch;
* :mod:`~repro.parallel.streaming` — trace-store-fed execution in bounded
  memory (:class:`StreamingWorkload`, :class:`BoxServer`);
* :mod:`~repro.parallel.schedulers` — the algorithm protocol + registry;
* :mod:`~repro.parallel.baselines` — EQUAL-PARTITION, BEST-STATIC-PARTITION;
* :mod:`~repro.parallel.timestep` — GLOBAL-LRU (unpartitioned shared cache);
* :mod:`~repro.parallel.opt` — certified lower bounds on OPT;
* :mod:`~repro.parallel.metrics` — uniform experiment summaries.

Importing this package registers every built-in algorithm (including the
core ones) in :data:`~repro.parallel.schedulers.ALGORITHM_REGISTRY`.
"""

import numpy as _np

from .baselines import BestStaticPartition, EqualPartition, static_partition_makespan
from .exact import exact_two_proc_makespan
from .fairness import FairnessReport, fairness_report, jain_index
from .events import (
    SIM_ENV,
    BoxRecord,
    EventScheduler,
    ParallelRunResult,
    capacity_profile,
    peak_concurrent_height,
    sim_backend,
)
from .metrics import RunSummary, cache_utilization, summarize
from .opt import MakespanLowerBound, makespan_lower_bound, mean_completion_lower_bound
from .serialize import load_result, save_result
from .schedulers import ALGORITHM_REGISTRY, ParallelPager, RunSpec, make_algorithm, register_algorithm
from .streaming import (
    BoxFeed,
    BoxServer,
    StreamingWorkload,
    make_box_server,
    open_streaming,
    request_feed,
)
from .timestep import GlobalLRU
from .verify import TraceVerification, verify_trace

__all__ = [
    "BestStaticPartition",
    "EqualPartition",
    "static_partition_makespan",
    "exact_two_proc_makespan",
    "FairnessReport",
    "fairness_report",
    "jain_index",
    "SIM_ENV",
    "sim_backend",
    "EventScheduler",
    "BoxRecord",
    "ParallelRunResult",
    "capacity_profile",
    "peak_concurrent_height",
    "BoxFeed",
    "BoxServer",
    "StreamingWorkload",
    "make_box_server",
    "open_streaming",
    "request_feed",
    "RunSummary",
    "cache_utilization",
    "summarize",
    "MakespanLowerBound",
    "makespan_lower_bound",
    "mean_completion_lower_bound",
    "load_result",
    "save_result",
    "ALGORITHM_REGISTRY",
    "ParallelPager",
    "RunSpec",
    "make_algorithm",
    "register_algorithm",
    "GlobalLRU",
    "TraceVerification",
    "verify_trace",
]


def _register_builtins() -> None:
    """Register all built-in algorithms by name (idempotent per import).

    The core-algorithm imports happen inside the factories, not here:
    ``repro.core`` imports ``repro.parallel.events`` at module load, so a
    top-level import back into ``repro.core`` would be circular.
    """
    if "rand-par" in ALGORITHM_REGISTRY:
        return

    def _rand_par(k: int, s: int, seed: int) -> ParallelPager:
        from ..core.rand_par import RandPar

        return RandPar(k, s, _np.random.default_rng(seed))

    def _det_par(k: int, s: int, seed: int) -> ParallelPager:
        from ..core.det_par import DetPar

        return DetPar(k, s)

    def _black_box(k: int, s: int, seed: int) -> ParallelPager:
        from ..core.black_box import BlackBoxPar

        return BlackBoxPar(k, s)

    register_algorithm("rand-par", _rand_par)
    register_algorithm("det-par", _det_par)
    register_algorithm("black-box-green", _black_box)
    register_algorithm("equal-partition", lambda k, s, seed: EqualPartition(k, s))
    register_algorithm("best-static-partition", lambda k, s, seed: BestStaticPartition(k, s))
    register_algorithm("global-lru", lambda k, s, seed: GlobalLRU(k, s))


_register_builtins()
