"""Event scheduling and shared record types for parallel-paging simulations.

Every parallel algorithm in this repository — RAND-PAR, DET-PAR, the
black-box packing baseline, and the structured OPT schedules — produces the
same artifact: a :class:`ParallelRunResult` holding per-processor
completion times plus a full :class:`BoxRecord` trace.  The trace is what
makes the theory auditable: the well-roundedness checker (§3.3), the
balance checker (Lemma 7), and the capacity ledger all operate on it
without re-running the simulation.

This module also owns :class:`EventScheduler`, the deterministic min-heap
event queue that drives every simulator in :mod:`repro.parallel`: the
GLOBAL-LRU ``busy_until`` heap, DET-PAR's segment/strip events, and the
black-box packing loop all pop from the same structure, so tie-breaking
is defined in exactly one place.  The retained per-timestep loops stay
available as the reference oracle behind the ``$REPRO_SIM`` switch
(:func:`sim_backend`), mirroring the ``run_box`` / ``run_box_fast``
pattern of :mod:`repro.paging.kernel`.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SIM_ENV",
    "sim_backend",
    "resolve_sim_backend",
    "EventScheduler",
    "BoxRecord",
    "ParallelRunResult",
    "peak_concurrent_height",
    "capacity_profile",
]

#: Environment variable selecting the parallel-simulator backend.
SIM_ENV = "REPRO_SIM"


def sim_backend() -> str:
    """The active parallel-simulator backend: ``"event"`` (default),
    ``"reference"``, or ``"auto"``.

    Controlled by ``$REPRO_SIM``.  The event and reference backends
    produce byte-identical results (completion times, traces, ``sim.*``
    counters) — the reference per-timestep / per-request loops exist as a
    cross-check oracle for the differential harness and as an escape
    hatch, exactly like ``$REPRO_KERNEL`` for the box kernel.  ``auto``
    defers the choice to each simulator cell via
    :func:`resolve_sim_backend`, which logs its pick in ``sim.*``
    metrics.
    """
    value = os.environ.get(SIM_ENV, "event").strip().lower() or "event"
    if value in ("event", "fast"):
        return "event"
    if value in ("reference", "ref", "timestep"):
        return "reference"
    if value == "auto":
        return "auto"
    raise ValueError(
        f"unknown {SIM_ENV} backend {value!r}; expected 'event', 'reference', or 'auto'"
    )


def resolve_sim_backend(
    cell: str,
    *,
    streaming: bool = False,
    p: int = 1,
    lengths: Optional[Sequence[int]] = None,
) -> str:
    """Resolve ``sim_backend()`` to a concrete backend for one simulator cell.

    Under ``REPRO_SIM=auto`` this applies a per-cell heuristic; any other
    setting passes straight through.  The heuristic encodes what the
    stream benchmark measures: the event backend wins whenever box probes
    are vectorized cheaply (the native kernel tier, or non-streamed runs
    where :class:`~repro.paging.kernel.SequenceKernel` probes amortize),
    and loses only on streamed per-chunk serving with the numpy-only
    kernel on heavily imbalanced feeds, where per-box overhead on
    mostly-tiny boxes dominates.  Every resolution is recorded under the
    ``sim.backend.auto`` counter with the cell name, the chosen backend,
    and the deciding reason, so benchmark rows can assert which simulator
    actually ran.
    """
    mode = sim_backend()
    if mode != "auto":
        return mode
    from ..obs import metrics as obs_metrics
    from ..paging.kernel import kernel_backend

    if kernel_backend() == "reference":
        choice, reason = "reference", "kernel-reference"
    elif not streaming:
        choice, reason = "event", "batch"
    elif kernel_backend() == "native":
        choice, reason = "event", "native-kernel"
    else:
        # streamed serving on the numpy kernel: tiny-box overhead is the
        # risk, and it grows with feed imbalance (many processors slaved
        # to one long feed => many short boxes per long-feed chunk)
        imbalance = 1.0
        if lengths:
            sizes = [max(0, int(x)) for x in lengths]
            mean = sum(sizes) / len(sizes)
            if mean > 0:
                imbalance = max(sizes) / mean
        if p > 1 and imbalance > 4.0:
            choice, reason = "reference", "streamed-imbalanced"
        else:
            choice, reason = "event", "streamed-balanced"
    obs_metrics.counter("sim.backend.auto", cell=cell, choice=choice, reason=reason).inc()
    return choice


class EventScheduler:
    """Deterministic min-heap event queue for parallel simulators.

    Events are ``(time, priority, kind, data)`` tuples ordered by
    ``(time, priority, sequence number)``:

    * ``priority`` defaults to the push sequence number, giving FIFO order
      among same-time events — DET-PAR's historical ``(t, counter)`` order;
    * an explicit ``priority`` pins the tie-break to a domain key, e.g.
      GLOBAL-LRU passes the processor index so same-time completions are
      served in ascending processor order, byte-identical to the
      historical full-rescan loop.

    :meth:`cancel` is O(1); cancelled events are skipped at pop time, the
    same lazy-invalidation pattern DET-PAR used with stale tokens.  The
    queue itself never looks at ``kind``/``data``, so ordering can never
    depend on payload contents — the invariant the differential test
    harness pins down.
    """

    __slots__ = ("_heap", "_seq", "_cancelled")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, int, str, object]] = []
        self._seq = 0
        self._cancelled: set = set()

    def schedule(self, time: int, kind: str, data: object = None, priority: Optional[int] = None) -> int:
        """Enqueue an event; returns a token usable with :meth:`cancel`."""
        token = self._seq
        self._seq += 1
        prio = token if priority is None else int(priority)
        heapq.heappush(self._heap, (int(time), prio, token, kind, data))
        return token

    def cancel(self, token: int) -> None:
        """Invalidate a scheduled event (skipped lazily at pop time)."""
        self._cancelled.add(token)

    def pop(self) -> Tuple[int, int, str, object]:
        """Remove and return the earliest live event ``(time, token, kind, data)``."""
        cancelled = self._cancelled
        while self._heap:
            time, _, token, kind, data = heapq.heappop(self._heap)
            if token in cancelled:
                cancelled.discard(token)
                continue
            return time, token, kind, data
        raise IndexError("pop from an empty EventScheduler")

    def peek_time(self) -> int:
        """Time of the earliest live event (raises IndexError when empty)."""
        cancelled = self._cancelled
        while self._heap and self._heap[0][2] in cancelled:
            cancelled.discard(heapq.heappop(self._heap)[2])
        if not self._heap:
            raise IndexError("peek on an empty EventScheduler")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def __bool__(self) -> bool:
        return len(self._heap) > len(self._cancelled)


class BoxRecord(NamedTuple):
    """One box as actually executed by one processor.

    A NamedTuple for the same reason as :class:`~repro.paging.engine.BoxRun`:
    one record is appended per box across every simulator, and tuple
    construction is an order of magnitude cheaper than a frozen
    dataclass's per-field ``object.__setattr__``.

    Attributes
    ----------
    proc:
        Processor index.
    height:
        Box height (pages).
    start, end:
        Wall-clock interval during which the box's memory was reserved.
        ``end - start`` can be shorter than the nominal ``s·height`` when a
        box was preempted by a taller one or cut by a phase boundary.
    served_start, served_end:
        Request positions served inside the box.
    hits, faults:
        Service counts inside the box.
    phase:
        Phase index the box belongs to (algorithm-specific; -1 if unused).
    tag:
        Free-form origin label ("primary", "secondary", "base", "strip",
        "singleton", "green", …) used by the audits and reports.
    """

    proc: int
    height: int
    start: int
    end: int
    served_start: int
    served_end: int
    hits: int
    faults: int
    phase: int = -1
    tag: str = ""

    @property
    def duration(self) -> int:
        return self.end - self.start

    @property
    def served(self) -> int:
        return self.served_end - self.served_start

    @property
    def reserved_impact(self) -> int:
        """Impact actually charged: height × reserved duration."""
        return self.height * self.duration


@dataclass
class ParallelRunResult:
    """Outcome of one parallel-paging simulation.

    Attributes
    ----------
    algorithm:
        Name of the scheduler that produced the run.
    completion_times:
        Per-processor completion times (int64 array, length p).
    trace:
        Every executed box, in start-time order (ties arbitrary).
    cache_size:
        Total cache the algorithm was allowed to reserve (``ξ·k``).
    miss_cost:
        Fault cost ``s``.
    meta:
        Scheduler-specific extras (phase boundaries, seeds, draw counts…).
    """

    algorithm: str
    completion_times: np.ndarray
    trace: List[BoxRecord]
    cache_size: int
    miss_cost: int
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def p(self) -> int:
        return len(self.completion_times)

    @property
    def makespan(self) -> int:
        """Maximum completion time (the paper's primary objective)."""
        return int(self.completion_times.max()) if self.p else 0

    @property
    def mean_completion_time(self) -> float:
        """Average completion time (the Corollary 3 objective)."""
        return float(self.completion_times.mean()) if self.p else 0.0

    def total_impact(self) -> int:
        """Total reserved impact across the whole trace."""
        return sum(r.reserved_impact for r in self.trace)

    def impact_by_proc(self) -> np.ndarray:
        """Reserved impact per processor (int64 array, length p)."""
        out = np.zeros(self.p, dtype=np.int64)
        for r in self.trace:
            out[r.proc] += r.reserved_impact
        return out

    def boxes_of(self, proc: int) -> List[BoxRecord]:
        """All boxes executed by one processor, in trace order."""
        return [r for r in self.trace if r.proc == proc]

    def validate(self) -> None:
        """Structural sanity: intervals well-formed, service contiguous."""
        by_proc: Dict[int, List[BoxRecord]] = {}
        for r in self.trace:
            if r.end < r.start:
                raise AssertionError(f"box with negative duration: {r}")
            if r.served_end < r.served_start:
                raise AssertionError(f"box with negative service: {r}")
            if r.hits + r.faults != r.served:
                raise AssertionError(f"hits+faults != served: {r}")
            by_proc.setdefault(r.proc, []).append(r)
        for proc, boxes in by_proc.items():
            boxes.sort(key=lambda r: (r.start, r.served_start))
            pos = None
            for r in boxes:
                if pos is not None and r.served_start != pos:
                    raise AssertionError(
                        f"proc {proc}: service not contiguous at position {pos} vs {r.served_start}"
                    )
                pos = r.served_end


def capacity_profile(trace: Sequence[BoxRecord]) -> Tuple[np.ndarray, np.ndarray]:
    """Step function of total reserved height over time.

    Returns ``(times, heights)`` where ``heights[i]`` is the reserved total
    in ``[times[i], times[i+1])``.  Used by the capacity-ledger tests and
    the utilization metric.
    """
    if not trace:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    deltas: Dict[int, int] = {}
    for r in trace:
        if r.duration == 0:
            continue
        deltas[r.start] = deltas.get(r.start, 0) + r.height
        deltas[r.end] = deltas.get(r.end, 0) - r.height
    times = np.array(sorted(deltas), dtype=np.int64)
    heights = np.cumsum([deltas[int(t)] for t in times]).astype(np.int64)
    return times, heights


def peak_concurrent_height(trace: Sequence[BoxRecord]) -> int:
    """Maximum total height reserved at any instant (the memory the
    algorithm actually needed; divide by k for measured ξ)."""
    _, heights = capacity_profile(trace)
    return int(heights.max()) if len(heights) else 0
