"""Shared record types for parallel-paging simulations.

Every parallel algorithm in this repository — RAND-PAR, DET-PAR, the
black-box packing baseline, and the structured OPT schedules — produces the
same artifact: a :class:`ParallelRunResult` holding per-processor
completion times plus a full :class:`BoxRecord` trace.  The trace is what
makes the theory auditable: the well-roundedness checker (§3.3), the
balance checker (Lemma 7), and the capacity ledger all operate on it
without re-running the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["BoxRecord", "ParallelRunResult", "peak_concurrent_height", "capacity_profile"]


@dataclass(frozen=True)
class BoxRecord:
    """One box as actually executed by one processor.

    Attributes
    ----------
    proc:
        Processor index.
    height:
        Box height (pages).
    start, end:
        Wall-clock interval during which the box's memory was reserved.
        ``end - start`` can be shorter than the nominal ``s·height`` when a
        box was preempted by a taller one or cut by a phase boundary.
    served_start, served_end:
        Request positions served inside the box.
    hits, faults:
        Service counts inside the box.
    phase:
        Phase index the box belongs to (algorithm-specific; -1 if unused).
    tag:
        Free-form origin label ("primary", "secondary", "base", "strip",
        "singleton", "green", …) used by the audits and reports.
    """

    proc: int
    height: int
    start: int
    end: int
    served_start: int
    served_end: int
    hits: int
    faults: int
    phase: int = -1
    tag: str = ""

    @property
    def duration(self) -> int:
        return self.end - self.start

    @property
    def served(self) -> int:
        return self.served_end - self.served_start

    @property
    def reserved_impact(self) -> int:
        """Impact actually charged: height × reserved duration."""
        return self.height * self.duration


@dataclass
class ParallelRunResult:
    """Outcome of one parallel-paging simulation.

    Attributes
    ----------
    algorithm:
        Name of the scheduler that produced the run.
    completion_times:
        Per-processor completion times (int64 array, length p).
    trace:
        Every executed box, in start-time order (ties arbitrary).
    cache_size:
        Total cache the algorithm was allowed to reserve (``ξ·k``).
    miss_cost:
        Fault cost ``s``.
    meta:
        Scheduler-specific extras (phase boundaries, seeds, draw counts…).
    """

    algorithm: str
    completion_times: np.ndarray
    trace: List[BoxRecord]
    cache_size: int
    miss_cost: int
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def p(self) -> int:
        return len(self.completion_times)

    @property
    def makespan(self) -> int:
        """Maximum completion time (the paper's primary objective)."""
        return int(self.completion_times.max()) if self.p else 0

    @property
    def mean_completion_time(self) -> float:
        """Average completion time (the Corollary 3 objective)."""
        return float(self.completion_times.mean()) if self.p else 0.0

    def total_impact(self) -> int:
        """Total reserved impact across the whole trace."""
        return sum(r.reserved_impact for r in self.trace)

    def impact_by_proc(self) -> np.ndarray:
        """Reserved impact per processor (int64 array, length p)."""
        out = np.zeros(self.p, dtype=np.int64)
        for r in self.trace:
            out[r.proc] += r.reserved_impact
        return out

    def boxes_of(self, proc: int) -> List[BoxRecord]:
        """All boxes executed by one processor, in trace order."""
        return [r for r in self.trace if r.proc == proc]

    def validate(self) -> None:
        """Structural sanity: intervals well-formed, service contiguous."""
        by_proc: Dict[int, List[BoxRecord]] = {}
        for r in self.trace:
            if r.end < r.start:
                raise AssertionError(f"box with negative duration: {r}")
            if r.served_end < r.served_start:
                raise AssertionError(f"box with negative service: {r}")
            if r.hits + r.faults != r.served:
                raise AssertionError(f"hits+faults != served: {r}")
            by_proc.setdefault(r.proc, []).append(r)
        for proc, boxes in by_proc.items():
            boxes.sort(key=lambda r: (r.start, r.served_start))
            pos = None
            for r in boxes:
                if pos is not None and r.served_start != pos:
                    raise AssertionError(
                        f"proc {proc}: service not contiguous at position {pos} vs {r.served_start}"
                    )
                pos = r.served_end


def capacity_profile(trace: Sequence[BoxRecord]) -> Tuple[np.ndarray, np.ndarray]:
    """Step function of total reserved height over time.

    Returns ``(times, heights)`` where ``heights[i]`` is the reserved total
    in ``[times[i], times[i+1])``.  Used by the capacity-ledger tests and
    the utilization metric.
    """
    if not trace:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    deltas: Dict[int, int] = {}
    for r in trace:
        if r.duration == 0:
            continue
        deltas[r.start] = deltas.get(r.start, 0) + r.height
        deltas[r.end] = deltas.get(r.end, 0) - r.height
    times = np.array(sorted(deltas), dtype=np.int64)
    heights = np.cumsum([deltas[int(t)] for t in times]).astype(np.int64)
    return times, heights


def peak_concurrent_height(trace: Sequence[BoxRecord]) -> int:
    """Maximum total height reserved at any instant (the memory the
    algorithm actually needed; divide by k for measured ξ)."""
    _, heights = capacity_profile(trace)
    return int(heights.max()) if len(heights) else 0
