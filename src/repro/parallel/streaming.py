"""Streaming execution: trace-store-fed parallel simulation in bounded memory.

This is the ROADMAP's million-request path.  A :class:`StreamingWorkload`
wraps a :class:`repro.traces.TraceStore` without materializing any request
column; each processor's requests reach the simulator chunk-by-chunk
through a :class:`BoxFeed`, which sweeps them into an incremental
:class:`repro.paging.kernel.StreamKernel` just ahead of the execution
position and compacts the served prefix behind it (amortized, so the
rebuild cost stays O(1) per request).  Resident state per processor is
therefore bounded by a small multiple of the largest single box budget
plus one store chunk — independent of trace length — while every box is
still evaluated at kernel speed.

The serving indirection is :func:`make_box_server`: every box algorithm
(RAND-PAR, DET-PAR, black-box packing) asks the server to run a box for a
processor and never touches sequences or kernels directly.  The server
picks the execution strategy from the workload form and the ``$REPRO_SIM``
backend (:func:`repro.parallel.events.sim_backend`):

=====================  ========================  ===========================
workload               ``REPRO_SIM=event``       ``REPRO_SIM=reference``
=====================  ========================  ===========================
in-memory / memmap     cached ``SequenceKernel``  per-request ``run_box``
:class:`Streaming...`  chunked ``StreamKernel``   per-request ``run_box``
                                                  over the memmap column
=====================  ========================  ===========================

All four cells produce bit-identical :class:`~repro.paging.engine.BoxRun`
values — the differential test harness holds the matrix together.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import metrics as obs_metrics
from ..paging.engine import BoxRun, run_box
from ..paging.kernel import StreamKernel, maybe_kernel, run_box_fast
from ..traces.store import TraceStore
from ..workloads.trace import ParallelWorkload
from .events import resolve_sim_backend

__all__ = [
    "BoxFeed",
    "StreamingWorkload",
    "open_streaming",
    "BoxServer",
    "make_box_server",
    "request_feed",
]


class StreamingWorkload:
    """A ``ParallelWorkload``-shaped view of a trace store that never
    materializes request columns up front.

    Exposes the same structural surface the simulators rely on (``p``,
    ``lengths``, ``name``, ``content_digest``, ``meta``) plus chunk
    iterators.  ``sequences`` falls back to zero-copy memory-mapped
    columns so non-streaming consumers (trace verification, partition
    baselines) keep working; the OS pages those in and out on demand.

    Pickles as its store path (like :class:`repro.traces.StoredWorkload`),
    so pool workers reopen the store instead of shipping the data.
    """

    allow_shared = True

    def __init__(self, store: TraceStore) -> None:
        self.store = store
        self.meta: Dict[str, object] = {"store_path": str(store.path), "streaming": True}

    def __reduce__(self):
        return (open_streaming, (str(self.store.path),))

    @property
    def p(self) -> int:
        return self.store.p

    @property
    def lengths(self) -> Tuple[int, ...]:
        return tuple(self.store.lengths)

    @property
    def name(self) -> str:
        return f"stream:{self.store.name}" if getattr(self.store, "name", None) else "stream"

    @property
    def content_digest(self) -> str:
        """Same framing as :func:`repro.exec.cache.workload_fingerprint`,
        so streamed, memmapped, and in-memory copies share cache keys."""
        return self.store.content_digest

    @property
    def total_requests(self) -> int:
        return int(sum(self.store.lengths))

    def chunks(self, proc: int) -> Iterator[np.ndarray]:
        """The processor's request column, one store chunk at a time,
        counted into the ``sim.traces.*`` stream-traffic counters."""
        reg = obs_metrics.active()
        if not reg.enabled:
            yield from self.store.iter_chunks(proc)
            return
        n_chunks = reg.counter("sim.traces.chunks", proc=proc)
        n_requests = reg.counter("sim.traces.requests_streamed", proc=proc)
        for chunk in self.store.iter_chunks(proc):
            n_chunks.inc()
            n_requests.inc(len(chunk))
            yield chunk

    def column(self, proc: int) -> np.ndarray:
        """Zero-copy memory-mapped column (the reference-mode fallback)."""
        return self.store.column(proc)

    @property
    def sequences(self) -> List[np.ndarray]:
        """Memmap fallback for consumers that need random access."""
        return [self.store.column(i) for i in range(self.p)]

    def materialize(self) -> ParallelWorkload:
        """A fully materialized (memmap-backed) :class:`ParallelWorkload`."""
        return self.store.workload(mode="mmap")


def open_streaming(store_or_path: Union[TraceStore, str, Path]) -> StreamingWorkload:
    """Open a trace store (or path to one) as a :class:`StreamingWorkload`."""
    store = store_or_path if isinstance(store_or_path, TraceStore) else TraceStore(store_or_path)
    return StreamingWorkload(store)


class BoxFeed:
    """One processor's chunk-fed incremental kernel window.

    ``serve`` appends just enough chunks to cover the box budget (a box
    with time budget ``d`` serves at most ``d`` requests, since a hit
    costs one step), evaluates the box on the :class:`StreamKernel` in
    global coordinates, then compacts the served prefix behind the
    execution position.  Compaction is amortized: the O(window) rebuild
    only runs once the served prefix outweighs the live tail, so each
    retained row pays O(1) compaction work overall.  Peak retained rows
    per feed are therefore bounded by twice ``max box budget + chunk
    rows``, independent of column length.
    """

    __slots__ = ("kernel", "length", "_chunks", "_exhausted", "_covered")

    def __init__(self, chunks: Iterator[np.ndarray], length: int) -> None:
        self.kernel = StreamKernel()
        self.length = int(length)
        self._chunks = chunks
        self._exhausted = False
        self._covered = 0  # kernel.end mirror: append-coverage fast path

    def ensure(self, upto: int) -> None:
        """Sweep chunks until the kernel covers global position ``upto``."""
        target = min(int(upto), self.length)
        while self.kernel.end < target and not self._exhausted:
            try:
                self.kernel.append(next(self._chunks))
            except StopIteration:
                self._exhausted = True
        if self.kernel.end < target:
            raise ValueError(
                f"stream ended at {self.kernel.end} before declared length {self.length}"
            )
        self._covered = self.kernel.end

    def serve(self, pos: int, height: int, budget: int, miss_cost: int) -> BoxRun:
        """Run one box at ``pos``; returns the bit-identical ``BoxRun``.

        Calls ``StreamKernel.box`` directly rather than through the
        ``run_box_fast`` facade: arguments arrive pre-validated from the
        box server, and the spare frame plus int coercions are measurable
        at one call per box.
        """
        upto = pos + budget
        if self._covered < upto:
            self.ensure(upto)
        kernel = self.kernel
        run = kernel.box(pos, height, budget, miss_cost)
        dead = run.end - kernel.base
        if dead > 0 and dead >= len(kernel) - dead:
            kernel.compact(run.end)
        return run

    @property
    def resident_rows(self) -> int:
        """Rows currently retained (observability for the memory bound)."""
        return len(self.kernel)


class BoxServer:
    """Uniform box-serving facade over every workload form and backend.

    Replaces the ``kern is not None ? run_box_fast : run_box`` idiom that
    was duplicated across RAND-PAR, DET-PAR, and the black-box packer.
    ``serve(proc, pos, height, budget)`` runs one box for one processor
    and returns the :class:`BoxRun`; the strategy (cached sequence
    kernel, chunked stream kernel, or the per-request reference walk) is
    chosen once at construction from the workload form and
    :func:`sim_backend`.
    """

    def __init__(self, workload, miss_cost: int) -> None:
        self.miss_cost = int(miss_cost)
        self.streaming = isinstance(workload, StreamingWorkload)
        self.p = int(workload.p)
        if self.streaming:
            lengths: Tuple[int, ...] = tuple(workload.lengths)
        else:
            lengths = tuple(len(sq) for sq in workload.sequences)
        self.backend = resolve_sim_backend(
            "box-server", streaming=self.streaming, p=self.p, lengths=lengths
        )
        if self.streaming:
            self.lengths = lengths
            self.digest: Optional[str] = workload.content_digest
            if self.backend == "event":
                self._feeds = [
                    BoxFeed(workload.chunks(i), self.lengths[i]) for i in range(self.p)
                ]
                self._seqs: Optional[List[np.ndarray]] = None
            else:
                # reference escape hatch: per-request walk over the
                # memory-mapped column (OS-paged, not chunk-bounded)
                self._feeds = None
                self._seqs = [workload.column(i) for i in range(self.p)]
        else:
            seqs = workload.sequences
            self.lengths = lengths
            self.digest = getattr(workload, "content_digest", None)
            self._seqs = seqs
            self._feeds = None
        if not self.streaming and self.backend == "event":
            self._kerns = [
                maybe_kernel(sq, key=(self.digest, i) if self.digest else None)
                for i, sq in enumerate(self._seqs)
            ]
        else:
            self._kerns = [None] * self.p

    def n(self, proc: int) -> int:
        """Total requests in ``proc``'s sequence (known from the header)."""
        return self.lengths[proc]

    def serve(self, proc: int, pos: int, height: int, budget: int) -> BoxRun:
        """Run one box for ``proc`` starting at request position ``pos``."""
        if self._feeds is not None:
            return self._feeds[proc].serve(pos, height, budget, self.miss_cost)
        kern = self._kerns[proc]
        if kern is not None:
            return run_box_fast(kern, pos, height, budget, self.miss_cost)
        return run_box(self._seqs[proc], pos, height, budget, self.miss_cost)

    def resident_rows(self) -> int:
        """Total rows retained across stream feeds (0 when not streaming)."""
        if self._feeds is None:
            return 0
        return sum(f.resident_rows for f in self._feeds)


def make_box_server(workload, miss_cost: int) -> BoxServer:
    """Build the :class:`BoxServer` for a workload (any supported form)."""
    return BoxServer(workload, miss_cost)


def request_feed(workload, proc: int) -> Iterator[int]:
    """Lazy per-request iterator for one processor (GLOBAL-LRU streaming).

    For a :class:`StreamingWorkload` this holds one store chunk at a time;
    for in-memory/memmap workloads it walks the column directly.
    """
    if isinstance(workload, StreamingWorkload):

        def gen() -> Iterator[int]:
            for chunk in workload.chunks(proc):
                for page in chunk.tolist():
                    yield page

        return gen()
    seq = workload.sequences[proc]

    def walk() -> Iterator[int]:
        for i in range(len(seq)):
            yield int(seq[i])

    return walk()
