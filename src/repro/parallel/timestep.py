"""Time-stepped shared-cache simulator for non-box baselines.

GLOBAL-LRU — all processors share one LRU cache with no partitioning — is
what an unmanaged multicore actually does, and it cannot be expressed as a
box schedule (there is no per-processor allocation at all).  This module
simulates it directly: at each time step every processor is either serving
a hit (1 step), amid a miss (``s`` steps), or finished.  Evictions come
from the single shared LRU order, so one thrashing processor can evict
everyone else's working set — the interference the paper's box model is
designed to control.

Two backends, selected by ``$REPRO_SIM`` (:func:`~repro.parallel.events.
sim_backend`):

* ``event`` (default) — advance over service-completion events via the
  shared :class:`~repro.parallel.events.EventScheduler`.  Every processor
  has exactly one scheduled event while active, with the processor index
  as the tie-break priority, so same-time completions are served in
  ascending processor order.
* ``reference`` — the retained per-timestep full-rescan loop (O(p) per
  event instant), the historical oracle.  It serves same-time processors
  in ascending index too, so both backends touch the shared LRU in the
  same order and every count — completions, hits, faults, evictions — is
  byte-identical.  The differential harness asserts exactly this.

Requests are consumed strictly in order through
:func:`~repro.parallel.streaming.request_feed`, so a
:class:`~repro.parallel.streaming.StreamingWorkload` is served directly
from the trace store one chunk at a time — a million-request,
thousand-processor run never holds more than one chunk per processor.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from ..obs import metrics as obs_metrics
from ..paging.lru import LRUCache
from ..workloads.trace import ParallelWorkload
from .events import EventScheduler, ParallelRunResult, resolve_sim_backend
from .streaming import request_feed

__all__ = ["GlobalLRU"]


class GlobalLRU:
    """Fully shared LRU cache baseline (no partitioning, no boxes).

    Parameters
    ----------
    cache_size:
        Shared cache capacity.
    miss_cost:
        Fault service time ``s > 1``.  A faulting processor occupies its
        channel for ``s`` steps; the faulted page is inserted (and becomes
        evictable) immediately at fault time, matching the model where the
        transfer reserves the frame up front.
    """

    name = "global-lru"

    def __init__(self, cache_size: int, miss_cost: int) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        if miss_cost <= 1:
            raise ValueError(f"miss_cost must be > 1, got {miss_cost}")
        self.cache_size = int(cache_size)
        self.miss_cost = int(miss_cost)

    def run(self, workload: ParallelWorkload) -> ParallelRunResult:
        """Simulate the shared LRU until every processor finishes."""
        p = workload.p
        n = [int(x) for x in workload.lengths]
        feeds = [request_feed(workload, i) for i in range(p)]
        done = [n[i] == 0 for i in range(p)]
        completion = np.zeros(p, dtype=np.int64)
        cache = LRUCache(self.cache_size)
        if resolve_sim_backend("global-lru", p=p, lengths=n) == "event":
            self._run_event(feeds, n, done, completion, cache)
        else:
            self._run_reference(feeds, n, done, completion, cache)
        reg = obs_metrics.active()
        if reg.enabled:
            reg.counter("sim.timestep.hits").inc(cache.hits)
            reg.counter("sim.timestep.faults").inc(cache.faults)
            reg.counter("sim.timestep.evictions").inc(cache.evictions)
            for i in range(p):
                reg.counter("sim.timestep.served", proc=i).inc(n[i])
            reg.gauge("sim.timestep.makespan").record_max(int(completion.max()) if p else 0)
        return ParallelRunResult(
            algorithm=self.name,
            completion_times=completion,
            trace=[],  # no box structure to record
            cache_size=self.cache_size,
            miss_cost=self.miss_cost,
            meta={"hits": cache.hits, "faults": cache.faults},
        )

    def _run_event(
        self,
        feeds: List[Iterator[int]],
        n: List[int],
        done: List[bool],
        completion: np.ndarray,
        cache: LRUCache,
    ) -> None:
        """Event backend: one scheduled completion per active processor.

        The processor index is the tie-break priority, so same-time
        completions pop in ascending processor order — the same order the
        reference rescan serves them, hence identical shared-LRU state.
        """
        s = self.miss_cost
        p = len(n)
        pos = [0] * p
        sched = EventScheduler()
        for i in range(p):
            if not done[i]:
                sched.schedule(0, "serve", i, priority=i)
        touch = cache.touch
        schedule = sched.schedule
        pop = sched.pop
        while sched:
            t, _, _, i = pop()
            page = next(feeds[i])
            cost = 1 if touch(page) else s
            pos[i] += 1
            if pos[i] >= n[i]:
                done[i] = True
                completion[i] = t + cost
            else:
                schedule(t + cost, "serve", i, priority=i)

    def _run_reference(
        self,
        feeds: List[Iterator[int]],
        n: List[int],
        done: List[bool],
        completion: np.ndarray,
        cache: LRUCache,
    ) -> None:
        """Reference backend: the historical O(p)-per-instant rescan loop,
        retained verbatim as the oracle for the event backend."""
        s = self.miss_cost
        p = len(n)
        pos = [0] * p
        busy_until = [0] * p
        remaining = sum(1 for d in done if not d)
        touch = cache.touch
        t = 0
        while remaining > 0:
            for i in range(p):
                if done[i] or busy_until[i] > t:
                    continue
                page = next(feeds[i])
                cost = 1 if touch(page) else s
                busy_until[i] = t + cost
                pos[i] += 1
                if pos[i] >= n[i]:
                    done[i] = True
                    completion[i] = t + cost
                    remaining -= 1
            if remaining == 0:
                break
            t = min(busy_until[i] for i in range(p) if not done[i])
