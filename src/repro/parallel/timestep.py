"""Time-stepped shared-cache simulator for non-box baselines.

GLOBAL-LRU — all processors share one LRU cache with no partitioning — is
what an unmanaged multicore actually does, and it cannot be expressed as a
box schedule (there is no per-processor allocation at all).  This module
simulates it directly: at each time step every processor is either serving
a hit (1 step), amid a miss (``s`` steps), or finished.  Evictions come
from the single shared LRU order, so one thrashing processor can evict
everyone else's working set — the interference the paper's box model is
designed to control.

The loop advances over service-completion *events* via a min-heap on
``busy_until`` rather than literal unit steps, but a miss by one processor
can change another's future hits, so the simulation is inherently
sequential in time; we keep the inner loop allocation-free (one shared
LRUCache, locals hoisted).  Every processor has exactly one heap entry
while active, and ties pop in ascending processor index — the same order
the historical full-rescan loop served them — so results are byte-identical
to that loop (asserted by a regression test).
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

from ..obs import metrics as obs_metrics
from ..paging.lru import LRUCache
from ..workloads.trace import ParallelWorkload
from .events import BoxRecord, ParallelRunResult

__all__ = ["GlobalLRU"]


class GlobalLRU:
    """Fully shared LRU cache baseline (no partitioning, no boxes).

    Parameters
    ----------
    cache_size:
        Shared cache capacity.
    miss_cost:
        Fault service time ``s > 1``.  A faulting processor occupies its
        channel for ``s`` steps; the faulted page is inserted (and becomes
        evictable) immediately at fault time, matching the model where the
        transfer reserves the frame up front.
    """

    name = "global-lru"

    def __init__(self, cache_size: int, miss_cost: int) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        if miss_cost <= 1:
            raise ValueError(f"miss_cost must be > 1, got {miss_cost}")
        self.cache_size = int(cache_size)
        self.miss_cost = int(miss_cost)

    def run(self, workload: ParallelWorkload) -> ParallelRunResult:
        """Time-step the shared LRU until every processor finishes."""
        s = self.miss_cost
        p = workload.p
        seqs = workload.sequences
        n = [len(x) for x in seqs]
        pos = [0] * p
        done = [n[i] == 0 for i in range(p)]
        completion = np.zeros(p, dtype=np.int64)
        cache = LRUCache(self.cache_size)
        # One (busy_until, proc) entry per active processor; the next event
        # instant is always the heap root, so skipping to it is O(log p)
        # instead of a full rescan.  Ties pop in ascending processor index
        # (tuple order), matching the historical round-robin scan, so the
        # shared-LRU touch order — and hence every count — is unchanged.
        heap: List[Tuple[int, int]] = [(0, i) for i in range(p) if not done[i]]
        heapq.heapify(heap)
        touch = cache.touch
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            t = heap[0][0]
            # serve every processor whose channel frees at time t
            while heap and heap[0][0] == t:
                _, i = pop(heap)
                page = int(seqs[i][pos[i]])
                cost = 1 if touch(page) else s
                pos[i] += 1
                if pos[i] >= n[i]:
                    done[i] = True
                    completion[i] = t + cost
                else:
                    push(heap, (t + cost, i))
        reg = obs_metrics.active()
        if reg.enabled:
            reg.counter("sim.timestep.hits").inc(cache.hits)
            reg.counter("sim.timestep.faults").inc(cache.faults)
            reg.counter("sim.timestep.evictions").inc(cache.evictions)
            for i in range(p):
                reg.counter("sim.timestep.served", proc=i).inc(n[i])
            reg.gauge("sim.timestep.makespan").record_max(int(completion.max()) if p else 0)
        return ParallelRunResult(
            algorithm=self.name,
            completion_times=completion,
            trace=[],  # no box structure to record
            cache_size=self.cache_size,
            miss_cost=s,
            meta={"hits": cache.hits, "faults": cache.faults},
        )
