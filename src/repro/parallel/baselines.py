"""Static-partition baselines: EQUAL-PARTITION and BEST-STATIC-PARTITION.

These are the comparators a systems audience reaches for first:

* **EQUAL-PARTITION** — give every processor a fixed private ``K/p`` LRU
  cache.  Oblivious and simple, but the paper's introduction explains why
  it must lose: marginal benefit differs wildly across processors, so a
  uniform split simultaneously starves the cache-hungry and wastes space
  on streaming processors.
* **BEST-STATIC-PARTITION** — the *offline optimal fixed* split, computed
  by binary-searching the makespan target and, for each target T, asking
  each processor for the minimum capacity that finishes by T under
  Belady's MIN (monotone in capacity, so a second binary search inside).
  This is an unrealizable clairvoyant baseline; beating it dynamically is
  the whole point of boxes.

Both produce standard :class:`ParallelRunResult`s (one conceptual box per
processor spanning its run) so the metrics pipeline treats them uniformly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..paging.belady import min_service_time
from ..paging.lru import LRUCache
from ..workloads.trace import ParallelWorkload
from .events import BoxRecord, ParallelRunResult

__all__ = ["EqualPartition", "BestStaticPartition", "static_partition_makespan"]


def _lru_service_time(seq: np.ndarray, capacity: int, s: int) -> Tuple[int, int, int]:
    """(time, hits, faults) for one processor alone on a private LRU cache."""
    cache = LRUCache(capacity)
    hits = 0
    for page in seq:
        if cache.touch(int(page)):
            hits += 1
    faults = len(seq) - hits
    return hits + s * faults, hits, faults


class EqualPartition:
    """Fixed ``K/p`` private LRU cache per processor."""

    name = "equal-partition"

    def __init__(self, cache_size: int, miss_cost: int) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        if miss_cost <= 1:
            raise ValueError(f"miss_cost must be > 1, got {miss_cost}")
        self.cache_size = int(cache_size)
        self.miss_cost = int(miss_cost)

    def run(self, workload: ParallelWorkload) -> ParallelRunResult:
        """Run every processor on its private K/p LRU share."""
        p = workload.p
        share = max(1, self.cache_size // p)
        s = self.miss_cost
        completion = np.zeros(p, dtype=np.int64)
        trace: List[BoxRecord] = []
        for i, seq in enumerate(workload.sequences):
            t, hits, faults = _lru_service_time(seq, share, s)
            completion[i] = t
            trace.append(
                BoxRecord(
                    proc=i,
                    height=share,
                    start=0,
                    end=t,
                    served_start=0,
                    served_end=len(seq),
                    hits=hits,
                    faults=faults,
                    tag="static",
                )
            )
        return ParallelRunResult(
            algorithm=self.name,
            completion_times=completion,
            trace=trace,
            cache_size=self.cache_size,
            miss_cost=s,
            meta={"share": share},
        )


def _min_capacity_for_target(seq: np.ndarray, target: int, k_max: int, s: int) -> Optional[int]:
    """Smallest capacity whose Belady service time is <= target (None if none).

    Belady's fault count is nonincreasing in capacity (no anomaly), so the
    service time is monotone and a binary search is sound.
    """
    if min_service_time(seq, k_max, s) > target:
        return None
    lo, hi = 1, k_max
    while lo < hi:
        mid = (lo + hi) // 2
        if min_service_time(seq, mid, s) <= target:
            hi = mid
        else:
            lo = mid + 1
    return lo


def static_partition_makespan(workload: ParallelWorkload, cache_size: int, miss_cost: int) -> Tuple[int, List[int]]:
    """Optimal static-partition makespan and a witnessing allocation.

    Binary search over the makespan target T; feasibility check: the sum of
    per-processor minimum capacities achieving T must fit in the cache.
    Uses Belady per processor (clairvoyant), so this is a *lower bound* on
    anything a static partition with an online policy can do.
    """
    p = workload.p
    if p < 1:
        raise ValueError("workload must have at least one processor")
    if cache_size < p:
        raise ValueError(f"cache_size={cache_size} cannot give every one of {p} processors a page")
    s = miss_cost

    def allocation_for(target: int) -> Optional[List[int]]:
        alloc: List[int] = []
        remaining = cache_size
        for seq in workload.sequences:
            if len(seq) == 0:
                alloc.append(0)
                continue
            c = _min_capacity_for_target(seq, target, cache_size, s)
            if c is None:
                return None
            alloc.append(c)
            remaining -= c
        return alloc if sum(alloc) <= cache_size else None

    lo = max((len(seq) for seq in workload.sequences), default=0)  # every request >= 1 step
    hi = max(
        (min_service_time(seq, max(1, cache_size // p), s) for seq in workload.sequences if len(seq)),
        default=0,
    )
    if hi == 0:
        return 0, [0] * p
    while lo < hi:
        mid = (lo + hi) // 2
        if allocation_for(mid) is not None:
            hi = mid
        else:
            lo = mid + 1
    alloc = allocation_for(lo)
    assert alloc is not None
    return lo, alloc


class BestStaticPartition:
    """Clairvoyant optimal static split, each share run with Belady's MIN."""

    name = "best-static-partition"

    def __init__(self, cache_size: int, miss_cost: int) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        if miss_cost <= 1:
            raise ValueError(f"miss_cost must be > 1, got {miss_cost}")
        self.cache_size = int(cache_size)
        self.miss_cost = int(miss_cost)

    def run(self, workload: ParallelWorkload) -> ParallelRunResult:
        """Search the optimal static split, then run Belady per share."""
        s = self.miss_cost
        p = workload.p
        _, alloc = static_partition_makespan(workload, self.cache_size, s)
        completion = np.zeros(p, dtype=np.int64)
        trace: List[BoxRecord] = []
        for i, seq in enumerate(workload.sequences):
            if len(seq) == 0 or alloc[i] == 0:
                continue
            t = min_service_time(seq, alloc[i], s)
            completion[i] = t
            faults = (t - len(seq)) // (s - 1)
            trace.append(
                BoxRecord(
                    proc=i,
                    height=alloc[i],
                    start=0,
                    end=t,
                    served_start=0,
                    served_end=len(seq),
                    hits=len(seq) - faults,
                    faults=faults,
                    tag="static-opt",
                )
            )
        return ParallelRunResult(
            algorithm=self.name,
            completion_times=completion,
            trace=trace,
            cache_size=self.cache_size,
            miss_cost=s,
            meta={"allocation": alloc},
        )
