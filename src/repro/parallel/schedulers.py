"""The scheduler protocol shared by all parallel-paging algorithms.

Every algorithm in this repository — RAND-PAR, DET-PAR, the black-box
packing construction, and the baselines — is a *parallel paging algorithm*
in the paper's sense: given ``p`` disjoint request sequences and a physical
cache budget, it decides who holds how much cache when, and yields a
:class:`~repro.parallel.events.ParallelRunResult`.  The protocol below is
the single structural interface the analysis harness and the CLI program
against; registering implementations by name keeps experiment configs
declarative.

The stable way to instantiate an algorithm is a frozen :class:`RunSpec`
(``make_algorithm(RunSpec(...))``); the historical positional signature
``make_algorithm(name, cache_size, miss_cost, seed)`` still works but
emits a :class:`DeprecationWarning` and will be removed in 2.0.

Every registered algorithm honours the ``$REPRO_SIM`` backend switch
(:func:`repro.parallel.events.sim_backend`): the default ``event`` backend
runs on the shared :class:`~repro.parallel.events.EventScheduler` and the
kernelized box server; ``reference`` replays the retained timestep/
per-request oracles.  Both produce byte-identical results — the
differential harness (``tests/parallel/test_differential.py``) enforces
it — so a registry factory never needs to know which backend is active,
and accepts in-memory, memmapped, and
:class:`~repro.parallel.streaming.StreamingWorkload` forms alike.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Protocol, Union, runtime_checkable

from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..workloads.trace import ParallelWorkload
from .events import ParallelRunResult

__all__ = [
    "ParallelPager",
    "RunSpec",
    "ALGORITHM_REGISTRY",
    "register_algorithm",
    "make_algorithm",
    "observe_pager",
]


@runtime_checkable
class ParallelPager(Protocol):
    """Structural type for parallel paging algorithms.

    Implementations expose a class-level ``name`` and a ``run`` method
    mapping a workload to a result.  Constructor signatures vary (seeds,
    distribution kinds, …), so registry factories close over them.
    """

    name: str
    cache_size: int
    miss_cost: int

    def run(self, workload: ParallelWorkload) -> ParallelRunResult:
        """Simulate the algorithm on a workload to completion."""
        ...


@dataclass(frozen=True)
class RunSpec:
    """Frozen configuration of one algorithm run — the stable public API.

    A ``RunSpec`` names everything needed to (re)produce a run, and is
    hashable/picklable, so the execution engine can use it as part of a
    content-addressed cache key.

    Attributes
    ----------
    algorithm:
        Registered algorithm name (see :data:`ALGORITHM_REGISTRY`).
    cache_size:
        *Physical* cache granted to the algorithm, i.e. ``xi * k``.
    miss_cost:
        Fault service time ``s``.
    xi:
        Resource-augmentation factor relative to OPT's cache ``k``;
        ``cache_size`` must be divisible by ``xi`` so that
        ``k = cache_size // xi`` is exact.
    seed:
        Seed for randomized algorithms (ignored by deterministic ones).
    """

    algorithm: str
    cache_size: int
    miss_cost: int
    xi: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.xi < 1:
            raise ValueError(f"xi must be >= 1, got {self.xi}")
        if self.cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {self.cache_size}")
        if self.miss_cost < 1:
            raise ValueError(f"miss_cost must be >= 1, got {self.miss_cost}")
        if self.cache_size % self.xi:
            raise ValueError(
                f"cache_size ({self.cache_size}) must be divisible by xi ({self.xi})"
            )

    @property
    def k(self) -> int:
        """OPT's (un-augmented) cache size: ``cache_size // xi``."""
        return self.cache_size // self.xi

    def with_seed(self, seed: int) -> "RunSpec":
        """Copy of this spec with a different replication seed."""
        return replace(self, seed=seed)


#: name -> factory(cache_size, miss_cost, seed) -> ParallelPager
ALGORITHM_REGISTRY: Dict[str, Callable[[int, int, int], ParallelPager]] = {}


def register_algorithm(
    name: str,
    factory: Callable[[int, int, int], ParallelPager],
    overwrite: bool = False,
) -> None:
    """Register an algorithm factory under ``name`` for harness/CLI lookup.

    Duplicate names are rejected loudly (a plugin silently shadowing a
    built-in would corrupt every experiment table); pass
    ``overwrite=True`` to replace an existing registration on purpose.
    """
    if name in ALGORITHM_REGISTRY and not overwrite:
        raise ValueError(
            f"algorithm {name!r} already registered; pass overwrite=True to replace it"
        )
    ALGORITHM_REGISTRY[name] = factory


def make_algorithm(
    spec: Union[RunSpec, str],
    cache_size: Optional[int] = None,
    miss_cost: Optional[int] = None,
    seed: int = 0,
) -> ParallelPager:
    """Instantiate a registered algorithm from a :class:`RunSpec`.

    ``make_algorithm(RunSpec(...))`` is the stable form.  The legacy
    positional form ``make_algorithm(name, cache_size, miss_cost, seed)``
    is kept as a shim and emits a :class:`DeprecationWarning`.

    Raises ``KeyError`` with the list of known names on typos.
    """
    if isinstance(spec, RunSpec):
        if cache_size is not None or miss_cost is not None:
            raise TypeError("pass either a RunSpec or the legacy positional arguments, not both")
    else:
        warnings.warn(
            "make_algorithm(name, cache_size, miss_cost, seed) is deprecated; "
            "pass a RunSpec instead (will be removed in 2.0)",
            DeprecationWarning,
            stacklevel=2,
        )
        if cache_size is None or miss_cost is None:
            raise TypeError("legacy make_algorithm requires cache_size and miss_cost")
        spec = RunSpec(
            algorithm=spec, cache_size=cache_size, miss_cost=miss_cost, seed=seed
        )
    try:
        factory = ALGORITHM_REGISTRY[spec.algorithm]
    except KeyError:
        known = ", ".join(sorted(ALGORITHM_REGISTRY))
        raise KeyError(f"unknown algorithm {spec.algorithm!r}; known: {known}") from None
    return observe_pager(factory(spec.cache_size, spec.miss_cost, spec.seed))


def observe_pager(pager: ParallelPager) -> ParallelPager:
    """Wrap ``pager`` so its runs record obs spans and ``sim.*`` counters.

    :func:`make_algorithm` applies this automatically; call it directly
    when constructing an algorithm by hand (as experiments with bespoke
    run arguments do) so ``repro profile`` and ``--metrics`` still see
    the run.  With no observability scope active this returns ``pager``
    unchanged, so the uninstrumented path stays allocation-free.
    """
    if obs_metrics.enabled() or obs_tracing.enabled():
        return _ObservedPager(pager)
    return pager


def _record_run_metrics(result: ParallelRunResult) -> None:
    """Fold one parallel run's box trace into the ambient ``sim.*`` counters.

    Everything here is derived from the :class:`ParallelRunResult` trace —
    a pure function of the simulated schedule — so the counters are
    byte-identical across reruns and worker counts.  Boxes are split by
    their ``tag`` (the §3.2 primary/secondary distinction, plus the
    packing construction's "base"/"strip"/"singleton" labels), and stall
    time is the reserved duration not spent serving requests.
    """
    reg = obs_metrics.active()
    if not reg.enabled:
        return
    alg = result.algorithm
    s = result.miss_cost
    stall = 0
    transitions = 0
    last_height: Dict[int, int] = {}
    hist = reg.histogram("sim.parallel.box_height", algorithm=alg)
    for box in result.trace:
        tag = box.tag or "untagged"
        reg.counter("sim.parallel.boxes", algorithm=alg, tag=tag).inc()
        reg.counter("sim.parallel.served", algorithm=alg, proc=box.proc).inc(box.served)
        stall += max(0, box.duration - (box.hits + s * box.faults))
        prev = last_height.get(box.proc)
        if prev is not None and prev != box.height:
            transitions += 1
        last_height[box.proc] = box.height
        hist.observe(box.height)
    if result.trace:
        reg.counter("sim.parallel.stall_time", algorithm=alg).inc(stall)
        reg.counter("sim.parallel.height_transitions", algorithm=alg).inc(transitions)
        reg.counter("sim.parallel.impact", algorithm=alg).inc(result.total_impact())
    reg.gauge("sim.parallel.makespan", algorithm=alg).record_max(result.makespan)


class _ObservedPager:
    """Transparent pager wrapper that records obs spans and counters.

    Installed by :func:`make_algorithm` only when an observability scope
    is active, so the uninstrumented path stays allocation-free.  All
    attribute access (``name``, ``cache_size``, seeds, …) delegates to
    the wrapped pager, so the wrapper satisfies :class:`ParallelPager`
    whenever the inner algorithm does.
    """

    def __init__(self, inner: ParallelPager) -> None:
        self._inner = inner

    def __getattr__(self, name: str):
        """Delegate everything but ``run`` to the wrapped pager."""
        return getattr(self._inner, name)

    def run(self, workload: ParallelWorkload, **kwargs) -> ParallelRunResult:
        """Run the wrapped algorithm under a span, then record its trace.

        Extra keyword arguments (``max_chunks`` and friends) pass through
        to the wrapped pager's ``run``.
        """
        with obs_tracing.span(
            "algorithm.run", algorithm=self._inner.name, p=workload.p
        ):
            result = self._inner.run(workload, **kwargs)
        _record_run_metrics(result)
        return result
