"""The scheduler protocol shared by all parallel-paging algorithms.

Every algorithm in this repository — RAND-PAR, DET-PAR, the black-box
packing construction, and the baselines — is a *parallel paging algorithm*
in the paper's sense: given ``p`` disjoint request sequences and a physical
cache budget, it decides who holds how much cache when, and yields a
:class:`~repro.parallel.events.ParallelRunResult`.  The protocol below is
the single structural interface the analysis harness and the CLI program
against; registering implementations by name keeps experiment configs
declarative.
"""

from __future__ import annotations

from typing import Callable, Dict, Protocol, runtime_checkable

from ..workloads.trace import ParallelWorkload
from .events import ParallelRunResult

__all__ = ["ParallelPager", "ALGORITHM_REGISTRY", "register_algorithm", "make_algorithm"]


@runtime_checkable
class ParallelPager(Protocol):
    """Structural type for parallel paging algorithms.

    Implementations expose a class-level ``name`` and a ``run`` method
    mapping a workload to a result.  Constructor signatures vary (seeds,
    distribution kinds, …), so registry factories close over them.
    """

    name: str
    cache_size: int
    miss_cost: int

    def run(self, workload: ParallelWorkload) -> ParallelRunResult:
        """Simulate the algorithm on a workload to completion."""
        ...


#: name -> factory(cache_size, miss_cost, seed) -> ParallelPager
ALGORITHM_REGISTRY: Dict[str, Callable[[int, int, int], ParallelPager]] = {}


def register_algorithm(name: str, factory: Callable[[int, int, int], ParallelPager]) -> None:
    """Register an algorithm factory under ``name`` for harness/CLI lookup."""
    if name in ALGORITHM_REGISTRY:
        raise ValueError(f"algorithm {name!r} already registered")
    ALGORITHM_REGISTRY[name] = factory


def make_algorithm(name: str, cache_size: int, miss_cost: int, seed: int = 0) -> ParallelPager:
    """Instantiate a registered algorithm; raises with the known list on typos."""
    try:
        factory = ALGORITHM_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHM_REGISTRY))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None
    return factory(cache_size, miss_cost, seed)
