"""Certified lower bounds on the optimal parallel makespan.

Parallel-paging OPT is NP-hard even offline [López-Ortiz & Salinger,
ITCS '12], so no experiment can compare against OPT exactly.  Instead we
compare against a **certified lower bound** ``T_LB <= T_OPT``: measured
ratios ``T_ALG / T_LB`` then *upper-bound* the true competitive ratios,
which is the sound direction for validating the paper's ``O(log p)``
upper-bound theorems (E3/E5/E6).

Three bounds, combined by max:

1. **Length**: every request takes >= 1 step, served in order, so
   ``T_OPT >= max_i |R^i|``.
2. **Isolation**: a processor running *alone* with the *whole* cache and
   Belady's MIN replacement is at least as fast as under any parallel OPT
   with the same cache, so ``T_OPT >= max_i minTime_i(k)``.
3. **Aggregate impact**: the cache supplies at most ``k`` page-slots per
   step, so ``k · T_OPT >= Σ_i I_i`` where ``I_i`` is the least memory
   impact that serves ``R^i``.  We compute ``I_i`` as the offline optimal
   *box-profile* impact on the full lattice (min height 1), then divide by
   ``box_normalization`` — the constant-factor cost of the WLOG reduction
   from arbitrary allocations to compartmentalized power-of-two boxes —
   to keep the bound certified.  (Ratios' *shape* across p is unaffected
   by this constant; we default to 4 = one factor 2 of height rounding,
   squared.)

`mean_completion_lower_bound` gives the analogous per-processor bound for
Corollary 3's objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.box import HeightLattice
from ..green.offline import optimal_box_profile
from ..paging.belady import min_service_time
from ..workloads.trace import ParallelWorkload

__all__ = ["MakespanLowerBound", "makespan_lower_bound", "mean_completion_lower_bound"]


@dataclass(frozen=True)
class MakespanLowerBound:
    """A certified lower bound with its per-component breakdown.

    Attributes
    ----------
    value:
        ``max(length, isolation, impact)`` — the bound itself.
    length_bound, isolation_bound, impact_bound:
        The three components (impact already normalized).
    per_proc_isolation:
        Belady-alone-with-full-cache time per processor (also the per-proc
        completion-time lower bound used for the mean objective).
    """

    value: int
    length_bound: int
    isolation_bound: int
    impact_bound: int
    per_proc_isolation: np.ndarray

    def breakdown(self) -> Dict[str, int]:
        """Component values keyed by name (for reports and assertions)."""
        return {
            "length": self.length_bound,
            "isolation": self.isolation_bound,
            "impact": self.impact_bound,
            "value": self.value,
        }


def _impact_lattice(k: int) -> HeightLattice:
    """Full lattice with min height 1 (heights 1, 2, …, k)."""
    return HeightLattice(k=k, p=k)


def makespan_lower_bound(
    workload: ParallelWorkload,
    k: int,
    miss_cost: int,
    box_normalization: float = 4.0,
    include_impact: bool = True,
) -> MakespanLowerBound:
    """Compute the certified makespan lower bound for a workload.

    Parameters
    ----------
    k:
        OPT's cache size (use the *un-augmented* size when evaluating an
        algorithm that was granted ``ξ·k``).
    box_normalization:
        Constant dividing the aggregate-impact component (see module doc).
    include_impact:
        The impact component runs one offline DP per processor; disable for
        quick sanity runs on large workloads.
    """
    s = int(miss_cost)
    p = workload.p
    iso = np.zeros(p, dtype=np.int64)
    length = 0
    for i, seq in enumerate(workload.sequences):
        length = max(length, len(seq))
        iso[i] = min_service_time(seq, k, s) if len(seq) else 0
    isolation = int(iso.max()) if p else 0

    impact_bound = 0
    if include_impact and p:
        lattice = _impact_lattice(k)
        total_impact = 0
        for seq in workload.sequences:
            if len(seq) == 0:
                continue
            total_impact += optimal_box_profile(seq, lattice, s).impact
        impact_bound = int(np.floor(total_impact / (k * box_normalization)))

    value = max(length, isolation, impact_bound)
    return MakespanLowerBound(
        value=value,
        length_bound=length,
        isolation_bound=isolation,
        impact_bound=impact_bound,
        per_proc_isolation=iso,
    )


def mean_completion_lower_bound(
    workload: ParallelWorkload,
    k: int,
    miss_cost: int,
) -> float:
    """Certified lower bound on OPT's *mean* completion time.

    Two components, combined by max:

    * isolation: ``mean_i minTime_i(k)`` — each processor's completion is
      at least its alone-with-full-cache Belady time;
    * service-rate staircase: order processors by their minimum possible
      service demand ``d_i = hits_i + s·faults_i(k)``; since at most one
      request per processor is served per step but the whole machine
      serves what it serves, the j-th completion (in any schedule) is at
      least the j-th smallest ``d_i``... which is exactly the isolation
      bound per processor again — so the staircase adds nothing beyond
      isolation here and we keep the simple mean.  (Documented to explain
      why no tighter closed form is used.)
    """
    s = int(miss_cost)
    if workload.p == 0:
        return 0.0
    iso = [min_service_time(seq, k, s) if len(seq) else 0 for seq in workload.sequences]
    return float(np.mean(iso))
