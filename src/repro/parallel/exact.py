"""Exact optimal parallel paging for tiny two-processor instances.

Parallel paging OPT is NP-hard in general, but for p = 2, short sequences,
and the normalized box lattice, the optimal *box schedule* can be found by
exhaustive memoized search.  This module exists for rigor, not scale: the
test suite uses it to

* certify that :func:`repro.parallel.opt.makespan_lower_bound` is sound
  (LB <= exact OPT on every searched instance), and
* measure how loose the bound is (documented in EXPERIMENTS.md).

Model searched (the paper's WLOG normal form, plus early release):

* a processor is idle or inside a compartmentalized box of lattice height
  ``h`` (heights ``1, 2, …, k``), LRU inside, maximal service;
* a non-finishing box lasts exactly ``s·h``; a box in which the sequence
  completes is released at its service time (OPT would never hold memory
  past completion);
* whenever both boxes are live, ``h₁ + h₂ <= k``;
* decisions happen when a processor is boxless: start any feasible box
  now, or stall until the other's box ends (stalling at other moments is
  dominated; deciders alternate instantaneously, so every simultaneous
  height pair is reachable).

State: ``(decider, pos_decider, pos_other, other_remaining, other_height)``
— positions are advanced at box *start* (service outcome is deterministic),
so at most one processor is "mid-box" in any decision state.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..core.box import HeightLattice
from ..paging.engine import run_box
from ..paging.kernel import maybe_kernel, run_box_fast
from ..workloads.trace import ParallelWorkload
from .events import sim_backend

__all__ = ["exact_two_proc_makespan"]

_INF = float("inf")


def exact_two_proc_makespan(
    workload: ParallelWorkload,
    k: int,
    miss_cost: int,
    max_states: int = 500_000,
) -> int:
    """Minimum makespan of any box schedule for a 2-processor workload.

    Raises ``RuntimeError`` if the memo table exceeds ``max_states``
    (instance too large for exact search).
    """
    if workload.p != 2:
        raise ValueError(f"exact search supports exactly 2 processors, got {workload.p}")
    lattice = HeightLattice(k=k, p=k)  # heights 1, 2, ..., k
    heights = lattice.heights
    s = int(miss_cost)
    seqs = (workload.sequences[0], workload.sequences[1])
    lens = (len(seqs[0]), len(seqs[1]))

    # progress[i][h][pos] = (end position, charged duration) — the
    # lens[i] · k box probes below dominate small instances, so they go
    # through the cached reuse-distance kernel when enabled.
    digest = getattr(workload, "content_digest", None)
    use_kernel = sim_backend() != "reference"
    progress: Tuple[Dict[int, Dict[int, Tuple[int, int]]], ...] = ({}, {})
    for i in (0, 1):
        kern = maybe_kernel(seqs[i], key=(digest, i) if digest else None) if use_kernel else None
        for h in heights:
            table: Dict[int, Tuple[int, int]] = {}
            for pos in range(lens[i]):
                r = (
                    run_box_fast(kern, pos, h, s * h, s)
                    if kern is not None
                    else run_box(seqs[i], pos, h, s * h, s)
                )
                duration = r.time_used if r.end >= lens[i] else s * h
                table[pos] = (r.end, duration)
            progress[i][h] = table

    solo_memo: Dict[Tuple[int, int], float] = {}

    def solo(i: int, pos: int) -> float:
        """Best remaining time for processor i alone with the full cache."""
        if pos >= lens[i]:
            return 0.0
        key = (i, pos)
        cached = solo_memo.get(key)
        if cached is not None:
            return cached
        best = _INF
        for h in heights:
            end, dur = progress[i][h][pos]
            if end == pos:
                continue
            cand = dur if end >= lens[i] else dur + solo(i, end)
            if cand < best:
                best = cand
        solo_memo[key] = best
        return best

    memo: Dict[Tuple[int, int, int, int, int, bool], float] = {}

    def best(decider: int, pos_d: int, pos_o: int, rem_o: int, h_o: int, passed: bool = False) -> float:
        """Min additional time until both finish.

        ``decider`` is boxless; the other processor has ``rem_o`` steps
        left in a height-``h_o`` box (0 = idle).  A processor whose
        position reached its length and whose box has been released is
        done.  ``passed`` marks that the decision was already handed over
        once at this instant (prevents infinite mutual deferral while
        still making "idle with no box while the other takes the full
        cache" reachable).
        """
        other = 1 - decider
        d_done = pos_d >= lens[decider]
        o_done = pos_o >= lens[other]
        if d_done:
            if rem_o > 0:
                return rem_o + (0.0 if o_done else solo(other, pos_o))
            return 0.0 if o_done else solo(other, pos_o)
        if rem_o == 0 and o_done:
            return solo(decider, pos_d)
        key = (decider, pos_d, pos_o, rem_o, h_o, passed)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if len(memo) > max_states:
            raise RuntimeError("exact search exceeded max_states; instance too large")
        result = _INF
        cap = k - (h_o if rem_o > 0 else 0)
        for h in heights:
            if h > cap:
                break
            end, dur = progress[decider][h][pos_d]
            if rem_o == 0:
                # other is idle but unfinished: it decides next, at this instant
                cand = best(other, pos_o, end, dur, h)
            elif dur <= rem_o:
                cand = dur + best(decider, end, pos_o, rem_o - dur, h_o if rem_o > dur else 0)
            else:
                cand = rem_o + best(other, pos_o, end, dur - rem_o, h)
            if cand < result:
                result = cand
        if rem_o > 0:
            # stall until the other's box ends
            cand = rem_o + best(decider, pos_d, pos_o, 0, 0)
            if cand < result:
                result = cand
        elif not passed and not o_done:
            # hand the decision over without taking a box, so the other can
            # claim the full cache while we wait
            cand = best(other, pos_o, pos_d, 0, 0, passed=True)
            if cand < result:
                result = cand
        memo[key] = result
        return result

    if lens[0] == 0 and lens[1] == 0:
        return 0
    if lens[0] == 0:
        return int(solo(1, 0))
    if lens[1] == 0:
        return int(solo(0, 0))
    return int(best(0, 0, 0, 0, 0))
