"""Fairness diagnostics across processors.

Makespan and mean completion are aggregates; fairness asks how the pain is
*distributed*.  The paper's balance property (Lemma 7) is an impact-side
fairness condition; these metrics are the completion-time side, used by
the examples and the E6 discussion:

* **slowdown** per processor: completion time divided by its certified
  isolation lower bound (alone, full cache, Belady) — "how much did
  sharing cost *me*";
* **Jain's fairness index** over slowdowns: 1 = perfectly equal,
  1/p = one processor absorbs everything;
* **spread**: max/min completion among non-trivial processors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..paging.belady import min_service_time
from ..workloads.trace import ParallelWorkload
from .events import ParallelRunResult

__all__ = ["FairnessReport", "fairness_report", "jain_index"]


def jain_index(values: np.ndarray) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` over positive values.

    1.0 means all equal; 1/n means a single value dominates.  Returns 1.0
    for empty input.
    """
    x = np.asarray(values, dtype=np.float64)
    x = x[x > 0]
    if len(x) == 0:
        return 1.0
    return float(x.sum() ** 2 / (len(x) * np.square(x).sum()))


@dataclass(frozen=True)
class FairnessReport:
    """Per-run fairness summary.

    Attributes
    ----------
    slowdowns:
        Per-processor completion / isolation-LB (NaN for empty sequences).
    jain:
        Jain index over finite slowdowns.
    max_slowdown, mean_slowdown:
        Tail and average individual cost of sharing.
    completion_spread:
        max/min completion time among processors with nonempty sequences.
    """

    slowdowns: np.ndarray
    jain: float
    max_slowdown: float
    mean_slowdown: float
    completion_spread: float

    def as_dict(self) -> Dict[str, object]:
        """Rounded dict form for table rendering."""
        return {
            "jain": round(self.jain, 3),
            "max_slowdown": round(self.max_slowdown, 3),
            "mean_slowdown": round(self.mean_slowdown, 3),
            "completion_spread": round(self.completion_spread, 3),
        }


def fairness_report(
    result: ParallelRunResult,
    workload: ParallelWorkload,
    k: int,
) -> FairnessReport:
    """Compute fairness diagnostics for a finished run.

    ``k`` is the un-augmented cache used for the per-processor isolation
    bounds (same convention as the makespan lower bound).
    """
    s = result.miss_cost
    p = result.p
    slow = np.full(p, np.nan, dtype=np.float64)
    for i, seq in enumerate(workload.sequences):
        if len(seq) == 0:
            continue
        iso = min_service_time(seq, k, s)
        slow[i] = float(result.completion_times[i]) / max(1, iso)
    finite = slow[np.isfinite(slow)]
    completions = np.asarray(
        [result.completion_times[i] for i in range(p) if len(workload.sequences[i])], dtype=np.float64
    )
    spread = float(completions.max() / max(1.0, completions.min())) if len(completions) else 1.0
    return FairnessReport(
        slowdowns=slow,
        jain=jain_index(finite),
        max_slowdown=float(finite.max()) if len(finite) else 1.0,
        mean_slowdown=float(finite.mean()) if len(finite) else 1.0,
        completion_spread=spread,
    )
