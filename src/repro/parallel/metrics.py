"""Metrics over parallel-paging runs: ratios, utilization, summaries.

All experiments funnel through :func:`summarize`, so every table in the
benchmark harness reports the same quantities computed the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .events import ParallelRunResult, capacity_profile, peak_concurrent_height
from .opt import MakespanLowerBound

__all__ = ["RunSummary", "summarize", "cache_utilization"]


def cache_utilization(result: ParallelRunResult) -> float:
    """Mean fraction of the cache reserved over the run's duration.

    0 for runs that record no box trace (e.g. GLOBAL-LRU, which always
    uses the full cache implicitly).
    """
    times, heights = capacity_profile(result.trace)
    if len(times) < 2:
        return 0.0
    durations = np.diff(times).astype(np.float64)
    # heights[i] holds over [times[i], times[i+1])
    area = float(np.dot(heights[:-1].astype(np.float64), durations))
    span = float(times[-1] - times[0])
    if span <= 0:
        return 0.0
    return area / (span * result.cache_size)


@dataclass(frozen=True)
class RunSummary:
    """One row of every experiment table.

    Attributes
    ----------
    algorithm, p:
        Identity of the run.
    makespan, mean_completion:
        The two objectives.
    makespan_ratio, mean_completion_ratio:
        Objectives divided by their certified lower bounds (upper bounds
        on the true competitive ratios); None when no bound was supplied.
    peak_height, xi_measured:
        Peak concurrent reserved height and its ratio to ``cache_size``
        (requires a box trace).
    utilization:
        Time-averaged reserved fraction of the cache.
    """

    algorithm: str
    p: int
    makespan: int
    mean_completion: float
    makespan_ratio: Optional[float]
    mean_completion_ratio: Optional[float]
    peak_height: int
    xi_measured: float
    utilization: float

    def as_dict(self) -> Dict[str, object]:
        """Rounded dict form for table rendering / CSV export."""
        return {
            "algorithm": self.algorithm,
            "p": self.p,
            "makespan": self.makespan,
            "mean_completion": round(self.mean_completion, 2),
            "makespan_ratio": None if self.makespan_ratio is None else round(self.makespan_ratio, 3),
            "mean_completion_ratio": (
                None if self.mean_completion_ratio is None else round(self.mean_completion_ratio, 3)
            ),
            "peak_height": self.peak_height,
            "xi_measured": round(self.xi_measured, 3),
            "utilization": round(self.utilization, 3),
        }


def summarize(
    result: ParallelRunResult,
    makespan_lb: Optional[MakespanLowerBound] = None,
    mean_lb: Optional[float] = None,
) -> RunSummary:
    """Reduce a run (plus optional lower bounds) to a table row."""
    peak = peak_concurrent_height(result.trace)
    makespan = result.makespan
    mean_ct = result.mean_completion_time
    return RunSummary(
        algorithm=result.algorithm,
        p=result.p,
        makespan=makespan,
        mean_completion=mean_ct,
        makespan_ratio=(makespan / makespan_lb.value) if makespan_lb and makespan_lb.value else None,
        mean_completion_ratio=(mean_ct / mean_lb) if mean_lb else None,
        peak_height=peak,
        xi_measured=peak / result.cache_size if result.cache_size else 0.0,
        utilization=cache_utilization(result),
    )
