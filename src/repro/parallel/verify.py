"""Independent re-execution verifier for box-schedule traces.

``ParallelRunResult.validate()`` checks *structure* (contiguous service,
well-formed intervals).  This module checks *semantics*: it replays every
recorded box against the workload with a fresh cold LRU of the recorded
height and the recorded wall-clock window, and confirms that the
simulator's claimed progress, hit/fault counts, and completion times are
exactly what the paging model dictates.

This is the strongest correctness oracle in the repository: any drift
between a scheduler's internal bookkeeping and the model (an off-by-one
in budgets, a stale position, a phantom warm cache across box boundaries)
fails loudly here.  The cross-algorithm property tests run it on every
registered box algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..paging.engine import run_box
from ..paging.kernel import maybe_kernel, run_box_fast
from ..workloads.trace import ParallelWorkload
from .events import ParallelRunResult, sim_backend

__all__ = ["TraceVerification", "verify_trace"]


@dataclass(frozen=True)
class TraceVerification:
    """Outcome of a semantic trace verification.

    Attributes
    ----------
    ok:
        True iff every box replayed exactly and completions match.
    errors:
        Human-readable discrepancy descriptions (empty when ok).
    boxes_checked:
        Number of box records replayed.
    """

    ok: bool
    errors: Tuple[str, ...]
    boxes_checked: int


def verify_trace(result: ParallelRunResult, workload: ParallelWorkload) -> TraceVerification:
    """Replay ``result.trace`` against ``workload`` and compare everything.

    Conventions verified:

    * boxes are compartmentalized: each replays from a cold cache at the
      recorded ``served_start`` with the recorded height and wall budget
      ``end - start``;
    * the box serves exactly ``[served_start, served_end)`` with the
      recorded hit/fault split;
    * per-processor service is contiguous and finishes each sequence;
    * each processor's completion time equals the start of its finishing
      box plus the service time used inside it.
    """
    errors: List[str] = []
    s = result.miss_cost
    seqs = workload.sequences  # StreamingWorkload falls back to memmap columns
    digest = getattr(workload, "content_digest", None)
    use_kernel = sim_backend() != "reference"
    per_proc: Dict[int, List] = {i: [] for i in range(workload.p)}
    for r in result.trace:
        per_proc.setdefault(r.proc, []).append(r)
    checked = 0
    for proc, boxes in per_proc.items():
        boxes.sort(key=lambda r: (r.start, r.served_start))
        pos = 0
        completion = None
        seq = seqs[proc] if proc < len(seqs) else None
        if seq is None:
            if boxes:
                errors.append(f"proc {proc}: trace references unknown processor")
            continue
        kern = maybe_kernel(seq, key=(digest, proc) if digest else None) if use_kernel else None
        for r in boxes:
            checked += 1
            if r.served_start != pos:
                errors.append(
                    f"proc {proc}: box at t={r.start} starts service at {r.served_start}, expected {pos}"
                )
                pos = r.served_start
            replay = (
                run_box_fast(kern, r.served_start, r.height, r.duration, s)
                if kern is not None
                else run_box(seq, r.served_start, r.height, r.duration, s)
            )
            if replay.end != r.served_end:
                errors.append(
                    f"proc {proc}: box at t={r.start} (h={r.height}, dur={r.duration}) "
                    f"claims service to {r.served_end}, replay gives {replay.end}"
                )
            if (replay.hits, replay.faults) != (r.hits, r.faults):
                errors.append(
                    f"proc {proc}: box at t={r.start} claims {r.hits}h/{r.faults}f, "
                    f"replay gives {replay.hits}h/{replay.faults}f"
                )
            pos = r.served_end
            if pos >= len(seq) and completion is None:
                completion = r.start + replay.time_used
        if len(seq) == 0:
            if int(result.completion_times[proc]) != 0:
                errors.append(f"proc {proc}: empty sequence but completion {result.completion_times[proc]}")
            continue
        if pos < len(seq):
            errors.append(f"proc {proc}: trace serves only {pos}/{len(seq)} requests")
        elif completion is not None and completion != int(result.completion_times[proc]):
            errors.append(
                f"proc {proc}: recorded completion {int(result.completion_times[proc])}, "
                f"replay gives {completion}"
            )
    return TraceVerification(ok=not errors, errors=tuple(errors), boxes_checked=checked)
