"""Benchmark E6: Corollary 3 — DET-PAR O(log p) mean completion time.

Regenerates the E6 table (DESIGN.md §5); the rendered report is written
to ``benchmarks/out/e6.md``.  Run with ``--repro-scale full`` to
reproduce the numbers recorded in EXPERIMENTS.md.
"""

from repro.analysis.report import write_report
from repro.experiments import e6_mean_completion


def bench_e6(benchmark, repro_scale, out_dir):
    rows, text = benchmark.pedantic(
        e6_mean_completion, kwargs={"scale": repro_scale, "seed": 0}, rounds=1, iterations=1
    )
    write_report(text, out_dir / "e6.md", echo=False)
    assert rows, "experiment produced no rows"
    import math
    # Corollary 3 shape for the paper's algorithms
    for r in rows:
        if r["algorithm"] in ("det-par", "rand-par"):
            assert r["mean_completion_ratio"] <= 3 * math.log2(max(2, r["p"])) + 4
