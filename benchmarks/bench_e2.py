"""Benchmark E2: Observation 1 — chunk primary/secondary balance in RAND-PAR.

Regenerates the E2 table (DESIGN.md §5); the rendered report is written
to ``benchmarks/out/e2.md``.  Run with ``--repro-scale full`` to
reproduce the numbers recorded in EXPERIMENTS.md.
"""

from repro.analysis.report import write_report
from repro.experiments import e2_chunk_balance


def bench_e2(benchmark, repro_scale, out_dir):
    rows, text = benchmark.pedantic(
        e2_chunk_balance, kwargs={"scale": repro_scale, "seed": 0}, rounds=1, iterations=1
    )
    write_report(text, out_dir / "e2.md", echo=False)
    assert rows, "experiment produced no rows"
    # Observation 1: analytic E[l2]/l1 is Θ(1)
    assert all(0.4 <= r["analytic_len_ratio"] <= 2.5 for r in rows)
