"""Trace corpus benchmarks: ingest throughput and bounded-memory streaming.

Two families:

* ingest timings — the streaming text reader and the binary store writer
  on a multi-megabyte synthetic trace (guards the vectorized
  ``workloads.formats`` fast path and the spool-based ``StoreWriter``);
* the bounded-memory demonstration — a trace more than 10× the chunk
  budget is simulated chunk-by-chunk off the store with peak Python-heap
  allocation a small fraction of the trace size, and the resulting
  :class:`ProfileRun` is asserted **equal** to the in-memory run.

Run with ``pytest benchmarks/bench_traces.py``.
"""

import tracemalloc

import numpy as np
import pytest

from repro.paging import execute_profile
from repro.traces import TraceStore, execute_store_profile, import_trace, write_store
from repro.workloads import ParallelWorkload
from repro.workloads.formats import read_trace_text, write_trace_text
from repro.workloads.stats import characterize
from repro.traces.stream import characterize_store

RNG = np.random.default_rng(99)
CHUNK_ROWS = 8192
#: > 10x the chunk budget, per the subsystem's bounded-memory acceptance bar.
N_ROWS = 24 * CHUNK_ROWS
MISS_COST = 8


@pytest.fixture(scope="module")
def workload():
    seqs = [RNG.integers(0, 4096, size=N_ROWS) + (1 << 20) * i for i in range(2)]
    return ParallelWorkload(sequences=seqs, name="bench-trace")


@pytest.fixture(scope="module")
def text_path(workload, tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "bench.txt"
    write_trace_text(workload, path)
    return path


@pytest.fixture(scope="module")
def store(workload, tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "bench.trc"
    return write_store(path, workload, chunk_rows=CHUNK_ROWS)


def bench_text_ingest(benchmark, text_path, workload):
    """Streaming vectorized text reader (one `processor page` line per request)."""
    wl = benchmark(read_trace_text, text_path)
    assert wl.p == workload.p
    assert np.array_equal(wl.sequences[0], workload.sequences[0])


def bench_text_import_to_store(benchmark, text_path, workload, tmp_path):
    """Full ingest pipeline: text -> StoreWriter spool -> published store."""
    counter = iter(range(1_000_000))

    def run():
        return import_trace(text_path, tmp_path / f"ingest-{next(counter)}.trc", chunk_rows=CHUNK_ROWS)

    st = benchmark(run)
    assert st.total_requests == 2 * N_ROWS


def bench_store_write(benchmark, workload, tmp_path):
    """Binary store writer from an in-memory workload (digest + spool + copy)."""
    counter = iter(range(1_000_000))

    def run():
        return write_store(tmp_path / f"w-{next(counter)}.trc", workload, chunk_rows=CHUNK_ROWS)

    st = benchmark(run)
    assert st.p == workload.p


def bench_store_open(benchmark, store):
    """Header parse + validation; must stay O(1) in trace size."""
    st = benchmark(TraceStore, store.path)
    assert st.total_requests == 2 * N_ROWS


def bench_streamed_execution(benchmark, store, workload):
    """Chunked box execution straight off the store, vs the in-memory oracle."""
    heights = [32, 64, 128] * 10_000
    ref = execute_profile(workload.sequences[0], heights, MISS_COST)

    run = benchmark(execute_store_profile, store, 0, heights, MISS_COST)
    assert run == ref, "streamed ProfileRun must be identical to in-memory"


def bench_streamed_characterize(benchmark, store, workload):
    """Streaming statistics off the store, vs the in-memory characterize."""
    ref = characterize(workload.sequences[0], window=512)
    got = benchmark(characterize_store, store, 0, window=512)
    assert got == ref


def test_streaming_peak_memory_is_bounded(store, workload):
    """The subsystem's acceptance bar: a trace >10x the chunk budget
    simulates off the store with peak heap allocation far below the trace
    size, and the result is equal to the in-memory run."""
    # large boxes keep the ProfileRun itself small, so the measurement
    # sees the streaming window rather than the result object
    heights = [256, 512, 1024] * 1_000
    column_bytes = N_ROWS * 8
    assert N_ROWS >= 10 * CHUNK_ROWS

    tracemalloc.start()
    ref = execute_profile(np.array(store.column(0)), heights, MISS_COST)
    _, peak_inmem = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    run = execute_store_profile(store, 0, heights, MISS_COST)
    _, peak_stream = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert run == ref
    # the in-memory path materializes the whole column; streaming holds a
    # box window plus a chunk or two
    assert peak_inmem >= column_bytes
    assert peak_stream < column_bytes / 4, (
        f"streaming peak {peak_stream}B not bounded vs column {column_bytes}B"
    )
