"""Benchmark E1: Theorem 1 — RAND-GREEN is O(log p)-competitive for green paging.

Regenerates the E1 table (DESIGN.md §5); the rendered report is written
to ``benchmarks/out/e1.md``.  Run with ``--repro-scale full`` to
reproduce the numbers recorded in EXPERIMENTS.md.
"""

from repro.analysis.report import write_report
from repro.experiments import e1_rand_green


def bench_e1(benchmark, repro_scale, out_dir):
    rows, text = benchmark.pedantic(
        e1_rand_green, kwargs={"scale": repro_scale, "seed": 0}, rounds=1, iterations=1
    )
    write_report(text, out_dir / "e1.md", echo=False)
    assert rows, "experiment produced no rows"
    # Theorem 1 sanity: an online algorithm cannot beat offline OPT
    assert all(r["ratio_mean"] >= 0.99 for r in rows)
