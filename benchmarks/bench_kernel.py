"""Benchmark: reference dict-LRU loop vs numpy fast kernel vs native tier.

Two measurements, both best-of-``ROUNDS`` wall clock with rounds
interleaved across backends (same drift-cancelling idiom as bench_obs):

* **DP microbench** — ``optimal_box_profile`` over the twelve E1-quick
  cells (p ∈ {4, 8, 16, 32} × {scan, polluted-cycle, multiscale}), the
  headline win the kernel was built for.  The kernel cache is cleared
  before every solve so each one pays its own precompute, exactly as a
  cold experiment cell would.
* **E1 quick end-to-end** — ``run_named_experiment("e1")``, which mixes
  DP solves with RAND-GREEN box rollouts and the scheduling harness.

Backends are selected via the ``REPRO_KERNEL`` environment variable
(``reference`` / ``fast`` / ``native``), the same escape hatch users
have.  The native tier compiles through numba when importable, else
through the bundled C source via ``cc``; when neither is available it
falls back to the numpy fast path and the report records
``native_flavor: null``.  Results go to
``benchmarks/out/BENCH_kernel.json`` **and** to the repo-root
``BENCH_kernel.json``, which is committed per-PR (ROADMAP item 2c) so
the bench trajectory is diffable in review.  The run **fails** if the
fast kernel is slower than the reference loop on the DP microbench, if
a compiled native flavor is slower than the fast kernel there, or if
any measurement's outputs differ between backends (the kernels are
only valid if they are bit-identical).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.box import HeightLattice
from repro.experiments import run_named_experiment
from repro.green.offline import optimal_box_profile
from repro.paging.kernel import clear_kernel_cache, native_flavor
from repro.workloads.generators import multiscale_cycles, polluted_cycle, scan

ROUNDS = 3


def _best_of_interleaved(fns, rounds=ROUNDS):
    """Best-of timing with rounds interleaved across configurations.

    Interleaving cancels slow drift (thermal, frequency scaling, page
    cache warm-up) that would otherwise bias whichever configuration
    happened to run last.
    """
    best = [float("inf")] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def _dp_cells():
    """The twelve E1-quick DP cells (workloads generated exactly once)."""
    cells = []
    for p in (4, 8, 16, 32):
        k = 4 * p
        s = 2 * k
        n = 1200
        rng = np.random.default_rng(np.random.SeedSequence(entropy=0, spawn_key=(p,)))
        workloads = {
            "scan": scan(n),
            "polluted-cycle": polluted_cycle(n, max(2, k // 4), max(4, 2 * p)),
            "multiscale": multiscale_cycles(n, k, p, rng),
        }
        for name, seq in workloads.items():
            cells.append((f"p{p}/{name}", seq, HeightLattice(k, p), s))
    return cells


def bench_kernel_speedup(benchmark, out_dir):
    cells = _dp_cells()
    saved = os.environ.get("REPRO_KERNEL")

    def with_backend(backend, fn):
        os.environ["REPRO_KERNEL"] = backend
        try:
            return fn()
        finally:
            if saved is None:
                os.environ.pop("REPRO_KERNEL", None)
            else:
                os.environ["REPRO_KERNEL"] = saved

    def solve_dp():
        impacts = []
        for _, seq, lattice, s in cells:
            clear_kernel_cache()
            impacts.append(optimal_box_profile(seq, lattice, s).impact)
        return impacts

    def run_e1():
        clear_kernel_cache()
        rows, _ = run_named_experiment("e1", scale="quick", seed=0)
        return rows

    outputs = {}

    def timed(backend, fn, key):
        def run():
            outputs[(backend, key)] = with_backend(backend, fn)

        return run

    # warm imports, lattice caches, the page cache, and (for the native
    # tier) the one-off numba JIT / cc compile out of the measurement
    with_backend("fast", run_e1)
    flavor = with_backend("native", lambda: native_flavor())
    with_backend("native", solve_dp)

    dp_ref, dp_fast, dp_native, e1_ref, e1_fast, e1_native = _best_of_interleaved(
        [
            timed("reference", solve_dp, "dp"),
            timed("fast", solve_dp, "dp"),
            timed("native", solve_dp, "dp"),
            timed("reference", run_e1, "e1"),
            timed("fast", run_e1, "e1"),
            timed("native", run_e1, "e1"),
        ]
    )
    benchmark.pedantic(timed("native", solve_dp, "dp"), rounds=1, iterations=1)

    for backend in ("fast", "native"):
        assert outputs[("reference", "dp")] == outputs[(backend, "dp")], (
            f"DP impacts differ between kernels — the {backend} kernel is "
            f"not bit-identical"
        )
        assert outputs[("reference", "e1")] == outputs[(backend, "e1")], (
            f"E1 result rows differ between kernels — the {backend} kernel "
            f"is not bit-identical"
        )

    report = {
        "rounds": ROUNDS,
        "dp_cells": [name for name, *_ in cells],
        "native_flavor": flavor,
        "dp": {
            "reference_s": dp_ref,
            "fast_s": dp_fast,
            "native_s": dp_native,
            "speedup": dp_ref / dp_fast,
            "native_speedup_vs_fast": dp_fast / dp_native,
        },
        "e1_quick": {
            "reference_s": e1_ref,
            "fast_s": e1_fast,
            "native_s": e1_native,
            "speedup": e1_ref / e1_fast,
            "native_speedup_vs_fast": e1_fast / e1_native,
        },
        "outputs_identical": True,
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(report, indent=2) + "\n"
    (out_dir / "BENCH_kernel.json").write_text(payload)
    # the committed, diffable copy (benchmarks/out/ is gitignored)
    (Path(__file__).resolve().parents[1] / "BENCH_kernel.json").write_text(payload)

    assert dp_fast <= dp_ref, (
        f"fast kernel is slower than the reference loop on the offline DP "
        f"(fast={dp_fast:.3f}s, reference={dp_ref:.3f}s)"
    )
    if flavor is not None:
        # with no numba and no cc the native tier *is* the fast path, so
        # there is nothing to gate; with a compiled flavor it must win.
        assert dp_native <= dp_fast, (
            f"native kernel ({flavor}) is slower than the numpy fast path on "
            f"the offline DP (native={dp_native:.3f}s, fast={dp_fast:.3f}s)"
        )
