"""Benchmark-suite configuration.

Experiment benchmarks (bench_e1 … bench_e9) each regenerate one experiment
table from DESIGN.md §5 and persist it under ``benchmarks/out/`` so the
results survive pytest's output capture.  The ``scale`` is controlled with
``--repro-scale`` (default "quick"; pass "full" to reproduce the
EXPERIMENTS.md numbers — several minutes).

The execution engine is configurable the same way the CLI is:
``--repro-jobs N`` fans experiment cells out over N worker processes and
``--repro-cache`` enables the content-addressed result cache, so a warm
second benchmark run measures only the harness overhead.
"""

from pathlib import Path

import pytest

from repro.exec import execution

OUT_DIR = Path(__file__).parent / "out"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="quick",
        choices=("quick", "full"),
        help="experiment scale for the eX benchmarks",
    )
    parser.addoption(
        "--repro-jobs",
        action="store",
        type=int,
        default=1,
        help="worker processes for experiment cells (default 1 = serial)",
    )
    parser.addoption(
        "--repro-cache",
        action="store_true",
        default=False,
        help="enable the content-addressed result cache during benchmarks",
    )


@pytest.fixture
def repro_scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture(autouse=True)
def repro_execution(request):
    """Scope every benchmark under the configured execution engine."""
    jobs = request.config.getoption("--repro-jobs")
    cache = request.config.getoption("--repro-cache")
    with execution(jobs=jobs, cache=cache) as engine:
        yield engine


@pytest.fixture
def out_dir():
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR
