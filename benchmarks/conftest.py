"""Benchmark-suite configuration.

Experiment benchmarks (bench_e1 … bench_e9) each regenerate one experiment
table from DESIGN.md §5 and persist it under ``benchmarks/out/`` so the
results survive pytest's output capture.  The ``scale`` is controlled with
``--repro-scale`` (default "quick"; pass "full" to reproduce the
EXPERIMENTS.md numbers — several minutes).
"""

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="quick",
        choices=("quick", "full"),
        help="experiment scale for the eX benchmarks",
    )


@pytest.fixture
def repro_scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture
def out_dir():
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR
