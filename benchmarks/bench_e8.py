"""Benchmark E8: §3.1 ablation — the 1/j² height distribution is necessary.

Regenerates the E8 table (DESIGN.md §5); the rendered report is written
to ``benchmarks/out/e8.md``.  Run with ``--repro-scale full`` to
reproduce the numbers recorded in EXPERIMENTS.md.
"""

from repro.analysis.report import write_report
from repro.experiments import e8_ablation


def bench_e8(benchmark, repro_scale, out_dir):
    rows, text = benchmark.pedantic(
        e8_ablation, kwargs={"scale": repro_scale, "seed": 0}, rounds=1, iterations=1
    )
    write_report(text, out_dir / "e8.md", echo=False)
    assert rows, "experiment produced no rows"
    # Lemma 1 ablation: at the largest p the ordering is strict
    last = rows[-1]
    assert last["inverse_square"] < last["inverse_linear"] < last["uniform"]
