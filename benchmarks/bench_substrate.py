"""Micro-benchmarks of the substrate hot paths.

These guard the performance-critical building blocks (per the HPC guide:
measure before and after any optimization).  They are conventional
pytest-benchmark timings — many rounds, statistics — unlike the one-shot
experiment benches.
"""

import numpy as np
import pytest

from repro.core import DetPar, HeightLattice, RandPar
from repro.green import optimal_box_profile
from repro.paging import BeladySimulation, LRUCache, miss_ratio_curve, run_box
from repro.workloads import ParallelWorkload, cyclic, make_parallel_workload, zipf


RNG = np.random.default_rng(1234)
SEQ_ZIPF = zipf(50_000, 4096, 1.1, RNG)
SEQ_CYCLE = cyclic(50_000, 300)


def bench_lru_touch_zipf(benchmark):
    """LRU throughput on a skewed trace (hash + linked-list hot loop)."""

    def run():
        cache = LRUCache(256)
        for page in SEQ_ZIPF:
            cache.touch(int(page))
        return cache.faults

    faults = benchmark(run)
    assert faults > 0


def bench_run_box_engine(benchmark):
    """The box engine on a cache-sized cycle: the repo's hottest path."""

    def run():
        return run_box(SEQ_CYCLE, 0, 512, 512 * 16, 16).end

    end = benchmark(run)
    assert end > 0


def bench_belady(benchmark):
    """Offline MIN with the lazy max-heap."""

    def run():
        sim = BeladySimulation(SEQ_ZIPF[:20_000], 256)
        sim.run()
        return sim.faults

    faults = benchmark(run)
    assert faults > 0


def bench_miss_ratio_curve(benchmark):
    """Mattson stack distances over a Fenwick tree."""
    curve = benchmark(miss_ratio_curve, SEQ_ZIPF[:20_000], 1024)
    assert curve.n == 20_000


def bench_offline_green_dp(benchmark):
    """The offline green-paging DP (OPT comparator of E1/E8/E9)."""
    lattice = HeightLattice(64, 16)
    seq = cyclic(3_000, 24)

    result = benchmark(optimal_box_profile, seq, lattice, 128)
    assert result.impact > 0


def bench_det_par_simulation(benchmark):
    """End-to-end DET-PAR event simulation (8 processors)."""
    wl = make_parallel_workload(p=8, n_requests=400, k=64, rng=np.random.default_rng(7))

    def run():
        return DetPar(128, 16).run(wl).makespan

    makespan = benchmark(run)
    assert makespan > 0


def bench_rand_par_simulation(benchmark):
    """End-to-end RAND-PAR chunk simulation (8 processors)."""
    wl = make_parallel_workload(p=8, n_requests=400, k=64, rng=np.random.default_rng(8))

    def run():
        return RandPar(128, 16, np.random.default_rng(0)).run(wl).makespan

    makespan = benchmark(run)
    assert makespan > 0
