"""Benchmark E4: Lemma 6 — DET-PAR is well-rounded with O(k) memory.

Regenerates the E4 table (DESIGN.md §5); the rendered report is written
to ``benchmarks/out/e4.md``.  Run with ``--repro-scale full`` to
reproduce the numbers recorded in EXPERIMENTS.md.
"""

from repro.analysis.report import write_report
from repro.experiments import e4_well_rounded


def bench_e4(benchmark, repro_scale, out_dir):
    rows, text = benchmark.pedantic(
        e4_well_rounded, kwargs={"scale": repro_scale, "seed": 0}, rounds=1, iterations=1
    )
    write_report(text, out_dir / "e4.md", echo=False)
    assert rows, "experiment produced no rows"
    # Lemma 6: well-rounded with an O(1) gap constant, memory within grant
    assert all(r["base_covered"] for r in rows)
    assert all(r["max_gap_factor"] <= 8.0 for r in rows)
