"""Benchmark E7: Theorem 4 — greedily-green black-box separation on the adversarial instance.

Regenerates the E7 table (DESIGN.md §5); the rendered report is written
to ``benchmarks/out/e7.md``.  Run with ``--repro-scale full`` to
reproduce the numbers recorded in EXPERIMENTS.md.
"""

from repro.analysis.report import write_report
from repro.experiments import e7_lower_bound


def bench_e7(benchmark, repro_scale, out_dir):
    rows, text = benchmark.pedantic(
        e7_lower_bound, kwargs={"scale": repro_scale, "seed": 0}, rounds=1, iterations=1
    )
    write_report(text, out_dir / "e7.md", echo=False)
    assert rows, "experiment produced no rows"
    # Theorem 4: the separation grows with p
    ratios = [r["blackbox_ratio"] for r in rows]
    assert ratios[-1] > ratios[0]
