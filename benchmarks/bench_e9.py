"""Benchmark E9: Derandomization — DET-GREEN matches RAND-GREEN.

Regenerates the E9 table (DESIGN.md §5); the rendered report is written
to ``benchmarks/out/e9.md``.  Run with ``--repro-scale full`` to
reproduce the numbers recorded in EXPERIMENTS.md.
"""

from repro.analysis.report import write_report
from repro.experiments import e9_det_green


def bench_e9(benchmark, repro_scale, out_dir):
    rows, text = benchmark.pedantic(
        e9_det_green, kwargs={"scale": repro_scale, "seed": 0}, rounds=1, iterations=1
    )
    write_report(text, out_dir / "e9.md", echo=False)
    assert rows, "experiment produced no rows"
    # derandomization costs at most a small constant
    assert all(r["det/rand"] <= 2.0 for r in rows)
