"""Scaling benchmarks: simulator cost as p grows, with a diffable report.

Guards the simulators' practical complexity: DET-PAR's event loop and
RAND-PAR's chunk loop should scale near-linearly in total requests for
fixed per-processor work (each box serves Θ(height) requests and the
number of concurrent boxes is bounded by the capacity ledger).

Timings are best-of-``ROUNDS`` with rounds interleaved across (algo, p)
configurations (the same drift-cancelling idiom as bench_kernel), and
the per-request cost curve plus a linearity factor — the ratio of the
largest p's per-request cost to the smallest's — is written to
``benchmarks/out/BENCH_scaling.json`` **and** to the repo-root
``BENCH_scaling.json``, which is committed per-PR (ROADMAP item 2c) so
the scaling trajectory is diffable in review.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core import DetPar, RandPar
from repro.workloads import make_parallel_workload

ROUNDS = 3
# 24 is deliberately not a power of two: the generalized height lattice
# must cost the same per request as the power-of-two configurations
PS = (4, 16, 24, 64)
N_REQUESTS = 200


def _workload(p):
    return make_parallel_workload(
        p=p, n_requests=N_REQUESTS, k=4 * p, rng=np.random.default_rng(p), kind="multiscale"
    )


def _configs():
    cells = []
    for p in PS:
        wl = _workload(p)
        cells.append(("det-par", p, wl, lambda wl=wl, p=p: DetPar(8 * p, 16).run(wl).makespan))
        cells.append(
            (
                "rand-par",
                p,
                wl,
                lambda wl=wl, p=p: RandPar(8 * p, 16, np.random.default_rng(0)).run(wl).makespan,
            )
        )
    return cells


def bench_simulator_scaling(benchmark, out_dir):
    cells = _configs()
    for *_, fn in cells:
        fn()  # warm imports and allocator out of the measurement
    best = [float("inf")] * len(cells)
    for _ in range(ROUNDS):
        for i, (*_, fn) in enumerate(cells):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    benchmark.pedantic(cells[0][3], rounds=1, iterations=1)

    report = {"rounds": ROUNDS, "n_requests": N_REQUESTS, "algorithms": {}}
    for (algo, p, wl, _), seconds in zip(cells, best):
        per_request = seconds / wl.total_requests
        report["algorithms"].setdefault(algo, {})[f"p{p}"] = {
            "total_requests": wl.total_requests,
            "best_s": seconds,
            "us_per_request": per_request * 1e6,
        }
    for algo, rows in report["algorithms"].items():
        curve = [rows[f"p{p}"]["us_per_request"] for p in PS]
        # near-linear scaling keeps per-request cost roughly flat in p
        rows["linearity_factor"] = curve[-1] / curve[0]

    out_dir.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(report, indent=2) + "\n"
    (out_dir / "BENCH_scaling.json").write_text(payload)
    # the committed, diffable copy (benchmarks/out/ is gitignored)
    (Path(__file__).resolve().parents[1] / "BENCH_scaling.json").write_text(payload)

    for algo, rows in report["algorithms"].items():
        assert rows["linearity_factor"] > 0
