"""Scaling benchmarks: simulator cost as p grows.

Guards the simulators' practical complexity: DET-PAR's event loop and
RAND-PAR's chunk loop should scale near-linearly in total requests for
fixed per-processor work (each box serves Θ(height) requests and the
number of concurrent boxes is bounded by the capacity ledger).
"""

import numpy as np
import pytest

from repro.core import DetPar, RandPar
from repro.workloads import make_parallel_workload


@pytest.mark.parametrize("p", [4, 16, 64])
def bench_det_par_scaling(benchmark, p):
    wl = make_parallel_workload(p=p, n_requests=200, k=4 * p, rng=np.random.default_rng(p), kind="multiscale")

    def run():
        return DetPar(8 * p, 16).run(wl).makespan

    assert benchmark(run) > 0


@pytest.mark.parametrize("p", [4, 16, 64])
def bench_rand_par_scaling(benchmark, p):
    wl = make_parallel_workload(p=p, n_requests=200, k=4 * p, rng=np.random.default_rng(p), kind="multiscale")

    def run():
        return RandPar(8 * p, 16, np.random.default_rng(0)).run(wl).makespan

    assert benchmark(run) > 0
