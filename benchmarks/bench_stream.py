"""Streamed million-request benchmark: the event engine vs the timestep oracle.

The ISSUE-9 headline numbers: a 10⁶-request, p=1024 run streamed
chunk-by-chunk from a trace store must complete in bounded memory
(tracemalloc peak < 512 MB) and beat the retained per-instant timestep
reference by >= 5x, byte-identically.

The workload is the Albers–Hellwig *parallel schedules* shape (the
``parallel-schedules`` search family): 1023 short head jobs plus one
long, cache-thrashing tail.  That imbalance is precisely where
event-driven simulation earns its keep — once the heads drain, the
timestep loop still rescans all 1024 processors at every instant of the
tail while the heap pays O(log p) per request — and where the paper's
makespan story is interesting at scale.

Two cells are recorded:

* ``global-lru`` (the gate): the shared-cache timestep simulator, event
  heap vs ``REPRO_SIM=reference`` full rescan.  Ratio asserted >= 5.
* ``det-par`` (gated >= 1): the box algorithm on the same stream under
  the shipping config — ``REPRO_KERNEL=native`` + ``REPRO_SIM=auto`` —
  vs the forced per-instant reference.  ``auto`` resolves per cell: the
  native kernel makes event-driven boxes cheap enough to win, while the
  numpy kernel on this imbalanced stream would fall back to the
  reference rescan (the ISSUE-10 regression fix).  The resolved backend
  and native flavor are recorded in the report.

The report lands in ``benchmarks/out/BENCH_stream.json`` **and** the
committed repo-root ``BENCH_stream.json`` (same idiom as
``bench_scaling.py``), so the streamed-scale trajectory is diffable in
review.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.core import DetPar
from repro.paging.kernel import clear_kernel_cache, native_flavor
from repro.parallel.events import resolve_sim_backend
from repro.parallel.streaming import open_streaming
from repro.parallel.timestep import GlobalLRU
from repro.traces.store import write_store
from repro.workloads import ParallelWorkload, cyclic

P = 1024
HEAD_REQUESTS = 684
HEAD_PAGES = 24
TAIL_REQUESTS = 300_000
TAIL_PAGES = 4096
CHUNK_ROWS = 4096
MISS_COST = 8
GLOBAL_CACHE = 4096
DETPAR_CACHE = 32768
EVENT_ROUNDS = 2  # reference cells run once (the slow side)
MEMORY_BUDGET_MB = 512
GATE_RATIO = 5.0
DETPAR_GATE_RATIO = 1.0


def _workload() -> ParallelWorkload:
    """Deterministic parallel-schedules shape: short heads, one long tail."""
    head = [cyclic(HEAD_REQUESTS, HEAD_PAGES) + 32 * i for i in range(P - 1)]
    tail = cyclic(TAIL_REQUESTS, TAIL_PAGES) + 32 * P
    return ParallelWorkload(
        sequences=[np.asarray(s, dtype=np.int64) for s in ([tail] + head)],
        name="stream-bench",
        allow_shared=True,
    )


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _with_env(overrides, fn):
    """Call ``fn`` with environment ``overrides``, restoring them after."""
    saved = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    try:
        return fn()
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _reference(fn):
    """Run ``fn`` under the REPRO_SIM=reference escape hatch."""
    return _with_env({"REPRO_SIM": "reference"}, lambda: _timed(fn))


def bench_stream_million(benchmark, out_dir, tmp_path):
    wl = _workload()
    store = write_store(tmp_path / "stream-bench.store", wl, chunk_rows=CHUNK_ROWS)
    total = wl.total_requests

    # ---------------- gate cell: global-lru, heap vs rescan ----------- #
    def event_run():
        return GlobalLRU(GLOBAL_CACHE, MISS_COST).run(open_streaming(store))

    event_res, warm = _timed(event_run)  # warm imports/allocator
    event_s = warm
    for _ in range(EVENT_ROUNDS - 1):
        _, again = _timed(event_run)
        event_s = min(event_s, again)
    benchmark.pedantic(event_run, rounds=1, iterations=1)

    ref_res, ref_s = _reference(event_run)
    assert event_res.completion_times.tolist() == ref_res.completion_times.tolist()
    assert event_res.meta == ref_res.meta

    # bounded memory: the streamed event run never holds more than the
    # in-flight chunks plus the heap, far under the in-memory workload
    tracemalloc.start()
    traced = event_run()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert traced.makespan == event_res.makespan
    peak_mb = peak / 1e6

    # ---------------- gated cell: det-par on the same stream ---------- #
    # Shipping config: native kernel tier + per-cell backend auto-select.
    # The kernel cache is cleared between flips so each run constructs its
    # kernels under its own REPRO_KERNEL (backends are captured at kernel
    # construction time).
    detpar_env = {"REPRO_SIM": "auto", "REPRO_KERNEL": "native"}

    def detpar_run():
        clear_kernel_cache()
        return DetPar(DETPAR_CACHE, MISS_COST).run(open_streaming(store))

    stream = open_streaming(store)
    det_backend = _with_env(
        detpar_env,
        lambda: resolve_sim_backend(
            "box-server", streaming=True, p=stream.p, lengths=stream.lengths
        ),
    )
    det_flavor = _with_env(detpar_env, native_flavor)

    det_res, det_auto_s = _with_env(detpar_env, lambda: _timed(detpar_run))
    for _ in range(EVENT_ROUNDS - 1):
        _, again = _with_env(detpar_env, lambda: _timed(detpar_run))
        det_auto_s = min(det_auto_s, again)
    det_ref, det_ref_s = _reference(detpar_run)
    assert det_res.completion_times.tolist() == det_ref.completion_times.tolist()
    assert det_res.makespan == det_ref.makespan
    assert len(det_res.trace) == len(det_ref.trace)

    report = {
        "workload": {
            "p": P,
            "total_requests": total,
            "head_requests": HEAD_REQUESTS,
            "tail_requests": TAIL_REQUESTS,
            "chunk_rows": CHUNK_ROWS,
            "miss_cost": MISS_COST,
            "shape": "parallel-schedules (Albers-Hellwig): short heads + one long tail",
        },
        "cells": {
            "global-lru": {
                "cache_size": GLOBAL_CACHE,
                "event_s": event_s,
                "reference_s": ref_s,
                "speedup": ref_s / event_s,
                "event_requests_per_s": total / event_s,
                "makespan": int(event_res.makespan),
            },
            "det-par": {
                "cache_size": DETPAR_CACHE,
                "kernel": "native",
                "native_flavor": det_flavor,
                "auto_backend": det_backend,
                "auto_s": det_auto_s,
                "reference_s": det_ref_s,
                "speedup": det_ref_s / det_auto_s,
                "auto_requests_per_s": total / det_auto_s,
                "makespan": int(det_res.makespan),
                "boxes": len(det_res.trace),
            },
        },
        "memory": {
            "tracemalloc_peak_mb": peak_mb,
            "budget_mb": MEMORY_BUDGET_MB,
        },
        "gates": [
            {
                "cell": "global-lru",
                "min_speedup": GATE_RATIO,
                "measured_speedup": ref_s / event_s,
            },
            {
                "cell": "det-par",
                "min_speedup": DETPAR_GATE_RATIO,
                "measured_speedup": det_ref_s / det_auto_s,
            },
        ],
    }

    out_dir.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(report, indent=2) + "\n"
    (out_dir / "BENCH_stream.json").write_text(payload)
    # the committed, diffable copy (benchmarks/out/ is gitignored)
    (Path(__file__).resolve().parents[1] / "BENCH_stream.json").write_text(payload)

    assert peak_mb < MEMORY_BUDGET_MB, f"streamed run peaked at {peak_mb:.0f} MB"
    assert ref_s / event_s >= GATE_RATIO, (
        f"event engine only {ref_s / event_s:.1f}x faster than the timestep reference"
    )
    assert det_ref_s / det_auto_s >= DETPAR_GATE_RATIO, (
        f"det-par auto backend ({det_backend}, kernel flavor {det_flavor}) is "
        f"slower than the per-instant reference "
        f"(auto={det_auto_s:.2f}s, reference={det_ref_s:.2f}s)"
    )
