"""Benchmark E11: in-box replacement ablation (what the WLOG-to-LRU costs).

Regenerates the E11 table; report written to ``benchmarks/out/e11.md``.
"""

from repro.analysis.report import write_report
from repro.experiments import e11_inbox_policy


def bench_e11(benchmark, repro_scale, out_dir):
    rows, text = benchmark.pedantic(
        e11_inbox_policy, kwargs={"scale": repro_scale, "seed": 0}, rounds=1, iterations=1
    )
    write_report(text, out_dir / "e11.md", echo=False)
    assert rows, "experiment produced no rows"
    # Sleator–Tarjan augmentation: LRU at 2h never trails MIN at h
    assert all(r["lru@2h/min"] >= 1.0 for r in rows)
    # and same-height MIN never loses to LRU (it is offline optimal)
    assert all(r["min/lru"] >= 1.0 for r in rows)
