"""Benchmark: observability overhead must stay within 5% on E1 quick.

Times the real E1 experiment (quick scale) three ways — obs disabled,
metrics only, metrics + tracing — using best-of-``ROUNDS`` wall clock,
and writes the ratios to ``benchmarks/out/obs_overhead.md``.  E1's wall
clock is dominated by the offline-OPT impact DP, exactly the regime the
instrumentation was designed for: per-profile recording is O(1) per
cell, never inside ``run_box``.

The disabled path is additionally micro-benchmarked: a disabled ambient
counter is a shared no-op object, so instrumented hot loops cost nothing
measurable when no one is collecting.
"""

from __future__ import annotations

import time

from repro.experiments import e1_rand_green
from repro.obs import metrics as M
from repro.obs import observability

ROUNDS = 4
MAX_OVERHEAD = 1.05


def _best_of_interleaved(fns, rounds=ROUNDS):
    """Best-of timing with rounds interleaved across configurations.

    Interleaving cancels slow drift (thermal, frequency scaling, page
    cache warm-up) that would otherwise bias whichever configuration
    happened to run last.
    """
    best = [float("inf")] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def bench_obs_overhead_e1_quick(benchmark, out_dir):
    def run_disabled():
        e1_rand_green(scale="quick", seed=0)

    def run_metrics():
        with observability(metrics=True):
            e1_rand_green(scale="quick", seed=0)

    def run_full():
        with observability(metrics=True, trace=True):
            e1_rand_green(scale="quick", seed=0)

    run_disabled()  # warm imports and registry setup out of the measurement
    disabled, metrics_only, full = _best_of_interleaved(
        [run_disabled, run_metrics, run_full]
    )
    benchmark.pedantic(run_full, rounds=1, iterations=1)

    ratio_metrics = metrics_only / disabled
    ratio_full = full / disabled
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "obs_overhead.md").write_text(
        "# Observability overhead on E1 quick (best-of-{} wall clock)\n\n"
        "| configuration | seconds | vs disabled |\n"
        "|---|---|---|\n"
        "| obs disabled | {:.3f} | 1.000 |\n"
        "| metrics only | {:.3f} | {:.3f} |\n"
        "| metrics + tracing | {:.3f} | {:.3f} |\n".format(
            ROUNDS, disabled, metrics_only, ratio_metrics, full, ratio_full
        )
    )
    assert ratio_full <= MAX_OVERHEAD, (
        f"observability overhead {ratio_full:.3f}x exceeds {MAX_OVERHEAD}x "
        f"(disabled={disabled:.3f}s, full={full:.3f}s)"
    )


def bench_disabled_counter_is_noop(benchmark):
    """A disabled ambient counter costs a dict hit and a no-op call."""
    assert not M.enabled()

    def hot_loop():
        counter = M.counter("sim.bench.noop")
        for _ in range(100_000):
            counter.inc()

    benchmark.pedantic(hot_loop, rounds=3, iterations=1)
    assert M.active().is_empty()
