"""Benchmark E5: Theorem 3 — DET-PAR O(log p) makespan vs all baselines.

Regenerates the E5 table (DESIGN.md §5); the rendered report is written
to ``benchmarks/out/e5.md``.  Run with ``--repro-scale full`` to
reproduce the numbers recorded in EXPERIMENTS.md.
"""

from repro.analysis.report import write_report
from repro.experiments import e5_makespan


def bench_e5(benchmark, repro_scale, out_dir):
    rows, text = benchmark.pedantic(
        e5_makespan, kwargs={"scale": repro_scale, "seed": 0}, rounds=1, iterations=1
    )
    write_report(text, out_dir / "e5.md", echo=False)
    assert rows, "experiment produced no rows"
    algs = {r["algorithm"] for r in rows}
    assert {"det-par", "rand-par", "black-box-green", "equal-partition",
            "best-static-partition", "global-lru"} <= algs
