"""Benchmark E3: Theorem 2 — RAND-PAR makespan is O(log p · T_OPT).

Regenerates the E3 table (DESIGN.md §5); the rendered report is written
to ``benchmarks/out/e3.md``.  Run with ``--repro-scale full`` to
reproduce the numbers recorded in EXPERIMENTS.md.
"""

from repro.analysis.report import write_report
from repro.experiments import e3_rand_par


def bench_e3(benchmark, repro_scale, out_dir):
    rows, text = benchmark.pedantic(
        e3_rand_par, kwargs={"scale": repro_scale, "seed": 0}, rounds=1, iterations=1
    )
    write_report(text, out_dir / "e3.md", echo=False)
    assert rows, "experiment produced no rows"
    import math
    # Theorem 2 shape: ratio bounded by a small multiple of log2 p
    assert all(r["makespan_ratio"] <= 3 * math.log2(max(2, r["p"])) + 4 for r in rows)
