"""Benchmark E10: shared pages (beyond the paper — the conclusion's open problem).

Regenerates the E10 table; report written to ``benchmarks/out/e10.md``.
"""

from repro.analysis.report import write_report
from repro.experiments import e10_shared_pages


def bench_e10(benchmark, repro_scale, out_dir):
    rows, text = benchmark.pedantic(
        e10_shared_pages, kwargs={"scale": repro_scale, "seed": 0}, rounds=1, iterations=1
    )
    write_report(text, out_dir / "e10.md", echo=False)
    assert rows, "experiment produced no rows"
    # with no sharing the shared cache has no advantage; with heavy sharing it wins
    assert rows[0]["global/det-par"] >= rows[-1]["global/det-par"]
    assert rows[-1]["global-lru"] < rows[-1]["det-par"]
