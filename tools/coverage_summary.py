#!/usr/bin/env python
"""Render a Cobertura ``coverage.xml`` as a compact markdown summary.

Used by CI to publish the coverage gate's result as a step summary and
artifact:

    python tools/coverage_summary.py coverage.xml --lowest 10 > summary.md

Reads only the stdlib (``xml.etree``), so it runs in any environment
that produced the report — no ``coverage`` install needed to render it.
"""

from __future__ import annotations

import argparse
import sys
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, List, Tuple


def module_rates(xml_path: Path) -> Tuple[float, Dict[str, Tuple[int, int]]]:
    """Parse cobertura XML into (total_rate, {module: (covered, total)}).

    Lines are aggregated per source file across all ``<class>`` elements
    (coverage.py emits one class per file, but duplicates are merged
    defensively), counting a line covered when any element saw hits.
    """
    root = ET.parse(xml_path).getroot()
    per_file: Dict[str, Dict[int, bool]] = {}
    for cls in root.iter("class"):
        fname = cls.get("filename", "?")
        lines = per_file.setdefault(fname, {})
        for line in cls.iter("line"):
            number = int(line.get("number", "0"))
            hit = int(line.get("hits", "0")) > 0
            lines[number] = lines.get(number, False) or hit
    modules = {
        fname: (sum(1 for h in lines.values() if h), len(lines))
        for fname, lines in per_file.items()
    }
    covered = sum(c for c, _ in modules.values())
    total = sum(t for _, t in modules.values())
    return (covered / total if total else 1.0), modules


def render_summary(xml_path: Path, lowest: int = 10) -> str:
    """The markdown report: total line, then the least-covered modules."""
    total_rate, modules = module_rates(xml_path)
    rows: List[Tuple[float, str, int, int]] = sorted(
        ((c / t if t else 1.0), name, c, t) for name, (c, t) in modules.items()
    )
    out = [
        f"## Coverage: {total_rate:.1%} line rate ({len(modules)} modules)",
        "",
        f"Lowest-covered modules (bottom {min(lowest, len(rows))}):",
        "",
        "| module | covered | lines | rate |",
        "|---|---|---|---|",
    ]
    for rate, name, covered, total in rows[:lowest]:
        out.append(f"| {name} | {covered} | {total} | {rate:.1%} |")
    return "\n".join(out) + "\n"


def main(argv=None) -> int:
    """CLI entry point; prints the summary to stdout."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("xml", type=Path, help="path to coverage.xml (cobertura format)")
    parser.add_argument("--lowest", type=int, default=10, help="how many modules to list")
    args = parser.parse_args(argv)
    if not args.xml.exists():
        print(f"coverage_summary: {args.xml} not found", file=sys.stderr)
        return 2
    sys.stdout.write(render_summary(args.xml, lowest=args.lowest))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
