#!/usr/bin/env python
"""Generate docs/API.md: the public surface, one line per item.

Walks the package, collects every public function/class defined in repro
(with its signature and first docstring line), and writes a browsable
index.  Run after API changes:

    python tools/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from pathlib import Path

PACKAGES = [
    "repro.paging",
    "repro.green",
    "repro.core",
    "repro.parallel",
    "repro.workloads",
    "repro.traces",
    "repro.analysis",
    "repro.exec",
    "repro.obs",
    "repro.search",
    "repro.client",
    "repro.service",
]

OUT = Path(__file__).resolve().parent.parent / "docs" / "API.md"

# Hand-maintained prose that the generator re-emits verbatim, so narrative
# docs survive regeneration.
PREAMBLE = """\
## Execution engine & caching

Every experiment decomposes into independent **work units** — one
`(algorithm, workload, seed)` simulation, one lower-bound DP, one
green-paging replicate — that `repro.exec` runs through an
`ExecutionEngine`:

- **Stable runner API.** Configure a run with a frozen
  `RunSpec(algorithm, cache_size, miss_cost, xi, seed)` and pass it (or a
  list of them) to `make_algorithm` / `run_experiment`; `sweep_p` builds
  the specs for you.  Rows come back as `ExperimentRow`, whose `as_dict()`
  carries a `schema_version` field so CSV/Markdown exports are
  self-describing.  The historical positional signatures
  (`make_algorithm(name, cache_size, miss_cost, seed)`,
  `run_experiment(workload, names, k, miss_cost, ...)`) still work but
  emit `DeprecationWarning` and will be **removed in 2.0** — migrate to
  `RunSpec` now.
- **Parallelism.** `repro <exp> --jobs N` (or
  `with execution(jobs=N): ...` in code) fans units out over a
  `ProcessPoolExecutor`; results are collected in input order, so tables
  are row-for-row identical to serial runs.  Pool start-up failures
  degrade to serial execution with a warning.
- **Content-addressed result cache.** With caching enabled (the CLI
  default; `--no-cache` opts out), each unit's outcome is pickled under
  `.repro_cache/<key[:2]>/<key>.pkl`, where the key is a SHA-256 over the
  unit kind, a `CACHE_VERSION`, and a canonical encoding of its
  parameters (request sequences are hashed by content).  Any change to
  the workload, seed, or parameters changes the key; bumping
  `CACHE_VERSION` invalidates everything at once.  Override the location
  with `--cache-dir` or `$REPRO_CACHE_DIR`; inspect or empty it with
  `repro cache stats` / `repro cache clear`.
- **Telemetry.** Every executed (or cache-served) cell is recorded —
  kind, key, cache hit/miss, duration, simulated steps.  A one-line
  summary is appended to each experiment report, and
  `--telemetry runs.jsonl` dumps the raw records as JSON lines.

Library calls outside any `execution(...)` scope stay serial and
cache-less, so tests and ad-hoc experiments are hermetic by default.

## Failure semantics & resume

Long sweeps survive crashing, hanging, and flaky cells instead of losing
hours of compute to one bad unit:

- **Execution policy.** `ExecutionPolicy(timeout_s, retries, backoff_s,
  backoff_multiplier, jitter, keep_going)` governs each unit: a
  per-attempt wall-clock budget, bounded retries with exponential
  backoff, and jitter that is *deterministic per unit key* so reruns
  back off identically.  The CLI exposes the knobs as `--timeout`,
  `--retries`, and `--backoff`.  Serial and pooled execution share the
  same retry loop, so failure behavior does not depend on `--jobs`.
- **Crash & hang recovery.** A worker that dies (`BrokenProcessPool`)
  costs the in-flight units one attempt each; the pool is rebuilt and
  only the lost units are resubmitted.  A unit that exceeds
  `timeout_s` is failed with `UnitTimeoutError`, its hung worker is
  terminated, and innocent in-flight units are resubmitted *without*
  burning an attempt.
- **Graceful degradation.** Under `--keep-going` a cell that exhausts
  its retries becomes a typed `FailedCell` instead of aborting the
  sweep: telemetry records it (`failed=True`, attempts, error), tables
  render the cell as `FAIL` with a per-row `failed` count, and reports
  append an itemized "failed cells" block.  The default `--fail-fast`
  raises `UnitExecutionError` on the first exhausted cell.  Failed
  cells are never cached, so a rerun recomputes them.
- **Checkpoint & resume.** Every CLI run (unless `--no-checkpoint`)
  writes `.repro_runs/<run-id>/manifest.json` — the full run config,
  status, and completed experiments, written atomically — plus
  `units.jsonl`, an append-only journal of finished unit keys written
  as each cell completes.  Ctrl-C / SIGTERM mark the manifest
  `interrupted` and exit 130 with a hint; `repro resume <run-id>`
  replays the stored config, skips completed experiments, and serves
  already-finished cells from the result cache.  `repro runs` lists
  checkpoints; `--runs-dir` / `$REPRO_RUNS_DIR` relocate them.
- **Cache quarantine.** A corrupt cache entry (torn write, bad disk) is
  treated as a miss and renamed to `<key>.pkl.bad` for post-mortem
  rather than deleted; `repro cache stats` counts quarantined files and
  `repro cache clear` removes them.
- **Fault injection.** `repro.exec.faults` drives the chaos tests:
  `inject_faults("kill:e1/rand-green:1")` (modes `crash`, `flaky`,
  `kill`, `hang`, `interrupt`) injects failures by unit label — across
  process boundaries via `$REPRO_FAULTS`, with atomic claim files
  bounding how many executions trigger — so every recovery path above
  is exercised deterministically in CI.

## Trace corpus & streaming

`repro.traces` turns workloads from in-process objects into durable,
content-addressed experiment inputs — real traces included — without
ever requiring a whole trace in memory:

- **Binary trace store.** A `.trc` file holds one int64 column per
  processor, chunked, behind a JSON header carrying the schema version,
  per-chunk digests, and workload metadata.  `write_store(path, workload)`
  writes atomically (temp file + `os.replace`); `TraceStore(path)` opens
  one, validating the header up front and raising typed errors
  (`TraceFormatError`, `TraceVersionError`, `TraceCorruptError`) instead
  of handing back garbage.  `store.workload()` returns a `StoredWorkload`
  whose columns are zero-copy `np.memmap` views — a drop-in
  `ParallelWorkload` that pickles as its path, so pool workers re-open
  the mmap instead of shipping arrays.  `StoreWriter` builds a store
  incrementally (spool directory, bounded memory) for imports too large
  to hold.
- **One identity everywhere.** A store's `content_digest` is computed
  with the *same framing* as `repro.exec.workload_fingerprint`, and the
  fingerprint short-circuits to it.  The same requests therefore key
  identically in the result cache whether they arrive as an in-memory
  workload, an mmap-backed store, or a fresh re-import — warm cache
  entries survive every representation change.  `ExperimentRow` carries
  the digest in its `trace` column (`schema_version` 4; `""` for ad-hoc
  workloads), so every result row names its exact input bytes.
- **Adapters.** `import_trace(src, dest)` sniffs the format
  (`sniff_format`: suffix first, then first-line content) and converts:
  sequence/parallel text, hex or decimal address traces (`--page-size`
  folding), CSV/TSV key-value traces (`read_kv_trace`: dense first-seen
  key relabeling, optional processor field), `.npz` workloads, and
  existing stores (re-chunking preserves the digest).  Gzip/xz inputs
  decompress transparently; everything streams in bounded blocks
  (`stream_trace_blocks`).
- **Registry.** `TraceRegistry` keeps a corpus under `.repro_traces/`
  (override: `--registry` / `$REPRO_TRACES_DIR`): objects live at
  `objects/<digest[:2]>/<digest>.trc`, names are mutable labels in an
  atomically-rewritten `catalog.json`, imports deduplicate by content,
  and `remove` drops the object only when its last name goes.  Refs
  resolve by name, full digest, or unique ≥8-char prefix.
  `run_experiment` accepts a ref string anywhere it accepts a workload
  (`resolve_workload`).
- **Streaming execution.** `execute_store_profile` /
  `characterize_store` feed the paging engine and the workload
  statistics chunk-by-chunk from the store — byte-identical results to
  the in-memory paths with only the active window resident
  (`benchmarks/bench_traces.py` proves the bound with `tracemalloc`).
- **CLI.** `repro trace import|export|ls|info|sample|rm` manages the
  corpus; `repro run --trace <ref> --algorithms det-par,rand-par
  --cache-size K --miss-cost S` runs the standard harness on a
  registered trace, with the digest in the report and in `--csv` rows.

## Fast box kernel

`repro.paging.kernel` is the production box engine: a per-sequence
reuse-distance precompute plus vectorized box evaluation that is
**bit-identical** to the reference dict-LRU loop in
`repro.paging.engine.run_box` at a fraction of the cost (≥5× on
`repro run e1 --scale quick` and on the offline green DP;
`benchmarks/bench_kernel.py` measures and enforces it in CI):

- **Precompute once, probe cheaply.** `SequenceKernel(seq)` computes
  `prev_occ[i]` (previous occurrence of the same page) and
  `reuse_dist[i]` (distinct pages since then) — a chunked vectorized
  pass for typical lengths, an O(n log n) Fenwick sweep beyond it.  By
  LRU's inclusion property, request `i` hits in a cold box
  `(start, height)` iff `prev_occ[i] >= start` and
  `reuse_dist[i] < height`, so `run_box_fast(kernel, start, height,
  budget, miss_cost)` evaluates a whole box with a handful of array
  ops (short boxes take a scalar walk — RAND-GREEN draws mostly tiny
  boxes).  `box_ends` / `ladder_plan` batch the offline DP's probes:
  one blocked windowed pass yields every lattice height's endpoint for
  32 consecutive starts at once.
- **Shared and bounded.** `get_kernel(seq)` / `maybe_kernel(seq)`
  serve kernels from an LRU-bounded cache keyed on array identity
  (weakref-guarded) or an explicit key (trace `content_digest` +
  processor), so DP solves, schedulers, and replicated experiment
  cells on the same sequence share one precompute.  `StreamKernel`
  extends the sweep incrementally for chunked trace streaming, with
  `compact()` keeping only the active window resident.
- **Escape hatch.** `REPRO_KERNEL=reference` routes every threaded
  call site back to the dict-LRU loop, which is retained as the
  cross-check oracle; `tests/paging/test_kernel.py` pins bit-identical
  `BoxRun`s, DP impacts, result rows, and `sim.*` metrics between the
  two backends.

## Native kernel

`REPRO_KERNEL=native` selects a third kernel tier that compiles the
three inner loops — the reuse-distance sweep, the per-box service walk,
and the blocked ladder/DP probe — to machine code, keeping the numpy
fast path and the dict-LRU reference as bit-identical oracles below it:

- **Two flavors, one fallback.** `repro.paging._native` JIT-compiles
  the loops with numba when it imports, else builds a small C shared
  library with the system compiler (`cc`, cached per interpreter under
  `$REPRO_NATIVE_CACHE`), else returns `None` and the kernel silently
  degrades to the numpy fast path — `REPRO_KERNEL=native` is therefore
  always safe to set.  `$REPRO_NATIVE=auto|numba|cc|off` pins the
  flavor (`off` forces the fallback; `native_flavor()` reports what
  resolved).  CI runs the kernel-bench job twice — with numba and with
  the tier forced off — to prove both sides.
- **Exactness is the only contract.** Box endpoints, hit/fault splits,
  ladder plans, DP distances and parents (including tie-breaks) must
  equal the fast and reference tiers bit for bit;
  `tests/paging/test_native.py` pins the three-way equivalence
  property-style on random boxes, streamed chunked appends with
  compaction, and the offline DP on non-power-of-two `(k, p)` lattices.
  `benchmarks/bench_kernel.py` times all three tiers on the same arms
  and fails if a compiled flavor loses to numpy (`BENCH_kernel.json`
  records the measured ratios; the DP arm runs ≥3× faster under the
  native tier, ~34× with the cc flavor on the reference machine).
- **Zero-copy worker handoff.** `repro.exec.handoff.HandoffManager`
  keeps pool workers off the pickle highway: workloads above
  `$REPRO_HANDOFF_SPILL_ROWS` spill to a digest-named `.trc` store (a
  `StoredWorkload` pickles as its path, and spilled twins keep the
  in-memory cache key), request arrays above `$REPRO_HANDOFF_SHM_ROWS`
  travel as `multiprocessing.shared_memory` names, and when several
  units share one sequence the parent ships the kernel's
  `prev_occ`/`reuse_dist` precompute once through the same segments.
  The pickled payload per task stays bounded (a name plus a length) as
  traces grow; `tests/exec/test_handoff.py` holds payload size, worker
  materialization identity, and release-on-close.

## Event-driven parallel simulation

`repro.parallel` runs every parallel-paging algorithm — RAND-PAR,
DET-PAR, the black-box packing construction, GLOBAL-LRU — on one
deterministic event scheduler, streamed from the trace store in bounded
memory, with the historical per-timestep loops retained as a
byte-identical oracle:

- **One event queue.** `EventScheduler` is a min-heap of
  `(time, priority, sequence)`-ordered events with O(1) lazy `cancel`.
  `priority` defaults to the push sequence (FIFO among same-time
  events — DET-PAR's historical `(t, counter)` order); passing it
  explicitly pins a domain tie-break (GLOBAL-LRU passes the processor
  index, so same-time completions serve in ascending processor order).
  Ordering can never depend on event payloads, and
  `tests/parallel/test_events.py` holds the invariant under hypothesis.
- **Arbitrary `k >= p >= 1`.** `HeightLattice` is a doubling ladder
  from `max(1, k // p)` clamped at `k` — identical to the paper's
  lattice on power-of-two inputs, well-defined on everything else, with
  `round_up` as the explicit ceil-to-lattice policy.  Validation is one
  function, `validate_lattice(k, p)`, raising a typed `LatticeError`
  that carries the offending value and the nearest valid rounding
  (`.param`, `.value`, `.rounded`).
- **Streaming in bounded memory.** `open_streaming(store)` wraps a
  `TraceStore` as a `StreamingWorkload` — the structural surface of a
  `ParallelWorkload` (and its exact cache fingerprint) without
  materializing any column.  Box algorithms consume it through
  `make_box_server`, which feeds per-processor `StreamKernel`s
  chunk-by-chunk just ahead of the execution position and compacts the
  served prefix behind it: resident rows per processor are bounded by
  the largest box budget plus one store chunk, independent of trace
  length (`benchmarks/bench_stream.py` proves it with `tracemalloc` on
  a million-request, 1024-processor run).  GLOBAL-LRU streams through
  `request_feed` the same way.  `repro run --trace <ref> --stream`
  selects the path from the CLI; `sim.traces.*` counters record the
  chunk traffic.
- **Differential lockdown.** `REPRO_SIM=reference` routes every
  simulator back to the retained oracles (per-timestep full rescan for
  GLOBAL-LRU, per-request `run_box` for the box algorithms), mirroring
  `REPRO_KERNEL`; `REPRO_SIM=auto` lets `resolve_sim_backend` pick per
  cell (event everywhere the kernel batches probes cheaply, reference
  only for streamed numpy-kernel serving on heavily imbalanced feeds),
  logging each choice under the `sim.backend.auto` counter.  Both
  backends — and streamed vs in-memory forms — produce byte-identical
  completion times, box traces, and (wall-stripped) `sim.*` snapshots
  across the `(k, p, algorithm, workload-family)` matrix, powers of two
  or not;
  `tests/parallel/test_differential.py` is the harness and CI's
  `stream` job replays it end-to-end through the CLI.

## Observability

`repro.obs` is a determinism-first metrics and tracing layer: simulation
counters are a pure function of the simulated work, so two runs of the
same experiment — serial or `--jobs N`, cold or warm cache — produce
byte-identical metrics snapshots and canonical traces:

- **Metrics registry.** `MetricsRegistry` holds counters, max-gauges,
  and fixed-bucket histograms, addressed by name plus sorted labels
  (`sim.policy.faults{policy=LRUCache}`).  When no registry is
  collecting, the ambient `counter()/gauge()/histogram()` helpers hand
  back a shared no-op cell, so instrumentation in hot paths costs
  nothing (`benchmarks/bench_obs.py` holds the enabled path under 5% on
  E1 quick).  `snapshot()` is sorted and canonical; `merge()` is
  commutative, so pooled completion order cannot change results.
- **Metric namespaces.** `sim.*` counters (per-box progress, faults,
  stalls, box-height transitions, the §3.2 primary/secondary split,
  green impact) depend only on the simulated work and are byte-identical
  across reruns, worker counts, and cache states.  `exec.*` records
  run-local facts (computed vs cache-served cells, retries, failed
  cells); `wall.*` is wall-clock and is stripped by `strip_wall` before
  any determinism comparison.
- **Span tracing.** `Tracer` emits Chrome-trace/Perfetto JSON (open in
  `chrome://tracing` or https://ui.perfetto.dev): nested spans across
  the exec engine (`exec.batch`, `exec.unit`), trace streaming, and the
  paging/scheduler layer (`algorithm.run`).  `canonical_events` strips
  wall-clock fields for comparison; `aggregate_spans` / `slowest_spans`
  power `repro profile`.
- **Determinism across execution modes.** Each work unit records into a
  scoped registry/tracer; the deltas ride back in its `CellOutcome` and
  are merged on the main process (`absorb_outcome`).  Cache hits replay
  the stored deltas, and failed attempts' scoped registries are
  discarded with the raise, so retried cells count exactly once.
- **Surfacing.** `repro <exp> --metrics out.json --trace-events
  out.trace.json` writes snapshot and trace (flushed even on Ctrl-C);
  reports append a `[metrics]` delta block; `repro profile <exp>` runs
  one experiment fully instrumented and prints span and counter tables
  (see EXPERIMENTS.md for a worked example).  In code, wrap anything in
  `with observability(metrics=True, trace=True) as scope:` and read
  `scope.metrics_snapshot()` / `scope.tracer`.

## Adversary search

`repro.search` closes the loop between the paper's hand-built lower
bounds and the measured algorithms: a propose → execute → score → refine
search that hunts for workloads with the worst *measured* competitive
ratio and feeds every record-beater into a CI-replayed regression
corpus.

- **Workload families.** `repro.workloads.families` registers five
  parameterized generators — the §4 `adversarial` construction plus
  `polluted-cycles`, `random-order`, `biased-random`, and `multiscale` —
  each a `WorkloadFamily` of typed, bounded `ParamSpec`s (`quick` bounds
  are a strict subset of `full`).  `build_candidate(family, config,
  workload_seed)` deterministically rebuilds the workload *and* its
  evaluation geometry (`k`, miss cost, green lattice height) from
  scalars, so a candidate is fully described by its recipe.
- **Scoring through the engine.** Each candidate becomes one
  `adversary-eval` work unit (`repro.search.scorers.candidate_unit`)
  executed by the shared `ExecutionEngine` — cached, pooled, and
  fault-injectable like every other unit.  The score is the measured
  competitive ratio: DET-PAR/RAND-PAR makespan against the
  `makespan_lower_bound` DP, RAND-GREEN mean impact against the offline
  `optimal_box_profile`.  The bar to beat is `hand_built_baseline`: the
  best hand-built §4 instance, measured the same way.
- **The hunt loop.** `AdversarySearch` (`repro.search.loop`) runs
  seeded rounds: mutate the per-algorithm elite population, cross over
  top pairs, probe one coordinate of the record holder, and inject
  fresh random configs.  Per-round RNG is derived from
  `(seed, round_index)`, floats are canonicalized before serialization,
  and state is saved atomically at round boundaries — so the same seed
  yields byte-identical records, and an interrupted hunt resumes to the
  exact state of an uninterrupted one (`repro hunt resume <run-id>`,
  riding the PR-2 checkpoint manifest).
- **Hard-instance corpus.** Every candidate that strictly beats the
  record is committed to the trace registry as
  `hard/<algorithm>/<digest12>` — content addressed, recipes keyed by
  algorithm in the catalog meta since one workload can be hard for
  several.  `replay_corpus` rebuilds each instance from scalars, checks
  the bytes still hash to the committed digest, re-measures the ratio,
  and demands float-exact agreement; `repro hunt corpus --replay` exits
  nonzero on any drift, which is the CI regression gate.  The repo's
  committed corpus lives in `corpus/` and is replayed on every push.
- **Surfacing.** `repro hunt` drives a search from the CLI (`--rounds`,
  `--scale quick|full`, `--seed`, `--algorithms`, `--families`, plus the
  standard engine flags); `search.*` metrics (rounds, candidates,
  commits, best-ratio gauges) and `search.round` spans ride the
  `repro.obs` layer; `examples/adversarial_lower_bound.py` replays the
  committed corpus next to the hand-built Theorem 4 table.

## Service & Session API

`repro.client` + `repro.service` turn the batch runner into a
long-running, multi-tenant system: one typed request/reply API, spoken
in-process or over HTTP, against one shared engine.

- **One facade over every entry point.** `Session` consolidates the
  historical surfaces — `run_experiment`, `sweep_p`, `repro run
  --trace`, named experiments, raw `ExecutionEngine.run(units)` — behind
  four methods: `run(RunRequest)`, `experiment(name_or_request)`,
  `sweep(SweepRequest)`, `submit_units([...])` (plus
  `upload_trace` / `metrics`).  The facade *delegates* to the historical
  code paths rather than forking them, so its rows are byte-identical to
  the legacy API's, and every pre-existing signature keeps working
  (deprecated positional forms still go through their
  `DeprecationWarning` shims; `tests/client/test_legacy_api.py` pins
  both).  Row `schema_version` is unchanged: no row field changed.
- **Shared protocol dataclasses.** Requests (`RunRequest`,
  `ExperimentRequest`, `SweepRequest`, `TraceUpload`) and replies
  (`RunReply`, `JobStatus`, `TraceReply`, `MetricsReply`) are frozen
  dataclasses used *verbatim* by the in-process `Session`, the HTTP
  `HttpSession`, and the server — `to_dict()` / `request_from_dict`
  carry a `type` tag plus `PROTOCOL_VERSION`, and mixed-version pairs
  fail loudly.  `WorkloadSpec(p, n_requests, k, kind, workload_seed)`
  describes generated workloads by recipe with `sweep_p`'s exact
  seeding, so client and server construct byte-identical sequences and
  share cache keys.  `open_session(url_or_none)` picks the right world.
- **The service.** `repro serve` boots a handcrafted stdlib-asyncio
  HTTP/1.1 frontend (`repro.service.server`, no third-party deps) over a
  `ServiceBackend`: a bounded admission queue (typed `queue-full` → 503),
  per-client live-job quotas (`quota-exceeded` → 429), request
  coalescing (identical in-flight requests share one job; the content
  key excludes client identity), and one worker draining jobs through
  the shared `ExecutionEngine` — cells inside a job still fan out over
  the engine's process pool, and the content-addressed cache serves
  identical cells across clients.  Errors travel as typed
  `ServiceError(code, message, status)` on both sides of the wire.
  SIGTERM mid-run marks the checkpoint manifest `interrupted` and exits
  130; a restarted server on the same `--cache-dir` serves the journaled
  cells from cache (PR 2 semantics, now network-visible).
- **Endpoints.** `GET /v1/health`, `GET /v1/metrics` (deterministic
  `repro.obs` snapshot), `GET /v1/jobs[/<id>][?wait=s]` (poll or
  long-poll), `POST /v1/jobs|runs|experiments|sweeps[?wait=1]`,
  `POST /v1/traces` (the `repro.traces` import path over the wire).
- **Clients.** `repro submit <exp> --url ...` / `repro submit --trace
  ... --url ...` render tables and `--csv` rows byte-identical to the
  local CLI.  `python -m repro.service.loadgen --clients N` drives a
  server with concurrent clients (duplicate-cell, unique-cell, and
  experiment scenarios) and reports p50/p99 latency, throughput, and the
  cross-client cache-hit rate — committed per-PR as `BENCH_service.json`
  next to `BENCH_kernel.json`.
"""


def first_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.splitlines()[0] if doc else ""


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def main() -> None:
    lines = [
        "# API index",
        "",
        "Generated by `python tools/gen_api_docs.py` — do not edit by hand.",
        "One line per public item: signature and docstring summary.",
        "",
        PREAMBLE,
    ]
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        lines.append(f"## `{pkg_name}`")
        lines.append("")
        module_names = [pkg_name] + [
            f"{pkg_name}.{m.name}" for m in pkgutil.iter_modules(pkg.__path__)
        ]
        for mod_name in module_names:
            mod = importlib.import_module(mod_name)
            items = []
            for name in sorted(vars(mod)):
                if name.startswith("_"):
                    continue
                obj = vars(mod)[name]
                if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                    continue
                if getattr(obj, "__module__", None) != mod_name:
                    continue
                kind = "class" if inspect.isclass(obj) else "def"
                items.append(f"- `{kind} {name}{signature_of(obj)}` — {first_line(obj)}")
                if inspect.isclass(obj):
                    for mname in sorted(vars(obj)):
                        meth = vars(obj)[mname]
                        if mname.startswith("_") or not inspect.isfunction(meth):
                            continue
                        items.append(
                            f"  - `.{mname}{signature_of(meth)}` — {first_line(meth)}"
                        )
            if items:
                lines.append(f"### `{mod_name}`")
                lines.append("")
                lines.append((inspect.getdoc(mod) or "").splitlines()[0])
                lines.append("")
                lines.extend(items)
                lines.append("")
    for extra in ("repro.experiments", "repro.cli"):
        mod = importlib.import_module(extra)
        lines.append(f"## `{extra}`")
        lines.append("")
        lines.append((inspect.getdoc(mod) or "").splitlines()[0])
        lines.append("")
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text("\n".join(lines) + "\n")
    print(f"wrote {OUT} ({len(lines)} lines)")


if __name__ == "__main__":
    main()
