#!/usr/bin/env python
"""Quickstart: share a cache among 8 programs and measure the makespan.

This is the 60-second tour of the library:

1. build a disjoint multi-program workload;
2. run the paper's deterministic algorithm (DET-PAR) and two naive
   baselines on the same shared cache;
3. compare everyone against a certified lower bound on OPT.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DetPar,
    EqualPartition,
    GlobalLRU,
    make_parallel_workload,
    makespan_lower_bound,
    summarize,
)
from repro.analysis import render_table

P = 8            # processors
K_OPT = 64       # the cache OPT is measured against
XI = 2           # resource augmentation: algorithms get XI * K_OPT
S = 32           # a miss costs 32x a hit
SEED = 42


def main() -> None:
    rng = np.random.default_rng(SEED)
    workload = make_parallel_workload(p=P, n_requests=600, k=K_OPT, rng=rng, kind="multiscale")
    print(workload.describe())

    lb = makespan_lower_bound(workload, k=K_OPT, miss_cost=S)
    print(f"certified lower bound on OPT makespan: {lb.value}  {lb.breakdown()}\n")

    rows = []
    for alg in (
        DetPar(XI * K_OPT, S),
        EqualPartition(XI * K_OPT, S),
        GlobalLRU(XI * K_OPT, S),
    ):
        result = alg.run(workload)
        rows.append(summarize(result, makespan_lb=lb).as_dict())

    print(render_table(rows, columns=["algorithm", "makespan", "makespan_ratio", "mean_completion"]))
    print(
        "makespan_ratio is an UPPER bound on each algorithm's competitive ratio\n"
        "(the denominator is a lower bound on OPT, which is NP-hard to compute)."
    )


if __name__ == "__main__":
    main()
