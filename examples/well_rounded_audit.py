#!/usr/bin/env python
"""Audit DET-PAR's schedule against the paper's §3.3 definitions.

Lemma 5 proves that *any* well-rounded schedule is O(log p)-competitive,
and Lemma 7 that well-rounded + balanced implies the per-processor
allocation is itself competitive green paging (hence Corollary 3's mean
completion bound).  This example runs DET-PAR and machine-checks both
properties from the recorded box trace — the same audits the E4 benchmark
sweeps over p.

Run:  python examples/well_rounded_audit.py
"""

import numpy as np

from repro import DetPar, audit_balance, audit_well_rounded, make_parallel_workload
from repro.analysis import render_gantt, render_memory_profile, render_table
from repro.parallel import capacity_profile, fairness_report, peak_concurrent_height

P, K_OPT, XI, S = 8, 32, 2, 16


def main() -> None:
    rng = np.random.default_rng(11)
    wl = make_parallel_workload(p=P, n_requests=500, k=K_OPT, rng=rng, kind="multiscale")
    result = DetPar(XI * K_OPT, S).run(wl)

    print(f"makespan={result.makespan}, boxes recorded={len(result.trace)}, phases={len(result.meta['phases'])}\n")

    rows = []
    for ph in result.meta["phases"]:
        rows.append(
            {
                "phase": ph.index,
                "active": ph.active_at_start,
                "base_height": ph.base_height,
                "levels": ph.levels,
                "strip_slots": sum(ph.strip_slots.values()),
                "reserved": ph.reserved_height,
            }
        )
    print(render_table(rows, title="phase structure (Lemma 6 construction)"))

    wr = audit_well_rounded(result)
    print(f"well-rounded: base_covered={wr.base_covered}, max gap factor={wr.max_gap_factor:.2f}")
    print("  (gap factor = worst gap / (z²·s·log p / b); Lemma 6 promises O(1))")

    bal = audit_balance(result)
    print(
        f"balanced: min reserved fraction={bal.min_reserved_fraction:.2f}, "
        f"max per-phase impact spread={bal.max_phase_spread:.3f} (in s·k² units)"
    )

    peak = peak_concurrent_height(result.trace)
    times, heights = capacity_profile(result.trace)
    mean_h = float(np.dot(heights[:-1], np.diff(times))) / max(1, int(times[-1] - times[0])) if len(times) > 1 else 0.0
    print(f"memory: peak executed height={peak} (cache granted {result.cache_size}), time-averaged={mean_h:.1f}")

    fair = fairness_report(result, wl, K_OPT)
    print(f"fairness: {fair.as_dict()}\n")

    print(render_gantt(result, width=72, title="the schedule itself (watch the strips sweep round-robin):"))
    print(render_memory_profile(result, width=72, height=8, title="reserved cache over time:"))


if __name__ == "__main__":
    main()
