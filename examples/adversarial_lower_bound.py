#!/usr/bin/env python
"""The Theorem 4 construction: being green costs a log factor on makespan.

Builds the paper's §4 adversarial instances — repeater/polluter prefixes in
geometric families plus unique-page suffixes — and shows that a parallel
scheduler built on a *greedily green* black box (impact-frugal per
processor) falls behind the impact-wasteful Lemma-8 OPT schedule by a
factor that grows with p like log p / log log p.

Run:  python examples/adversarial_lower_bound.py
"""

import math

import numpy as np

from repro import BlackBoxPar, DetPar, build_adversarial_instance, lemma8_opt_makespan
from repro.analysis import fit_growth, render_table


def main() -> None:
    rows = []
    for ell in (2, 3, 4):
        inst = build_adversarial_instance(ell, alpha=0.25, suffix_phase_multiplier=1)
        s = inst.recommended_miss_cost()
        opt = lemma8_opt_makespan(inst, s)
        black_box = BlackBoxPar(2 * inst.k, s).run(inst.workload)
        det_par = DetPar(2 * inst.k, s).run(inst.workload)
        logp = math.log2(inst.p)
        rows.append(
            {
                "p": inst.p,
                "k": inst.k,
                "prefixed_seqs": sum(1 for f in inst.family_of if f >= 0),
                "opt(lemma 8)": opt,
                "black-box ratio": round(black_box.makespan / opt, 3),
                "det-par ratio": round(det_par.makespan / opt, 3),
                "log p/log log p": round(logp / math.log2(max(2.0, logp)), 3),
            }
        )
    print(render_table(rows, title="Theorem 4 separation (suffix_phase_multiplier=1)"))

    fit = fit_growth([r["p"] for r in rows], [r["black-box ratio"] for r in rows], "log_over_loglog")
    print(f"fit: ratio ≈ {fit.intercept:.2f} + {fit.slope:.2f}·(log p / log log p),  R²={fit.r_squared:.3f}")
    print(
        "\nOPT wastes impact on purpose — full-cache boxes rush each prefix —\n"
        "then runs every suffix in parallel.  Any allocator pinned to near-\n"
        "minimal impact must crawl through the prefixes with minimum boxes,\n"
        "spreading the suffixes over ~log p eras instead of ~log log p."
    )


if __name__ == "__main__":
    main()
