#!/usr/bin/env python
"""The Theorem 4 construction: being green costs a log factor on makespan.

Builds the paper's §4 adversarial instances — repeater/polluter prefixes in
geometric families plus unique-page suffixes — and shows that a parallel
scheduler built on a *greedily green* black box (impact-frugal per
processor) falls behind the impact-wasteful Lemma-8 OPT schedule by a
factor that grows with p like log p / log log p.

When the repo's committed adversary corpus (``corpus/``, grown by
``repro hunt``) is present, the example also replays its hardest
searched det-par instances — which beat these hand-built families by a
wide margin — and falls back silently to the construction alone when it
is not.

Run:  python examples/adversarial_lower_bound.py
"""

import math
from pathlib import Path

import numpy as np

from repro import BlackBoxPar, DetPar, build_adversarial_instance, lemma8_opt_makespan
from repro.analysis import fit_growth, render_table

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"


def searched_instances() -> None:
    """Replay the hardest committed det-par instances, if the corpus exists."""
    if not (CORPUS_DIR / "catalog.json").exists():
        print("\n(no committed corpus at corpus/ — run `repro hunt` to grow one)")
        return
    from repro.search.corpus import corpus_entries
    from repro.search.scorers import evaluate_adversary_params, candidate_unit
    from repro.traces.registry import TraceRegistry

    entries = corpus_entries(TraceRegistry(CORPUS_DIR), "det-par")
    if not entries:
        print("\n(corpus/ holds no det-par instances yet)")
        return
    rows = []
    for entry in sorted(entries, key=lambda e: -e["ratio"])[:3]:
        recipe = entry["recipe"]
        unit = candidate_unit(
            recipe["family"],
            recipe["config"],
            "det-par",
            workload_seed=recipe["workload_seed"],
            seeds=tuple(recipe["seeds"]),
            xi=recipe["xi"],
        )
        value = evaluate_adversary_params(unit.params)
        rows.append(
            {
                "instance": entry["name"],
                "family": recipe["family"],
                "p": value["p"],
                "recorded ratio": round(entry["ratio"], 3),
                "measured ratio": round(value["ratio"], 3),
            }
        )
    print()
    print(render_table(rows, title="Hardest searched det-par instances (corpus/)"))
    print(
        "The closed-loop search (`repro hunt`) finds instances far past the\n"
        "hand-built Theorem 4 families; measured == recorded is the same\n"
        "byte-identical replay CI gates on."
    )


def main() -> None:
    rows = []
    for ell in (2, 3, 4):
        inst = build_adversarial_instance(ell, alpha=0.25, suffix_phase_multiplier=1)
        s = inst.recommended_miss_cost()
        opt = lemma8_opt_makespan(inst, s)
        black_box = BlackBoxPar(2 * inst.k, s).run(inst.workload)
        det_par = DetPar(2 * inst.k, s).run(inst.workload)
        logp = math.log2(inst.p)
        rows.append(
            {
                "p": inst.p,
                "k": inst.k,
                "prefixed_seqs": sum(1 for f in inst.family_of if f >= 0),
                "opt(lemma 8)": opt,
                "black-box ratio": round(black_box.makespan / opt, 3),
                "det-par ratio": round(det_par.makespan / opt, 3),
                "log p/log log p": round(logp / math.log2(max(2.0, logp)), 3),
            }
        )
    print(render_table(rows, title="Theorem 4 separation (suffix_phase_multiplier=1)"))

    fit = fit_growth([r["p"] for r in rows], [r["black-box ratio"] for r in rows], "log_over_loglog")
    print(f"fit: ratio ≈ {fit.intercept:.2f} + {fit.slope:.2f}·(log p / log log p),  R²={fit.r_squared:.3f}")
    print(
        "\nOPT wastes impact on purpose — full-cache boxes rush each prefix —\n"
        "then runs every suffix in parallel.  Any allocator pinned to near-\n"
        "minimal impact must crawl through the prefixes with minimum boxes,\n"
        "spreading the suffixes over ~log p eras instead of ~log log p."
    )
    searched_instances()


if __name__ == "__main__":
    main()
