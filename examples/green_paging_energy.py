#!/usr/bin/env python
"""Green paging as an energy story: right-sizing a cache over time.

Green paging (paper §2) charges an algorithm the *integral of cache size
over time* — a direct proxy for the energy a dynamically resizable cache
consumes.  This example services one program whose working set changes
over time and compares three policies:

* always-max: keep the whole cache powered (the baseline a sysadmin gets);
* RAND-GREEN / DET-GREEN: the paper's O(log p)-competitive online sizers;
* the offline optimal compartmentalized box profile (DP).

Run:  python examples/green_paging_energy.py
"""

import numpy as np

from repro import DetGreen, HeightLattice, RandGreen, optimal_box_profile
from repro.analysis import render_table
from repro.paging import execute_profile
from repro.workloads import multiscale_cycles

K, P = 128, 32          # cache sizes available: 4 .. 128 pages
S = 2 * K               # miss latency in hit units
SEED = 3


def always_max_impact(seq, lattice, s) -> int:
    """Keep the full cache for the whole run (boxes of height k)."""
    run = execute_profile(seq, iter(lambda: lattice.max_height, None), s)
    return run.impact


def main() -> None:
    rng = np.random.default_rng(SEED)
    lattice = HeightLattice(K, P)
    seq = multiscale_cycles(4000, K, P, rng)
    print(f"workload: {len(seq)} requests, {len(np.unique(seq))} distinct pages, cache range [{lattice.min_height}, {K}]\n")

    opt = optimal_box_profile(seq, lattice, S)
    det = DetGreen(lattice, S).run(seq)
    rand = RandGreen(lattice, S, np.random.default_rng(SEED + 1)).run(seq)
    full = always_max_impact(seq, lattice, S)

    rows = [
        {"policy": "offline OPT (box DP)", "impact": opt.impact, "vs OPT": 1.0},
        {"policy": "DET-GREEN", "impact": det.impact, "vs OPT": round(det.impact / opt.impact, 2)},
        {"policy": "RAND-GREEN", "impact": rand.impact, "vs OPT": round(rand.impact / opt.impact, 2)},
        {"policy": "always-max cache", "impact": full, "vs OPT": round(full / opt.impact, 2)},
    ]
    print(render_table(rows, title="memory impact (cache-size × time ≈ energy)"))

    # show how OPT's profile tracks the working set
    usage = {}
    for h in opt.profile:
        usage[h] = usage.get(h, 0) + 1
    print("OPT box-height histogram (the cache size OPT actually powers):")
    print(render_table([{"height": h, "boxes": c} for h, c in sorted(usage.items())]))
    print(
        "The online sizers land within a small factor of the DP optimum while\n"
        "the always-max policy pays for cache the program cannot use."
    )


if __name__ == "__main__":
    main()
