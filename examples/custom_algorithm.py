#!/usr/bin/env python
"""Extending the library: write, register, and evaluate your own scheduler.

Template for downstream users.  We implement GREEDY-MRC, a plausible
heuristic a systems person might try: profile each program's miss-ratio
curve on a prefix, then allocate the cache by repeatedly giving the next
page to whoever's curve says it saves the most misses (greedy waterfill),
and re-run as a static partition.  It is *adaptive* (looks at requests),
unlike the paper's oblivious algorithms — and still carries no worst-case
guarantee, which the comparison makes visible.

What the template shows:

1. implement ``run(workload) -> ParallelRunResult`` using the library's
   substrate (``LRUCache``, ``BoxRecord``);
2. register the algorithm by name so the harness, sweeps, and CLI can use
   it like any built-in;
3. evaluate it with the same certified-lower-bound methodology.

Run:  python examples/custom_algorithm.py
"""

from typing import List

import numpy as np

from repro import ParallelWorkload, make_parallel_workload, makespan_lower_bound, miss_ratio_curve, summarize
from repro.analysis import render_table
from repro.paging import LRUCache
from repro.parallel import BoxRecord, ParallelRunResult, make_algorithm, register_algorithm


class GreedyMRC:
    """Static partition chosen by greedy marginal-benefit waterfilling."""

    name = "greedy-mrc"

    def __init__(self, cache_size: int, miss_cost: int, profile_fraction: float = 0.25) -> None:
        self.cache_size = int(cache_size)
        self.miss_cost = int(miss_cost)
        self.profile_fraction = float(profile_fraction)

    def _allocate(self, workload: ParallelWorkload) -> List[int]:
        """One page to everyone, then greedily to the largest marginal win."""
        p = workload.p
        curves = []
        for seq in workload.sequences:
            prefix = seq[: max(1, int(len(seq) * self.profile_fraction))]
            curves.append(miss_ratio_curve(prefix, max_capacity=self.cache_size))
        alloc = [1 if len(seq) else 0 for seq in workload.sequences]
        budget = self.cache_size - sum(alloc)
        while budget > 0:
            gains = [
                curves[i].fault_count(alloc[i]) - curves[i].fault_count(alloc[i] + 1)
                if len(workload.sequences[i])
                else -1
                for i in range(p)
            ]
            best = int(np.argmax(gains))
            if gains[best] <= 0:
                break  # nobody benefits; leave the rest unallocated
            alloc[best] += 1
            budget -= 1
        return alloc

    def run(self, workload: ParallelWorkload) -> ParallelRunResult:
        """Profile, allocate, then run each program on its private share."""
        s = self.miss_cost
        alloc = self._allocate(workload)
        completion = np.zeros(workload.p, dtype=np.int64)
        trace: List[BoxRecord] = []
        for i, seq in enumerate(workload.sequences):
            if len(seq) == 0 or alloc[i] == 0:
                continue
            cache = LRUCache(alloc[i])
            hits = sum(cache.touch(int(x)) for x in seq)
            t = hits + s * (len(seq) - hits)
            completion[i] = t
            trace.append(
                BoxRecord(
                    proc=i, height=alloc[i], start=0, end=t,
                    served_start=0, served_end=len(seq),
                    hits=hits, faults=len(seq) - hits, tag="greedy-mrc",
                )
            )
        return ParallelRunResult(
            algorithm=self.name,
            completion_times=completion,
            trace=trace,
            cache_size=self.cache_size,
            miss_cost=s,
            meta={"allocation": alloc},
        )


def main() -> None:
    # step 2: registration makes it a first-class citizen of the harness
    register_algorithm("greedy-mrc", lambda k, s, seed: GreedyMRC(k, s))

    K_OPT, XI, S = 64, 2, 32
    wl = make_parallel_workload(p=8, n_requests=600, k=K_OPT, rng=np.random.default_rng(5), kind="multiscale")
    lb = makespan_lower_bound(wl, K_OPT, S)

    rows = []
    for name in ("greedy-mrc", "det-par", "equal-partition", "best-static-partition"):
        res = make_algorithm(name, XI * K_OPT, S, seed=0).run(wl)
        rows.append(summarize(res, makespan_lb=lb).as_dict())
    print(render_table(rows, columns=["algorithm", "makespan", "makespan_ratio", "utilization"],
                       title="your algorithm vs the built-ins (same methodology)"))
    print(
        "GREEDY-MRC profiles a prefix and freezes a static split: good when\n"
        "programs are stationary, blind when working sets shift — and without\n"
        "the O(log p) worst-case guarantee the paper's oblivious DET-PAR has."
    )


if __name__ == "__main__":
    main()
