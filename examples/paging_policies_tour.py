#!/usr/bin/env python
"""Tour of the sequential paging substrate: policies, phases, and curves.

Everything the parallel machinery stands on, in one script:

1. classical replacement policies (LRU, FIFO, deterministic marking,
   randomized MARK, offline MIN) on classical workloads;
2. the canonical k-phase partition behind marking arguments;
3. the LRU miss-ratio curve and the marginal benefit of one more page —
   the non-monotonic structure the paper's introduction says makes
   parallel cache allocation hard.

Run:  python examples/paging_policies_tour.py
"""

import numpy as np

from repro.analysis import bar_chart, render_table
from repro.paging import (
    BeladySimulation,
    FIFOCache,
    LFUCache,
    LRUCache,
    MarkingCache,
    RandomMarkCache,
    miss_ratio_curve,
    phase_partition,
)
from repro.workloads import cyclic, marginal_benefit, sawtooth, scan, zipf

K = 8
S_LABEL = "faults"


def faults_of(policy, seq) -> int:
    for page in seq:
        policy.touch(int(page))
    return policy.faults


def policy_shootout(name: str, seq: np.ndarray) -> dict:
    rng = np.random.default_rng(0)
    belady = BeladySimulation(seq, K)
    belady.run()
    return {
        "workload": name,
        "LRU": faults_of(LRUCache(K), seq),
        "FIFO": faults_of(FIFOCache(K), seq),
        "LFU": faults_of(LFUCache(K), seq),
        "marking": faults_of(MarkingCache(K), seq),
        "MARK(rand)": faults_of(RandomMarkCache(K, rng), seq),
        "MIN(offline)": belady.faults,
    }


def main() -> None:
    rng = np.random.default_rng(1)
    workloads = {
        "cycle(k+1)": cyclic(2000, K + 1),  # the LRU-killer
        "sawtooth": sawtooth(2000, K + 2),
        "zipf": zipf(2000, 200, 1.1, rng),
        "scan": scan(2000),
    }
    rows = [policy_shootout(name, seq) for name, seq in workloads.items()]
    print(render_table(rows, title=f"fault counts, cache of {K} pages"))
    print(
        "cycle(k+1) is the classic separation: LRU and FIFO fault on every\n"
        "request, deterministic marking (fixed tie-break) does somewhat better,\n"
        "randomized MARK lands near 2·H_k·MIN, and offline MIN keeps k-1 pages\n"
        "pinned — the exponential randomization gap of sequential paging.\n"
    )

    seq = workloads["zipf"]
    starts = phase_partition(seq, K)
    print(f"canonical {K}-phase partition of the zipf trace: {len(starts)} phases; "
          f"every marking algorithm faults at most {K} times per phase.\n")

    curve = miss_ratio_curve(workloads["cycle(k+1)"], max_capacity=K + 3)
    print(bar_chart(
        {f"cache={c}": curve.miss_ratio(c) for c in range(2, K + 3)},
        title="LRU miss ratio vs cache size on cycle(k+1) — the cliff:",
        fmt="{:.2f}",
    ))
    mb = marginal_benefit(workloads["cycle(k+1)"], K + 3)
    cliff = int(np.argmax(mb)) + 1
    print(f"marginal benefit peaks going from {cliff} to {cliff + 1} pages "
          f"(Δfaults = {int(mb.max())}): cache value is all-or-nothing here,\n"
          "which is precisely why a fixed equal split of a shared cache can be\n"
          "arbitrarily wasteful and the paper's box schedules are needed.")


if __name__ == "__main__":
    main()
