#!/usr/bin/env python
"""Multicore cache scheduling: heterogeneous programs, every algorithm.

The scenario the paper's introduction motivates: a multicore runs programs
with wildly different cache appetites — a streaming scan (no reuse), a
Zipf-skewed key-value lookup loop, tight compute kernels cycling over
moderate working sets, and a phase-changing analytics job.  The scheduler
must decide *dynamically* who gets how much of the shared cache.

The script:

1. characterizes each program with its LRU miss-ratio curve (the marginal
   benefit of cache the scheduler has to reason about);
2. runs all six algorithms on the shared cache;
3. reports makespan and mean completion against certified lower bounds.

Run:  python examples/multicore_scheduling.py
"""

import numpy as np

from repro import ParallelWorkload, make_algorithm, makespan_lower_bound, mean_completion_lower_bound, miss_ratio_curve, summarize
from repro.analysis import render_table
from repro.workloads import cyclic, mixed_locality, phased_working_sets, scan, zipf

K_OPT = 64
XI = 2
S = 48
SEED = 7

ALGORITHMS = [
    "det-par",
    "rand-par",
    "black-box-green",
    "equal-partition",
    "best-static-partition",
    "global-lru",
]


def build_workload(rng: np.random.Generator) -> ParallelWorkload:
    n = 800
    programs = {
        "stream-backup": scan(n),
        "kv-lookup": zipf(n, 4 * K_OPT, 1.2, rng),
        "stencil-kernel": cyclic(n, K_OPT // 2),
        "fft-kernel": cyclic(n, K_OPT // 8),
        "analytics": phased_working_sets(8, n // 8, K_OPT // 2, rng),
        "web-cache": mixed_locality(n, rng, hot_pages=K_OPT // 4, cold_pages=8 * K_OPT),
        "compiler": phased_working_sets(4, n // 4, K_OPT // 4, rng, overlap=0.5),
        "telemetry": scan(n),
    }
    wl = ParallelWorkload.from_local(list(programs.values()), name="multicore-mix")
    wl.meta["programs"] = list(programs)
    return wl


def characterize(wl: ParallelWorkload) -> None:
    print("per-program cache appetite (LRU miss ratio at increasing cache):")
    rows = []
    for name, seq in zip(wl.meta["programs"], wl.sequences):
        curve = miss_ratio_curve(seq, max_capacity=K_OPT)
        rows.append(
            {
                "program": name,
                "distinct_pages": int(len(np.unique(seq))),
                **{f"mr@{c}": round(curve.miss_ratio(c), 2) for c in (4, 16, 64)},
            }
        )
    print(render_table(rows))


def main() -> None:
    rng = np.random.default_rng(SEED)
    wl = build_workload(rng)
    characterize(wl)

    lb = makespan_lower_bound(wl, k=K_OPT, miss_cost=S)
    mean_lb = mean_completion_lower_bound(wl, k=K_OPT, miss_cost=S)
    print(f"lower bounds: makespan >= {lb.value}, mean completion >= {mean_lb:.0f}\n")

    rows = []
    for name in ALGORITHMS:
        alg = make_algorithm(name, XI * K_OPT, S, seed=SEED)
        rows.append(summarize(alg.run(wl), makespan_lb=lb, mean_lb=mean_lb).as_dict())
    print(
        render_table(
            rows,
            columns=["algorithm", "makespan", "makespan_ratio", "mean_completion", "mean_completion_ratio", "utilization"],
            title="shared-cache scheduling, 8 heterogeneous programs",
        )
    )
    print(
        "DET-PAR and RAND-PAR are oblivious: they never look at hits/misses,\n"
        "yet stay within the paper's O(log p) guardrail on every workload —\n"
        "including ones (see examples/adversarial_lower_bound.py) where the\n"
        "naive baselines degrade badly."
    )


if __name__ == "__main__":
    main()
