#!/usr/bin/env python
"""Green paging when the permitted cache range changes mid-run (§4's reboot).

Inside a parallel scheduler, a green source never runs with fixed
thresholds for long: as sibling sequences complete, the minimum sensible
allocation k/v grows.  The paper handles this by *rebooting* the green
algorithm whenever the minimum threshold doubles.  This example shows the
machinery in isolation:

1. build a survivor schedule (thresholds double at given times);
2. run DET-GREEN through it with reboots;
3. show the emitted heights migrating upward as the floor rises, and what
   the reboot costs in impact versus an unconstrained run.

Run:  python examples/dynamic_thresholds.py
"""

import numpy as np

from repro.analysis import bar_chart
from repro.core import DetGreen, HeightLattice
from repro.green import DynamicGreen, survivor_schedule
from repro.workloads import multiscale_cycles

K, P, S = 64, 16, 128


def height_histogram(res, start_t, end_t):
    """Histogram of box heights for boxes starting within [start_t, end_t)."""
    hist = {}
    t = 0
    for box in res.run.runs:
        if start_t <= t < end_t:
            hist[box.height] = hist.get(box.height, 0) + 1
        t += S * box.height
    return hist


def main() -> None:
    rng = np.random.default_rng(4)
    seq = multiscale_cycles(6000, K, P, rng)

    # survivors halve twice: the min threshold goes 4 -> 8 -> 16
    res_probe = DynamicGreen(survivor_schedule(K, P, [10**9]), S).run(seq)
    third = res_probe.wall_time // 3
    sched = survivor_schedule(K, P, [third, 2 * third])
    dynamic = DynamicGreen(sched, S).run(seq)
    fixed = DetGreen(HeightLattice(K, P), S).run(seq)

    print(f"schedule: min height {[l.min_height for _, l in sched.segments]} "
          f"at times {[t for t, _ in sched.segments]}\n")
    for i, (t0, lattice) in enumerate(sched.segments):
        t1 = sched.segments[i + 1][0] if i + 1 < len(sched.segments) else dynamic.wall_time
        hist = height_histogram(dynamic, t0, t1)
        print(bar_chart(
            {f"h={h}": c for h, c in sorted(hist.items())},
            title=f"segment {i} (floor {lattice.min_height}): boxes by height",
            fmt="{:.0f}",
            width=36,
        ))
    print(f"impact with evolving thresholds: {dynamic.impact}")
    print(f"impact with fixed thresholds:    {fixed.impact}")
    print(f"reboot overhead: {dynamic.impact / fixed.impact:.2f}x")
    print(
        "\nThe floor forces taller minimum boxes late in the run — more impact\n"
        "per box, fewer boxes — while each segment's stream stays the exact\n"
        "impact-equalizing DET-GREEN schedule for its own lattice."
    )


if __name__ == "__main__":
    main()
