"""Service test plumbing: a live in-thread server on an ephemeral port."""

import asyncio
import threading

import pytest

from repro.obs.runtime import observability
from repro.service.backend import ServiceBackend, ServiceQuota
from repro.service.server import ServiceServer


class LiveService:
    """A running backend + HTTP server pair with deterministic teardown."""

    def __init__(self, backend: ServiceBackend) -> None:
        self.backend = backend
        self.server = ServiceServer(backend, port=0)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)

    def start(self) -> "LiveService":
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.server.start(), self.loop).result(10)
        return self

    @property
    def url(self) -> str:
        return self.server.url

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=5)
        self.backend.shutdown(timeout=5)


@pytest.fixture
def live_service(tmp_path):
    """A served backend with cache + registry under tmp_path, metrics on."""
    with observability(metrics=True):
        backend = ServiceBackend(
            jobs=1,
            cache=True,
            cache_dir=tmp_path / "cache",
            registry=str(tmp_path / "corpus"),
            quota=ServiceQuota(max_queue=64, max_pending_per_client=32),
        )
        service = LiveService(backend).start()
        try:
            yield service
        finally:
            service.stop()
