"""Load generator: percentile math, scenario shapes, a real measured run."""

import json

import pytest

from repro.client.protocol import ExperimentRequest, RunRequest, WorkloadSpec
from repro.service import loadgen
from repro.service.loadgen import percentile, run_load


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0


class TestScenarios:
    def test_duplicate_cells_share_a_content_key_across_clients(self):
        a = loadgen._scenario_request("duplicate-cells", "c0", 0, "e1", "quick")
        b = loadgen._scenario_request("duplicate-cells", "c1", 3, "e1", "quick")
        assert isinstance(a, RunRequest)
        assert a.content_key() == b.content_key()

    def test_unique_cells_differ_and_are_reproducible(self):
        a1 = loadgen._scenario_request("unique-cells", "c0", 0, "e1", "quick")
        a2 = loadgen._scenario_request("unique-cells", "c0", 0, "e1", "quick")
        b = loadgen._scenario_request("unique-cells", "c1", 0, "e1", "quick")
        assert a1.content_key() == a2.content_key()  # stable across processes
        assert a1.content_key() != b.content_key()

    def test_experiment_scenario(self):
        req = loadgen._scenario_request("experiment", "c0", 0, "e1", "quick")
        assert isinstance(req, ExperimentRequest) and req.name == "e1"

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            loadgen._scenario_request("nope", "c0", 0, "e1", "quick")


class TestRunLoad:
    @pytest.fixture(autouse=True)
    def _small_cell(self, monkeypatch):
        """Shrink the benchmark cell so the measured run stays fast."""
        monkeypatch.setattr(
            loadgen,
            "DUPLICATE_CELL",
            dict(
                algorithms=("det-par",),
                cache_size=32,
                miss_cost=8,
                xi=2,
                seeds=(0,),
                workload=WorkloadSpec(p=4, n_requests=120, k=16),
            ),
        )

    def test_duplicate_scenario_measures_cross_client_hit_rate(self, live_service, tmp_path):
        out = tmp_path / "BENCH_service.json"
        report = run_load(
            live_service.url, clients=3, requests_per_client=2, scenario="duplicate-cells", out=out
        )
        assert report["completed"] == 6 and report["errors"] == 0
        assert report["latency_ms"]["p50"] > 0
        assert report["latency_ms"]["p99"] >= report["latency_ms"]["p50"]
        cache = report["cache"]
        # 6 identical submissions, one computation: every later request
        # was coalesced into the live job or fully served by the cache
        assert cache["computed"] == cache["cells"] - cache["hits"]
        assert cache["hits"] + cache["coalesced_jobs"] > 0
        assert cache["hit_rate"] >= 0.5 or cache["coalesced_jobs"] >= 3
        on_disk = json.loads(out.read_text())
        assert on_disk["scenario"] == "duplicate-cells"
        assert on_disk["latency_ms"] == report["latency_ms"]

    def test_unique_scenario_has_no_cross_client_hits(self, live_service):
        report = run_load(
            live_service.url, clients=2, requests_per_client=1, scenario="unique-cells"
        )
        assert report["completed"] == 2 and report["errors"] == 0
        assert report["cache"]["hits"] == 0
        assert report["cache"]["computed"] == report["cache"]["cells"] > 0


class TestMainEntry:
    def test_argument_validation(self, capsys):
        with pytest.raises(SystemExit):
            loadgen.main(["--url", "http://x", "--clients", "0"])

    def test_unreachable_server_is_a_clean_failure(self):
        assert loadgen.main(["--url", "http://127.0.0.1:9", "--timeout", "0.5"]) == 2
