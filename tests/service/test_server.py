"""The HTTP frontend end-to-end: routing, typed errors, concurrency,
byte-identical rows, and SIGTERM-to-resumable-checkpoint semantics."""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.client import (
    ExperimentRequest,
    HttpSession,
    RunRequest,
    ServiceError,
    Session,
    TraceUpload,
    WorkloadSpec,
)

WL = WorkloadSpec(p=4, n_requests=120, k=16)
RUN = RunRequest(algorithms=("det-par",), cache_size=32, miss_cost=8, seeds=(0,), workload=WL)


def _raw(url, method="GET", path="/", body=None, headers=None):
    """A raw HTTP exchange (urllib), returning (status, parsed JSON)."""
    req = urllib.request.Request(
        url + path, data=body, method=method, headers=headers or {"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode() or "{}")


class TestRoutes:
    def test_health_and_metrics(self, live_service):
        session = HttpSession(live_service.url)
        health = session.health()
        assert health["status"] == "ok" and health["protocol_version"] == 1
        assert isinstance(session.metrics().snapshot, dict)

    def test_unknown_routes_are_typed_404s(self, live_service):
        status, body = _raw(live_service.url, path="/v1/nope")
        assert status == 404 and body["error"]["code"] == "not-found"
        status, body = _raw(live_service.url, path="/elsewhere")
        assert status == 404

    def test_malformed_json_body_is_a_400(self, live_service):
        status, body = _raw(live_service.url, "POST", "/v1/jobs", b"{not json")
        assert status == 400 and body["error"]["code"] == "bad-request"

    def test_invalid_request_is_a_400(self, live_service):
        payload = json.dumps({"type": "run", "algorithms": [], "cache_size": 1, "miss_cost": 1}).encode()
        status, body = _raw(live_service.url, "POST", "/v1/jobs", payload)
        assert status == 400 and body["error"]["code"] == "bad-request"

    def test_unknown_job_is_a_404(self, live_service):
        with pytest.raises(ServiceError) as exc:
            HttpSession(live_service.url).status("job-404")
        assert exc.value.code == "not-found"

    def test_implied_type_endpoints(self, live_service):
        payload = json.dumps({"name": "e1", "scale": "quick", "client": "t"}).encode()
        status, body = _raw(live_service.url, "POST", "/v1/experiments", payload)
        assert status == 202 and body["state"] in ("queued", "running")
        # and the job listing sees it
        status, listing = _raw(live_service.url, path="/v1/jobs")
        assert any(j["job_id"] == body["job_id"] for j in listing["jobs"])

    def test_trace_upload_on_jobs_endpoint_is_rejected(self, live_service):
        up = TraceUpload(name="t", text="1\n2\n").to_dict()
        status, body = _raw(live_service.url, "POST", "/v1/jobs", json.dumps(up).encode())
        assert status == 400 and "traces" in body["error"]["message"]


class TestEndToEnd:
    def test_http_rows_equal_in_process_rows(self, live_service):
        remote = HttpSession(live_service.url, client="t").run(RUN)
        with Session() as session:
            local = session.run(RUN)
        assert json.dumps(list(remote.rows), sort_keys=True) == json.dumps(
            list(local.rows), sort_keys=True
        )
        assert remote.table == local.table

    def test_submit_then_poll(self, live_service):
        handle = HttpSession(live_service.url, client="t").submit(RUN)
        reply = handle.result(timeout=120)
        assert reply.state == "done" and reply.rows
        assert handle.status().state == "done"

    def test_trace_upload_then_run(self, live_service):
        session = HttpSession(live_service.url, client="t")
        rng = np.random.default_rng(1)
        text = "\n".join(str(int(a)) for a in rng.integers(0, 4096 * 16, size=150)) + "\n"
        info = session.upload_trace(TraceUpload(name="net", text=text, fmt="address"))
        assert info.requests == 150
        reply = session.run(
            RunRequest(algorithms=("global-lru",), cache_size=16, miss_cost=4, seeds=(0,), trace="net")
        )
        assert reply.rows[0]["trace"] == info.digest

    def test_concurrent_clients_identical_rows_and_shared_cache(self, live_service):
        n_clients = 8
        replies = [None] * n_clients
        errors = []

        def one(i):
            try:
                replies[i] = HttpSession(live_service.url, client=f"c{i}", timeout=300).run(RUN)
            except Exception as exc:  # noqa: BLE001 — collected for the assertion
                errors.append(exc)

        threads = [threading.Thread(target=one, args=(i,)) for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        canonical = json.dumps(list(replies[0].rows), sort_keys=True)
        assert all(json.dumps(list(r.rows), sort_keys=True) == canonical for r in replies)
        # one computation total: every other client was served by
        # coalescing (shares the computing job's reply) or by the shared
        # content-addressed cache (all its cells are hits)
        for reply in replies:
            assert reply.cache_hits in (0, reply.cells)
        metrics = HttpSession(live_service.url).metrics()
        assert metrics.counter("exec.computed") == replies[0].cells


@pytest.mark.slow
class TestSignalSemantics:
    """`repro serve` + SIGTERM mid-run leaves a resumable checkpoint."""

    def _start_server(self, cwd, extra=()):
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parents[2] / "src"),
            PYTHONUNBUFFERED="1",
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--cache-dir", "cache", "--runs-dir", "runs", "--run-id", "svc-test", *extra],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env, cwd=cwd,
        )
        line = proc.stdout.readline()
        match = re.search(r"listening on (http://\S+)", line)
        assert match, f"no ready line, got {line!r}"
        return proc, match.group(1)

    def test_sigterm_mid_run_checkpoints_then_restart_serves_from_cache(self, tmp_path):
        # ~7s of compute on one worker: long enough that SIGTERM lands
        # mid-run, short enough for CI
        big = RunRequest(
            algorithms=("det-par", "rand-par"),
            cache_size=64,
            miss_cost=8,
            seeds=(0, 1, 2, 3, 4, 5),
            workload=WorkloadSpec(p=8, n_requests=30000, k=32),
            client="sig",
        )
        proc, url = self._start_server(tmp_path, extra=("--drain-timeout", "0.2"))
        try:
            handle = HttpSession(url, client="sig").submit(big)
            deadline = time.time() + 30
            while time.time() < deadline and handle.status().state == "queued":
                time.sleep(0.05)
            time.sleep(1.2)  # let some cells finish and hit the journal
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert rc == 130, proc.stdout.read()
        manifest = json.loads((tmp_path / "runs" / "svc-test" / "manifest.json").read_text())
        assert manifest["status"] == "interrupted"
        journal = tmp_path / "runs" / "svc-test" / "units.jsonl"
        journaled = len(journal.read_text().splitlines()) if journal.exists() else 0

        # restart on the same cache: the journaled cells come back as hits
        proc2, url2 = self._start_server(tmp_path, extra=("--no-checkpoint",))
        try:
            reply = HttpSession(url2, client="sig", timeout=300).run(big)
            assert reply.rows
            assert reply.cache_hits >= journaled
        finally:
            proc2.send_signal(signal.SIGTERM)
            proc2.wait(timeout=60)

    def test_idle_sigterm_exits_zero_and_completes_manifest(self, tmp_path):
        proc, url = self._start_server(tmp_path)
        assert HttpSession(url).health()["status"] == "ok"
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
        manifest = json.loads((tmp_path / "runs" / "svc-test" / "manifest.json").read_text())
        assert manifest["status"] == "complete"
