"""ServiceBackend semantics: admission, quotas, coalescing, shared cache.

These are the concurrency guarantees the service makes (ISSUE 6):
two clients submitting the identical cell cost one computation and one
cache hit; a client over quota gets a typed 429; a full queue gets a
typed 503.  Tests that need jobs to *stay* queued simply do not start
the worker thread — admission control is lock-level, not worker-level,
so every rejection path is exercised deterministically.
"""

import pytest

from repro.client.protocol import ExperimentRequest, RunRequest, ServiceError, WorkloadSpec
from repro.obs import metrics as obs_metrics
from repro.obs.runtime import observability
from repro.service.backend import ServiceBackend, ServiceQuota

WL = WorkloadSpec(p=4, n_requests=120, k=16)


def _run_request(client="alice", miss_cost=8, seed=0):
    return RunRequest(
        algorithms=("det-par",),
        cache_size=32,
        miss_cost=miss_cost,
        seeds=(seed,),
        workload=WL,
        client=client,
    )


class TestSharedCacheAcrossClients:
    def test_identical_cell_from_two_clients_is_one_computation(self, tmp_path):
        with observability(metrics=True):
            with ServiceBackend(cache=True, cache_dir=tmp_path / "cache") as backend:
                first = backend.wait(backend.submit(_run_request(client="alice")).job_id)
                second = backend.wait(backend.submit(_run_request(client="bob")).job_id)
            assert first.cache_hits == 0 and first.cells > 0
            # every one of bob's cells came from alice's computation
            assert second.cache_hits == second.cells == first.cells
            assert second.rows == first.rows
            registry = obs_metrics.active()
            snapshot = registry.snapshot()["counters"]
            assert snapshot["exec.computed"] == first.cells
            assert snapshot["exec.cache.hits"] == second.cells

    def test_distinct_cells_do_not_share(self, tmp_path):
        with ServiceBackend(cache=True, cache_dir=tmp_path / "cache") as backend:
            first = backend.wait(backend.submit(_run_request(miss_cost=8)).job_id)
            second = backend.wait(backend.submit(_run_request(miss_cost=9)).job_id)
        assert second.cache_hits == 0
        assert second.rows != first.rows


class TestCoalescing:
    def test_identical_live_requests_share_one_job(self):
        backend = ServiceBackend()  # worker not started: jobs stay queued
        first = backend.submit(_run_request(client="alice"))
        second = backend.submit(_run_request(client="bob"))
        assert second.job_id == first.job_id
        assert second.coalesced and not first.coalesced
        assert len(backend.jobs()) == 1
        # both clients count against the one job
        assert backend._jobs[first.job_id].clients == ["alice", "bob"]

    def test_coalesced_clients_get_the_same_reply(self, tmp_path):
        with observability(metrics=True):
            backend = ServiceBackend(cache=True, cache_dir=tmp_path / "cache")
            status_a = backend.submit(_run_request(client="alice"))
            status_b = backend.submit(_run_request(client="bob"))
            backend.start()
            try:
                reply_a = backend.wait(status_a.job_id)
                reply_b = backend.wait(status_b.job_id)
            finally:
                backend.shutdown()
            assert reply_a is reply_b
            assert obs_metrics.active().snapshot()["counters"]["service.coalesced"] == 1

    def test_finished_jobs_do_not_coalesce_cache_serves_instead(self, tmp_path):
        with ServiceBackend(cache=True, cache_dir=tmp_path / "cache") as backend:
            first = backend.submit(_run_request(client="alice"))
            backend.wait(first.job_id)
            second = backend.submit(_run_request(client="bob"))
            assert second.job_id != first.job_id
            reply = backend.wait(second.job_id)
        assert reply.cache_hits == reply.cells


class TestAdmissionControl:
    def test_per_client_quota_is_a_typed_429(self):
        backend = ServiceBackend(quota=ServiceQuota(max_queue=64, max_pending_per_client=2))
        backend.submit(_run_request(client="alice", seed=0))
        backend.submit(_run_request(client="alice", seed=1))
        with pytest.raises(ServiceError) as exc:
            backend.submit(_run_request(client="alice", seed=2))
        assert exc.value.code == "quota-exceeded"
        assert exc.value.status == 429
        # a different client is unaffected
        backend.submit(_run_request(client="bob", seed=3))

    def test_full_queue_is_a_typed_503(self):
        backend = ServiceBackend(quota=ServiceQuota(max_queue=2, max_pending_per_client=8))
        backend.submit(_run_request(client="alice", seed=0))
        backend.submit(_run_request(client="bob", seed=1))
        with pytest.raises(ServiceError) as exc:
            backend.submit(_run_request(client="carol", seed=2))
        assert exc.value.code == "queue-full"
        assert exc.value.status == 503

    def test_rejections_are_counted(self):
        with observability(metrics=True):
            backend = ServiceBackend(quota=ServiceQuota(max_queue=64, max_pending_per_client=1))
            backend.submit(_run_request(client="alice", seed=0))
            with pytest.raises(ServiceError):
                backend.submit(_run_request(client="alice", seed=1))
            counters = obs_metrics.active().snapshot()["counters"]
            assert counters["service.quota_rejections{client=alice}"] == 1


class TestJobLifecycle:
    def test_unknown_job_is_not_found(self):
        backend = ServiceBackend()
        with pytest.raises(ServiceError) as exc:
            backend.status("job-999")
        assert exc.value.code == "not-found"

    def test_wait_timeout_reports_current_state(self):
        backend = ServiceBackend()  # never started → stays queued
        status = backend.submit(_run_request())
        reply = backend.wait(status.job_id, timeout=0.05)
        assert reply.state == "queued" and reply.rows == ()

    def test_failed_job_raises_its_typed_error(self, tmp_path):
        with ServiceBackend(registry=str(tmp_path / "corpus")) as backend:
            status = backend.submit(
                RunRequest(algorithms=("det-par",), cache_size=32, miss_cost=8, trace="ghost")
            )
            with pytest.raises(ServiceError) as exc:
                backend.wait(status.job_id)
        assert exc.value.code == "not-found"
        assert backend.status(status.job_id).state == "failed"

    def test_invalid_request_is_rejected_at_submit(self):
        backend = ServiceBackend()
        with pytest.raises(ServiceError) as exc:
            backend.submit(RunRequest(algorithms=(), cache_size=32, miss_cost=8, workload=WL))
        assert exc.value.code == "bad-request"

    def test_shutdown_fails_leftover_jobs_and_reports_interruption(self):
        backend = ServiceBackend()  # worker never started
        status = backend.submit(_run_request())
        interrupted = backend.shutdown(timeout=0.1)
        assert interrupted is True
        polled = backend.status(status.job_id)
        assert polled.state == "failed"
        with pytest.raises(ServiceError) as exc:
            backend.wait(status.job_id)
        assert exc.value.code == "unavailable"

    def test_submit_after_shutdown_is_unavailable(self):
        backend = ServiceBackend()
        backend.shutdown(timeout=0.1)
        with pytest.raises(ServiceError) as exc:
            backend.submit(_run_request())
        assert exc.value.code == "unavailable"

    def test_clean_shutdown_is_not_an_interruption(self, tmp_path):
        backend = ServiceBackend(cache=True, cache_dir=tmp_path / "cache")
        with backend:
            backend.wait(backend.submit(_run_request()).job_id)
        assert backend.shutdown() is False


class TestExperimentJobs:
    def test_named_experiment_round_trip(self):
        with ServiceBackend() as backend:
            status = backend.submit(ExperimentRequest(name="e1", client="ci"))
            reply = backend.wait(status.job_id)
        assert reply.rows and reply.table
        assert backend.status(status.job_id).kind == "experiment"
