"""``REPRO_SIM=auto``: per-cell backend choice, logged in ``sim.*`` metrics.

The contract: ``auto`` never invents a third behaviour — every cell
still runs the event or the reference backend (which are byte-identical
by the differential suite) — it only *picks* per cell, and it must leave
an audit trail: one ``sim.backend.auto`` counter increment carrying the
cell name, the chosen backend, and the deciding reason.  These tests pin
the resolver's decision table branch by branch, the pass-through for
explicit settings, and the wiring into the two consumers
(:class:`BoxServer` and GLOBAL-LRU).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import metrics as M
from repro.paging.kernel import KERNEL_ENV, clear_kernel_cache, native_flavor
from repro.parallel.events import SIM_ENV, resolve_sim_backend, sim_backend
from repro.parallel.streaming import make_box_server, open_streaming
from repro.parallel.timestep import GlobalLRU
from repro.traces import write_store
from repro.workloads import ParallelWorkload

HAVE_NATIVE = native_flavor() is not None


@pytest.fixture(autouse=True)
def _fresh_kernel_cache():
    # kernels capture their backend at construction; don't let a kernel
    # built under one REPRO_KERNEL pin leak into the next test
    clear_kernel_cache()
    yield
    clear_kernel_cache()


class TestSimBackendParsing:
    def test_auto_is_a_valid_setting(self, monkeypatch):
        monkeypatch.setenv(SIM_ENV, "auto")
        assert sim_backend() == "auto"

    def test_invalid_setting_still_rejected(self, monkeypatch):
        monkeypatch.setenv(SIM_ENV, "adaptive")
        with pytest.raises(ValueError, match="REPRO_SIM"):
            sim_backend()


class TestPassThrough:
    def test_explicit_event_ignores_heuristic_inputs(self, monkeypatch):
        monkeypatch.setenv(SIM_ENV, "event")
        # inputs that would make auto pick reference must not matter
        monkeypatch.setenv(KERNEL_ENV, "reference")
        got = resolve_sim_backend("cell", streaming=True, p=8, lengths=[1000, 1, 1, 1])
        assert got == "event"

    def test_explicit_reference_passes_through(self, monkeypatch):
        monkeypatch.setenv(SIM_ENV, "reference")
        assert resolve_sim_backend("cell") == "reference"

    def test_pass_through_logs_nothing(self, monkeypatch):
        monkeypatch.setenv(SIM_ENV, "event")
        with M.collecting() as reg:
            resolve_sim_backend("cell")
        assert not any(
            k.startswith("sim.backend.auto") for k in reg.snapshot()["counters"]
        )


class TestAutoDecisionTable:
    """One test per branch of the heuristic, in resolver order."""

    @pytest.fixture(autouse=True)
    def _auto(self, monkeypatch):
        monkeypatch.setenv(SIM_ENV, "auto")

    def test_reference_kernel_forces_reference_sim(self, monkeypatch):
        # the event backend exists to batch kernel probes; under the
        # dict-LRU reference kernel there is nothing to batch
        monkeypatch.setenv(KERNEL_ENV, "reference")
        assert resolve_sim_backend("cell", streaming=True, p=4) == "reference"
        assert resolve_sim_backend("cell", streaming=False) == "reference"

    def test_batch_workloads_use_event(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "fast")
        got = resolve_sim_backend("cell", streaming=False, p=8, lengths=[10**6, 1])
        assert got == "event"

    @pytest.mark.skipif(not HAVE_NATIVE, reason="no native flavor available")
    def test_streamed_native_kernel_uses_event(self, monkeypatch):
        # the native tier makes per-box probes cheap enough that the
        # event backend wins even on imbalanced streams
        monkeypatch.setenv(KERNEL_ENV, "native")
        got = resolve_sim_backend("cell", streaming=True, p=8, lengths=[10**6, 1, 1, 1])
        assert got == "event"

    def test_streamed_imbalanced_numpy_kernel_uses_reference(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "fast")
        got = resolve_sim_backend("cell", streaming=True, p=8, lengths=[1000] + [1] * 7)
        assert got == "reference"

    def test_streamed_balanced_numpy_kernel_uses_event(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "fast")
        got = resolve_sim_backend("cell", streaming=True, p=4, lengths=[100, 90, 110, 95])
        assert got == "event"

    def test_single_processor_stream_uses_event_even_if_imbalanced(self, monkeypatch):
        # imbalance is a p>1 phenomenon: one feed cannot starve another
        monkeypatch.setenv(KERNEL_ENV, "fast")
        assert resolve_sim_backend("cell", streaming=True, p=1, lengths=[10**6]) == "event"


class TestAutoMetrics:
    def test_choice_is_logged_with_cell_and_reason(self, monkeypatch):
        monkeypatch.setenv(SIM_ENV, "auto")
        monkeypatch.setenv(KERNEL_ENV, "fast")
        with M.collecting() as reg:
            resolve_sim_backend("box-server", streaming=True, p=8, lengths=[1000] + [1] * 7)
            resolve_sim_backend("global-lru", streaming=False)
        counters = reg.snapshot()["counters"]
        assert (
            counters[
                "sim.backend.auto{cell=box-server,choice=reference,reason=streamed-imbalanced}"
            ]
            == 1
        )
        assert counters["sim.backend.auto{cell=global-lru,choice=event,reason=batch}"] == 1


class TestConsumerWiring:
    def workload(self):
        rng = np.random.default_rng(7)
        return ParallelWorkload(
            sequences=[rng.integers(0, 20, size=200) + 100 * i for i in range(3)],
            name="auto-wire",
        )

    def test_box_server_records_resolved_backend(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SIM_ENV, "auto")
        monkeypatch.setenv(KERNEL_ENV, "reference")
        store = write_store(tmp_path / "w.trc", self.workload())
        server = make_box_server(open_streaming(store), miss_cost=4)
        assert server.backend == "reference"

    def test_global_lru_runs_identically_under_auto(self, monkeypatch):
        wl = self.workload()
        algo = GlobalLRU(cache_size=16, miss_cost=4)
        monkeypatch.setenv(SIM_ENV, "event")
        expected = algo.run(wl)
        monkeypatch.setenv(SIM_ENV, "auto")
        with M.collecting() as reg:
            got = algo.run(wl)
        assert np.array_equal(got.completion_times, expected.completion_times)
        assert (
            reg.snapshot()["counters"][
                "sim.backend.auto{cell=global-lru,choice=event,reason=batch}"
            ]
            == 1
        )
