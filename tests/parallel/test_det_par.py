"""Tests for DET-PAR: structure, capacity plan, well-roundedness, balance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DetPar, LatticeError, audit_balance, audit_well_rounded
from repro.parallel import peak_concurrent_height
from repro.workloads import ParallelWorkload, cyclic, make_parallel_workload, scan


def rng(seed=0):
    return np.random.default_rng(seed)


def simple_workload(p=4, n=120):
    return ParallelWorkload.from_local([cyclic(n, 5 + i) for i in range(p)], name="cyc")


class TestValidation:
    def test_non_power_of_two_cache_accepted(self):
        res = DetPar(48, 4).run(simple_workload(p=4, n=60))
        assert (res.completion_times > 0).all()
        res.validate()

    def test_invalid_cache_raises_lattice_error(self):
        with pytest.raises(LatticeError) as ei:
            DetPar(0, 4)
        assert str(ei.value) == "cache size k must be >= 1 (got k=0; nearest valid k is 1)"

    def test_miss_cost(self):
        with pytest.raises(ValueError):
            DetPar(64, 1)

    def test_cache_too_small(self):
        with pytest.raises(ValueError):
            DetPar(2, 4)._plan_phase(64)


class TestPhasePlanning:
    def test_plan_fits_budget(self):
        alg = DetPar(256, 8)
        for n_active in (1, 2, 3, 5, 8, 16, 33, 64):
            k_int, b, slots, reserved = alg._plan_phase(n_active)
            assert reserved <= 256
            assert b >= 1
            assert k_int >= 1
            for z, m in slots.items():
                assert z > b and m >= 1

    def test_base_height_doubles_inverse_with_active(self):
        alg = DetPar(256, 8)
        _, b8, _, _ = alg._plan_phase(8)
        _, b4, _, _ = alg._plan_phase(4)
        assert b4 == 2 * b8

    def test_single_processor_gets_full_internal_cache(self):
        alg = DetPar(64, 8)
        k_int, b, slots, reserved = alg._plan_phase(1)
        assert b == min(2 * k_int, k_int) or b == 2 * k_int // 1 or b >= k_int
        assert reserved <= 64


class TestExecution:
    def test_completes_all(self):
        res = DetPar(64, 8).run(simple_workload(p=4, n=200))
        assert (res.completion_times > 0).all()
        res.validate()

    def test_deterministic(self):
        wl = simple_workload()
        a = DetPar(64, 8).run(wl)
        b = DetPar(64, 8).run(wl)
        assert (a.completion_times == b.completion_times).all()
        assert len(a.trace) == len(b.trace)

    def test_capacity_within_budget(self):
        wl = make_parallel_workload(p=8, n_requests=250, k=64, rng=rng(1))
        res = DetPar(64, 16).run(wl)
        # executed peak is at most the planned reservation, which fits
        assert peak_concurrent_height(res.trace) <= 64
        assert res.meta["reserved_peak"] <= 64

    def test_empty_sequences(self):
        wl = ParallelWorkload.from_local([np.empty(0, dtype=np.int64), cyclic(60, 4)])
        res = DetPar(32, 4).run(wl)
        assert res.completion_times[0] == 0
        assert res.completion_times[1] > 0

    def test_single_processor(self):
        wl = ParallelWorkload.from_local([cyclic(100, 6)])
        res = DetPar(32, 4).run(wl)
        assert res.completion_times[0] > 0

    def test_phases_recorded_and_halving(self):
        locals_ = [cyclic(80 * (i + 1), 4) for i in range(8)]
        wl = ParallelWorkload.from_local(locals_)
        res = DetPar(64, 8).run(wl)
        phases = res.meta["phases"]
        assert len(phases) >= 2
        actives = [ph.active_at_start for ph in phases]
        assert all(actives[i] > actives[i + 1] for i in range(len(actives) - 1))
        # base heights grow as processors finish
        bases = [ph.base_height for ph in phases]
        assert all(bases[i] <= bases[i + 1] for i in range(len(bases) - 1))

    def test_tags_present(self):
        res = DetPar(64, 8).run(simple_workload(p=4, n=300))
        tags = {r.tag for r in res.trace}
        assert "base" in tags
        assert "strip" in tags


class TestTheoryProperties:
    def test_well_rounded(self):
        """E4's core claim: DET-PAR's trace passes the §3.3 audit with a
        small constant."""
        wl = make_parallel_workload(p=8, n_requests=300, k=64, rng=rng(2))
        res = DetPar(64, 16).run(wl)
        report = audit_well_rounded(res)
        assert report.base_covered, report
        assert report.max_gap_factor <= 8.0, report

    def test_well_rounded_uneven_lengths(self):
        locals_ = [cyclic(60 * (i + 1), 4 + i) for i in range(8)]
        wl = ParallelWorkload.from_local(locals_)
        res = DetPar(64, 8).run(wl)
        report = audit_well_rounded(res)
        assert report.base_covered
        assert report.max_gap_factor <= 8.0, report

    def test_balanced(self):
        """Lemma 7 premise: impact spread across survivors stays bounded."""
        wl = ParallelWorkload.from_local([cyclic(400, 6) for _ in range(8)])
        res = DetPar(64, 8).run(wl)
        report = audit_balance(res)
        assert report.max_phase_spread <= 4.0, report
        assert report.min_reserved_fraction >= 0.25

    def test_oblivious_to_request_content(self):
        """Same lengths & completion pattern, different pages: while both
        instances keep all processors alive the box schedule is identical."""
        wl1 = ParallelWorkload.from_local([cyclic(200, 3) for _ in range(4)])
        wl2 = ParallelWorkload.from_local([cyclic(200, 7) for _ in range(4)])
        r1 = DetPar(32, 8).run(wl1)
        r2 = DetPar(32, 8).run(wl2)
        # compare reservation schedules (proc, height, start) during the
        # overlap of both runs' first phases
        horizon = min(r1.meta["phases"][0].start_time + 200, 200)
        sched1 = sorted((r.proc, r.height, r.start) for r in r1.trace if r.start < horizon)
        sched2 = sorted((r.proc, r.height, r.start) for r in r2.trace if r.start < horizon)
        assert sched1 == sched2


class TestRobustness:
    def test_non_power_of_two_processor_count(self):
        wl = ParallelWorkload.from_local([cyclic(90, 4 + i) for i in range(5)])
        res = DetPar(64, 8).run(wl)
        assert (res.completion_times > 0).all()
        res.validate()

    def test_minimal_viable_cache(self):
        """Smallest cache the planner accepts for p=4 still completes."""
        wl = ParallelWorkload.from_local([cyclic(60, 3) for _ in range(4)])
        res = DetPar(8, 4).run(wl)
        assert (res.completion_times > 0).all()

    def test_wildly_uneven_lengths(self):
        locals_ = [cyclic(5, 2), cyclic(2000, 6), cyclic(1, 1), cyclic(300, 10)]
        wl = ParallelWorkload.from_local(locals_)
        res = DetPar(64, 8).run(wl)
        assert (res.completion_times > 0).all()
        from repro.parallel import verify_trace

        assert verify_trace(res, wl).ok

    def test_rebuild_times_recorded(self):
        locals_ = [cyclic(60 * (i + 1), 4) for i in range(8)]
        wl = ParallelWorkload.from_local(locals_)
        res = DetPar(64, 8).run(wl)
        rebuilds = res.meta["rebuild_times"]
        # phases after the first start at recorded rebuild instants
        starts = [ph.start_time for ph in res.meta["phases"][1:]]
        assert set(starts) <= set(rebuilds)

    def test_single_page_sequences(self):
        wl = ParallelWorkload.from_local([np.asarray([0], dtype=np.int64) for _ in range(4)])
        res = DetPar(32, 4).run(wl)
        assert (res.completion_times == 4).all()  # one miss each, in parallel
