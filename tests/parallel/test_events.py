"""Tests for the event scheduler, run-result records, and the capacity ledger."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    BoxRecord,
    EventScheduler,
    ParallelRunResult,
    capacity_profile,
    peak_concurrent_height,
)


def rec(proc=0, height=4, start=0, end=10, ss=0, se=2, hits=1, faults=1, tag=""):
    return BoxRecord(
        proc=proc, height=height, start=start, end=end,
        served_start=ss, served_end=se, hits=hits, faults=faults, tag=tag,
    )


class TestEventScheduler:
    def test_pops_in_time_order(self):
        sched = EventScheduler()
        sched.schedule(30, "c")
        sched.schedule(10, "a")
        sched.schedule(20, "b")
        assert [sched.pop()[2] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_among_same_time_events(self):
        sched = EventScheduler()
        for tag in "abcd":
            sched.schedule(5, tag)
        assert [sched.pop()[2] for _ in range(4)] == ["a", "b", "c", "d"]

    def test_explicit_priority_overrides_fifo(self):
        sched = EventScheduler()
        sched.schedule(5, "late", priority=2)
        sched.schedule(5, "early", priority=1)
        assert sched.pop()[2] == "early"
        assert sched.pop()[2] == "late"

    def test_priority_only_breaks_ties_within_one_time(self):
        sched = EventScheduler()
        sched.schedule(9, "t9", priority=0)
        sched.schedule(3, "t3", priority=99)
        assert sched.pop()[2] == "t3"

    def test_pop_returns_time_token_kind_data(self):
        sched = EventScheduler()
        token = sched.schedule(7, "k", {"x": 1})
        assert sched.pop() == (7, token, "k", {"x": 1})

    def test_cancel_skips_event_and_len_accounts(self):
        sched = EventScheduler()
        keep = sched.schedule(1, "keep")
        drop = sched.schedule(0, "drop")
        sched.cancel(drop)
        assert len(sched) == 1 and bool(sched)
        assert sched.pop()[1] == keep
        assert len(sched) == 0 and not sched

    def test_peek_time_skips_cancelled(self):
        sched = EventScheduler()
        first = sched.schedule(1, "a")
        sched.schedule(4, "b")
        sched.cancel(first)
        assert sched.peek_time() == 4

    def test_empty_pop_and_peek_raise(self):
        sched = EventScheduler()
        with pytest.raises(IndexError):
            sched.pop()
        with pytest.raises(IndexError):
            sched.peek_time()

    @settings(max_examples=50, deadline=None)
    @given(
        events=st.lists(
            st.tuples(st.integers(0, 50), st.one_of(st.none(), st.integers(0, 5))),
            max_size=40,
        )
    )
    def test_heap_order_invariant(self, events):
        """Pops are sorted by (time, priority, sequence) — never by payload."""
        sched = EventScheduler()
        expected = []
        for seq, (time, prio) in enumerate(events):
            sched.schedule(time, "e", seq, priority=prio)
            expected.append((time, seq if prio is None else prio, seq))
        expected.sort()
        popped = []
        while sched:
            t, _, _, seq = sched.pop()
            popped.append(seq)
        assert popped == [seq for (_, _, seq) in expected]

    @settings(max_examples=30, deadline=None)
    @given(
        events=st.lists(st.integers(0, 30), min_size=1, max_size=30),
        drop=st.sets(st.integers(0, 29)),
    )
    def test_cancel_equivalent_to_never_scheduling(self, events, drop):
        a, b = EventScheduler(), EventScheduler()
        tokens = [a.schedule(t, "e", i) for i, t in enumerate(events)]
        for i, t in enumerate(events):
            if i not in drop:
                b.schedule(t, "e", i)
        for i in drop:
            if i < len(tokens):
                a.cancel(tokens[i])
        order_a = [a.pop()[3] for _ in range(len(a))]
        order_b = [b.pop()[3] for _ in range(len(b))]
        assert order_a == order_b


class TestBoxRecord:
    def test_derived_fields(self):
        r = rec()
        assert r.duration == 10
        assert r.served == 2
        assert r.reserved_impact == 40


class TestCapacityProfile:
    def test_empty(self):
        times, heights = capacity_profile([])
        assert len(times) == 0 and len(heights) == 0
        assert peak_concurrent_height([]) == 0

    def test_single_box(self):
        times, heights = capacity_profile([rec(height=4, start=2, end=7)])
        assert times.tolist() == [2, 7]
        assert heights.tolist() == [4, 0]
        assert peak_concurrent_height([rec(height=4, start=2, end=7)]) == 4

    def test_overlapping_boxes(self):
        trace = [rec(height=4, start=0, end=10), rec(proc=1, height=8, start=5, end=15)]
        assert peak_concurrent_height(trace) == 12
        times, heights = capacity_profile(trace)
        assert times.tolist() == [0, 5, 10, 15]
        assert heights.tolist() == [4, 12, 8, 0]

    def test_zero_duration_boxes_ignored(self):
        trace = [rec(height=4, start=3, end=3, se=0, hits=0, faults=0)]
        assert peak_concurrent_height(trace) == 0

    def test_adjacent_boxes_do_not_stack(self):
        trace = [rec(height=4, start=0, end=5), rec(height=4, start=5, end=10)]
        assert peak_concurrent_height(trace) == 4


class TestParallelRunResult:
    def _result(self, trace, completions=(12,)):
        return ParallelRunResult(
            algorithm="test",
            completion_times=np.asarray(completions, dtype=np.int64),
            trace=trace,
            cache_size=16,
            miss_cost=5,
        )

    def test_objectives(self):
        res = self._result([], completions=(10, 20, 30))
        assert res.makespan == 30
        assert res.mean_completion_time == 20.0
        assert res.p == 3

    def test_impact_accounting(self):
        trace = [rec(height=4, start=0, end=10), rec(proc=0, height=2, start=10, end=20, ss=2, se=4)]
        res = self._result(trace)
        assert res.total_impact() == 4 * 10 + 2 * 10
        assert res.impact_by_proc().tolist() == [60]

    def test_boxes_of(self):
        trace = [rec(proc=0), rec(proc=1, ss=0, se=2)]
        res = self._result(trace, completions=(5, 5))
        assert len(res.boxes_of(0)) == 1

    def test_validate_accepts_contiguous(self):
        trace = [
            rec(proc=0, start=0, end=10, ss=0, se=3, hits=2, faults=1),
            rec(proc=0, start=10, end=20, ss=3, se=5, hits=0, faults=2),
        ]
        self._result(trace).validate()

    def test_validate_rejects_service_gap(self):
        trace = [
            rec(proc=0, start=0, end=10, ss=0, se=3, hits=2, faults=1),
            rec(proc=0, start=10, end=20, ss=4, se=5, hits=0, faults=1),
        ]
        with pytest.raises(AssertionError):
            self._result(trace).validate()

    def test_validate_rejects_bad_counts(self):
        trace = [rec(hits=5, faults=5, ss=0, se=2)]
        with pytest.raises(AssertionError):
            self._result(trace).validate()
