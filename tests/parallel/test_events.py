"""Tests for run-result records and the capacity ledger."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import BoxRecord, ParallelRunResult, capacity_profile, peak_concurrent_height


def rec(proc=0, height=4, start=0, end=10, ss=0, se=2, hits=1, faults=1, tag=""):
    return BoxRecord(
        proc=proc, height=height, start=start, end=end,
        served_start=ss, served_end=se, hits=hits, faults=faults, tag=tag,
    )


class TestBoxRecord:
    def test_derived_fields(self):
        r = rec()
        assert r.duration == 10
        assert r.served == 2
        assert r.reserved_impact == 40


class TestCapacityProfile:
    def test_empty(self):
        times, heights = capacity_profile([])
        assert len(times) == 0 and len(heights) == 0
        assert peak_concurrent_height([]) == 0

    def test_single_box(self):
        times, heights = capacity_profile([rec(height=4, start=2, end=7)])
        assert times.tolist() == [2, 7]
        assert heights.tolist() == [4, 0]
        assert peak_concurrent_height([rec(height=4, start=2, end=7)]) == 4

    def test_overlapping_boxes(self):
        trace = [rec(height=4, start=0, end=10), rec(proc=1, height=8, start=5, end=15)]
        assert peak_concurrent_height(trace) == 12
        times, heights = capacity_profile(trace)
        assert times.tolist() == [0, 5, 10, 15]
        assert heights.tolist() == [4, 12, 8, 0]

    def test_zero_duration_boxes_ignored(self):
        trace = [rec(height=4, start=3, end=3, se=0, hits=0, faults=0)]
        assert peak_concurrent_height(trace) == 0

    def test_adjacent_boxes_do_not_stack(self):
        trace = [rec(height=4, start=0, end=5), rec(height=4, start=5, end=10)]
        assert peak_concurrent_height(trace) == 4


class TestParallelRunResult:
    def _result(self, trace, completions=(12,)):
        return ParallelRunResult(
            algorithm="test",
            completion_times=np.asarray(completions, dtype=np.int64),
            trace=trace,
            cache_size=16,
            miss_cost=5,
        )

    def test_objectives(self):
        res = self._result([], completions=(10, 20, 30))
        assert res.makespan == 30
        assert res.mean_completion_time == 20.0
        assert res.p == 3

    def test_impact_accounting(self):
        trace = [rec(height=4, start=0, end=10), rec(proc=0, height=2, start=10, end=20, ss=2, se=4)]
        res = self._result(trace)
        assert res.total_impact() == 4 * 10 + 2 * 10
        assert res.impact_by_proc().tolist() == [60]

    def test_boxes_of(self):
        trace = [rec(proc=0), rec(proc=1, ss=0, se=2)]
        res = self._result(trace, completions=(5, 5))
        assert len(res.boxes_of(0)) == 1

    def test_validate_accepts_contiguous(self):
        trace = [
            rec(proc=0, start=0, end=10, ss=0, se=3, hits=2, faults=1),
            rec(proc=0, start=10, end=20, ss=3, se=5, hits=0, faults=2),
        ]
        self._result(trace).validate()

    def test_validate_rejects_service_gap(self):
        trace = [
            rec(proc=0, start=0, end=10, ss=0, se=3, hits=2, faults=1),
            rec(proc=0, start=10, end=20, ss=4, se=5, hits=0, faults=1),
        ]
        with pytest.raises(AssertionError):
            self._result(trace).validate()

    def test_validate_rejects_bad_counts(self):
        trace = [rec(hits=5, faults=5, ss=0, se=2)]
        with pytest.raises(AssertionError):
            self._result(trace).validate()
