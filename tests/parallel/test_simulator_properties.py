"""Cross-algorithm property tests: invariants every simulator must satisfy.

These run every registered box algorithm over hypothesis-generated
workloads and check the structural properties the analyses rely on:
complete service, contiguous per-processor progress, capacity discipline,
lattice heights, and lower-bound consistency.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import is_power_of_two
from repro.parallel import (
    ALGORITHM_REGISTRY,
    make_algorithm,
    makespan_lower_bound,
    peak_concurrent_height,
    verify_trace,
)
from repro.workloads import ParallelWorkload

BOX_ALGORITHMS = ["rand-par", "det-par", "black-box-green"]
ALL_ALGORITHMS = list(ALGORITHM_REGISTRY)

K, S = 32, 8


@st.composite
def small_workloads(draw):
    p = draw(st.integers(min_value=1, max_value=5))
    seqs = []
    for _ in range(p):
        n = draw(st.integers(min_value=0, max_value=60))
        pages = draw(st.integers(min_value=1, max_value=8))
        seqs.append(
            np.asarray(
                draw(st.lists(st.integers(0, pages - 1), min_size=n, max_size=n)), dtype=np.int64
            )
        )
    return ParallelWorkload.from_local(seqs)


class TestUniversalInvariants:
    @given(small_workloads())
    @settings(max_examples=25, deadline=None)
    def test_all_algorithms_complete_all_requests(self, wl):
        for name in ALL_ALGORITHMS:
            res = make_algorithm(name, K, S, seed=0).run(wl)
            assert res.p == wl.p, name
            for i, seq in enumerate(wl.sequences):
                if len(seq) == 0:
                    assert res.completion_times[i] == 0, name
                else:
                    assert res.completion_times[i] >= len(seq), name

    @given(small_workloads())
    @settings(max_examples=20, deadline=None)
    def test_box_algorithms_trace_is_consistent(self, wl):
        for name in BOX_ALGORITHMS:
            res = make_algorithm(name, K, S, seed=1).run(wl)
            res.validate()  # contiguous service, sane intervals
            served = {i: 0 for i in range(wl.p)}
            for r in res.trace:
                served[r.proc] = max(served[r.proc], r.served_end)
            for i, seq in enumerate(wl.sequences):
                assert served.get(i, 0) >= len(seq), (name, i)

    @given(small_workloads())
    @settings(max_examples=15, deadline=None)
    def test_semantic_replay_passes(self, wl):
        """The strongest oracle: every recorded box replays identically."""
        for name in BOX_ALGORITHMS:
            res = make_algorithm(name, K, S, seed=6).run(wl)
            v = verify_trace(res, wl)
            assert v.ok, (name, v.errors[:3])

    @given(small_workloads())
    @settings(max_examples=20, deadline=None)
    def test_capacity_never_exceeded(self, wl):
        for name in BOX_ALGORITHMS:
            res = make_algorithm(name, K, S, seed=2).run(wl)
            assert peak_concurrent_height(res.trace) <= K, name

    @given(small_workloads())
    @settings(max_examples=20, deadline=None)
    def test_heights_are_powers_of_two(self, wl):
        for name in BOX_ALGORITHMS:
            res = make_algorithm(name, K, S, seed=3).run(wl)
            for r in res.trace:
                assert is_power_of_two(r.height), (name, r.height)

    @given(small_workloads())
    @settings(max_examples=15, deadline=None)
    def test_lower_bound_sound_for_everyone(self, wl):
        lb = makespan_lower_bound(wl, K, S)
        for name in ALL_ALGORITHMS:
            res = make_algorithm(name, K, S, seed=4).run(wl)
            assert res.makespan >= lb.value, (name, res.makespan, lb.breakdown())

    @given(small_workloads())
    @settings(max_examples=15, deadline=None)
    def test_makespan_is_max_completion(self, wl):
        for name in ALL_ALGORITHMS:
            res = make_algorithm(name, K, S, seed=5).run(wl)
            assert res.makespan == int(res.completion_times.max(initial=0))
            assert res.mean_completion_time <= res.makespan or wl.p == 0

    @given(small_workloads())
    @settings(max_examples=10, deadline=None)
    def test_deterministic_algorithms_reproducible(self, wl):
        for name in ("det-par", "equal-partition", "best-static-partition", "global-lru", "black-box-green"):
            a = make_algorithm(name, K, S, seed=0).run(wl)
            b = make_algorithm(name, K, S, seed=99).run(wl)  # seed must not matter
            assert (a.completion_times == b.completion_times).all(), name


class TestMoreCacheNeverHurtsMuch:
    @given(small_workloads())
    @settings(max_examples=10, deadline=None)
    def test_doubling_cache_helps_static_baselines(self, wl):
        """For partition baselines more cache is never worse (LRU inclusion
        per share; Belady monotone).  Box algorithms can shift box
        boundaries so only the baselines give a clean monotonicity law."""
        for name in ("equal-partition", "best-static-partition", "global-lru"):
            small = make_algorithm(name, K, S, seed=0).run(wl).makespan
            large = make_algorithm(name, 2 * K, S, seed=0).run(wl).makespan
            if name == "global-lru":
                # shared LRU has no inclusion across p interleavings; allow slack
                assert large <= small * 1.5 + S
            else:
                assert large <= small, name
