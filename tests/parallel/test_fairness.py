"""Tests for the fairness diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DetPar
from repro.parallel import EqualPartition, fairness_report, jain_index
from repro.workloads import ParallelWorkload, cyclic, scan


def wl_of(*locals_):
    return ParallelWorkload.from_local([np.asarray(x, dtype=np.int64) for x in locals_])


class TestJainIndex:
    def test_equal_values(self):
        assert jain_index(np.array([2.0, 2.0, 2.0])) == pytest.approx(1.0)

    def test_single_dominant(self):
        vals = np.array([100.0, 1e-9, 1e-9, 1e-9])
        assert jain_index(vals) < 0.3

    def test_empty(self):
        assert jain_index(np.array([])) == 1.0

    def test_ignores_nonpositive(self):
        assert jain_index(np.array([1.0, 1.0, 0.0, -5.0])) == pytest.approx(1.0)

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            vals = rng.random(8) + 0.01
            j = jain_index(vals)
            assert 1 / 8 <= j <= 1.0


class TestFairnessReport:
    def test_slowdown_at_least_one(self):
        wl = wl_of(cyclic(100, 4), scan(100))
        res = EqualPartition(16, 8).run(wl)
        report = fairness_report(res, wl, 16)
        finite = report.slowdowns[np.isfinite(report.slowdowns)]
        assert (finite >= 1.0 - 1e-9).all()

    def test_empty_sequences_are_nan(self):
        wl = wl_of([], cyclic(50, 3))
        res = EqualPartition(8, 4).run(wl)
        report = fairness_report(res, wl, 8)
        assert np.isnan(report.slowdowns[0])
        assert np.isfinite(report.slowdowns[1])

    def test_equal_partition_fair_on_identical_programs(self):
        wl = wl_of(*[cyclic(200, 4) for _ in range(4)])
        res = EqualPartition(32, 8).run(wl)
        report = fairness_report(res, wl, 32)
        assert report.jain == pytest.approx(1.0)
        assert report.completion_spread == pytest.approx(1.0)

    def test_as_dict_keys(self):
        wl = wl_of(cyclic(100, 3))
        res = EqualPartition(8, 4).run(wl)
        d = fairness_report(res, wl, 8).as_dict()
        assert set(d) == {"jain", "max_slowdown", "mean_slowdown", "completion_spread"}

    def test_det_par_reasonably_fair(self):
        """DET-PAR's round-robin strips keep slowdowns comparable."""
        wl = wl_of(*[cyclic(300, 6 + i) for i in range(8)])
        res = DetPar(64, 16).run(wl)
        report = fairness_report(res, wl, 32)
        assert report.jain > 0.8
