"""Tests for result archival round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DetPar, RandPar, audit_well_rounded
from repro.parallel import peak_concurrent_height
from repro.parallel.serialize import load_result, save_result
from repro.workloads import ParallelWorkload, cyclic, make_parallel_workload


def test_roundtrip_preserves_everything(tmp_path):
    wl = make_parallel_workload(p=4, n_requests=150, k=32, rng=np.random.default_rng(0))
    res = DetPar(64, 8).run(wl)
    path = tmp_path / "runs" / "detpar.npz"
    save_result(res, path)
    loaded = load_result(path)
    assert loaded.algorithm == res.algorithm
    assert (loaded.completion_times == res.completion_times).all()
    assert loaded.cache_size == res.cache_size
    assert loaded.miss_cost == res.miss_cost
    assert len(loaded.trace) == len(res.trace)
    for a, b in zip(loaded.trace, res.trace):
        assert (a.proc, a.height, a.start, a.end, a.tag) == (b.proc, b.height, b.start, b.end, b.tag)
    assert loaded.makespan == res.makespan
    assert loaded.total_impact() == res.total_impact()


def test_loaded_trace_supports_analysis(tmp_path):
    wl = ParallelWorkload.from_local([cyclic(120, 5) for _ in range(4)])
    res = DetPar(32, 8).run(wl)
    path = tmp_path / "r.npz"
    save_result(res, path)
    loaded = load_result(path)
    loaded.validate()
    assert peak_concurrent_height(loaded.trace) == peak_concurrent_height(res.trace)
    # meta phases come back as dicts; the audit needs dataclass-ish access,
    # so auditing runs on the original — but era analysis works on loaded
    from repro.analysis import era_analysis

    assert era_analysis(loaded).boundaries == era_analysis(res).boundaries


def test_meta_json_projection(tmp_path):
    wl = ParallelWorkload.from_local([cyclic(80, 4) for _ in range(3)])
    res = RandPar(32, 8, np.random.default_rng(1)).run(wl)
    path = tmp_path / "r.npz"
    save_result(res, path)
    loaded = load_result(path)
    assert loaded.meta["distribution"] == "inverse_square"
    assert isinstance(loaded.meta["chunks"], list)
    assert isinstance(loaded.meta["chunks"][0], dict)
    assert loaded.meta["chunks"][0]["active_at_start"] == 3


def test_empty_trace_roundtrip(tmp_path):
    from repro.parallel import GlobalLRU

    wl = ParallelWorkload.from_local([cyclic(40, 3)])
    res = GlobalLRU(8, 4).run(wl)
    path = tmp_path / "g.npz"
    save_result(res, path)
    loaded = load_result(path)
    assert loaded.trace == []
    assert loaded.makespan == res.makespan
