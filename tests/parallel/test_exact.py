"""Tests for the exact two-processor OPT search (and LB soundness against it)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DetPar, RandPar
from repro.parallel import makespan_lower_bound
from repro.parallel.exact import exact_two_proc_makespan
from repro.paging import min_service_time
from repro.workloads import ParallelWorkload, cyclic, scan


def wl_of(a, b):
    return ParallelWorkload.from_local(
        [np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)]
    )


S = 3
K = 4


class TestBasics:
    def test_rejects_wrong_p(self):
        wl = ParallelWorkload.from_local([np.asarray([0], dtype=np.int64)])
        with pytest.raises(ValueError):
            exact_two_proc_makespan(wl, K, S)

    def test_both_empty(self):
        assert exact_two_proc_makespan(wl_of([], []), K, S) == 0

    def test_one_empty_reduces_to_solo(self):
        opt = exact_two_proc_makespan(wl_of([0, 1, 0, 1], []), K, S)
        # solo with full cache: 2 cold misses + 2 hits
        assert opt == 2 * S + 2

    def test_two_singletons_run_in_parallel(self):
        opt = exact_two_proc_makespan(wl_of([0], [0]), K, S)
        assert opt == S  # height-1 boxes side by side, early release

    def test_two_scans_share_cache(self):
        opt = exact_two_proc_makespan(wl_of(list(range(4)), list(range(4))), K, S)
        assert opt == 4 * S  # all misses, fully parallel

    def test_contention_forces_serialization(self):
        """Two cycles of size k each: only one can hold its working set."""
        n = 8
        a = cyclic(n, K)
        b = cyclic(n, K)
        opt = exact_two_proc_makespan(wl_of(a, b), K, S)
        # lower bound: each alone needs K*S + (n-K); sharing can't let both
        # hold K pages at once, so opt exceeds the solo time
        solo = K * S + (n - K)
        assert opt > solo
        # and serializing fully is an upper bound
        assert opt <= 2 * solo + 2 * K * S


@st.composite
def tiny_instances(draw):
    n1 = draw(st.integers(0, 8))
    n2 = draw(st.integers(0, 8))
    a = draw(st.lists(st.integers(0, 3), min_size=n1, max_size=n1))
    b = draw(st.lists(st.integers(0, 3), min_size=n2, max_size=n2))
    return wl_of(a, b)


class TestSoundness:
    @given(tiny_instances())
    @settings(max_examples=40, deadline=None)
    def test_lower_bound_below_exact(self, wl):
        """The certified LB must never exceed the exact box-model OPT."""
        exact = exact_two_proc_makespan(wl, K, S)
        lb = makespan_lower_bound(wl, K, S)
        assert lb.value <= exact, (lb.breakdown(), exact)

    @given(tiny_instances())
    @settings(max_examples=15, deadline=None)
    def test_exact_below_algorithms(self, wl):
        """Every implemented box algorithm is a feasible schedule, so OPT
        can only be faster (same cache, no augmentation here)."""
        exact = exact_two_proc_makespan(wl, K, S)
        for alg in (DetPar(K, S), RandPar(K, S, np.random.default_rng(0))):
            res = alg.run(wl)
            assert res.makespan >= exact, (alg.name, res.makespan, exact)

    @given(tiny_instances())
    @settings(max_examples=25, deadline=None)
    def test_exact_at_least_isolation_time(self, wl):
        exact = exact_two_proc_makespan(wl, K, S)
        iso = max(
            (min_service_time(seq, K, S) for seq in wl.sequences if len(seq)),
            default=0,
        )
        # isolation uses Belady (stronger than LRU boxes), so it stays below
        assert exact >= iso or exact == 0

    def test_exact_monotone_in_cache(self):
        wl = wl_of(cyclic(8, 3), cyclic(8, 3))
        small = exact_two_proc_makespan(wl, 2, S)
        large = exact_two_proc_makespan(wl, 8, S)
        assert large <= small

    def test_state_guard(self):
        wl = wl_of(list(range(8)), list(range(8)))
        with pytest.raises(RuntimeError):
            exact_two_proc_makespan(wl, K, S, max_states=1)
