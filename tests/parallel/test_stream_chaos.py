"""Chaos coverage for the event-driven and streamed simulation paths.

The fault machinery (deterministic SIGINT, killed pool workers, resume
from checkpoint) predates the event scheduler; these tests pin that the
default event backend — including workloads served chunk-by-chunk from
a trace store — recovers byte-identically to an uninterrupted run, and
that a resumed run replays to the same table the timestep reference
produces.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.cli import main
from repro.exec import (
    ExecutionEngine,
    ExecutionPolicy,
    RunCheckpoint,
    WorkUnit,
    inject_faults,
)
from repro.parallel.events import sim_backend
from repro.parallel.streaming import open_streaming
from repro.traces.store import write_store
from repro.workloads import make_parallel_workload

pytestmark = pytest.mark.chaos


def strip_noise(text):
    return [l for l in text.splitlines() if not l.startswith("[telemetry]") and " rows in " not in l]


def test_chaos_runs_exercise_the_event_backend():
    # the guard that gives this module meaning: unless a test opts into
    # REPRO_SIM=reference, every fault below lands on the event
    # scheduler, not the retained timestep loop
    assert sim_backend() == "event"


# --------------------------------------------------------------------- #
# SIGINT mid-sweep -> repro resume, on event-driven parallel-run units
# --------------------------------------------------------------------- #
def test_interrupt_resume_event_sweep_byte_identical(tmp_path, capsys):
    # ground truth: a clean run of the parallel-run sweep (E3 drives the
    # event scheduler through RAND-PAR cells at four values of p)
    clean_dir = tmp_path / "clean"
    rc = main(["e3", "--out", str(clean_dir / "e3.md"),
               "--cache-dir", str(clean_dir / "cache"),
               "--runs-dir", str(clean_dir / "runs")])
    assert rc == 0
    capsys.readouterr()

    with inject_faults("interrupt:rand-par/p=8:1"):
        rc = main(["e3", "--run-id", "ev", "--out", str(tmp_path / "resumed.md"),
                   "--cache-dir", str(tmp_path / "cache"),
                   "--runs-dir", str(tmp_path / "runs")])
    assert rc == 130
    capsys.readouterr()
    assert RunCheckpoint.load("ev", root=tmp_path / "runs").manifest.status == "interrupted"

    rc = main(["resume", "ev", "--runs-dir", str(tmp_path / "runs")])
    assert rc == 0
    capsys.readouterr()
    assert RunCheckpoint.load("ev", root=tmp_path / "runs").manifest.status == "complete"
    assert strip_noise((tmp_path / "resumed.md").read_text()) == strip_noise(
        (clean_dir / "e3.md").read_text()
    )


def test_resumed_event_table_matches_timestep_reference(tmp_path, capsys, monkeypatch):
    # differential-under-chaos: an interrupted-then-resumed event run
    # must land on the very table the timestep oracle writes in one piece
    ref_dir = tmp_path / "ref"
    monkeypatch.setenv("REPRO_SIM", "reference")
    rc = main(["e3", "--out", str(ref_dir / "e3.md"),
               "--cache-dir", str(ref_dir / "cache"),
               "--runs-dir", str(ref_dir / "runs")])
    assert rc == 0
    monkeypatch.delenv("REPRO_SIM")
    capsys.readouterr()

    with inject_faults("interrupt:rand-par/p=16:1"):
        rc = main(["e3", "--run-id", "dvr", "--out", str(tmp_path / "event.md"),
                   "--cache-dir", str(tmp_path / "cache"),
                   "--runs-dir", str(tmp_path / "runs")])
    assert rc == 130
    capsys.readouterr()
    assert main(["resume", "dvr", "--runs-dir", str(tmp_path / "runs")]) == 0
    capsys.readouterr()
    assert strip_noise((tmp_path / "event.md").read_text()) == strip_noise(
        (ref_dir / "e3.md").read_text()
    )


# --------------------------------------------------------------------- #
# killed worker mid-chunk: streamed units on a 2-worker pool
# --------------------------------------------------------------------- #
def _streamed_units(store):
    # StreamingWorkload pickles as its store path, so each pool worker
    # reopens the store and serves its own chunk cursor
    wl = open_streaming(store)
    units = []
    for algorithm in ("det-par", "rand-par", "global-lru"):
        for seed in (0, 1):
            units.append(
                WorkUnit(
                    "parallel-run",
                    {"workload": wl, "algorithm": algorithm, "cache_size": 64,
                     "miss_cost": 8, "seed": seed},
                    label=f"stream-chaos/{algorithm}/seed={seed}",
                )
            )
    return units


def test_killed_worker_mid_chunk_recovers_byte_identical(tmp_path):
    wl = make_parallel_workload(p=4, n_requests=2000, k=32, rng=np.random.default_rng(3))
    store = write_store(tmp_path / "chaos.trc", wl, chunk_rows=128)
    units = _streamed_units(store)
    clean = ExecutionEngine(jobs=1).run(units)

    # os._exit(86) takes the worker down while its streamed run is in
    # flight; the engine rebuilds the pool and resubmits the lost units
    with inject_faults("kill:stream-chaos/rand-par/seed=1:1"):
        values = ExecutionEngine(jobs=2, policy=ExecutionPolicy(retries=1, backoff_s=0.01)).run(
            units
        )
    # per-cell pickles (a whole-list dump memoizes shared references,
    # which the pool round-trip legitimately breaks)
    for want, got in zip(clean, values):
        assert pickle.dumps(got) == pickle.dumps(want)


def test_crashed_streamed_unit_retries_byte_identical(tmp_path):
    wl = make_parallel_workload(p=3, n_requests=1500, k=24, rng=np.random.default_rng(7))
    store = write_store(tmp_path / "flaky.trc", wl, chunk_rows=64)
    units = _streamed_units(store)
    clean = ExecutionEngine(jobs=1).run(units)

    with inject_faults("flaky:stream-chaos/det-par/seed=0:1"):
        values = ExecutionEngine(jobs=1, policy=ExecutionPolicy(retries=1, backoff_s=0.01)).run(
            units
        )
    for want, got in zip(clean, values):
        assert pickle.dumps(got) == pickle.dumps(want)
