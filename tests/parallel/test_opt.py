"""Tests for the certified makespan / mean-completion lower bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DetPar, RandPar
from repro.parallel import (
    BestStaticPartition,
    EqualPartition,
    GlobalLRU,
    makespan_lower_bound,
    mean_completion_lower_bound,
)
from repro.workloads import ParallelWorkload, cyclic, make_parallel_workload, scan


def rng(seed=0):
    return np.random.default_rng(seed)


def wl_of(*locals_):
    return ParallelWorkload.from_local([np.asarray(x, dtype=np.int64) for x in locals_])


class TestComponents:
    def test_length_bound(self):
        wl = wl_of(cyclic(100, 2), cyclic(50, 2))
        lb = makespan_lower_bound(wl, 8, 4, include_impact=False)
        assert lb.length_bound == 100
        assert lb.value >= 100

    def test_isolation_bound_scan(self):
        """A scan admits no caching: isolation bound = n*s exactly."""
        wl = wl_of(scan(80))
        lb = makespan_lower_bound(wl, 16, 7, include_impact=False)
        assert lb.isolation_bound == 80 * 7
        assert lb.value == 80 * 7

    def test_isolation_bound_cyclic_fits(self):
        """A cycle fitting in cache: cold misses then hits."""
        wl = wl_of(cyclic(100, 4))
        s = 7
        lb = makespan_lower_bound(wl, 16, s, include_impact=False)
        assert lb.isolation_bound == 4 * s + 96

    def test_impact_bound_positive_for_heavy_workloads(self):
        wl = wl_of(*[scan(100) for _ in range(8)])
        lb = makespan_lower_bound(wl, 8, 6)
        assert lb.impact_bound > 0
        # 8 scans of 100 at min-height-1 impact 6*100 each = 4800 total,
        # over cache 8 and normalization 4 -> 150
        assert lb.impact_bound == 4800 // (8 * 4)

    def test_breakdown_keys(self):
        wl = wl_of(cyclic(30, 3))
        lb = makespan_lower_bound(wl, 8, 4, include_impact=False)
        assert set(lb.breakdown()) == {"length", "isolation", "impact", "value"}

    def test_empty_workload_sequences(self):
        wl = wl_of([], [])
        lb = makespan_lower_bound(wl, 8, 4)
        assert lb.value == 0


class TestSoundness:
    """The bound must be <= every achievable makespan (here: every
    implemented algorithm's measured makespan — algorithms can't beat OPT,
    and LB <= OPT)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lb_below_all_algorithms(self, seed):
        wl = make_parallel_workload(p=4, n_requests=150, k=32, rng=rng(seed))
        K, s = 32, 8
        lb = makespan_lower_bound(wl, K, s)
        algs = [
            RandPar(K, s, rng(seed + 10)),
            DetPar(K, s),
            EqualPartition(K, s),
            BestStaticPartition(K, s),
            GlobalLRU(K, s),
        ]
        for alg in algs:
            res = alg.run(wl)
            assert res.makespan >= lb.value, (res.algorithm, res.makespan, lb.breakdown())

    def test_lb_below_best_static_with_augmentation(self):
        """Even granting the algorithm 4x cache, LB(k) stays below."""
        wl = make_parallel_workload(p=4, n_requests=150, k=16, rng=rng(7))
        s = 8
        lb = makespan_lower_bound(wl, 16, s)
        res = BestStaticPartition(64, s).run(wl)
        assert res.makespan >= lb.length_bound  # only the length bound survives augmentation

    def test_isolation_dominates_impact_for_single_proc(self):
        wl = wl_of(cyclic(200, 6))
        lb = makespan_lower_bound(wl, 16, 8)
        assert lb.value == lb.isolation_bound


class TestMeanCompletion:
    def test_mean_lb_formula(self):
        wl = wl_of(scan(50), cyclic(100, 2))
        s = 5
        lb = mean_completion_lower_bound(wl, 16, s)
        # scan: 250; cyclic: 2 cold misses + 98 hits = 108
        assert lb == pytest.approx((250 + 108) / 2)

    def test_mean_lb_below_algorithms(self):
        wl = make_parallel_workload(p=4, n_requests=120, k=32, rng=rng(3))
        K, s = 32, 8
        lb = mean_completion_lower_bound(wl, K, s)
        for alg in [DetPar(K, s), EqualPartition(K, s), GlobalLRU(K, s)]:
            res = alg.run(wl)
            assert res.mean_completion_time >= lb

    def test_empty(self):
        assert mean_completion_lower_bound(wl_of([]), 8, 4) == 0.0
