"""Tests for EQUAL-PARTITION, BEST-STATIC-PARTITION, and GLOBAL-LRU."""

from __future__ import annotations

import numpy as np
import pytest

from repro.paging import LRUCache, min_service_time
from repro.parallel import (
    BestStaticPartition,
    EqualPartition,
    GlobalLRU,
    static_partition_makespan,
)
from repro.workloads import ParallelWorkload, cyclic, scan


def wl_of(*locals_, name="t"):
    return ParallelWorkload.from_local([np.asarray(x, dtype=np.int64) for x in locals_], name=name)


class TestEqualPartition:
    def test_validation(self):
        with pytest.raises(ValueError):
            EqualPartition(0, 4)
        with pytest.raises(ValueError):
            EqualPartition(16, 1)

    def test_matches_direct_lru_computation(self):
        wl = wl_of(cyclic(50, 3), cyclic(40, 9))
        s = 7
        res = EqualPartition(8, s).run(wl)
        for i, seq in enumerate(wl.sequences):
            cache = LRUCache(4)
            hits = sum(cache.touch(int(x)) for x in seq)
            assert res.completion_times[i] == hits + s * (len(seq) - hits)

    def test_share_floor_one(self):
        wl = wl_of([0, 1], [0], [0], [0], [0])
        res = EqualPartition(4, 3).run(wl)  # 4 // 5 -> share 1
        assert res.meta["share"] == 1

    def test_starves_cache_hungry_processor(self):
        """A k/p share thrashes a processor whose cycle needs more — the
        intro's motivating failure of uniform splits."""
        k, s = 16, 10
        hungry = cyclic(200, 10)  # needs 10 pages, gets 8
        light = scan(200)
        wl = wl_of(hungry, light)
        res = EqualPartition(k, s).run(wl)
        # hungry thrashes: all misses
        assert res.completion_times[0] == 200 * s


class TestStaticPartitionSearch:
    def test_validation(self):
        wl = wl_of([0], [0])
        with pytest.raises(ValueError):
            static_partition_makespan(wl, 1, 4)

    def test_gives_more_cache_to_the_needy(self):
        """Two cyclic processors with unequal working sets: the optimal
        split fits both cycles (10 + 4 <= 16), whereas the equal split
        (8 each) thrashes the larger cycle."""
        k, s = 16, 10
        hungry = cyclic(300, 10)
        light = cyclic(300, 4)
        wl = wl_of(hungry, light)
        makespan, alloc = static_partition_makespan(wl, k, s)
        assert alloc[0] >= 10  # hungry processor gets its working set
        assert alloc[0] + alloc[1] <= k
        # cold misses only: max(10s + 290, 4s + 296)
        assert makespan == max(10 * s + 290, 4 * s + 296)
        # and beats the equal split decisively
        eq = EqualPartition(k, s).run(wl)
        assert makespan < eq.makespan

    def test_allocation_achieves_reported_makespan(self):
        wl = wl_of(cyclic(100, 6), cyclic(100, 3), scan(50))
        k, s = 16, 8
        makespan, alloc = static_partition_makespan(wl, k, s)
        times = [
            min_service_time(seq, alloc[i], s) if len(seq) else 0
            for i, seq in enumerate(wl.sequences)
        ]
        assert max(times) == makespan

    def test_empty_workload_sequences(self):
        wl = wl_of([], [])
        makespan, alloc = static_partition_makespan(wl, 4, 3)
        assert makespan == 0 and alloc == [0, 0]

    def test_runner_class(self):
        wl = wl_of(cyclic(80, 5), cyclic(80, 3))
        res = BestStaticPartition(16, 5).run(wl)
        res.validate()
        assert res.makespan == static_partition_makespan(wl, 16, 5)[0]


class TestGlobalLRU:
    def test_validation(self):
        with pytest.raises(ValueError):
            GlobalLRU(0, 4)
        with pytest.raises(ValueError):
            GlobalLRU(16, 1)

    def test_single_processor_matches_private_lru(self):
        seq = cyclic(100, 7)
        wl = wl_of(seq)
        s = 6
        res = GlobalLRU(8, s).run(wl)
        cache = LRUCache(8)
        hits = sum(cache.touch(int(x)) for x in seq)
        assert res.completion_times[0] == hits + s * (100 - hits)

    def test_interference_hurts(self):
        """A thrashing neighbour evicts a well-behaved processor's pages —
        the contention GLOBAL-LRU cannot prevent."""
        s = 10
        friendly = cyclic(300, 4)
        bully = scan(300)
        wl = wl_of(friendly, bully)
        shared = GlobalLRU(8, s).run(wl)
        private = EqualPartition(8, s).run(wl)
        assert shared.completion_times[0] >= private.completion_times[0]

    def test_completes_everything(self):
        wl = wl_of(cyclic(60, 3), scan(40), cyclic(50, 12))
        res = GlobalLRU(16, 4).run(wl)
        assert (res.completion_times > 0).all()
        assert res.meta["hits"] + res.meta["faults"] == wl.total_requests

    def test_empty_sequences(self):
        wl = wl_of([], [0, 1])
        res = GlobalLRU(4, 4).run(wl)
        assert res.completion_times[0] == 0
        assert res.completion_times[1] > 0
