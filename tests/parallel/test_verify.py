"""Tests for the semantic trace verifier (and via it, every simulator)."""

from __future__ import annotations


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BlackBoxPar, DetPar, RandPar
from repro.parallel import EqualPartition, verify_trace
from repro.workloads import ParallelWorkload, cyclic, make_parallel_workload


def rng(seed=0):
    return np.random.default_rng(seed)


class TestSimulatorsPassReplay:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_det_par(self, seed):
        wl = make_parallel_workload(p=5, n_requests=200, k=32, rng=rng(seed))
        res = DetPar(64, 8).run(wl)
        v = verify_trace(res, wl)
        assert v.ok, v.errors[:5]
        assert v.boxes_checked == len(res.trace)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rand_par(self, seed):
        wl = make_parallel_workload(p=5, n_requests=200, k=32, rng=rng(seed))
        res = RandPar(64, 8, rng(seed + 50)).run(wl)
        assert verify_trace(res, wl).ok

    @pytest.mark.parametrize("seed", [0, 1])
    def test_black_box(self, seed):
        wl = make_parallel_workload(p=5, n_requests=200, k=32, rng=rng(seed))
        res = BlackBoxPar(64, 8).run(wl)
        assert verify_trace(res, wl).ok

    def test_equal_partition(self):
        wl = ParallelWorkload.from_local([cyclic(100, 4), cyclic(80, 7)])
        res = EqualPartition(16, 8).run(wl)
        assert verify_trace(res, wl).ok

    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_random_workloads_replay(self, seed):
        wl = make_parallel_workload(p=4, n_requests=120, k=16, rng=rng(seed), kind="multiscale")
        for alg in (DetPar(32, 8), RandPar(32, 8, rng(seed))):
            res = alg.run(wl)
            v = verify_trace(res, wl)
            assert v.ok, (alg.name, v.errors[:3])


class TestVerifierBackendsAndStreaming:
    def _wl(self):
        return make_parallel_workload(p=3, n_requests=150, k=16, rng=rng(8))

    def test_reference_backend_verifies_identically(self, monkeypatch):
        wl = self._wl()
        res = DetPar(32, 8).run(wl)
        assert verify_trace(res, wl).ok
        monkeypatch.setenv("REPRO_SIM", "reference")
        v = verify_trace(res, wl)
        assert v.ok, v.errors[:3]
        assert v.boxes_checked == len(res.trace)

    def test_streamed_workload_verifies(self, tmp_path):
        from repro.parallel.streaming import open_streaming
        from repro.traces.store import write_store

        wl = self._wl()
        sw = open_streaming(write_store(tmp_path / "v.store", wl, chunk_rows=32))
        res = DetPar(32, 8).run(sw)
        v = verify_trace(res, sw)
        assert v.ok, v.errors[:3]
        # and the streamed run verifies against the in-memory workload too
        assert verify_trace(res, wl).ok


class TestVerifierCatchesCorruption:
    def _good_run(self):
        wl = ParallelWorkload.from_local([cyclic(120, 5) for _ in range(3)])
        return wl, DetPar(32, 8).run(wl)

    def test_detects_wrong_counts(self):
        wl, res = self._good_run()
        idx = next(i for i, r in enumerate(res.trace) if r.served > 0)
        bad = res.trace[idx]._replace(hits=res.trace[idx].hits + 1, faults=max(0, res.trace[idx].faults - 1))
        res.trace[idx] = bad
        v = verify_trace(res, wl)
        assert not v.ok
        assert any("claims" in e for e in v.errors)

    def test_detects_wrong_progress(self):
        wl, res = self._good_run()
        idx = next(i for i, r in enumerate(res.trace) if r.served > 1)
        bad = res.trace[idx]._replace(served_end=res.trace[idx].served_end - 1)
        res.trace[idx] = bad
        v = verify_trace(res, wl)
        assert not v.ok

    def test_detects_wrong_completion_time(self):
        wl, res = self._good_run()
        res.completion_times[0] += 1
        v = verify_trace(res, wl)
        assert not v.ok
        assert any("completion" in e for e in v.errors)

    def test_detects_missing_service(self):
        wl, res = self._good_run()
        proc0 = [i for i, r in enumerate(res.trace) if r.proc == 0]
        last = proc0[-1]
        res.trace.pop(last)
        v = verify_trace(res, wl)
        assert not v.ok
