"""Tests for run summaries, utilization, and the algorithm registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import (
    ALGORITHM_REGISTRY,
    BoxRecord,
    ParallelRunResult,
    cache_utilization,
    make_algorithm,
    makespan_lower_bound,
    register_algorithm,
    summarize,
)
from repro.workloads import ParallelWorkload, cyclic


def result_with(trace, completions=(10,), cache=16, s=5):
    return ParallelRunResult(
        algorithm="x",
        completion_times=np.asarray(completions, dtype=np.int64),
        trace=trace,
        cache_size=cache,
        miss_cost=s,
    )


def rec(height, start, end, proc=0):
    return BoxRecord(
        proc=proc, height=height, start=start, end=end,
        served_start=0, served_end=0, hits=0, faults=0,
    )


class TestUtilization:
    def test_no_trace(self):
        assert cache_utilization(result_with([])) == 0.0

    def test_full_usage(self):
        res = result_with([rec(16, 0, 10)])
        assert cache_utilization(res) == pytest.approx(1.0)

    def test_half_usage(self):
        res = result_with([rec(8, 0, 10)])
        assert cache_utilization(res) == pytest.approx(0.5)

    def test_gap_counts_as_idle(self):
        res = result_with([rec(16, 0, 5), rec(16, 15, 20)])
        assert cache_utilization(res) == pytest.approx(0.5)


class TestSummarize:
    def test_without_bounds(self):
        res = result_with([rec(8, 0, 10)], completions=(10, 20))
        s = summarize(res)
        assert s.makespan == 20
        assert s.mean_completion == 15.0
        assert s.makespan_ratio is None
        assert s.xi_measured == pytest.approx(0.5)

    def test_with_bounds(self):
        wl = ParallelWorkload.from_local([cyclic(50, 4)])
        lb = makespan_lower_bound(wl, 16, 5, include_impact=False)
        res = result_with([rec(8, 0, 10)], completions=(2 * lb.value,))
        s = summarize(res, makespan_lb=lb, mean_lb=float(lb.value))
        assert s.makespan_ratio == pytest.approx(2.0)
        assert s.mean_completion_ratio == pytest.approx(2.0)

    def test_as_dict_roundable(self):
        res = result_with([rec(8, 0, 10)])
        d = summarize(res).as_dict()
        assert d["algorithm"] == "x"
        assert "makespan_ratio" in d


class TestRegistry:
    def test_builtins_registered(self):
        for name in (
            "rand-par",
            "det-par",
            "black-box-green",
            "equal-partition",
            "best-static-partition",
            "global-lru",
        ):
            assert name in ALGORITHM_REGISTRY

    def test_make_algorithm_runs(self):
        wl = ParallelWorkload.from_local([cyclic(40, 3), cyclic(40, 5)])
        for name in ALGORITHM_REGISTRY:
            alg = make_algorithm(name, 32, 8, seed=1)
            res = alg.run(wl)
            assert res.makespan > 0, name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="known"):
            make_algorithm("nope", 16, 4)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_algorithm("det-par", lambda k, s, seed: None)  # type: ignore[arg-type]
